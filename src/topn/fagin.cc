#include "topn/fagin.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "obs/query_trace.h"

namespace moa {
namespace {

/// Per-query-term sorted access: an impact cursor over the term's
/// postings in descending-weight order. Works over any PostingSource —
/// the in-memory file serves its materialized impact order, a segment
/// decodes fragments lazily through its MOAFRG01 directory, a catalog
/// snapshot materializes the live postings' order.
struct ListAccess {
  TermId term;
  std::unique_ptr<ImpactCursor> cursor;

  bool exhausted() const { return cursor->at_end(); }
  /// Sorted-access threshold: weight at the cursor (0 once exhausted).
  double threshold() const {
    return exhausted() ? 0.0 : cursor->weight();
  }
};

/// Builds sorted accessors for all query terms with non-empty lists;
/// fails if the source has no impact metadata for one of them.
Result<std::vector<ListAccess>> MakeAccessors(const PostingSource& source,
                                              const ScoringModel& model,
                                              const Query& query) {
  std::vector<ListAccess> accessors;
  for (TermId t : query.terms) {
    if (source.DocFrequency(t) == 0) continue;
    if (!source.HasImpacts(t)) {
      return Status::FailedPrecondition(
          "Fagin algorithms require impact orders; call "
          "InvertedFile::BuildImpactOrders first");
    }
    accessors.push_back(ListAccess{t, source.OpenImpactCursor(t, model)});
  }
  return accessors;
}

/// Random access: weight of `doc` in `accessor`'s list (0 if absent).
double RandomAccessWeight(const PostingSource& source,
                          const ScoringModel& model,
                          const ListAccess& accessor, DocId doc,
                          TopNStats* stats) {
  ++stats->random_accesses;
  auto tf = source.FindTf(accessor.term, doc);  // ticks one random read
  if (!tf.has_value()) return 0.0;
  CostTicker::TickScore();
  return model.Weight(accessor.term, Posting{doc, *tf});
}

/// Bounded best-n tracker (min-heap on ScoredDocLess; front = weakest).
class BestN {
 public:
  explicit BestN(size_t n) : n_(n) {}

  void Offer(const ScoredDoc& sd) {
    if (n_ == 0) return;
    if (heap_.size() < n_) {
      heap_.push_back(sd);
      std::push_heap(heap_.begin(), heap_.end(), WeakestFirst);
    } else if (ScoredDocLess(sd, heap_.front())) {
      CostTicker::TickCompare();
      std::pop_heap(heap_.begin(), heap_.end(), WeakestFirst);
      heap_.back() = sd;
      std::push_heap(heap_.begin(), heap_.end(), WeakestFirst);
    }
  }

  bool full() const { return heap_.size() >= n_; }
  /// Score of the weakest member (the "n-th best so far").
  double nth_score() const { return heap_.front().score; }

  std::vector<ScoredDoc> TakeSortedDesc() {
    std::sort(heap_.begin(), heap_.end(), ScoredDocLess);
    return std::move(heap_);
  }

 private:
  static bool WeakestFirst(const ScoredDoc& a, const ScoredDoc& b) {
    CostTicker::TickCompare();
    return ScoredDocLess(a, b);
  }

  size_t n_;
  std::vector<ScoredDoc> heap_;
};

}  // namespace

// ---------------------------------------------------------------------------
// TA
// ---------------------------------------------------------------------------

Result<TopNResult> FaginTA(const PostingSource& source,
                           const ScoringModel& model, const Query& query,
                           size_t n, const FaginOptions& options) {
  (void)options;
  TopNResult result;
  CostScope scope;
  std::vector<ListAccess> accessors;
  {
    obs::TraceSpan span(obs::kStageCursorOpen);
    Result<std::vector<ListAccess>> accessors_or =
        MakeAccessors(source, model, query);
    if (!accessors_or.ok()) return accessors_or.status();
    accessors = std::move(accessors_or).ValueOrDie();
  }

  BestN best(n);
  std::unordered_set<DocId> resolved;
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    bool done = accessors.empty() || n == 0;
    while (!done) {
      bool any_advanced = false;
      for (size_t i = 0; i < accessors.size(); ++i) {
        ListAccess& cur = accessors[i];
        if (cur.exhausted()) continue;
        any_advanced = true;
        const DocId doc = cur.cursor->doc();
        const double w = cur.cursor->weight();
        cur.cursor->next();
        ++result.stats.sorted_accesses;
        CostTicker::TickSeq();

        if (resolved.insert(doc).second) {
          ++result.stats.candidates;
          // Complete the score via random access to every other list. The
          // sorted-access weight `w` is folded in at accessor position i so
          // the floating-point addition order is always the accessor order,
          // independent of which list surfaced the document first — that
          // order depends on the *other* documents in the source, and
          // keeping it out of the sum makes TA scores bit-identical across
          // physical partitionings of the document space.
          double score = 0.0;
          for (size_t j = 0; j < accessors.size(); ++j) {
            score += (j == i) ? w
                              : RandomAccessWeight(source, model, accessors[j],
                                                   doc, &result.stats);
          }
          best.Offer(ScoredDoc{doc, score});
        }
      }
      // Threshold: best possible score of any unseen document.
      double tau = 0.0;
      for (const auto& cur : accessors) tau += cur.threshold();
      if (best.full() && best.nth_score() >= tau) {
        result.stats.stopped_early = any_advanced;
        done = true;
      } else if (!any_advanced) {
        done = true;  // every list exhausted
      }
    }
  }
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    result.items = best.TakeSortedDesc();
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

// ---------------------------------------------------------------------------
// FA
// ---------------------------------------------------------------------------

Result<TopNResult> FaginFA(const PostingSource& source,
                           const ScoringModel& model, const Query& query,
                           size_t n, const FaginOptions& options) {
  (void)options;
  TopNResult result;
  CostScope scope;
  std::vector<ListAccess> accessors;
  {
    obs::TraceSpan span(obs::kStageCursorOpen);
    Result<std::vector<ListAccess>> accessors_or =
        MakeAccessors(source, model, query);
    if (!accessors_or.ok()) return accessors_or.status();
    accessors = std::move(accessors_or).ValueOrDie();
  }
  const size_t m = accessors.size();

  if (m == 0 || n == 0) {
    result.stats.cost = scope.Snapshot();
    return result;
  }
  if (m > 64) {
    return Status::InvalidArgument("FA supports at most 64 query terms");
  }

  // Phase 1: round-robin sorted access until n documents have been "fully
  // seen". Sparse-list adaptation: a document counts as seen in list i if
  // it appeared there under sorted access OR list i is exhausted (absence
  // means weight 0, and 0 >= the exhausted list's threshold of 0, so the
  // classical FA dominance argument still holds).
  const uint64_t all_mask = (m == 64) ? ~0ULL : ((1ULL << m) - 1);
  std::unordered_map<DocId, uint64_t> seen_mask;  // doc -> lists seen via SA
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    uint64_t exhausted_mask = 0;
    size_t fully_seen = 0;
    int round = 0;
    for (;;) {
      bool advanced = false;
      for (size_t i = 0; i < m; ++i) {
        ListAccess& cur = accessors[i];
        if (cur.exhausted()) {
          exhausted_mask |= (1ULL << i);
          continue;
        }
        advanced = true;
        const DocId doc = cur.cursor->doc();
        cur.cursor->next();
        ++result.stats.sorted_accesses;
        CostTicker::TickSeq();
        seen_mask[doc] |= (1ULL << i);
        if (cur.exhausted()) exhausted_mask |= (1ULL << i);
      }
      if (!advanced) break;  // every list exhausted: everything is seen
      // Recount fully-seen docs periodically (counting is O(candidates); the
      // stop may fire a few rounds late, which is safe, never wrong).
      if (++round % 8 == 0 || (exhausted_mask != 0)) {
        fully_seen = 0;
        for (const auto& [doc, mask] : seen_mask) {
          CostTicker::TickCompare();
          if ((mask | exhausted_mask) == all_mask) ++fully_seen;
        }
        if (fully_seen >= n) break;
      }
    }
  }
  result.stats.stopped_early =
      std::any_of(accessors.begin(), accessors.end(),
                  [](const ListAccess& c) { return !c.exhausted(); });

  // Phase 2: random-access completion of every seen document (each doc's
  // full score is recomputed via random access; the true top-n is a subset
  // of the seen set by the dominance argument above).
  BestN best(n);
  result.stats.candidates = static_cast<int64_t>(seen_mask.size());
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    for (const auto& [doc, mask] : seen_mask) {
      double score = 0.0;
      for (const auto& cur : accessors) {
        score += RandomAccessWeight(source, model, cur, doc, &result.stats);
      }
      best.Offer(ScoredDoc{doc, score});
    }
    result.items = best.TakeSortedDesc();
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

// ---------------------------------------------------------------------------
// NRA
// ---------------------------------------------------------------------------

Result<TopNResult> FaginNRA(const PostingSource& source,
                            const ScoringModel& model, const Query& query,
                            size_t n, const FaginOptions& options) {
  TopNResult result;
  CostScope scope;
  std::vector<ListAccess> accessors;
  {
    obs::TraceSpan span(obs::kStageCursorOpen);
    Result<std::vector<ListAccess>> accessors_or =
        MakeAccessors(source, model, query);
    if (!accessors_or.ok()) return accessors_or.status();
    accessors = std::move(accessors_or).ValueOrDie();
  }
  const size_t m = accessors.size();

  if (m == 0 || n == 0) {
    result.stats.cost = scope.Snapshot();
    return result;
  }
  if (m > 64) {
    return Status::InvalidArgument("NRA supports at most 64 query terms");
  }

  struct Candidate {
    double lower = 0.0;
    uint64_t seen_mask = 0;
  };
  std::unordered_map<DocId, Candidate> cand;

  int64_t accesses_since_check = 0;
  bool done = false;
  // Closed explicitly before the final emit (the loop has two exits).
  std::optional<obs::TraceSpan> accumulate_span(
      std::in_place, obs::kStageAccumulate);
  while (!done) {
    bool advanced = false;
    for (size_t i = 0; i < m; ++i) {
      ListAccess& cur = accessors[i];
      if (cur.exhausted()) continue;
      advanced = true;
      const DocId doc = cur.cursor->doc();
      const double w = cur.cursor->weight();
      cur.cursor->next();
      ++result.stats.sorted_accesses;
      ++accesses_since_check;
      CostTicker::TickSeq();
      Candidate& c = cand[doc];
      c.lower += w;
      c.seen_mask |= (1ULL << i);
    }
    if (!advanced) {
      done = true;  // all exhausted: lower bounds are exact
      break;
    }
    if (accesses_since_check < options.check_every) continue;
    accesses_since_check = 0;

    // Stop test. thresholds[i] = weight at cursor i.
    double thresholds[64];
    for (size_t i = 0; i < m; ++i) thresholds[i] = accessors[i].threshold();

    // n-th best candidate by (lower bound desc, doc asc) — the tentative
    // top-n set under the library's deterministic tie order.
    if (cand.size() < n) continue;
    std::vector<std::pair<double, DocId>> ranked;  // (-lower, doc): asc order
    ranked.reserve(cand.size());
    for (const auto& [doc, c] : cand) ranked.emplace_back(-c.lower, doc);
    std::nth_element(ranked.begin(), ranked.begin() + (n - 1), ranked.end());
    const auto kth = ranked[n - 1];
    const double kth_lower = -kth.first;

    // Upper bound of any completely unseen document.
    double max_other_upper = 0.0;
    for (size_t i = 0; i < m; ++i) max_other_upper += thresholds[i];
    bool ok_to_stop = kth_lower >= max_other_upper;  // unseen docs ruled out
    if (ok_to_stop) {
      for (const auto& [doc, c] : cand) {
        if (std::make_pair(-c.lower, doc) <= kth) continue;  // in the top n
        double upper = c.lower;
        for (size_t i = 0; i < m; ++i) {
          if (!(c.seen_mask & (1ULL << i))) upper += thresholds[i];
        }
        CostTicker::TickCompare();
        if (upper > kth_lower) {
          ok_to_stop = false;
          break;
        }
      }
    }
    if (ok_to_stop) {
      result.stats.stopped_early = true;
      done = true;
    }
  }

  accumulate_span.reset();

  // Emit the n best by lower bound (exact set per NRA guarantee).
  BestN best(n);
  result.stats.candidates = static_cast<int64_t>(cand.size());
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    for (const auto& [doc, c] : cand) best.Offer(ScoredDoc{doc, c.lower});
    result.items = best.TakeSortedDesc();
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

// ---------------------------------------------------------------------------
// InvertedFile adapters
// ---------------------------------------------------------------------------

Result<TopNResult> FaginTA(const InvertedFile& file, const ScoringModel& model,
                           const Query& query, size_t n,
                           const FaginOptions& options) {
  return FaginTA(InMemoryPostingSource(&file), model, query, n, options);
}

Result<TopNResult> FaginFA(const InvertedFile& file, const ScoringModel& model,
                           const Query& query, size_t n,
                           const FaginOptions& options) {
  return FaginFA(InMemoryPostingSource(&file), model, query, n, options);
}

Result<TopNResult> FaginNRA(const InvertedFile& file,
                            const ScoringModel& model, const Query& query,
                            size_t n, const FaginOptions& options) {
  return FaginNRA(InMemoryPostingSource(&file), model, query, n, options);
}

}  // namespace moa
