#include "topn/fragment_topn.h"

#include <algorithm>
#include <unordered_set>

#include "obs/query_trace.h"

namespace moa {
namespace {

/// Accumulates postings of `terms` into `acc`, ticking seq + score.
/// Cursor-based, so the same pass runs over the in-memory file, a mmap
/// segment or a catalog snapshot (tombstones already filtered).
void AccumulateTerms(const PostingSource& source, const ScoringModel& model,
                     const std::vector<TermId>& terms,
                     std::vector<double>* acc) {
  for (TermId t : terms) {
    for (auto cursor = source.OpenCursor(t); !cursor->at_end();
         cursor->next()) {
      CostTicker::TickSeq();
      CostTicker::TickScore();
      const Posting p{cursor->doc(), cursor->tf()};
      (*acc)[p.doc] += model.Weight(t, p);
    }
  }
}

/// Bounded heap selection of the best n from a dense score array.
std::vector<ScoredDoc> HeapSelect(const std::vector<double>& acc, size_t n) {
  auto weakest_first = [](const ScoredDoc& a, const ScoredDoc& b) {
    CostTicker::TickCompare();
    return ScoredDocLess(a, b);
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(n);
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] <= 0.0) continue;
    const ScoredDoc sd{d, acc[d]};
    if (heap.size() < n) {
      heap.push_back(sd);
      std::push_heap(heap.begin(), heap.end(), weakest_first);
    } else if (n > 0 && ScoredDocLess(sd, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), weakest_first);
      heap.back() = sd;
      std::push_heap(heap.begin(), heap.end(), weakest_first);
    }
  }
  // sort_heap under this comparator leaves the best element first.
  std::sort_heap(heap.begin(), heap.end(), weakest_first);
  return heap;
}

/// Splits query terms by fragment.
void SplitQuery(const Fragmentation& frag, const Query& query,
                std::vector<TermId>* small_terms,
                std::vector<TermId>* large_terms) {
  for (TermId t : query.terms) {
    if (frag.in_small(t)) {
      small_terms->push_back(t);
    } else {
      large_terms->push_back(t);
    }
  }
}

int64_t CountCandidates(const std::vector<double>& acc) {
  int64_t c = 0;
  for (double s : acc) c += (s > 0.0) ? 1 : 0;
  return c;
}

}  // namespace

TopNResult SmallFragmentTopN(const PostingSource& source,
                             const Fragmentation& frag,
                             const ScoringModel& model, const Query& query,
                             size_t n) {
  TopNResult result;
  CostScope scope;
  std::vector<TermId> small_terms, large_terms;
  SplitQuery(frag, query, &small_terms, &large_terms);

  std::vector<double> acc(source.num_docs(), 0.0);
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    AccumulateTerms(source, model, small_terms, &acc);
  }
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    result.items = HeapSelect(acc, n);
  }
  result.stats.candidates = CountCandidates(acc);
  result.stats.stopped_early = !large_terms.empty();
  result.stats.cost = scope.Snapshot();
  return result;
}

TopNResult SmallFragmentTopN(const InvertedFile& file,
                             const Fragmentation& frag,
                             const ScoringModel& model, const Query& query,
                             size_t n) {
  return SmallFragmentTopN(InMemoryPostingSource(&file), frag, model, query,
                           n);
}

Result<TopNResult> QualitySwitchTopN(const PostingSource& source,
                                     const Fragmentation& frag,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const QualitySwitchOptions& options) {
  if (options.switch_threshold < 0.0) {
    return Status::InvalidArgument("switch_threshold must be >= 0");
  }
  TopNResult result;
  CostScope scope;
  std::vector<TermId> small_terms, large_terms;
  SplitQuery(frag, query, &small_terms, &large_terms);

  // Phase 1: cheap small-fragment pass. The whole small-pass + optional
  // large-fragment completion is one accumulate span — the quality check
  // in between is part of deciding how much accumulation to do.
  std::vector<double> acc(source.num_docs(), 0.0);
  bool process_large = false;
  {
  obs::TraceSpan accumulate_span(obs::kStageAccumulate);
  AccumulateTerms(source, model, small_terms, &acc);

  if (!large_terms.empty() && options.mode != LargeFragmentMode::kSkip) {
    // Early quality check: can the large fragment still change the top n?
    // Upper bound of its contribution to any single document:
    double potential = 0.0;
    for (TermId t : large_terms) {
      if (source.DocFrequency(t) == 0) continue;
      if (!source.HasImpacts(t)) {
        return Status::FailedPrecondition(
            "QualitySwitchTopN requires impact orders for upper bounds");
      }
      potential += source.MaxImpact(t);
    }
    // Current n-th best from the small fragment alone.
    std::vector<ScoredDoc> tentative = HeapSelect(acc, n);
    const double nth =
        tentative.size() >= n && n > 0 ? tentative.back().score : 0.0;
    process_large = potential > options.switch_threshold * nth;
  }

  if (process_large) {
    result.stats.used_large_fragment = true;
    switch (options.mode) {
      case LargeFragmentMode::kSkip:
        break;  // unreachable (guarded above)
      case LargeFragmentMode::kFullScan:
        AccumulateTerms(source, model, large_terms, &acc);
        break;
      case LargeFragmentMode::kSparseProbe: {
        // Candidate pool: the best small-fragment accumulations plus, per
        // large-fragment term, the champions from its impact-order prefix
        // (so documents carried purely by frequent terms are reachable).
        const size_t pool_size =
            options.candidate_pool > 0 ? options.candidate_pool : 4 * n;
        const size_t champions =
            options.champions > 0 ? options.champions : 4 * n;
        std::vector<ScoredDoc> pool = HeapSelect(acc, pool_size);
        std::unordered_set<DocId> pooled;
        for (const ScoredDoc& sd : pool) pooled.insert(sd.doc);
        for (TermId t : large_terms) {
          // DocFrequency may overstate the actual list (a sharded view
          // reports global df over a shard-local list), so the cursor's
          // own end is the authoritative stop.
          const size_t k =
              std::min<size_t>(champions, source.DocFrequency(t));
          auto impact = source.OpenImpactCursor(t, model);
          for (size_t i = 0; i < k && !impact->at_end(); ++i, impact->next()) {
            CostTicker::TickSeq();
            const DocId d = impact->doc();
            if (pooled.insert(d).second) pool.push_back(ScoredDoc{d, acc[d]});
          }
        }
        // Zero-copy fast path: when the source adapts an in-memory file,
        // the sparse index borrows the existing list instead of
        // materializing a per-query copy through the cursor.
        const auto* in_memory =
            dynamic_cast<const InMemoryPostingSource*>(&source);
        for (TermId t : large_terms) {
          if (source.DocFrequency(t) == 0) continue;
          const PostingList* borrowed =
              in_memory != nullptr ? &in_memory->file()->list(t) : nullptr;
          const SparseIndex* index = nullptr;
          PostingList local_list;
          SparseIndex local;
          if (options.sparse_cache != nullptr) {
            index = borrowed != nullptr
                        ? options.sparse_cache->GetOrBuild(
                              t, *borrowed, options.sparse_block)
                        : options.sparse_cache->GetOrBuild(
                              t, source, options.sparse_block);
          } else if (borrowed != nullptr) {
            local = SparseIndex(borrowed, options.sparse_block);
            index = &local;
          } else {
            for (auto cursor = source.OpenCursor(t); !cursor->at_end();
                 cursor->next()) {
              local_list.Append(cursor->doc(), cursor->tf());
            }
            local = SparseIndex(&local_list, options.sparse_block);
            index = &local;
          }
          for (const ScoredDoc& sd : pool) {
            ++result.stats.random_accesses;
            auto tf = index->Probe(sd.doc);
            if (tf.has_value()) {
              CostTicker::TickScore();
              acc[sd.doc] += model.Weight(t, Posting{sd.doc, *tf});
            }
          }
        }
        break;
      }
    }
  }
  }  // accumulate span

  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    result.items = HeapSelect(acc, n);
  }
  result.stats.candidates = CountCandidates(acc);
  result.stats.stopped_early = !large_terms.empty() && !process_large;
  result.stats.cost = scope.Snapshot();
  return result;
}

Result<TopNResult> QualitySwitchTopN(const InvertedFile& file,
                                     const Fragmentation& frag,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const QualitySwitchOptions& options) {
  return QualitySwitchTopN(InMemoryPostingSource(&file), frag, model, query,
                           n, options);
}

}  // namespace moa
