// Carey–Kossmann STOP AFTER processing ("Reducing the Braking Distance of
// an SQL Query Engine", VLDB'98), adapted to the MM ranking pipeline.
//
// The ranking query is  SELECT doc, score(doc) ORDER BY score DESC STOP
// AFTER n. Two placements of the stop operator:
//   Conservative — stop above the sort: all candidates are materialized,
//     the sort is replaced by a bounded sort-stop. Always one pass; safe.
//   Aggressive — a cutoff predicate derived from a score-sample estimate is
//     pushed below the sort, discarding most candidates before they are
//     materialized. If fewer than n survive, the plan *restarts* with a
//     relaxed cutoff (the braking-distance risk the paper alludes to).
#ifndef MOA_TOPN_STOP_AFTER_H_
#define MOA_TOPN_STOP_AFTER_H_

#include "ir/query_gen.h"
#include "storage/segment/posting_cursor.h"
#include "topn/topn_result.h"

namespace moa {

/// Placement of the stop operator.
enum class StopAfterPolicy { kConservative, kAggressive };

/// \brief Tuning for StopAfterTopN.
struct StopAfterOptions {
  StopAfterPolicy policy = StopAfterPolicy::kConservative;
  /// Sample size used to estimate the aggressive cutoff.
  size_t sample_size = 512;
  /// Safety factor on the targeted survivor count (>1 lowers the cutoff,
  /// reducing restart risk at the price of more survivors).
  double safety = 1.5;
  /// Benchmark knob modelling cardinality mis-estimation: the estimated
  /// cutoff is multiplied by this (e.g. 1.3 = over-confident cutoff that
  /// provokes restarts). 1.0 = honest estimate.
  double estimate_bias = 1.0;
  /// Histogram resolution for the cutoff estimate.
  int histogram_buckets = 128;
  /// RNG seed for sampling.
  uint64_t seed = 0xC0FFEE;
};

/// Executes the ranking with a STOP AFTER n operator. Safe: restarts until
/// n results (or all candidates) are produced. The PostingSource overload
/// is the implementation (cursor-based scoring stage); the InvertedFile
/// overload adapts and delegates.
Result<TopNResult> StopAfterTopN(const PostingSource& source,
                                 const ScoringModel& model, const Query& query,
                                 size_t n, const StopAfterOptions& options);
Result<TopNResult> StopAfterTopN(const InvertedFile& file,
                                 const ScoringModel& model, const Query& query,
                                 size_t n, const StopAfterOptions& options);

}  // namespace moa

#endif  // MOA_TOPN_STOP_AFTER_H_
