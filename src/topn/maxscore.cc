#include "topn/maxscore.h"

#include <algorithm>
#include <unordered_map>

#include "obs/query_trace.h"
#include "topn/block_max.h"

namespace moa {

Result<TopNResult> MaxScoreTopN(const PostingSource& source,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options) {
  TopNResult result;
  CostScope scope;

  // Order terms by ascending document frequency: the most selective terms
  // build the accumulator set; the frequent terms mostly update it.
  std::vector<TermId> terms;
  {
    obs::TraceSpan span(obs::kStageCursorOpen);
    for (TermId t : query.terms) {
      if (source.DocFrequency(t) > 0) {
        if (!source.HasImpacts(t)) {
          return Status::FailedPrecondition(
              "MaxScoreTopN requires impact orders for max weights");
        }
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
      if (source.DocFrequency(a) != source.DocFrequency(b)) {
        return source.DocFrequency(a) < source.DocFrequency(b);
      }
      return a < b;
    });
  }

  // Accumulation with the classic non-strict engagement test by default
  // (the result is exact up to score ties; the shard coordinator opts
  // into strict + a seeded threshold); once pruning engages, the helper
  // probes block-max bounds instead of scanning the remaining lists.
  BlockMaxOptions bm;
  bm.n = n;
  bm.mode = options.mode;
  bm.accumulator_budget = options.accumulator_budget;
  bm.strict = options.strict;
  bm.initial_threshold = options.initial_threshold;
  BlockMaxOutcome outcome;
  std::unordered_map<DocId, double> acc;
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    acc = BlockMaxAccumulate(source, model, terms, bm, &outcome);
  }
  result.stats.stopped_early = outcome.stopped_early;

  // Final selection.
  result.stats.candidates = static_cast<int64_t>(acc.size());
  std::vector<ScoredDoc> docs;
  docs.reserve(acc.size());
  for (const auto& [d, s] : acc) docs.push_back(ScoredDoc{d, s});
  const size_t k = std::min(n, docs.size());
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    std::partial_sort(docs.begin(), docs.begin() + k, docs.end(),
                      [](const ScoredDoc& a, const ScoredDoc& b) {
                        CostTicker::TickCompare();
                        return ScoredDocLess(a, b);
                      });
  }
  docs.resize(k);
  result.items = std::move(docs);
  result.stats.cost = scope.Snapshot();
  return result;
}

Result<TopNResult> MaxScoreTopN(const InvertedFile& file,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options) {
  return MaxScoreTopN(InMemoryPostingSource(&file), model, query, n, options);
}

}  // namespace moa
