#include "topn/maxscore.h"

#include <algorithm>
#include <unordered_map>

namespace moa {

Result<TopNResult> MaxScoreTopN(const PostingSource& source,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options) {
  TopNResult result;
  CostScope scope;

  // Order terms by ascending document frequency: the most selective terms
  // build the accumulator set; the frequent terms mostly update it.
  std::vector<TermId> terms;
  for (TermId t : query.terms) {
    if (source.DocFrequency(t) > 0) {
      if (!source.HasImpacts(t)) {
        return Status::FailedPrecondition(
            "MaxScoreTopN requires impact orders for max weights");
      }
      terms.push_back(t);
    }
  }
  std::sort(terms.begin(), terms.end(), [&](TermId a, TermId b) {
    if (source.DocFrequency(a) != source.DocFrequency(b)) {
      return source.DocFrequency(a) < source.DocFrequency(b);
    }
    return a < b;
  });

  // Suffix sums of max weights: remaining[i] = max score obtainable from
  // terms[i..] alone.
  std::vector<double> remaining(terms.size() + 1, 0.0);
  for (size_t i = terms.size(); i-- > 0;) {
    remaining[i] = remaining[i + 1] + source.MaxImpact(terms[i]);
  }

  std::unordered_map<DocId, double> acc;
  bool inserting = true;

  // Cheap running lower bound for the n-th best score: exact tracking per
  // posting would need a heap per update; a periodically refreshed bound
  // is enough because a *lower* bound only delays (never unsoundly
  // triggers) pruning.
  double nth_lower = 0.0;
  auto refresh_nth = [&]() {
    if (acc.size() < n || n == 0) {
      nth_lower = 0.0;
      return;
    }
    std::vector<double> scores;
    scores.reserve(acc.size());
    for (const auto& [d, s] : acc) scores.push_back(s);
    std::nth_element(scores.begin(), scores.begin() + (n - 1), scores.end(),
                     std::greater<double>());
    nth_lower = scores[n - 1];
    CostTicker::TickCompare(static_cast<int64_t>(acc.size()));
  };

  for (size_t i = 0; i < terms.size(); ++i) {
    refresh_nth();
    if (n > 0 && acc.size() >= n && nth_lower >= remaining[i]) {
      // No unseen document can reach the top n anymore.
      if (options.mode == PruneMode::kQuit) {
        result.stats.stopped_early = true;
        break;
      }
      inserting = false;
    }
    const TermId t = terms[i];
    for (auto cursor = source.OpenCursor(t); !cursor->at_end();
         cursor->next()) {
      CostTicker::TickSeq();
      const Posting p{cursor->doc(), cursor->tf()};
      auto it = acc.find(p.doc);
      if (it != acc.end()) {
        CostTicker::TickScore();
        it->second += model.Weight(t, p);
      } else if (inserting &&
                 (options.accumulator_budget == 0 ||
                  acc.size() < options.accumulator_budget)) {
        CostTicker::TickScore();
        acc.emplace(p.doc, model.Weight(t, p));
      }
      // else: pruned — the posting is read but not scored.
    }
    if (!inserting && options.mode == PruneMode::kContinue) {
      result.stats.stopped_early = true;  // pruning engaged
    }
  }

  // Final selection.
  result.stats.candidates = static_cast<int64_t>(acc.size());
  std::vector<ScoredDoc> docs;
  docs.reserve(acc.size());
  for (const auto& [d, s] : acc) docs.push_back(ScoredDoc{d, s});
  const size_t k = std::min(n, docs.size());
  std::partial_sort(docs.begin(), docs.begin() + k, docs.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      CostTicker::TickCompare();
                      return ScoredDocLess(a, b);
                    });
  docs.resize(k);
  result.items = std::move(docs);
  result.stats.cost = scope.Snapshot();
  return result;
}

Result<TopNResult> MaxScoreTopN(const InvertedFile& file,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options) {
  return MaxScoreTopN(InMemoryPostingSource(&file), model, query, n, options);
}

}  // namespace moa
