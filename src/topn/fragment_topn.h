// The paper's Step-1 operators: fragment-restricted evaluation, the
// quality-check switch, and the sparse-index large-fragment probe.
//
//   SmallFragmentTopN   — "processing only a small portion of the data ...
//                          containing the 95% most interesting terms":
//                          evaluate only the query terms that live in the
//                          small fragment. Unsafe: documents whose score
//                          depends on frequent terms are mis-ranked.
//   QualitySwitchTopN   — "a check early in the query plan that is able to
//                          detect when the answer quality would be better
//                          when the other fragment would be used. This
//                          allows query processing to switch accordingly in
//                          time": after the small-fragment pass, an upper
//                          bound on the large fragment's possible score
//                          contribution decides whether to process it.
//   Large-fragment modes: full scan (safe), or probing a candidate pool
//                          through a non-dense index ("introduce a
//                          non-dense index ... allow for extra computations
//                          while still decreasing execution time").
#ifndef MOA_TOPN_FRAGMENT_TOPN_H_
#define MOA_TOPN_FRAGMENT_TOPN_H_

#include "ir/query_gen.h"
#include "storage/fragmentation.h"
#include "storage/sparse_index.h"
#include "storage/sparse_index_cache.h"
#include "topn/topn_result.h"

namespace moa {

/// How the large fragment is processed when the quality check fires.
enum class LargeFragmentMode {
  /// Never touch the large fragment (degenerates to SmallFragmentTopN).
  kSkip,
  /// Scan all large-fragment postings of the query (safe).
  kFullScan,
  /// Probe a bounded candidate pool through per-term sparse indexes:
  /// cheaper than a scan, exact for pooled candidates, but documents
  /// containing *only* frequent query terms stay invisible.
  kSparseProbe,
};

/// \brief Tuning for QualitySwitchTopN.
struct QualitySwitchOptions {
  /// The large fragment is processed iff
  ///   (upper bound of its score contribution) > switch_threshold * (current
  ///   n-th best score).
  /// 0.0 = always process when any query term lives there (safest);
  /// large values = rarely process (approaches the unsafe variant).
  double switch_threshold = 0.0;
  LargeFragmentMode mode = LargeFragmentMode::kFullScan;
  /// Candidate pool size for kSparseProbe; 0 means 4 * n.
  size_t candidate_pool = 0;
  /// Champion candidates per large-fragment term for kSparseProbe: the
  /// first `champions` entries of the term's impact order join the pool, so
  /// documents whose score rests solely on frequent terms stay reachable.
  /// 0 means 4 * n.
  size_t champions = 0;
  /// Sparse-index block size for kSparseProbe.
  uint32_t sparse_block = 64;
  /// Optional cache of sparse indexes keyed by term (owned by the caller;
  /// built on demand when absent). Nullptr builds throw-away indexes. The
  /// cache is internally synchronized: concurrent queries may share one.
  SparseIndexCache* sparse_cache = nullptr;
};

// Both operators are cursor-based: the PostingSource overload is the
// single implementation (streaming scans via OpenCursor, champions via
// OpenImpactCursor, upper bounds via MaxImpact), so the same Step-1 code
// serves the in-memory file, a mmap segment and a catalog snapshot. The
// InvertedFile overloads adapt and delegate — bit-identical by
// construction.

/// Unsafe small-fragment-only evaluation.
TopNResult SmallFragmentTopN(const PostingSource& source,
                             const Fragmentation& frag,
                             const ScoringModel& model, const Query& query,
                             size_t n);
TopNResult SmallFragmentTopN(const InvertedFile& file,
                             const Fragmentation& frag,
                             const ScoringModel& model, const Query& query,
                             size_t n);

/// Small-fragment pass + quality check + optional large-fragment pass.
/// With mode=kFullScan and switch_threshold=0 the result is exact. Requires
/// impact metadata (for the per-term upper bounds) when the large fragment
/// contains query terms.
Result<TopNResult> QualitySwitchTopN(const PostingSource& source,
                                     const Fragmentation& frag,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const QualitySwitchOptions& options);
Result<TopNResult> QualitySwitchTopN(const InvertedFile& file,
                                     const Fragmentation& frag,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const QualitySwitchOptions& options);

}  // namespace moa

#endif  // MOA_TOPN_FRAGMENT_TOPN_H_
