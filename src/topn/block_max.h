// Shared block-max pruned accumulation: the term-at-a-time scoring core
// used by MaxScoreTopN and StopAfterTopN's scoring stage.
//
// The dense phase is the classic max-score scan (build/update accumulators
// until no unseen document can reach the top n). The refinement over the
// classic algorithm is the *pruned* phase: once accumulator creation
// stops, a term's remaining work is pure lookup, so instead of scanning
// the whole posting list the helper probes the cursor once per surviving
// accumulator — shallow_advance to the accumulator's doc, bound-check
//
//   acc[d] + block_max_impact() + remaining-terms bound  <  nth lower bound
//
// against the running n-th best score, and only deep-advance (decode) when
// the bound cannot rule the document out. Documents ruled out are dropped
// permanently: their ceiling is strictly below the running n-th best
// score, which never decreases, so they can never re-enter the top n.
// Over block-structured storage (MOAIF02/MOAIF03 segments) the shallow
// step is a block-directory walk and the payload of skipped blocks is
// never decoded.
//
// Exactness: every retained document's score is the same sum, added in
// the same term order, as the full dense scan would produce — the top-n
// answer is bit-identical over every storage backend (the parity suites
// enforce this). Abandonment only removes documents strictly below the
// final n-th score, so with `strict` engagement even the (score desc,
// doc asc) tie-broken ranking of the top n is preserved.
#ifndef MOA_TOPN_BLOCK_MAX_H_
#define MOA_TOPN_BLOCK_MAX_H_

#include <unordered_map>
#include <vector>

#include "ir/query_gen.h"
#include "ir/scoring.h"
#include "storage/segment/posting_cursor.h"
#include "topn/maxscore.h"

namespace moa {

/// \brief Tuning for BlockMaxAccumulate.
struct BlockMaxOptions {
  /// Result size the caller ultimately wants; 0 disables pruning.
  size_t n = 0;
  /// What happens when the bound engages (see PruneMode).
  PruneMode mode = PruneMode::kContinue;
  /// Hard cap on live accumulators (0 = unlimited); unsafe when it binds.
  size_t accumulator_budget = 0;
  /// Engage pruning only when the n-th best *strictly* exceeds the
  /// remaining-terms bound. Strict engagement guarantees every excluded
  /// document scores strictly below the final n-th score — callers that
  /// need the exact tie-broken ranking (StopAfterTopN, which is compared
  /// rank-for-rank against the exact baseline) use this; max-score keeps
  /// the classic non-strict test ("exact up to score ties").
  bool strict = false;
  /// Externally known lower bound on the n-th best score (0 = none): the
  /// distributed-max-score seed. The shard coordinator passes the running
  /// global n-th score of the already-merged shards, so this shard prunes
  /// against it from the first posting instead of waiting for n local
  /// accumulators. Any caller passing a nonzero threshold MUST also set
  /// `strict`: with the classic non-strict test an unseen document tying
  /// the threshold exactly could be dropped even though the global
  /// (score desc, doc asc) tie-break might admit it.
  double initial_threshold = 0.0;
};

/// \brief What the accumulation pass observed (for ExecStats).
struct BlockMaxOutcome {
  /// True when pruning engaged (kContinue) or evaluation stopped (kQuit).
  bool stopped_early = false;
};

/// Runs the pruned term-at-a-time accumulation over `terms` *in the given
/// order* (callers choose: df-ascending for max-score, query order for
/// stop-after's bit-identical dense equivalence) and returns the surviving
/// accumulators with their exact scores. Requires source.MaxImpact for
/// every term (callers must have checked HasImpacts).
std::unordered_map<DocId, double> BlockMaxAccumulate(
    const PostingSource& source, const ScoringModel& model,
    const std::vector<TermId>& terms, const BlockMaxOptions& options,
    BlockMaxOutcome* outcome);

}  // namespace moa

#endif  // MOA_TOPN_BLOCK_MAX_H_
