#include "topn/block_max.h"

#include <algorithm>
#include <functional>

#include "common/cost_ticker.h"

namespace moa {

std::unordered_map<DocId, double> BlockMaxAccumulate(
    const PostingSource& source, const ScoringModel& model,
    const std::vector<TermId>& terms, const BlockMaxOptions& options,
    BlockMaxOutcome* outcome) {
  const size_t n = options.n;

  // Suffix sums of max weights: remaining[i] = max score obtainable from
  // terms[i..] alone.
  std::vector<double> remaining(terms.size() + 1, 0.0);
  for (size_t i = terms.size(); i-- > 0;) {
    remaining[i] = remaining[i + 1] + source.MaxImpact(terms[i]);
  }

  std::unordered_map<DocId, double> acc;
  bool inserting = true;

  // Cheap running lower bound for the n-th best score: exact tracking per
  // posting would need a heap per update; a periodically refreshed bound
  // is enough because a *lower* bound only delays (never unsoundly
  // triggers) pruning or abandonment.
  // A caller-seeded threshold (distributed max-score) is itself a valid
  // lower bound before any local accumulator exists, and the local n-th
  // can only tighten it.
  double nth_lower = options.initial_threshold;
  auto refresh_nth = [&]() {
    if (acc.size() < n || n == 0) {
      nth_lower = options.initial_threshold;
      return;
    }
    std::vector<double> scores;
    scores.reserve(acc.size());
    for (const auto& [d, s] : acc) scores.push_back(s);
    std::nth_element(scores.begin(), scores.begin() + (n - 1), scores.end(),
                     std::greater<double>());
    nth_lower = std::max(scores[n - 1], options.initial_threshold);
    CostTicker::TickCompare(static_cast<int64_t>(acc.size()));
  };

  std::vector<DocId> probe_order;  // reused across pruned terms

  // Sequential scan of term t's whole list. `insert` distinguishes the
  // dense phase (unseen docs may open accumulators, budget permitting)
  // from the pruned update-scan (existing accumulators only). Consumes
  // the cursor's columnar per-block batch when it provides one — same
  // postings in the same order with identical tick accounting, minus
  // four virtual calls per posting; blockless and merged cursors take
  // the per-posting fallback.
  const auto scan_term = [&](TermId t, bool insert) {
    const auto cursor = source.OpenCursor(t);
    const auto step = [&](DocId d, uint32_t tf) {
      CostTicker::TickSeq();
      const Posting p{d, tf};
      auto it = acc.find(d);
      if (it != acc.end()) {
        CostTicker::TickScore();
        it->second += model.Weight(t, p);
      } else if (insert && (options.accumulator_budget == 0 ||
                            acc.size() < options.accumulator_budget)) {
        CostTicker::TickScore();
        acc.emplace(d, model.Weight(t, p));
      }
      // else: pruned phase or budget bound — read but not scored.
    };
    while (!cursor->at_end()) {
      const DocId* docs;
      const uint32_t* tfs;
      const size_t m = cursor->block_postings(&docs, &tfs);
      if (m == 0) {
        step(cursor->doc(), cursor->tf());
        cursor->next();
        continue;
      }
      for (size_t j = 0; j < m; ++j) step(docs[j], tfs[j]);
      cursor->shallow_advance(cursor->block_last_doc() + 1);
    }
  };

  for (size_t i = 0; i < terms.size(); ++i) {
    refresh_nth();
    // With a seeded threshold the n-accumulator precondition is already
    // met globally (n documents at or above the threshold exist on the
    // merged shards), so the bound may engage before — even without —
    // any local accumulator.
    if (n > 0 && (acc.size() >= n || options.initial_threshold > 0.0) &&
        (options.strict ? nth_lower > remaining[i]
                        : nth_lower >= remaining[i])) {
      // No unseen document can reach the top n anymore.
      if (options.mode == PruneMode::kQuit) {
        outcome->stopped_early = true;
        return acc;
      }
      if (inserting) {
        inserting = false;
        outcome->stopped_early = true;  // pruning engaged
      }
    }
    const TermId t = terms[i];

    if (inserting) {
      // Dense phase: full scan, building and updating accumulators.
      scan_term(t, /*insert=*/true);
      continue;
    }

    // Pruned phase: only existing accumulators can change. When the list
    // is shorter than the accumulator set, a sequential update scan
    // touches fewer cursor positions than per-accumulator probing would.
    const uint32_t df = source.DocFrequency(t);
    if (acc.size() >= df) {
      scan_term(t, /*insert=*/false);
      continue;
    }

    // Probe phase: visit accumulators in doc order so the cursor moves
    // strictly forward, shallow-stepping across the block directory.
    probe_order.clear();
    probe_order.reserve(acc.size());
    for (const auto& [d, s] : acc) probe_order.push_back(d);
    std::sort(probe_order.begin(), probe_order.end());
    CostTicker::TickCompare(static_cast<int64_t>(probe_order.size()));
    const auto cursor = source.OpenCursor(t);
    for (DocId d : probe_order) {
      cursor->shallow_advance(d);
      if (cursor->block_last_doc() == kEndDoc) break;  // term exhausted
      const auto it = acc.find(d);
      // Ceiling on d's final score: current sum, plus the block bound for
      // this term (an upper bound on Weight(t, d) whether or not d is in
      // the block), plus everything the unprocessed terms could add.
      const double ceiling =
          it->second + cursor->block_max_impact() + remaining[i + 1];
      CostTicker::TickCompare();
      if (ceiling < nth_lower) {
        // Strictly below a lower bound on the n-th best score, which only
        // grows from here: d can never re-enter the top n. Dropping it is
        // permanent — later terms skip (and never decode blocks for) it.
        acc.erase(it);
        continue;
      }
      CostTicker::TickRandom();
      cursor->advance_to(d);
      if (!cursor->at_end() && cursor->doc() == d) {
        CostTicker::TickScore();
        it->second += model.Weight(t, Posting{d, cursor->tf()});
      }
    }
  }
  return acc;
}

}  // namespace moa
