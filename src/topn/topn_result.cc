#include "topn/topn_result.h"

#include <sstream>

namespace moa {

std::string TopNStats::ToString() const {
  std::ostringstream os;
  os << "{cost=" << cost.ToString() << " sorted=" << sorted_accesses
     << " random=" << random_accesses << " cand=" << candidates
     << (stopped_early ? " early-stop" : "")
     << (restarts > 0 ? " restarts=" + std::to_string(restarts) : "")
     << (used_large_fragment ? " +large-frag" : "") << "}";
  return os.str();
}

}  // namespace moa
