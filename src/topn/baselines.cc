#include "topn/baselines.h"

#include <algorithm>

#include "ir/exact_eval.h"
#include "obs/query_trace.h"

namespace moa {
namespace {

/// Shared: bounded min-heap selection over a dense score array.
std::vector<ScoredDoc> HeapSelect(const std::vector<double>& acc, size_t n) {
  auto weakest_first = [](const ScoredDoc& a, const ScoredDoc& b) {
    CostTicker::TickCompare();
    return ScoredDocLess(a, b);  // heap top = weakest under this comparator
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(n);
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] <= 0.0) continue;
    const ScoredDoc sd{d, acc[d]};
    if (heap.size() < n) {
      heap.push_back(sd);
      std::push_heap(heap.begin(), heap.end(), weakest_first);
    } else if (n > 0 && ScoredDocLess(sd, heap.front())) {
      CostTicker::TickCompare();
      std::pop_heap(heap.begin(), heap.end(), weakest_first);
      heap.back() = sd;
      std::push_heap(heap.begin(), heap.end(), weakest_first);
    }
  }
  // sort_heap under this comparator leaves the best (ScoredDocLess-least)
  // element first — exactly the output order.
  std::sort_heap(heap.begin(), heap.end(), weakest_first);
  return heap;
}

}  // namespace

TopNResult FullSortTopN(const PostingSource& source, const ScoringModel& model,
                        const Query& query, size_t n) {
  TopNResult result;
  CostScope scope;
  std::vector<double> acc;
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    acc = AccumulateScores(source, model, query);
  }
  std::vector<ScoredDoc> docs;
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0) docs.push_back(ScoredDoc{d, acc[d]});
  }
  result.stats.candidates = static_cast<int64_t>(docs.size());
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    std::sort(docs.begin(), docs.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                CostTicker::TickCompare();
                return ScoredDocLess(a, b);
              });
  }
  if (docs.size() > n) docs.resize(n);
  result.items = std::move(docs);
  result.stats.cost = scope.Snapshot();
  return result;
}

TopNResult HeapTopN(const PostingSource& source, const ScoringModel& model,
                    const Query& query, size_t n) {
  TopNResult result;
  CostScope scope;
  std::vector<double> acc;
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    acc = AccumulateScores(source, model, query);
  }
  {
    obs::TraceSpan span(obs::kStageHeapMerge);
    result.items = HeapSelect(acc, n);
  }
  int64_t candidates = 0;
  for (double s : acc) candidates += (s > 0.0) ? 1 : 0;
  result.stats.candidates = candidates;
  result.stats.cost = scope.Snapshot();
  return result;
}

TopNResult FullSortTopN(const InvertedFile& file, const ScoringModel& model,
                        const Query& query, size_t n) {
  return FullSortTopN(InMemoryPostingSource(&file), model, query, n);
}

TopNResult HeapTopN(const InvertedFile& file, const ScoringModel& model,
                    const Query& query, size_t n) {
  return HeapTopN(InMemoryPostingSource(&file), model, query, n);
}

}  // namespace moa
