// Fagin-family top-N algorithms (FM, Fag98, Fag99): FA, TA and NRA.
//
// The query is viewed as m "lists", one per query term, each supporting
//   sorted access:  postings by descending per-term weight (impact order)
//   random access:  weight of a given document in the list (0 if absent)
// Scores aggregate monotonically (sum), so upper/lower bound administration
// lets processing stop "as soon as it is certain that the required top N
// answers have been computed" (paper, State of the Art).
//
// Adaptation to sparse IR lists (documented in DESIGN.md): a document absent
// from a list contributes weight 0; a list that is exhausted has sorted-
// access threshold 0. FA's phase-1 target ("n objects seen in *all* lists")
// therefore also terminates when any list is exhausted.
//
// Safety: FA and TA return the exact top-N ranking, and both compose each
// document's score in accessor (query-term) order, so reported scores are
// a deterministic function of the document alone — bit-identical across
// physical partitionings of the document space (the sharded parity suites
// rely on this). NRA returns the exact top-N *set*; reported scores are
// lower bounds accumulated in drain order, so the order within the set may
// differ from the exact order when bounds tie (classical NRA semantics)
// and the reported scores are not partition-independent.
#ifndef MOA_TOPN_FAGIN_H_
#define MOA_TOPN_FAGIN_H_

#include "ir/query_gen.h"
#include "storage/segment/posting_cursor.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief Tuning knobs shared by the Fagin family.
struct FaginOptions {
  /// NRA evaluates its stop condition every `check_every` sorted accesses
  /// (checking after every access is quadratic in the candidate count).
  int64_t check_every = 256;
};

// All three algorithms consume sorted access through
// PostingSource::OpenImpactCursor and random access through
// PostingSource::FindTf, so the same implementation serves the in-memory
// file (materialized impact order), a compressed mmap segment (lazy
// fragment-directory decode) and a catalog snapshot (live postings). The
// PostingSource overload is the implementation; the InvertedFile overload
// adapts and delegates — bit-identical by construction. All require
// impact metadata (HasImpacts) on every non-empty query-term list.

/// Fagin's original algorithm (FA): sorted phase until n documents have
/// been seen in every list, then random-access completion of all seen
/// documents.
Result<TopNResult> FaginFA(const PostingSource& source,
                           const ScoringModel& model, const Query& query,
                           size_t n, const FaginOptions& options = {});
Result<TopNResult> FaginFA(const InvertedFile& file, const ScoringModel& model,
                           const Query& query, size_t n,
                           const FaginOptions& options = {});

/// Threshold Algorithm (TA): round-robin sorted access with immediate
/// random-access completion; stops when the n-th best score reaches the
/// threshold (sum of the last weights seen per list).
Result<TopNResult> FaginTA(const PostingSource& source,
                           const ScoringModel& model, const Query& query,
                           size_t n, const FaginOptions& options = {});
Result<TopNResult> FaginTA(const InvertedFile& file, const ScoringModel& model,
                           const Query& query, size_t n,
                           const FaginOptions& options = {});

/// No-Random-Access algorithm (NRA): sorted access only, with per-document
/// [lower, upper] score bounds; stops when the n-th best lower bound is at
/// least every other candidate's upper bound.
Result<TopNResult> FaginNRA(const PostingSource& source,
                            const ScoringModel& model, const Query& query,
                            size_t n, const FaginOptions& options = {});
Result<TopNResult> FaginNRA(const InvertedFile& file,
                            const ScoringModel& model, const Query& query,
                            size_t n, const FaginOptions& options = {});

}  // namespace moa

#endif  // MOA_TOPN_FAGIN_H_
