// IR-side pruning strategies of the era the paper builds on (Brown's
// execution-performance work [Bro95] over INQUERY, and the Moffat–Zobel
// quit/continue accumulator strategies): term-at-a-time evaluation with
// max-score upper-bound administration.
//
// Terms are processed from most to least selective (ascending document
// frequency). After the i-th term, `remaining` = sum of the max weights of
// the unprocessed terms is an upper bound on what any not-yet-seen
// document can still score. Once the current n-th best lower bound reaches
// `remaining`:
//   kContinue — stop *creating* accumulators but keep updating existing
//               ones (safe: the top-N set is exact up to score ties);
//   kQuit     — stop processing entirely (unsafe: existing accumulators
//               keep partial scores; quality degrades gracefully).
// An optional accumulator budget caps memory like Moffat–Zobel's target
// accumulator counts (unsafe when it binds).
#ifndef MOA_TOPN_MAXSCORE_H_
#define MOA_TOPN_MAXSCORE_H_

#include "ir/query_gen.h"
#include "storage/segment/posting_cursor.h"
#include "topn/topn_result.h"

namespace moa {

/// What happens when the bound says new documents cannot enter the top N.
enum class PruneMode {
  kContinue,  ///< safe: no new accumulators, existing ones stay exact
  kQuit,      ///< unsafe: stop evaluating remaining terms altogether
};

/// \brief Tuning for MaxScoreTopN.
struct MaxScoreOptions {
  PruneMode mode = PruneMode::kContinue;
  /// Hard cap on live accumulators (0 = unlimited). When it binds the
  /// result may be approximate even in kContinue mode.
  size_t accumulator_budget = 0;
  /// Strict bound engagement (see BlockMaxOptions::strict): excluded
  /// documents score strictly below the final n-th score, preserving the
  /// exact (score desc, doc asc) ranking. Default keeps the classic
  /// non-strict test.
  bool strict = false;
  /// Externally known lower bound on the n-th best score (0 = none) — the
  /// distributed-max-score seed from the shard coordinator. Callers
  /// passing a nonzero threshold must set `strict` (see
  /// BlockMaxOptions::initial_threshold for why).
  double initial_threshold = 0.0;
};

/// Term-at-a-time evaluation with max-score pruning. Requires impact
/// bounds (PostingSource::HasImpacts: in-memory impact orders, or stored
/// per-term max impacts of a segment). The PostingSource overload is the
/// implementation; the InvertedFile overload adapts and delegates.
Result<TopNResult> MaxScoreTopN(const PostingSource& source,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options = {});
Result<TopNResult> MaxScoreTopN(const InvertedFile& file,
                                const ScoringModel& model, const Query& query,
                                size_t n, const MaxScoreOptions& options = {});

}  // namespace moa

#endif  // MOA_TOPN_MAXSCORE_H_
