// Common result/statistics types for all physical top-N operators.
#ifndef MOA_TOPN_TOPN_RESULT_H_
#define MOA_TOPN_TOPN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "ir/scoring.h"

namespace moa {

/// \brief Execution statistics one top-N operator reports.
struct TopNStats {
  /// Work counters captured around the operator (CostScope delta).
  CostCounters cost;
  /// Sorted (impact-ordered) accesses performed (Fagin family).
  int64_t sorted_accesses = 0;
  /// Random accesses performed (Fagin TA, sparse-index probes).
  int64_t random_accesses = 0;
  /// Distinct candidate documents considered.
  int64_t candidates = 0;
  /// True if the operator stopped before exhausting its input.
  bool stopped_early = false;
  /// Restarts performed (aggressive stop-after / probabilistic cutoff).
  int restarts = 0;
  /// True if the large fragment was (partially) processed.
  bool used_large_fragment = false;

  std::string ToString() const;
};

/// \brief Ranked answer plus how much work it took.
struct TopNResult {
  /// Best-first; ties broken by ascending doc id (ScoredDocLess).
  std::vector<ScoredDoc> items;
  TopNStats stats;
};

}  // namespace moa

#endif  // MOA_TOPN_TOPN_RESULT_H_
