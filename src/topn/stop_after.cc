#include "topn/stop_after.h"

#include <algorithm>
#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"
#include "ir/exact_eval.h"
#include "obs/query_trace.h"
#include "topn/block_max.h"

namespace moa {
namespace {

/// Bounded sort-stop over an explicit candidate buffer.
std::vector<ScoredDoc> SortStop(std::vector<ScoredDoc> docs, size_t n) {
  const size_t k = std::min(n, docs.size());
  std::partial_sort(docs.begin(), docs.begin() + k, docs.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      CostTicker::TickCompare();
                      return ScoredDocLess(a, b);
                    });
  docs.resize(k);
  return docs;
}

}  // namespace

Result<TopNResult> StopAfterTopN(const PostingSource& source,
                                 const ScoringModel& model, const Query& query,
                                 size_t n, const StopAfterOptions& options) {
  if (options.safety <= 0.0) {
    return Status::InvalidArgument("safety must be > 0");
  }
  TopNResult result;
  CostScope scope;

  // Scoring stage (common to both placements): accumulation over the query
  // terms in query order. When the source carries impact bounds, the
  // block-max helper prunes with *strict* engagement — every document it
  // drops scores strictly below the final n-th score, so the tie-broken
  // top n (and hence both placements' answers) is bit-identical to the
  // dense scan; only the sub-n candidate pool shrinks. Without bounds
  // (or with n == 0) it falls back to the dense scan.
  std::vector<TermId> terms;
  bool can_prune = n > 0;
  for (TermId t : query.terms) {
    if (source.DocFrequency(t) == 0) continue;
    if (!source.HasImpacts(t)) {
      can_prune = false;
      break;
    }
    terms.push_back(t);
  }

  std::vector<ScoredDoc> candidates;  // positive-score docs, doc ascending
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    if (can_prune) {
      BlockMaxOptions bm;
      bm.n = n;
      bm.mode = PruneMode::kContinue;
      bm.strict = true;
      BlockMaxOutcome outcome;
      const std::unordered_map<DocId, double> acc =
          BlockMaxAccumulate(source, model, terms, bm, &outcome);
      candidates.reserve(acc.size());
      for (const auto& [d, s] : acc) {
        if (s > 0.0) candidates.push_back(ScoredDoc{d, s});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const ScoredDoc& a, const ScoredDoc& b) {
                  return a.doc < b.doc;
                });
    } else {
      const std::vector<double> acc = AccumulateScores(source, model, query);
      for (DocId d = 0; d < acc.size(); ++d) {
        if (acc[d] > 0.0) candidates.push_back(ScoredDoc{d, acc[d]});
      }
    }
  }
  result.stats.candidates = static_cast<int64_t>(candidates.size());

  // Everything below is stop-after selection work (materialize + sort-stop
  // or sample + cutoff scan): one heap_merge span per return path.
  if (options.policy == StopAfterPolicy::kConservative) {
    // Materialize everything, bounded sort-stop above.
    {
      obs::TraceSpan span(obs::kStageHeapMerge);
      std::vector<ScoredDoc> buffer;
      buffer.reserve(candidates.size());
      for (const ScoredDoc& c : candidates) {
        CostTicker::TickBytes(16);
        buffer.push_back(c);
      }
      result.items = SortStop(std::move(buffer), n);
    }
    result.stats.cost = scope.Snapshot();
    return result;
  }

  // Aggressive: estimate a score cutoff from a sample, push the predicate
  // below materialization, restart with a relaxed cutoff on underflow.
  obs::TraceSpan select_span(obs::kStageHeapMerge);
  Rng rng(options.seed);
  const size_t sample_size =
      std::min(options.sample_size, candidates.size());
  std::vector<double> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    CostTicker::TickRandom();
    sample.push_back(candidates[rng.Uniform(candidates.size())].score);
  }

  double cutoff = 0.0;
  if (!sample.empty() && !candidates.empty()) {
    Histogram hist = Histogram::FromData(sample, options.histogram_buckets);
    // Want ~n * safety survivors out of |candidates|; scale to sample scale.
    const double frac = static_cast<double>(sample.size()) /
                        static_cast<double>(candidates.size());
    const int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(static_cast<double>(n) *
                                          options.safety * frac)));
    cutoff = hist.ValueWithCountAbove(target) * options.estimate_bias;
  }

  for (;;) {
    std::vector<ScoredDoc> survivors;
    for (const ScoredDoc& c : candidates) {
      CostTicker::TickCompare();
      if (c.score >= cutoff) {
        CostTicker::TickBytes(16);
        survivors.push_back(c);
      }
    }
    if (survivors.size() >= std::min(n, candidates.size())) {
      result.stats.stopped_early = survivors.size() < candidates.size();
      result.items = SortStop(std::move(survivors), n);
      break;
    }
    // Underflow: braking distance exceeded. Relax and restart.
    ++result.stats.restarts;
    if (cutoff <= 0.0) {
      // Cannot relax further; take what exists.
      result.items = SortStop(std::move(survivors), n);
      break;
    }
    cutoff = (result.stats.restarts >= 3) ? 0.0 : cutoff * 0.5;
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

Result<TopNResult> StopAfterTopN(const InvertedFile& file,
                                 const ScoringModel& model, const Query& query,
                                 size_t n, const StopAfterOptions& options) {
  return StopAfterTopN(InMemoryPostingSource(&file), model, query, n, options);
}

}  // namespace moa
