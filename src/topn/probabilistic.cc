#include "topn/probabilistic.h"

#include <algorithm>
#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"
#include "ir/exact_eval.h"
#include "obs/query_trace.h"

namespace moa {

double InverseNormalCdf(double p) {
  // Peter Acklam's approximation; |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  if (p <= 0.0) return -1e9;
  if (p >= 1.0) return 1e9;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

Result<TopNResult> ProbabilisticTopN(const PostingSource& source,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const ProbabilisticOptions& options) {
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  TopNResult result;
  CostScope scope;

  std::vector<double> acc;
  {
    obs::TraceSpan span(obs::kStageAccumulate);
    acc = AccumulateScores(source, model, query);
  }
  std::vector<DocId> candidates;
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0) candidates.push_back(d);
  }
  result.stats.candidates = static_cast<int64_t>(candidates.size());

  // Sample + cutoff selection: the rest is one heap_merge span.
  obs::TraceSpan select_span(obs::kStageHeapMerge);
  Rng rng(options.seed);
  const size_t sample_size = std::min(options.sample_size, candidates.size());
  std::vector<double> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    const DocId d = candidates[rng.Uniform(candidates.size())];
    CostTicker::TickRandom();
    sample.push_back(acc[d]);
  }

  double cutoff = 0.0;
  if (!sample.empty() && !candidates.empty()) {
    Histogram hist = Histogram::FromData(sample, options.histogram_buckets);
    // Target survivor count with confidence slack: n + z * sqrt(n).
    const double z = InverseNormalCdf(options.confidence);
    const double target_pop =
        static_cast<double>(n) + z * std::sqrt(static_cast<double>(n));
    const double frac = static_cast<double>(sample.size()) /
                        static_cast<double>(candidates.size());
    const int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(target_pop * frac)));
    cutoff = hist.ValueWithCountAbove(target);
  }

  for (;;) {
    std::vector<ScoredDoc> survivors;
    for (DocId d : candidates) {
      CostTicker::TickCompare();
      if (acc[d] >= cutoff) {
        CostTicker::TickBytes(16);
        survivors.push_back(ScoredDoc{d, acc[d]});
      }
    }
    if (survivors.size() >= std::min(n, candidates.size())) {
      result.stats.stopped_early = survivors.size() < candidates.size();
      const size_t k = std::min(n, survivors.size());
      std::partial_sort(survivors.begin(), survivors.begin() + k,
                        survivors.end(),
                        [](const ScoredDoc& a, const ScoredDoc& b) {
                          CostTicker::TickCompare();
                          return ScoredDocLess(a, b);
                        });
      survivors.resize(k);
      result.items = std::move(survivors);
      break;
    }
    ++result.stats.restarts;
    if (cutoff <= 0.0) {
      const size_t k = std::min(n, survivors.size());
      std::partial_sort(survivors.begin(), survivors.begin() + k,
                        survivors.end(),
                        [](const ScoredDoc& a, const ScoredDoc& b) {
                          return ScoredDocLess(a, b);
                        });
      survivors.resize(k);
      result.items = std::move(survivors);
      break;
    }
    cutoff = (result.stats.restarts >= 3) ? 0.0 : cutoff * 0.5;
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

Result<TopNResult> ProbabilisticTopN(const InvertedFile& file,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const ProbabilisticOptions& options) {
  return ProbabilisticTopN(InMemoryPostingSource(&file), model, query, n,
                           options);
}

}  // namespace moa
