// Donjerkovic–Ramakrishnan probabilistic top-N optimization (TR-99-1395).
//
// Instead of a fixed safety factor, the cutoff is chosen from an estimated
// score distribution so that the probability of an underflow (< n results,
// forcing a restart) stays below 1 - confidence. The cutoff approximates
//   P(#docs with score >= cutoff  >=  n) >= confidence
// via a normal approximation on the sample-estimated count: target count
// n + z_confidence * sqrt(n).
#ifndef MOA_TOPN_PROBABILISTIC_H_
#define MOA_TOPN_PROBABILISTIC_H_

#include "ir/query_gen.h"
#include "storage/segment/posting_cursor.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief Tuning for ProbabilisticTopN.
struct ProbabilisticOptions {
  /// Desired probability that the first pass already yields >= n survivors.
  double confidence = 0.95;
  /// Sample size for the score-distribution estimate.
  size_t sample_size = 512;
  /// Histogram resolution.
  int histogram_buckets = 128;
  /// RNG seed for sampling.
  uint64_t seed = 0xBADCAB;
};

/// Probabilistic cutoff execution; safe via restart (halving the cutoff,
/// falling back to 0 after 3 restarts). The PostingSource overload is the
/// implementation (dense accumulation through cursors, so it runs over
/// the in-memory file, a mmap segment or a catalog snapshot); the
/// InvertedFile overload adapts and delegates — bit-identical.
Result<TopNResult> ProbabilisticTopN(const PostingSource& source,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const ProbabilisticOptions& options);
Result<TopNResult> ProbabilisticTopN(const InvertedFile& file,
                                     const ScoringModel& model,
                                     const Query& query, size_t n,
                                     const ProbabilisticOptions& options);

/// Inverse standard normal CDF (Acklam's rational approximation); exposed
/// for tests.
double InverseNormalCdf(double p);

}  // namespace moa

#endif  // MOA_TOPN_PROBABILISTIC_H_
