// Baseline top-N strategies: the "unoptimized case" and the element-at-a-
// time bounded heap (what a custom IR system like INQUERY would do).
#ifndef MOA_TOPN_BASELINES_H_
#define MOA_TOPN_BASELINES_H_

#include "ir/query_gen.h"
#include "storage/segment/posting_cursor.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief Unoptimized execution: accumulate every posting of every query
/// term, materialize all matching documents, full sort, cut at n. Safe.
///
/// This is the paper's reference point: "the unoptimized case". The
/// PostingSource overload is the implementation (representation-agnostic
/// via cursors); the InvertedFile overload adapts and delegates.
TopNResult FullSortTopN(const PostingSource& source, const ScoringModel& model,
                        const Query& query, size_t n);
TopNResult FullSortTopN(const InvertedFile& file, const ScoringModel& model,
                        const Query& query, size_t n);

/// \brief Accumulate all postings but keep only a bounded min-heap of the
/// current best n while scanning candidates. Safe; saves the full sort
/// (O(D log n) instead of O(D log D)).
TopNResult HeapTopN(const PostingSource& source, const ScoringModel& model,
                    const Query& query, size_t n);
TopNResult HeapTopN(const InvertedFile& file, const ScoringModel& model,
                    const Query& query, size_t n);

}  // namespace moa

#endif  // MOA_TOPN_BASELINES_H_
