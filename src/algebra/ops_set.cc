// SET extension: duplicate-free unordered collections, canonically stored
// sorted so that union/intersect/difference run as linear merges.
#include <algorithm>

#include "algebra/extension.h"
#include "algebra/ops_common.h"
#include "common/cost_ticker.h"

namespace moa {
namespace {

using ops::ExpectArity;
using ops::ExpectKind;
using ops::ExpectNumeric;

bool ValueLess(const Value& a, const Value& b) {
  return Value::Compare(a, b) < 0;
}

/// make(coll): SET from any collection (dedup + canonicalize).
Result<Value> SetMake(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.make", args, 1));
  if (!args[0].is_collection()) {
    return Status::InvalidArgument("SET.make: argument must be a collection");
  }
  ValueVec elems = args[0].Elements();
  CostTicker::TickSeq(static_cast<int64_t>(elems.size()));
  return Value::Set(std::move(elems));
}

/// union(a, b): merge of two canonical sets; O(|a| + |b|).
Result<Value> SetUnion(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.union", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("SET.union", args, 0, ValueKind::kSet));
  MOA_RETURN_NOT_OK(ExpectKind("SET.union", args, 1, ValueKind::kSet));
  const auto& a = args[0].Elements();
  const auto& b = args[1].Elements();
  ValueVec out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out), ValueLess);
  CostTicker::TickSeq(static_cast<int64_t>(a.size() + b.size()));
  return Value::Set(std::move(out));
}

/// intersect(a, b).
Result<Value> SetIntersect(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.intersect", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("SET.intersect", args, 0, ValueKind::kSet));
  MOA_RETURN_NOT_OK(ExpectKind("SET.intersect", args, 1, ValueKind::kSet));
  const auto& a = args[0].Elements();
  const auto& b = args[1].Elements();
  ValueVec out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out), ValueLess);
  CostTicker::TickSeq(static_cast<int64_t>(a.size() + b.size()));
  return Value::Set(std::move(out));
}

/// difference(a, b): a \ b.
Result<Value> SetDifference(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.difference", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("SET.difference", args, 0, ValueKind::kSet));
  MOA_RETURN_NOT_OK(ExpectKind("SET.difference", args, 1, ValueKind::kSet));
  const auto& a = args[0].Elements();
  const auto& b = args[1].Elements();
  ValueVec out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out), ValueLess);
  CostTicker::TickSeq(static_cast<int64_t>(a.size() + b.size()));
  return Value::Set(std::move(out));
}

/// contains(set, v) -> int 0/1; binary search over the canonical order.
Result<Value> SetContains(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.contains", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("SET.contains", args, 0, ValueKind::kSet));
  const auto& elems = args[0].Elements();
  CostTicker::TickRandom();
  const bool found =
      std::binary_search(elems.begin(), elems.end(), args[1], ValueLess);
  return Value::Int(found ? 1 : 0);
}

/// select(set, lo, hi): canonical order is sorted, so a SET range select is
/// always the cheap binary-search variant.
Result<Value> SetSelect(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.select", args, 3));
  MOA_RETURN_NOT_OK(ExpectKind("SET.select", args, 0, ValueKind::kSet));
  MOA_RETURN_NOT_OK(ExpectNumeric("SET.select", args, 1));
  MOA_RETURN_NOT_OK(ExpectNumeric("SET.select", args, 2));
  const auto& elems = args[0].Elements();
  auto first = std::lower_bound(elems.begin(), elems.end(), args[1], ValueLess);
  auto last = std::upper_bound(elems.begin(), elems.end(), args[2], ValueLess);
  CostTicker::TickRandom(2);
  if (last < first) last = first;
  ValueVec out(first, last);
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::Set(std::move(out));
}

/// count(set) -> int.
Result<Value> SetCount(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("SET.count", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("SET.count", args, 0, ValueKind::kSet));
  return Value::Int(static_cast<int64_t>(args[0].Elements().size()));
}

}  // namespace

void RegisterSetOps(ExtensionRegistry* registry) {
  registry->Register({"SET.make",
                      {.input_kind = ValueKind::kNull,
                       .result_kind = ValueKind::kSet,
                       .produces_sorted_output = true,
                       .order_insensitive = true},
                      SetMake});
  registry->Register({"SET.union",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kSet,
                       .produces_sorted_output = true,
                       .order_insensitive = true},
                      SetUnion});
  registry->Register({"SET.intersect",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kSet,
                       .produces_sorted_output = true,
                       .order_insensitive = true},
                      SetIntersect});
  registry->Register({"SET.difference",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kSet,
                       .produces_sorted_output = true,
                       .order_insensitive = true},
                      SetDifference});
  registry->Register({"SET.contains",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kInt,
                       .order_insensitive = true},
                      SetContains});
  registry->Register({"SET.select",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kSet,
                       .produces_sorted_output = true,
                       .order_insensitive = true,
                       .is_filter = true},
                      SetSelect});
  registry->Register({"SET.count",
                      {.input_kind = ValueKind::kSet,
                       .result_kind = ValueKind::kInt,
                       .order_insensitive = true},
                      SetCount});
}

}  // namespace moa
