#include "algebra/evaluator.h"

namespace moa {

Result<Value> Evaluate(const ExprPtr& expr, const ExtensionRegistry& registry) {
  if (!expr) return Status::InvalidArgument("null expression");
  if (expr->kind() == Expr::Kind::kConst) return expr->constant();

  const OpDef* def = registry.Find(expr->op());
  if (def == nullptr) {
    return Status::NotFound("unknown operator: " + expr->op());
  }
  std::vector<Value> args;
  args.reserve(expr->args().size());
  for (const auto& a : expr->args()) {
    Result<Value> r = Evaluate(a, registry);
    if (!r.ok()) return r.status();
    args.push_back(std::move(r).ValueOrDie());
  }
  return def->fn(args);
}

}  // namespace moa
