// LIST extension: ordered collections. This is the extension where physical
// order exists and can be exploited (select over a sorted LIST becomes a
// binary-search range extraction — the punchline of the paper's Example 1).
#include <algorithm>
#include <cmath>

#include "algebra/extension.h"
#include "algebra/ops_common.h"
#include "common/cost_ticker.h"

namespace moa {
namespace {

using ops::AllNumeric;
using ops::ExpectArity;
using ops::ExpectKind;
using ops::ExpectNumeric;

/// select(list, lo, hi): elements with lo <= v <= hi, order preserved.
/// Full scan: O(n) sequential reads.
Result<Value> ListSelect(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.select", args, 3));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.select", args, 0, ValueKind::kList));
  MOA_RETURN_NOT_OK(ExpectNumeric("LIST.select", args, 1));
  MOA_RETURN_NOT_OK(ExpectNumeric("LIST.select", args, 2));
  const auto& elems = args[0].Elements();
  if (!AllNumeric(elems)) {
    return Status::InvalidArgument("LIST.select: non-numeric element");
  }
  const double lo = args[1].AsDouble();
  const double hi = args[2].AsDouble();
  ValueVec out;
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    CostTicker::TickCompare(2);
    const double v = e.AsDouble();
    if (v >= lo && v <= hi) out.push_back(e);
  }
  return Value::List(std::move(out));
}

/// select_sorted(list, lo, hi): same result as select but *requires* the
/// input ascending-sorted; runs two binary searches + a contiguous copy.
/// O(log n) random reads + O(k) sequential.
Result<Value> ListSelectSorted(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.select_sorted", args, 3));
  MOA_RETURN_NOT_OK(
      ExpectKind("LIST.select_sorted", args, 0, ValueKind::kList));
  MOA_RETURN_NOT_OK(ExpectNumeric("LIST.select_sorted", args, 1));
  MOA_RETURN_NOT_OK(ExpectNumeric("LIST.select_sorted", args, 2));
  const auto& elems = args[0].Elements();
  if (!AllNumeric(elems)) {
    return Status::InvalidArgument("LIST.select_sorted: non-numeric element");
  }
  const double lo = args[1].AsDouble();
  const double hi = args[2].AsDouble();
  auto cmp_lo = [](const Value& e, double bound) {
    CostTicker::TickCompare();
    return e.AsDouble() < bound;
  };
  auto cmp_hi = [](double bound, const Value& e) {
    CostTicker::TickCompare();
    return bound < e.AsDouble();
  };
  auto first = std::lower_bound(elems.begin(), elems.end(), lo, cmp_lo);
  auto last = std::upper_bound(elems.begin(), elems.end(), hi, cmp_hi);
  const auto n = elems.size();
  CostTicker::TickRandom(
      2 * static_cast<int64_t>(std::ceil(std::log2(std::max<size_t>(n, 2)))));
  if (last < first) last = first;
  ValueVec out(first, last);
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::List(std::move(out));
}

/// sort(list): ascending, stable; O(n log n) compares.
Result<Value> ListSort(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.sort", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.sort", args, 0, ValueKind::kList));
  ValueVec out = args[0].Elements();
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  std::stable_sort(out.begin(), out.end(), [](const Value& a, const Value& b) {
    CostTicker::TickCompare();
    return Value::Compare(a, b) < 0;
  });
  return Value::List(std::move(out));
}

/// topn(list, n): the n largest elements, descending. Bounded min-heap:
/// O(n log N) compares, one pass.
Result<Value> ListTopN(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.topn", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.topn", args, 0, ValueKind::kList));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.topn", args, 1, ValueKind::kInt));
  const int64_t n = args[1].AsInt();
  if (n < 0) return Status::InvalidArgument("LIST.topn: n must be >= 0");
  const auto& elems = args[0].Elements();
  auto greater = [](const Value& a, const Value& b) {
    CostTicker::TickCompare();
    return Value::Compare(a, b) > 0;
  };
  // Min-heap of the current top n (heap top = weakest member).
  ValueVec heap;
  heap.reserve(static_cast<size_t>(n));
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    if (static_cast<int64_t>(heap.size()) < n) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), greater);
    } else if (n > 0 && Value::Compare(e, heap.front()) > 0) {
      CostTicker::TickCompare();
      std::pop_heap(heap.begin(), heap.end(), greater);
      heap.back() = e;
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), greater);
  return Value::List(std::move(heap));
}

/// projecttobag(list): forget order, keep duplicates. O(n) copy.
Result<Value> ListProjectToBag(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.projecttobag", args, 1));
  MOA_RETURN_NOT_OK(
      ExpectKind("LIST.projecttobag", args, 0, ValueKind::kList));
  ValueVec out = args[0].Elements();
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  CostTicker::TickBytes(static_cast<int64_t>(out.size()) * 16);
  return Value::Bag(std::move(out));
}

/// concat(a, b): list concatenation.
Result<Value> ListConcat(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.concat", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.concat", args, 0, ValueKind::kList));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.concat", args, 1, ValueKind::kList));
  ValueVec out = args[0].Elements();
  const auto& b = args[1].Elements();
  out.insert(out.end(), b.begin(), b.end());
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::List(std::move(out));
}

/// slice(list, start, len): subrange [start, start+len).
Result<Value> ListSlice(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.slice", args, 3));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.slice", args, 0, ValueKind::kList));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.slice", args, 1, ValueKind::kInt));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.slice", args, 2, ValueKind::kInt));
  const auto& elems = args[0].Elements();
  const int64_t start = args[1].AsInt();
  const int64_t len = args[2].AsInt();
  if (start < 0 || len < 0) {
    return Status::OutOfRange("LIST.slice: negative start or len");
  }
  const size_t begin = std::min<size_t>(static_cast<size_t>(start), elems.size());
  const size_t end = std::min<size_t>(begin + static_cast<size_t>(len), elems.size());
  ValueVec out(elems.begin() + begin, elems.begin() + end);
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::List(std::move(out));
}

/// reverse(list).
Result<Value> ListReverse(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.reverse", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.reverse", args, 0, ValueKind::kList));
  ValueVec out = args[0].Elements();
  std::reverse(out.begin(), out.end());
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::List(std::move(out));
}

/// count(list) -> int.
Result<Value> ListCount(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.count", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.count", args, 0, ValueKind::kList));
  return Value::Int(static_cast<int64_t>(args[0].Elements().size()));
}

/// sum(list) -> double; numeric elements only.
Result<Value> ListSum(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("LIST.sum", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("LIST.sum", args, 0, ValueKind::kList));
  const auto& elems = args[0].Elements();
  if (!AllNumeric(elems)) {
    return Status::InvalidArgument("LIST.sum: non-numeric element");
  }
  double sum = 0.0;
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    sum += e.AsDouble();
  }
  return Value::Double(sum);
}

}  // namespace

void RegisterListOps(ExtensionRegistry* registry) {
  registry->Register(
      {"LIST.select",
       {.input_kind = ValueKind::kList,
        .result_kind = ValueKind::kList,
        .preserves_order = true,
        .is_filter = true},
       ListSelect});
  registry->Register(
      {"LIST.select_sorted",
       {.input_kind = ValueKind::kList,
        .result_kind = ValueKind::kList,
        .preserves_order = true,
        .requires_sorted_input = true,
        .produces_sorted_output = true,
        .is_filter = true},
       ListSelectSorted});
  registry->Register({"LIST.sort",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kList,
                       .produces_sorted_output = true,
                       .order_insensitive = true},
                      ListSort});
  registry->Register({"LIST.topn",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kList,
                       .order_insensitive = true},
                      ListTopN});
  // NOTE: projecttobag is *formally* order-insensitive (the bag value is
  // the same multiset), but its output leaks the physical storage order —
  // BAG.projecttolist downstream can re-expose it. Marking it order-
  // insensitive would let the sort-elision rule change observable results
  // (caught by rewrite_property_test), so it is deliberately not marked.
  registry->Register({"LIST.projecttobag",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kBag},
                      ListProjectToBag});
  registry->Register({"LIST.concat",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kList,
                       .preserves_order = true},
                      ListConcat});
  registry->Register({"LIST.slice",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kList,
                       .preserves_order = true},
                      ListSlice});
  registry->Register({"LIST.reverse",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kList},
                      ListReverse});
  registry->Register({"LIST.count",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kInt,
                       .order_insensitive = true},
                      ListCount});
  registry->Register({"LIST.sum",
                      {.input_kind = ValueKind::kList,
                       .result_kind = ValueKind::kDouble,
                       .order_insensitive = true},
                      ListSum});
}

}  // namespace moa
