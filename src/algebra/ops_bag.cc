// BAG extension: unordered collections with duplicates. Order formally does
// not exist here, which is why a BAG.select can never exploit sortedness —
// the information was discarded at the extension boundary (paper Example 1).
#include <algorithm>

#include "algebra/extension.h"
#include "algebra/ops_common.h"
#include "common/cost_ticker.h"

namespace moa {
namespace {

using ops::AllNumeric;
using ops::ExpectArity;
using ops::ExpectKind;
using ops::ExpectNumeric;

/// select(bag, lo, hi): elements with lo <= v <= hi. Always a full scan —
/// a bag has no order to exploit.
Result<Value> BagSelect(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.select", args, 3));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.select", args, 0, ValueKind::kBag));
  MOA_RETURN_NOT_OK(ExpectNumeric("BAG.select", args, 1));
  MOA_RETURN_NOT_OK(ExpectNumeric("BAG.select", args, 2));
  const auto& elems = args[0].Elements();
  if (!AllNumeric(elems)) {
    return Status::InvalidArgument("BAG.select: non-numeric element");
  }
  const double lo = args[1].AsDouble();
  const double hi = args[2].AsDouble();
  ValueVec out;
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    CostTicker::TickCompare(2);
    const double v = e.AsDouble();
    if (v >= lo && v <= hi) out.push_back(e);
  }
  return Value::Bag(std::move(out));
}

/// projecttolist(bag): expose the physical storage order as a LIST. The
/// order is deterministic but carries no semantics.
Result<Value> BagProjectToList(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.projecttolist", args, 1));
  MOA_RETURN_NOT_OK(
      ExpectKind("BAG.projecttolist", args, 0, ValueKind::kBag));
  ValueVec out = args[0].Elements();
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  CostTicker::TickBytes(static_cast<int64_t>(out.size()) * 16);
  return Value::List(std::move(out));
}

/// union_all(a, b): bag union keeping duplicates.
Result<Value> BagUnionAll(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.union_all", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.union_all", args, 0, ValueKind::kBag));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.union_all", args, 1, ValueKind::kBag));
  ValueVec out = args[0].Elements();
  const auto& b = args[1].Elements();
  out.insert(out.end(), b.begin(), b.end());
  CostTicker::TickSeq(static_cast<int64_t>(out.size()));
  return Value::Bag(std::move(out));
}

/// count(bag) -> int.
Result<Value> BagCount(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.count", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.count", args, 0, ValueKind::kBag));
  return Value::Int(static_cast<int64_t>(args[0].Elements().size()));
}

/// sum(bag) -> double.
Result<Value> BagSum(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.sum", args, 1));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.sum", args, 0, ValueKind::kBag));
  const auto& elems = args[0].Elements();
  if (!AllNumeric(elems)) {
    return Status::InvalidArgument("BAG.sum: non-numeric element");
  }
  double sum = 0.0;
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    sum += e.AsDouble();
  }
  return Value::Double(sum);
}

/// topn(bag, n) -> LIST of the n largest, descending (ranking entry point).
Result<Value> BagTopN(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("BAG.topn", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.topn", args, 0, ValueKind::kBag));
  MOA_RETURN_NOT_OK(ExpectKind("BAG.topn", args, 1, ValueKind::kInt));
  const int64_t n = args[1].AsInt();
  if (n < 0) return Status::InvalidArgument("BAG.topn: n must be >= 0");
  const auto& elems = args[0].Elements();
  auto greater = [](const Value& a, const Value& b) {
    CostTicker::TickCompare();
    return Value::Compare(a, b) > 0;
  };
  ValueVec heap;
  heap.reserve(static_cast<size_t>(n));
  for (const auto& e : elems) {
    CostTicker::TickSeq();
    if (static_cast<int64_t>(heap.size()) < n) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), greater);
    } else if (n > 0 && Value::Compare(e, heap.front()) > 0) {
      CostTicker::TickCompare();
      std::pop_heap(heap.begin(), heap.end(), greater);
      heap.back() = e;
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), greater);
  return Value::List(std::move(heap));
}

}  // namespace

void RegisterBagOps(ExtensionRegistry* registry) {
  registry->Register({"BAG.select",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kBag,
                       .order_insensitive = true,
                       .is_filter = true},
                      BagSelect});
  registry->Register({"BAG.projecttolist",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kList},
                      BagProjectToList});
  registry->Register({"BAG.union_all",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kBag,
                       .order_insensitive = true},
                      BagUnionAll});
  registry->Register({"BAG.count",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kInt,
                       .order_insensitive = true},
                      BagCount});
  registry->Register({"BAG.sum",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kDouble,
                       .order_insensitive = true},
                      BagSum});
  registry->Register({"BAG.topn",
                      {.input_kind = ValueKind::kBag,
                       .result_kind = ValueKind::kList,
                       .order_insensitive = true},
                      BagTopN});
}

}  // namespace moa
