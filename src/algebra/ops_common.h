// Shared argument-validation helpers for extension operator implementations.
#ifndef MOA_ALGEBRA_OPS_COMMON_H_
#define MOA_ALGEBRA_OPS_COMMON_H_

#include <string>
#include <vector>

#include "algebra/value.h"
#include "common/status.h"

namespace moa {
namespace ops {

/// Checks exact arity.
Status ExpectArity(const std::string& op, const std::vector<Value>& args,
                   size_t arity);

/// Checks args[i] has the given kind.
Status ExpectKind(const std::string& op, const std::vector<Value>& args,
                  size_t i, ValueKind kind);

/// Checks args[i] is numeric (int or double).
Status ExpectNumeric(const std::string& op, const std::vector<Value>& args,
                     size_t i);

/// True iff every element of `elems` is numeric.
bool AllNumeric(const ValueVec& elems);

}  // namespace ops
}  // namespace moa

#endif  // MOA_ALGEBRA_OPS_COMMON_H_
