// Extension (E-ADT) registry: the catalogue of operators per structure.
//
// Each extension (LIST, BAG, SET, TUPLE) registers its operators together
// with the *algebraic properties* the optimizer layers reason over. The
// properties are deliberately first-class: the paper's central argument is
// that optimizers which cannot see properties across extension boundaries
// (PREDATOR's E-ADTs) miss rewrites like select/projecttobag commutation.
#ifndef MOA_ALGEBRA_EXTENSION_H_
#define MOA_ALGEBRA_EXTENSION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/value.h"
#include "common/status.h"

namespace moa {

/// \brief Algebraic properties of one operator, consumed by the optimizer.
struct OpProperties {
  /// Kind of the first (collection) argument; kNull when not applicable.
  ValueKind input_kind = ValueKind::kNull;
  /// Kind of the result.
  ValueKind result_kind = ValueKind::kNull;
  /// Output element order equals input element order (e.g. LIST.select).
  bool preserves_order = false;
  /// Operator is only correct on ascending-sorted input (LIST.select_sorted).
  bool requires_sorted_input = false;
  /// Output is ascending-sorted regardless of input (LIST.sort, SET ops).
  bool produces_sorted_output = false;
  /// Result is invariant under permutation of input elements (bag
  /// semantics): true for projecttobag, count, sum, every BAG/SET op.
  bool order_insensitive = false;
  /// Filters elements without transforming them (select family); such ops
  /// commute with order-insensitive structure casts.
  bool is_filter = false;
};

/// Implementation: takes evaluated argument values, returns the result.
using OpFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// \brief One registered operator.
struct OpDef {
  std::string name;  ///< extension-qualified, e.g. "LIST.select"
  OpProperties props;
  OpFn fn;
};

/// \brief Registry of all known operators, keyed by qualified name.
class ExtensionRegistry {
 public:
  /// The registry with every built-in extension registered.
  static const ExtensionRegistry& Default();

  void Register(OpDef def);

  /// Definition of `name`, or nullptr.
  const OpDef* Find(const std::string& name) const;

  /// All operator names of one extension, sorted.
  std::vector<std::string> OpsOfExtension(const std::string& ext) const;

  /// All extension names present, sorted.
  std::vector<std::string> Extensions() const;

 private:
  std::map<std::string, OpDef> ops_;
};

/// Registration hooks (called by ExtensionRegistry::Default()).
void RegisterListOps(ExtensionRegistry* registry);
void RegisterBagOps(ExtensionRegistry* registry);
void RegisterSetOps(ExtensionRegistry* registry);
void RegisterTupleOps(ExtensionRegistry* registry);

}  // namespace moa

#endif  // MOA_ALGEBRA_EXTENSION_H_
