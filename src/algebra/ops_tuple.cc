// TUPLE extension: named-field records (used by integrated MM +
// alphanumeric queries: a ranked document is <doc, score, ...attributes>).
#include "algebra/extension.h"
#include "algebra/ops_common.h"

namespace moa {
namespace {

using ops::ExpectArity;
using ops::ExpectKind;

/// get(tuple, name) -> field value.
Result<Value> TupleGet(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("TUPLE.get", args, 2));
  MOA_RETURN_NOT_OK(ExpectKind("TUPLE.get", args, 0, ValueKind::kTuple));
  MOA_RETURN_NOT_OK(ExpectKind("TUPLE.get", args, 1, ValueKind::kString));
  const auto& fields = args[0].Fields();
  const auto& name = args[1].AsString();
  for (const auto& [fname, fvalue] : fields) {
    if (fname == name) return fvalue;
  }
  return Status::NotFound("TUPLE.get: no field named " + name);
}

/// make2(name1, v1, name2, v2) -> tuple with two fields.
Result<Value> TupleMake2(const std::vector<Value>& args) {
  MOA_RETURN_NOT_OK(ExpectArity("TUPLE.make2", args, 4));
  MOA_RETURN_NOT_OK(ExpectKind("TUPLE.make2", args, 0, ValueKind::kString));
  MOA_RETURN_NOT_OK(ExpectKind("TUPLE.make2", args, 2, ValueKind::kString));
  TupleFields fields;
  fields.emplace_back(args[0].AsString(), args[1]);
  fields.emplace_back(args[2].AsString(), args[3]);
  if (fields[0].first == fields[1].first) {
    return Status::InvalidArgument("TUPLE.make2: duplicate field name");
  }
  return Value::Tuple(std::move(fields));
}

}  // namespace

void RegisterTupleOps(ExtensionRegistry* registry) {
  registry->Register({"TUPLE.get",
                      {.input_kind = ValueKind::kTuple,
                       .result_kind = ValueKind::kNull},
                      TupleGet});
  registry->Register({"TUPLE.make2",
                      {.input_kind = ValueKind::kNull,
                       .result_kind = ValueKind::kTuple},
                      TupleMake2});
}

}  // namespace moa
