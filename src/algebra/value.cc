#include "algebra/value.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace moa {

const char* ValueKindName(ValueKind k) {
  switch (k) {
    case ValueKind::kNull: return "null";
    case ValueKind::kInt: return "int";
    case ValueKind::kDouble: return "double";
    case ValueKind::kString: return "string";
    case ValueKind::kList: return "LIST";
    case ValueKind::kBag: return "BAG";
    case ValueKind::kSet: return "SET";
    case ValueKind::kTuple: return "TUPLE";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value x;
  x.kind_ = ValueKind::kInt;
  x.payload_ = v;
  return x;
}

Value Value::Double(double v) {
  Value x;
  x.kind_ = ValueKind::kDouble;
  x.payload_ = v;
  return x;
}

Value Value::Str(std::string v) {
  Value x;
  x.kind_ = ValueKind::kString;
  x.payload_ = std::move(v);
  return x;
}

Value Value::List(ValueVec elems) {
  Value x;
  x.kind_ = ValueKind::kList;
  x.payload_ = std::make_shared<const ValueVec>(std::move(elems));
  return x;
}

Value Value::Bag(ValueVec elems) {
  Value x;
  x.kind_ = ValueKind::kBag;
  x.payload_ = std::make_shared<const ValueVec>(std::move(elems));
  return x;
}

Value Value::Set(ValueVec elems) {
  std::sort(elems.begin(), elems.end(), [](const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  });
  elems.erase(std::unique(elems.begin(), elems.end(),
                          [](const Value& a, const Value& b) {
                            return Compare(a, b) == 0;
                          }),
              elems.end());
  Value x;
  x.kind_ = ValueKind::kSet;
  x.payload_ = std::make_shared<const ValueVec>(std::move(elems));
  return x;
}

Value Value::Tuple(TupleFields fields) {
  Value x;
  x.kind_ = ValueKind::kTuple;
  x.payload_ = std::make_shared<const TupleFields>(std::move(fields));
  return x;
}

int64_t Value::AsInt() const {
  assert(kind_ == ValueKind::kInt);
  return std::get<int64_t>(payload_);
}

double Value::AsDouble() const {
  if (kind_ == ValueKind::kInt) {
    return static_cast<double>(std::get<int64_t>(payload_));
  }
  assert(kind_ == ValueKind::kDouble);
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  assert(kind_ == ValueKind::kString);
  return std::get<std::string>(payload_);
}

const ValueVec& Value::Elements() const {
  assert(is_collection());
  return *std::get<std::shared_ptr<const ValueVec>>(payload_);
}

const TupleFields& Value::Fields() const {
  assert(kind_ == ValueKind::kTuple);
  return *std::get<std::shared_ptr<const TupleFields>>(payload_);
}

int Value::Compare(const Value& a, const Value& b) {
  // Numeric kinds compare cross-kind by value; otherwise kind first.
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsDouble(), y = b.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_) ? -1 : 1;
  }
  switch (a.kind_) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 0;  // handled above
    case ValueKind::kString: {
      const auto& x = a.AsString();
      const auto& y = b.AsString();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case ValueKind::kList:
    case ValueKind::kBag:
    case ValueKind::kSet: {
      const auto& x = a.Elements();
      const auto& y = b.Elements();
      const size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      if (x.size() < y.size()) return -1;
      if (x.size() > y.size()) return 1;
      return 0;
    }
    case ValueKind::kTuple: {
      const auto& x = a.Fields();
      const auto& y = b.Fields();
      const size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        if (x[i].first != y[i].first) {
          return x[i].first < y[i].first ? -1 : 1;
        }
        int c = Compare(x[i].second, y[i].second);
        if (c != 0) return c;
      }
      if (x.size() < y.size()) return -1;
      if (x.size() > y.size()) return 1;
      return 0;
    }
  }
  return 0;
}

bool Value::BagEquals(const Value& a, const Value& b) {
  if (!a.is_collection() || !b.is_collection()) return a == b;
  ValueVec x = a.Elements();
  ValueVec y = b.Elements();
  if (x.size() != y.size()) return false;
  auto less = [](const Value& p, const Value& q) { return Compare(p, q) < 0; };
  std::sort(x.begin(), x.end(), less);
  std::sort(y.begin(), y.end(), less);
  for (size_t i = 0; i < x.size(); ++i) {
    if (Compare(x[i], y[i]) != 0) return false;
  }
  return true;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ValueKind::kNull:
      os << "null";
      break;
    case ValueKind::kInt:
      os << AsInt();
      break;
    case ValueKind::kDouble:
      os << AsDouble();
      break;
    case ValueKind::kString:
      os << '"' << AsString() << '"';
      break;
    case ValueKind::kList:
    case ValueKind::kBag:
    case ValueKind::kSet: {
      const char* open = kind_ == ValueKind::kList   ? "["
                         : kind_ == ValueKind::kBag ? "{|"
                                                    : "{";
      const char* close = kind_ == ValueKind::kList   ? "]"
                          : kind_ == ValueKind::kBag ? "|}"
                                                     : "}";
      os << open;
      const auto& elems = Elements();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) os << ", ";
        os << elems[i].ToString();
      }
      os << close;
      break;
    }
    case ValueKind::kTuple: {
      os << "<";
      const auto& fields = Fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) os << ", ";
        os << fields[i].first << ": " << fields[i].second.ToString();
      }
      os << ">";
      break;
    }
  }
  return os.str();
}

}  // namespace moa
