#include "algebra/ops_common.h"

namespace moa {
namespace ops {

Status ExpectArity(const std::string& op, const std::vector<Value>& args,
                   size_t arity) {
  if (args.size() != arity) {
    return Status::InvalidArgument(op + " expects " + std::to_string(arity) +
                                   " args, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Status ExpectKind(const std::string& op, const std::vector<Value>& args,
                  size_t i, ValueKind kind) {
  if (args[i].kind() != kind) {
    return Status::InvalidArgument(
        op + ": arg " + std::to_string(i) + " must be " +
        ValueKindName(kind) + ", got " + ValueKindName(args[i].kind()));
  }
  return Status::OK();
}

Status ExpectNumeric(const std::string& op, const std::vector<Value>& args,
                     size_t i) {
  if (!args[i].is_numeric()) {
    return Status::InvalidArgument(op + ": arg " + std::to_string(i) +
                                   " must be numeric");
  }
  return Status::OK();
}

bool AllNumeric(const ValueVec& elems) {
  for (const auto& e : elems) {
    if (!e.is_numeric()) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace moa
