// Tree-walking evaluator for Moa expressions.
#ifndef MOA_ALGEBRA_EVALUATOR_H_
#define MOA_ALGEBRA_EVALUATOR_H_

#include "algebra/expr.h"
#include "algebra/extension.h"
#include "common/status.h"

namespace moa {

/// \brief Evaluates `expr` bottom-up against `registry`.
///
/// Every operator invocation ticks the thread-local CostTicker, so wrapping
/// a call in CostScope yields the exact work an expression performed —
/// which is how E8 compares original vs rewritten expressions.
Result<Value> Evaluate(const ExprPtr& expr,
                       const ExtensionRegistry& registry =
                           ExtensionRegistry::Default());

}  // namespace moa

#endif  // MOA_ALGEBRA_EVALUATOR_H_
