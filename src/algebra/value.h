// The Moa value model: Atomic values and the structured extensions
// LIST, BAG, SET and TUPLE (BWK98, VW99).
//
// LIST is ordered; BAG is unordered with duplicates (physically stored in
// some arbitrary but deterministic order); SET is unordered and duplicate-
// free (canonically stored sorted); TUPLE has named fields. The distinction
// between what is *formally* defined (bag order is not) and what is
// *physically* true (the stored order) is exactly the gap the paper's
// inter-object optimizer exploits.
#ifndef MOA_ALGEBRA_VALUE_H_
#define MOA_ALGEBRA_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace moa {

/// Runtime kind of a Value.
enum class ValueKind {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kList,
  kBag,
  kSet,
  kTuple,
};

const char* ValueKindName(ValueKind k);

class Value;
using ValueVec = std::vector<Value>;
/// A tuple is a sequence of (field name, value) pairs.
using TupleFields = std::vector<std::pair<std::string, Value>>;

/// \brief Immutable structured value. Collection payloads are shared, so
/// copying a Value is O(1).
class Value {
 public:
  Value() : kind_(ValueKind::kNull) {}

  static Value Int(int64_t v);
  static Value Double(double v);
  static Value Str(std::string v);
  /// Ordered list of `elems`.
  static Value List(ValueVec elems);
  /// Bag of `elems`; stored order is preserved physically but carries no
  /// semantics.
  static Value Bag(ValueVec elems);
  /// Set of `elems`: duplicates removed, canonical (sorted) storage.
  static Value Set(ValueVec elems);
  static Value Tuple(TupleFields fields);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_numeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kDouble;
  }
  bool is_collection() const {
    return kind_ == ValueKind::kList || kind_ == ValueKind::kBag ||
           kind_ == ValueKind::kSet;
  }

  int64_t AsInt() const;
  double AsDouble() const;  ///< numeric kinds only; Int widens.
  const std::string& AsString() const;
  /// Collection elements (list/bag/set). Set iterates in canonical order.
  const ValueVec& Elements() const;
  const TupleFields& Fields() const;

  /// Total order over values: first by kind, then by content (collections
  /// lexicographically, tuples field-wise). Gives SET its canonical order.
  static int Compare(const Value& a, const Value& b);

  /// Structural equality (LIST order-sensitive, SET canonical).
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }

  /// Bag-semantics equality: same elements with same multiplicities,
  /// ignoring order. For LIST/BAG/SET inputs; scalars fall back to ==.
  static bool BagEquals(const Value& a, const Value& b);

  /// Human-readable rendering, e.g. `[1, 2, 3]`, `{|1, 2|}`, `{1, 2}`.
  std::string ToString() const;

 private:
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string,
                   std::shared_ptr<const ValueVec>,
                   std::shared_ptr<const TupleFields>>;

  ValueKind kind_;
  Payload payload_;
};

}  // namespace moa

#endif  // MOA_ALGEBRA_VALUE_H_
