#include "algebra/extension.h"

#include <algorithm>
#include <set>

namespace moa {

const ExtensionRegistry& ExtensionRegistry::Default() {
  static const ExtensionRegistry* registry = [] {
    auto* r = new ExtensionRegistry();
    RegisterListOps(r);
    RegisterBagOps(r);
    RegisterSetOps(r);
    RegisterTupleOps(r);
    return r;
  }();
  return *registry;
}

void ExtensionRegistry::Register(OpDef def) {
  ops_[def.name] = std::move(def);
}

const OpDef* ExtensionRegistry::Find(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

std::vector<std::string> ExtensionRegistry::OpsOfExtension(
    const std::string& ext) const {
  std::vector<std::string> out;
  const std::string prefix = ext + ".";
  for (const auto& [name, def] : ops_) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  return out;
}

std::vector<std::string> ExtensionRegistry::Extensions() const {
  std::set<std::string> exts;
  for (const auto& [name, def] : ops_) {
    auto dot = name.find('.');
    if (dot != std::string::npos) exts.insert(name.substr(0, dot));
  }
  return {exts.begin(), exts.end()};
}

}  // namespace moa
