#include "algebra/expr.h"

#include <sstream>

namespace moa {

ExprPtr Expr::Const(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(v);
  return e;
}

ExprPtr Expr::Apply(std::string op, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kApply;
  e->op_ = std::move(op);
  e->args_ = std::move(args);
  return e;
}

std::string Expr::ExtensionName() const {
  auto dot = op_.find('.');
  return dot == std::string::npos ? std::string() : op_.substr(0, dot);
}

std::string Expr::OpName() const {
  auto dot = op_.find('.');
  return dot == std::string::npos ? op_ : op_.substr(dot + 1);
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind_ != b->kind_) return false;
  if (a->kind_ == Kind::kConst) return a->constant_ == b->constant_;
  if (a->op_ != b->op_) return false;
  if (a->args_.size() != b->args_.size()) return false;
  for (size_t i = 0; i < a->args_.size(); ++i) {
    if (!Equal(a->args_[i], b->args_[i])) return false;
  }
  return true;
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const auto& a : args_) n += a->TreeSize();
  return n;
}

std::string Expr::ToString() const {
  if (kind_ == Kind::kConst) {
    // Large collections render as a placeholder to keep Explain readable.
    if (constant_.is_collection() && constant_.Elements().size() > 16) {
      std::ostringstream os;
      os << ValueKindName(constant_.kind()) << "<"
         << constant_.Elements().size() << " elems>";
      return os.str();
    }
    return constant_.ToString();
  }
  std::ostringstream os;
  os << op_ << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) os << ", ";
    os << args_[i]->ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace moa
