// Expression AST over the Moa algebra.
//
// An expression is either a constant Value or the application of a named
// operator (qualified by its extension, e.g. "LIST.select") to argument
// expressions. Expressions are immutable and shared; the optimizer produces
// new trees instead of mutating.
#ifndef MOA_ALGEBRA_EXPR_H_
#define MOA_ALGEBRA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/value.h"

namespace moa {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief One AST node.
class Expr {
 public:
  enum class Kind { kConst, kApply };

  /// Constant leaf.
  static ExprPtr Const(Value v);

  /// Operator application: `op` must be an extension-qualified name such as
  /// "LIST.select" or "BAG.projecttolist".
  static ExprPtr Apply(std::string op, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }
  const Value& constant() const { return constant_; }
  const std::string& op() const { return op_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  /// Extension prefix of `op` ("LIST" of "LIST.select"); empty for consts.
  std::string ExtensionName() const;
  /// Operator suffix ("select" of "LIST.select"); empty for consts.
  std::string OpName() const;

  /// Structural equality of trees.
  static bool Equal(const ExprPtr& a, const ExprPtr& b);

  /// Number of nodes in the tree.
  size_t TreeSize() const;

  /// `LIST.select(projecttobag(...), 2, 4)`-style rendering.
  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  Value constant_;
  std::string op_;
  std::vector<ExprPtr> args_;
};

}  // namespace moa

#endif  // MOA_ALGEBRA_EXPR_H_
