// StrategyRegistry: the single place where physical strategies are
// enumerated — maps each PhysicalStrategy to its executor factory plus the
// name/safety metadata behind StrategyName / IsSafeStrategy /
// AllStrategies / StrategyFromName.
//
// Adding a strategy: add the enum value (exec/strategy.h), write one
// executor file under exec/executors/ with a RegisterXxxExecutors hook,
// and call that hook from RegisterBuiltinExecutors (exec/builtin.cc).
// Engine, planner, Explain, tests and benches pick it up automatically.
#ifndef MOA_EXEC_REGISTRY_H_
#define MOA_EXEC_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/executor.h"
#include "exec/plan_hooks.h"
#include "exec/strategy.h"

namespace moa {

/// Display name of a StrategyOptionsVariant alternative by index
/// (ExecOptionsIndexOf<T>()), e.g. "FaginOptions"; kNoStrategyOptions maps
/// to "none". Shared by the registry's option-mismatch diagnostics and
/// Explain's per-strategy annotations.
const char* ExecOptionsVariantName(size_t index);

/// \brief Maps every PhysicalStrategy to an executor factory + metadata.
///
/// Thread-safety: lookups and Execute are lock-free reads and safe to
/// call from any number of threads; Register/MustRegister mutate the map
/// unsynchronized. All registration (built-ins happen inside the Global()
/// initializer; custom strategies at startup) must complete before the
/// first concurrent execution.
class StrategyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<StrategyExecutor>(const ExecOptions&)>;

  /// \brief One registered strategy.
  struct Entry {
    std::string name;   ///< stable string id (StrategyName / FromName)
    bool safe = true;   ///< returns the exact top-N ranking or set
    Factory factory;
    /// StrategyOptionsVariant alternative this strategy consumes
    /// (kNoStrategyOptions = common knobs only). Execute/Make reject typed
    /// options of any other family instead of silently ignoring them.
    size_t accepts_options = kNoStrategyOptions;
    /// Cost/quality formulas + availability metadata the cost model and
    /// the per-query StrategyPlanner read (see exec/plan_hooks.h). A
    /// default-constructed value (null cost hook) keeps the strategy
    /// executable but invisible to cost-based choice.
    PlannerHooks planner;
  };

  /// The process-wide registry, populated with the built-in executors on
  /// first use.
  static StrategyRegistry& Global();

  /// Registers a strategy; rejects duplicate strategies and names.
  /// `accepts_options` names the ExecOptions alternative the strategy
  /// consumes (ExecOptionsIndexOf<T>(); default: typed options rejected).
  /// `planner` carries the cost/quality hooks cost-based choice reads; the
  /// default (null cost hook) makes the strategy forced-only.
  Status Register(PhysicalStrategy strategy, std::string name, bool safe,
                  Factory factory,
                  size_t accepts_options = kNoStrategyOptions,
                  PlannerHooks planner = {});

  /// Register that aborts the process on failure — for built-in
  /// registration, where a duplicate strategy or name is a programming
  /// error that must not silently drop an executor.
  void MustRegister(PhysicalStrategy strategy, std::string name, bool safe,
                    Factory factory,
                    size_t accepts_options = kNoStrategyOptions,
                    PlannerHooks planner = {});

  bool Has(PhysicalStrategy strategy) const;
  /// The entry for `strategy`, or nullptr if unregistered.
  const Entry* Find(PhysicalStrategy strategy) const;
  /// Resolves a registered name back to its strategy.
  std::optional<PhysicalStrategy> FromName(std::string_view name) const;
  /// All registered strategies, ascending enum order.
  std::vector<PhysicalStrategy> Registered() const;

  /// Instantiates an executor for `strategy` with `options`.
  Result<std::unique_ptr<StrategyExecutor>> Make(
      PhysicalStrategy strategy, const ExecOptions& options) const;

  /// One-shot execution: instantiate, run inside a CostScope, and make
  /// sure the result carries cost counters.
  Result<TopNResult> Execute(PhysicalStrategy strategy,
                             const ExecContext& context, const Query& query,
                             size_t n, const ExecOptions& options = {}) const;

 private:
  std::map<PhysicalStrategy, Entry> entries_;
};

}  // namespace moa

#endif  // MOA_EXEC_REGISTRY_H_
