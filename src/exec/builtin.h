// Registration hooks for the built-in strategy executors.
//
// Each executor family lives in one file under exec/executors/ and exposes
// one hook; RegisterBuiltinExecutors (builtin.cc) is the only list of
// them. Explicit registration (instead of static registrar objects) keeps
// the strategies linker-proof inside a static library.
#ifndef MOA_EXEC_BUILTIN_H_
#define MOA_EXEC_BUILTIN_H_

namespace moa {

class StrategyRegistry;

/// Registers every built-in executor family; called once by
/// StrategyRegistry::Global().
void RegisterBuiltinExecutors(StrategyRegistry& registry);

// Per-family hooks (exec/executors/*.cc).
void RegisterBaselineExecutors(StrategyRegistry& registry);
void RegisterFaginExecutors(StrategyRegistry& registry);
void RegisterStopAfterExecutors(StrategyRegistry& registry);
void RegisterProbabilisticExecutors(StrategyRegistry& registry);
void RegisterFragmentExecutors(StrategyRegistry& registry);
void RegisterMaxScoreExecutors(StrategyRegistry& registry);

}  // namespace moa

#endif  // MOA_EXEC_BUILTIN_H_
