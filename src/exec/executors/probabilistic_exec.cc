// Executor for the Donjerkovic–Ramakrishnan probabilistic cutoff
// (topn/probabilistic.h). Cursor-based: the cutoff estimation only needs
// the dense score accumulation, which streams through PostingCursors over
// any storage.
#include <algorithm>
#include <cmath>

#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/probabilistic.h"

namespace moa {
namespace {

class ProbabilisticExecutor : public StrategyExecutor {
 public:
  explicit ProbabilisticExecutor(ProbabilisticOptions options)
      : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return ProbabilisticTopN(*context.postings, *context.model, query, n,
                               options_);
    }
    return ProbabilisticTopN(*context.file, *context.model, query, n,
                             options_);
  }

 private:
  ProbabilisticOptions options_;
};

CostCounters ProbabilisticCost(const StrategyCostInputs& in) {
  const double survivors =
      std::min(in.candidates, in.n + 2.0 * std::sqrt(in.n));
  return MakeCostEstimate(in.Seq(in.volume), in.Random(512), in.volume,
                          in.candidates + survivors * in.log2_n(),
                          16.0 * survivors);
}

}  // namespace

void RegisterProbabilisticExecutors(StrategyRegistry& registry) {
  registry.MustRegister(
      PhysicalStrategy::kProbabilistic, "probabilistic", /*safe=*/true,
      [](const ExecOptions& options) {
        ProbabilisticOptions opts;
        if (const ProbabilisticOptions* o =
                options.GetIf<ProbabilisticOptions>()) {
          opts = *o;
        }
        return std::make_unique<ProbabilisticExecutor>(opts);
      },
      ExecOptionsIndexOf<ProbabilisticOptions>(),
      PlannerHooks{&ProbabilisticCost});
}

}  // namespace moa
