// Executors for term-at-a-time max-score pruning (topn/maxscore.h):
// the safe `continue` mode and the unsafe Moffat–Zobel-style `quit`.
#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/maxscore.h"

namespace moa {
namespace {

class MaxScoreExecutor : public StrategyExecutor {
 public:
  explicit MaxScoreExecutor(MaxScoreOptions options) : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return MaxScoreTopN(*context.postings, *context.model, query, n,
                          options_);
    }
    return MaxScoreTopN(*context.file, *context.model, query, n, options_);
  }

 private:
  MaxScoreOptions options_;
};

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, bool safe, PruneMode mode) {
  registry.MustRegister(
      strategy, name, safe,
      [mode](const ExecOptions& options) {
        MaxScoreOptions opts;
        if (const MaxScoreOptions* o = options.GetIf<MaxScoreOptions>()) {
          opts = *o;
        }
        opts.mode = mode;
        return std::make_unique<MaxScoreExecutor>(opts);
      },
      ExecOptionsIndexOf<MaxScoreOptions>());
}

}  // namespace

void RegisterMaxScoreExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kMaxScore, "maxscore",
              /*safe=*/true, PruneMode::kContinue);
  RegisterOne(registry, PhysicalStrategy::kQuitPrune, "quit_prune",
              /*safe=*/false, PruneMode::kQuit);
}

}  // namespace moa
