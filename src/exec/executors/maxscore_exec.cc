// Executors for term-at-a-time max-score pruning (topn/maxscore.h):
// the safe `continue` mode and the unsafe Moffat–Zobel-style `quit`.
#include <algorithm>
#include <cmath>

#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/maxscore.h"

namespace moa {
namespace {

class MaxScoreExecutor : public StrategyExecutor {
 public:
  explicit MaxScoreExecutor(MaxScoreOptions options) : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return MaxScoreTopN(*context.postings, *context.model, query, n,
                          options_);
    }
    return MaxScoreTopN(*context.file, *context.model, query, n, options_);
  }

 private:
  MaxScoreOptions options_;
};

// All postings are read; scoring stops for non-accumulated docs once the
// bound binds. Rare terms insert ~their volume; the frequent tail mostly
// updates. Model: full seq, ~60% scored, nth-refresh compares per term.
CostCounters MaxScoreCost(const StrategyCostInputs& in) {
  return MakeCostEstimate(in.Seq(in.volume), 0, 0.6 * in.volume,
                          in.candidates + in.active_terms * in.candidates * 0.1 +
                              in.n * in.log2_n(),
                          0);
}

// QUIT stops after the selective (rare) terms have filled the top n: work
// tracks the TA-like depth, not the volume (bench_e11: the frequent tail
// is never touched).
double QuitTouched(const StrategyCostInputs& in) {
  return std::min(in.volume, 2.0 * in.active_terms *
                                 (in.n + std::sqrt(in.candidates)));
}

CostCounters QuitPruneCost(const StrategyCostInputs& in) {
  const double touched = QuitTouched(in);
  return MakeCostEstimate(in.Seq(touched), 0, touched,
                          touched + in.n * in.log2_n(), 0);
}

// Quality loss tracks the untouched tail: docs whose frequent-term-only
// contributions would have entered the top n. Weight measured against the
// exact oracle on the e13 lifecycle corpus (overlap@10 stays >= ~0.85 even
// when QUIT skips most of the volume, because the skipped tail carries
// little score mass on Zipf-weighted lists).
constexpr double kQuitMissWeight = 0.15;

double QuitPruneQuality(const StrategyCostInputs& in) {
  if (in.volume <= 0.0) return 1.0;
  const double skipped = 1.0 - QuitTouched(in) / in.volume;
  return std::max(0.0, 1.0 - kQuitMissWeight * skipped);
}

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, bool safe, PruneMode mode,
                 StrategyCostFn cost, StrategyQualityFn quality) {
  PlannerHooks hooks;
  hooks.cost = cost;
  hooks.quality = quality;
  hooks.needs_active_terms = true;
  registry.MustRegister(
      strategy, name, safe,
      [mode](const ExecOptions& options) {
        MaxScoreOptions opts;
        if (const MaxScoreOptions* o = options.GetIf<MaxScoreOptions>()) {
          opts = *o;
        }
        opts.mode = mode;
        return std::make_unique<MaxScoreExecutor>(opts);
      },
      ExecOptionsIndexOf<MaxScoreOptions>(), hooks);
}

}  // namespace

void RegisterMaxScoreExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kMaxScore, "maxscore",
              /*safe=*/true, PruneMode::kContinue, &MaxScoreCost, nullptr);
  RegisterOne(registry, PhysicalStrategy::kQuitPrune, "quit_prune",
              /*safe=*/false, PruneMode::kQuit, &QuitPruneCost,
              &QuitPruneQuality);
}

}  // namespace moa
