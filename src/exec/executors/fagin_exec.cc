// Executors for the Fagin family (topn/fagin.h): FA, TA and NRA.
//
// All three consume *impact-ordered* sorted access, which only the
// in-memory InvertedFile materializes; over a postings-only context
// (segment or catalog) they report Unimplemented instead of silently
// reading an in-memory file that may not describe the served collection.
#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/fagin.h"

namespace moa {
namespace {

FaginOptions OptionsFrom(const ExecOptions& options) {
  if (const FaginOptions* o = options.GetIf<FaginOptions>()) return *o;
  return FaginOptions{};
}

using FaginFn = Result<TopNResult> (*)(const InvertedFile&,
                                       const ScoringModel&, const Query&,
                                       size_t, const FaginOptions&);

class FaginExecutor : public StrategyExecutor {
 public:
  FaginExecutor(FaginFn fn, FaginOptions options)
      : fn_(fn), options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.ValidateHasFile("Fagin sorted access"));
    return fn_(*context.file, *context.model, query, n, options_);
  }

 private:
  FaginFn fn_;
  FaginOptions options_;
};

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, FaginFn fn) {
  registry.MustRegister(strategy, name, /*safe=*/true,
                        [fn](const ExecOptions& options) {
                          return std::make_unique<FaginExecutor>(
                              fn, OptionsFrom(options));
                        },
                        ExecOptionsIndexOf<FaginOptions>());
}

}  // namespace

void RegisterFaginExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kFaginFA, "fagin_fa", &FaginFA);
  RegisterOne(registry, PhysicalStrategy::kFaginTA, "fagin_ta", &FaginTA);
  RegisterOne(registry, PhysicalStrategy::kFaginNRA, "fagin_nra", &FaginNRA);
}

}  // namespace moa
