// Executors for the Fagin family (topn/fagin.h): FA, TA and NRA.
//
// All three are cursor-based: sorted access comes from
// PostingSource::OpenImpactCursor (materialized order in memory, lazy
// fragment-directory decode over a segment, live postings over a catalog
// snapshot) and random access from PostingSource::FindTf, so a context
// carrying a PostingSource streams from it and an in-memory context
// adapts the file — same code path, bit-identical results.
#include <algorithm>
#include <cmath>

#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/fagin.h"

namespace moa {
namespace {

FaginOptions OptionsFrom(const ExecOptions& options) {
  if (const FaginOptions* o = options.GetIf<FaginOptions>()) return *o;
  return FaginOptions{};
}

using FaginFn = Result<TopNResult> (*)(const PostingSource&,
                                       const ScoringModel&, const Query&,
                                       size_t, const FaginOptions&);

class FaginExecutor : public StrategyExecutor {
 public:
  FaginExecutor(FaginFn fn, FaginOptions options)
      : fn_(fn), options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return fn_(*context.postings, *context.model, query, n, options_);
    }
    return fn_(InMemoryPostingSource(context.file), *context.model, query, n,
               options_);
  }

 private:
  FaginFn fn_;
  FaginOptions options_;
};

// On impact-ordered Zipf-weighted lists the threshold collapses far faster
// than the classical independence bound suggests; calibrated against
// bench_e5: per-list depth ~ n + sqrt(cand).
CostCounters FaginTACost(const StrategyCostInputs& in) {
  const double depth = in.n + std::sqrt(in.candidates);
  const double sorted = std::min(in.volume, in.active_terms * depth);
  const double random = sorted * (in.active_terms - 1.0);
  return MakeCostEstimate(in.Sorted(sorted), in.Random(random),
                          random + sorted, sorted * in.log2_n(), 0);
}

// FA's sorted phase runs ~4-6x deeper than TA's (it cannot stop on the
// threshold), and phase 2 random-accesses every seen document in every list.
CostCounters FaginFACost(const StrategyCostInputs& in) {
  const double depth = 5.0 * (in.n + std::sqrt(in.candidates));
  const double sorted = std::min(in.volume, in.active_terms * depth);
  const double seen = std::min(in.candidates, 2.0 * sorted);
  return MakeCostEstimate(in.Sorted(sorted), in.Random(seen * in.active_terms),
                          seen * in.active_terms, seen * in.log2_n(), 0);
}

// Without random access NRA must drain most of the volume before the
// per-candidate upper bounds drop below the n-th lower bound (bench_e5:
// 40-85% of the volume) — and every sorted posting pays candidate-map
// bookkeeping: a lookup/insert, lower- and upper-bound updates (the two
// score-equivalent evaluations below) and repeated termination checks
// against the n-th lower bound. Calibrated against bench_e13: NRA runs
// ~3x heap's wall time on the mixed workload, where the raw 0.6-volume
// scan alone would predict it 2.5x *cheaper* than heap.
CostCounters FaginNRACost(const StrategyCostInputs& in) {
  const double sorted = 0.6 * in.volume;
  return MakeCostEstimate(in.Sorted(sorted), 0, 2.0 * sorted, 12.0 * sorted,
                          0);
}

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, FaginFn fn, StrategyCostFn cost) {
  PlannerHooks hooks;
  hooks.cost = cost;
  hooks.needs_active_terms = true;
  registry.MustRegister(strategy, name, /*safe=*/true,
                        [fn](const ExecOptions& options) {
                          return std::make_unique<FaginExecutor>(
                              fn, OptionsFrom(options));
                        },
                        ExecOptionsIndexOf<FaginOptions>(), hooks);
}

}  // namespace

void RegisterFaginExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kFaginFA, "fagin_fa", &FaginFA,
              &FaginFACost);
  RegisterOne(registry, PhysicalStrategy::kFaginTA, "fagin_ta", &FaginTA,
              &FaginTACost);
  RegisterOne(registry, PhysicalStrategy::kFaginNRA, "fagin_nra", &FaginNRA,
              &FaginNRACost);
}

}  // namespace moa
