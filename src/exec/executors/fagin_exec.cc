// Executors for the Fagin family (topn/fagin.h): FA, TA and NRA.
//
// All three are cursor-based: sorted access comes from
// PostingSource::OpenImpactCursor (materialized order in memory, lazy
// fragment-directory decode over a segment, live postings over a catalog
// snapshot) and random access from PostingSource::FindTf, so a context
// carrying a PostingSource streams from it and an in-memory context
// adapts the file — same code path, bit-identical results.
#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/fagin.h"

namespace moa {
namespace {

FaginOptions OptionsFrom(const ExecOptions& options) {
  if (const FaginOptions* o = options.GetIf<FaginOptions>()) return *o;
  return FaginOptions{};
}

using FaginFn = Result<TopNResult> (*)(const PostingSource&,
                                       const ScoringModel&, const Query&,
                                       size_t, const FaginOptions&);

class FaginExecutor : public StrategyExecutor {
 public:
  FaginExecutor(FaginFn fn, FaginOptions options)
      : fn_(fn), options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return fn_(*context.postings, *context.model, query, n, options_);
    }
    return fn_(InMemoryPostingSource(context.file), *context.model, query, n,
               options_);
  }

 private:
  FaginFn fn_;
  FaginOptions options_;
};

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, FaginFn fn) {
  registry.MustRegister(strategy, name, /*safe=*/true,
                        [fn](const ExecOptions& options) {
                          return std::make_unique<FaginExecutor>(
                              fn, OptionsFrom(options));
                        },
                        ExecOptionsIndexOf<FaginOptions>());
}

}  // namespace

void RegisterFaginExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kFaginFA, "fagin_fa", &FaginFA);
  RegisterOne(registry, PhysicalStrategy::kFaginTA, "fagin_ta", &FaginTA);
  RegisterOne(registry, PhysicalStrategy::kFaginNRA, "fagin_nra", &FaginNRA);
}

}  // namespace moa
