// Executors for the paper's Step-1 fragment strategies
// (topn/fragment_topn.h): small-fragment-only, quality-switch with a full
// large-fragment scan, and quality-switch with sparse-index probes.
//
// Cursor-based: a context carrying a PostingSource (segment or catalog
// snapshot) streams from it; an in-memory context adapts the file. Both
// still require a Fragmentation — the engine derives one from live
// statistics for catalog snapshots (see MmDatabase).
#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/fragment_topn.h"

namespace moa {
namespace {

class SmallFragmentExecutor : public StrategyExecutor {
 public:
  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate(/*needs_fragmentation=*/true));
    if (context.postings != nullptr) {
      return SmallFragmentTopN(*context.postings, *context.fragmentation,
                               *context.model, query, n);
    }
    return SmallFragmentTopN(InMemoryPostingSource(context.file),
                             *context.fragmentation, *context.model, query,
                             n);
  }
};

class QualitySwitchExecutor : public StrategyExecutor {
 public:
  explicit QualitySwitchExecutor(QualitySwitchOptions options)
      : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate(/*needs_fragmentation=*/true));
    QualitySwitchOptions opts = options_;
    if (opts.sparse_cache == nullptr) opts.sparse_cache = context.sparse_cache;
    if (context.postings != nullptr) {
      return QualitySwitchTopN(*context.postings, *context.fragmentation,
                               *context.model, query, n, opts);
    }
    return QualitySwitchTopN(InMemoryPostingSource(context.file),
                             *context.fragmentation, *context.model, query,
                             n, opts);
  }

 private:
  QualitySwitchOptions options_;
};

void RegisterSwitch(StrategyRegistry& registry, PhysicalStrategy strategy,
                    const char* name, bool safe, LargeFragmentMode mode) {
  registry.MustRegister(
      strategy, name, safe,
      [mode](const ExecOptions& options) {
        QualitySwitchOptions opts;
        if (const QualitySwitchOptions* o =
                options.GetIf<QualitySwitchOptions>()) {
          opts = *o;
        } else {
          opts.switch_threshold = options.switch_threshold;
        }
        opts.mode = mode;
        return std::make_unique<QualitySwitchExecutor>(opts);
      },
      ExecOptionsIndexOf<QualitySwitchOptions>());
}

}  // namespace

void RegisterFragmentExecutors(StrategyRegistry& registry) {
  registry.MustRegister(PhysicalStrategy::kSmallFragment, "small_fragment",
                        /*safe=*/false, [](const ExecOptions&) {
                          return std::make_unique<SmallFragmentExecutor>();
                        });
  RegisterSwitch(registry, PhysicalStrategy::kQualitySwitchFull,
                 "quality_switch_full", /*safe=*/true,
                 LargeFragmentMode::kFullScan);
  RegisterSwitch(registry, PhysicalStrategy::kQualitySwitchSparse,
                 "quality_switch_sparse", /*safe=*/false,
                 LargeFragmentMode::kSparseProbe);
}

}  // namespace moa
