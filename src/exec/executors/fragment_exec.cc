// Executors for the paper's Step-1 fragment strategies
// (topn/fragment_topn.h): small-fragment-only, quality-switch with a full
// large-fragment scan, and quality-switch with sparse-index probes.
//
// Cursor-based: a context carrying a PostingSource (segment or catalog
// snapshot) streams from it; an in-memory context adapts the file. Both
// still require a Fragmentation — the engine derives one from live
// statistics for catalog snapshots (see MmDatabase).
#include <algorithm>

#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/fragment_topn.h"

namespace moa {
namespace {

class SmallFragmentExecutor : public StrategyExecutor {
 public:
  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate(/*needs_fragmentation=*/true));
    if (context.postings != nullptr) {
      return SmallFragmentTopN(*context.postings, *context.fragmentation,
                               *context.model, query, n);
    }
    return SmallFragmentTopN(InMemoryPostingSource(context.file),
                             *context.fragmentation, *context.model, query,
                             n);
  }
};

class QualitySwitchExecutor : public StrategyExecutor {
 public:
  explicit QualitySwitchExecutor(QualitySwitchOptions options)
      : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate(/*needs_fragmentation=*/true));
    QualitySwitchOptions opts = options_;
    if (opts.sparse_cache == nullptr) opts.sparse_cache = context.sparse_cache;
    if (context.postings != nullptr) {
      return QualitySwitchTopN(*context.postings, *context.fragmentation,
                               *context.model, query, n, opts);
    }
    return QualitySwitchTopN(InMemoryPostingSource(context.file),
                             *context.fragmentation, *context.model, query,
                             n, opts);
  }

 private:
  QualitySwitchOptions options_;
};

CostCounters SmallFragmentCost(const StrategyCostInputs& in) {
  const double vs = in.small_volume;
  return MakeCostEstimate(in.Seq(vs), 0, vs, vs + in.n * in.log2_n(), 0);
}

// Assume the check fires (frequent terms almost always can shift the top
// n); cost = both passes + final selection.
CostCounters QualitySwitchFullCost(const StrategyCostInputs& in) {
  const double total = in.small_volume + in.large_volume;
  return MakeCostEstimate(
      in.Seq(total), 0, total,
      in.candidates + in.n * in.log2_n() * in.log2_candidates(), 0);
}

// Per probe: one directory descent + half a block scan.
CostCounters QualitySwitchSparseCost(const StrategyCostInputs& in) {
  const double pool = 4.0 * in.n;
  const double probes = in.large_active_terms * pool;
  const double block = 64.0;
  return MakeCostEstimate(in.Seq(in.small_volume + probes * block / 2.0),
                          in.Random(probes), in.small_volume + probes,
                          in.candidates + in.n * in.log2_n(), 0);
}

// Quality constants: expected overlap@n loss per unit of postings mass the
// strategy never (fully) reads, measured against exact safe runs on the
// e13 lifecycle corpus (overlap@10 of small_fragment ~0.9 at ~30% large
// share; sparse probes recover most of that because the pool re-reads the
// large fragment's strongest candidates).
constexpr double kSmallFragmentMissWeight = 0.35;
constexpr double kSparseProbeMissWeight = 0.08;

double LargeShare(const StrategyCostInputs& in) {
  const double total = in.small_volume + in.large_volume;
  return total <= 0.0 ? 0.0 : in.large_volume / total;
}

double SmallFragmentQuality(const StrategyCostInputs& in) {
  return std::max(0.0, 1.0 - kSmallFragmentMissWeight * LargeShare(in));
}

double QualitySwitchSparseQuality(const StrategyCostInputs& in) {
  return std::max(0.0, 1.0 - kSparseProbeMissWeight * LargeShare(in));
}

void RegisterSwitch(StrategyRegistry& registry, PhysicalStrategy strategy,
                    const char* name, bool safe, LargeFragmentMode mode,
                    const PlannerHooks& hooks) {
  registry.MustRegister(
      strategy, name, safe,
      [mode](const ExecOptions& options) {
        QualitySwitchOptions opts;
        if (const QualitySwitchOptions* o =
                options.GetIf<QualitySwitchOptions>()) {
          opts = *o;
        } else {
          opts.switch_threshold = options.switch_threshold;
        }
        opts.mode = mode;
        return std::make_unique<QualitySwitchExecutor>(opts);
      },
      ExecOptionsIndexOf<QualitySwitchOptions>(), hooks);
}

}  // namespace

void RegisterFragmentExecutors(StrategyRegistry& registry) {
  PlannerHooks small_hooks;
  small_hooks.cost = &SmallFragmentCost;
  small_hooks.quality = &SmallFragmentQuality;
  small_hooks.needs_fragmentation = true;
  registry.MustRegister(PhysicalStrategy::kSmallFragment, "small_fragment",
                        /*safe=*/false,
                        [](const ExecOptions&) {
                          return std::make_unique<SmallFragmentExecutor>();
                        },
                        kNoStrategyOptions, small_hooks);

  PlannerHooks full_hooks;
  full_hooks.cost = &QualitySwitchFullCost;
  full_hooks.needs_fragmentation = true;
  RegisterSwitch(registry, PhysicalStrategy::kQualitySwitchFull,
                 "quality_switch_full", /*safe=*/true,
                 LargeFragmentMode::kFullScan, full_hooks);

  PlannerHooks sparse_hooks;
  sparse_hooks.cost = &QualitySwitchSparseCost;
  sparse_hooks.quality = &QualitySwitchSparseQuality;
  sparse_hooks.needs_fragmentation = true;
  RegisterSwitch(registry, PhysicalStrategy::kQualitySwitchSparse,
                 "quality_switch_sparse", /*safe=*/false,
                 LargeFragmentMode::kSparseProbe, sparse_hooks);
}

}  // namespace moa
