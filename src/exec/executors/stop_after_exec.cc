// Executors for Carey–Kossmann STOP AFTER placements (topn/stop_after.h).
#include <algorithm>

#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/stop_after.h"

namespace moa {
namespace {

class StopAfterExecutor : public StrategyExecutor {
 public:
  explicit StopAfterExecutor(StopAfterOptions options) : options_(options) {}

  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return StopAfterTopN(*context.postings, *context.model, query, n,
                           options_);
    }
    return StopAfterTopN(*context.file, *context.model, query, n, options_);
  }

 private:
  StopAfterOptions options_;
};

CostCounters StopAfterConsCost(const StrategyCostInputs& in) {
  return MakeCostEstimate(in.Seq(in.volume), 0, in.volume,
                          in.candidates + in.n * in.log2_candidates(),
                          16.0 * in.candidates);
}

CostCounters StopAfterAggrCost(const StrategyCostInputs& in) {
  const double survivors = std::min(in.candidates, 1.5 * in.n);
  return MakeCostEstimate(in.Seq(in.volume), in.Random(512), in.volume,
                          in.candidates + survivors * in.log2_n(),
                          16.0 * survivors);
}

void RegisterOne(StrategyRegistry& registry, PhysicalStrategy strategy,
                 const char* name, StopAfterPolicy policy,
                 StrategyCostFn cost) {
  registry.MustRegister(
      strategy, name, /*safe=*/true,
      [policy](const ExecOptions& options) {
        StopAfterOptions opts;
        if (const StopAfterOptions* o = options.GetIf<StopAfterOptions>()) {
          opts = *o;
        }
        opts.policy = policy;
        return std::make_unique<StopAfterExecutor>(opts);
      },
      ExecOptionsIndexOf<StopAfterOptions>(), PlannerHooks{cost});
}

}  // namespace

void RegisterStopAfterExecutors(StrategyRegistry& registry) {
  RegisterOne(registry, PhysicalStrategy::kStopAfterConservative,
              "stop_after_cons", StopAfterPolicy::kConservative,
              &StopAfterConsCost);
  RegisterOne(registry, PhysicalStrategy::kStopAfterAggressive,
              "stop_after_aggr", StopAfterPolicy::kAggressive,
              &StopAfterAggrCost);
}

}  // namespace moa
