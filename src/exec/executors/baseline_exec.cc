// Executors for the baseline strategies (topn/baselines.h): the
// unoptimized full sort and the bounded-heap scan. Neither takes typed
// strategy options, so both register with the default kNoStrategyOptions
// and the registry rejects any typed payload aimed at them.
//
// Both are cursor-based: when the context carries a PostingSource (e.g.
// an mmap-backed segment) they stream from it, otherwise they adapt the
// in-memory file — same code path, bit-identical results.
#include "exec/builtin.h"
#include "exec/registry.h"
#include "topn/baselines.h"

namespace moa {
namespace {

class FullSortExecutor : public StrategyExecutor {
 public:
  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return FullSortTopN(*context.postings, *context.model, query, n);
    }
    return FullSortTopN(*context.file, *context.model, query, n);
  }
};

class HeapExecutor : public StrategyExecutor {
 public:
  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n) const override {
    MOA_RETURN_NOT_OK(context.Validate());
    if (context.postings != nullptr) {
      return HeapTopN(*context.postings, *context.model, query, n);
    }
    return HeapTopN(*context.file, *context.model, query, n);
  }
};

CostCounters FullSortCost(const StrategyCostInputs& in) {
  return MakeCostEstimate(in.Seq(in.volume), 0, in.volume,
                          in.candidates * in.log2_candidates(), 0);
}

// One heap-offer per candidate; offers past the n-th cost ~log n but most
// candidates fail the cheap threshold compare.
CostCounters HeapCost(const StrategyCostInputs& in) {
  return MakeCostEstimate(
      in.Seq(in.volume), 0, in.volume,
      in.candidates + in.n * in.log2_n() * in.log2_candidates(), 0);
}

}  // namespace

void RegisterBaselineExecutors(StrategyRegistry& registry) {
  registry.MustRegister(PhysicalStrategy::kFullSort, "full_sort",
                        /*safe=*/true,
                        [](const ExecOptions&) {
                          return std::make_unique<FullSortExecutor>();
                        },
                        kNoStrategyOptions, PlannerHooks{&FullSortCost});
  registry.MustRegister(PhysicalStrategy::kHeap, "heap", /*safe=*/true,
                        [](const ExecOptions&) {
                          return std::make_unique<HeapExecutor>();
                        },
                        kNoStrategyOptions, PlannerHooks{&HeapCost});
}

}  // namespace moa
