// StrategyExecutor: the uniform interface every physical top-N strategy is
// executed through, plus the unified ExecOptions bundle.
//
// The legacy free functions in src/topn/ keep their heterogeneous
// signatures (they remain the implementation and the source-compatible
// API); executors adapt them to one shape so the engine, the planner's
// RetrievalPlan::Execute, Explain and the benches all dispatch identically
// through the StrategyRegistry.
#ifndef MOA_EXEC_EXECUTOR_H_
#define MOA_EXEC_EXECUTOR_H_

#include <cstddef>
#include <type_traits>
#include <variant>

#include "exec/exec_context.h"
#include "ir/query_gen.h"
#include "topn/fagin.h"
#include "topn/fragment_topn.h"
#include "topn/maxscore.h"
#include "topn/probabilistic.h"
#include "topn/stop_after.h"
#include "topn/topn_result.h"

namespace moa {

/// The one-of strategy-specific option payload of ExecOptions. Alternative
/// 0 (monostate) means "common knobs only".
using StrategyOptionsVariant =
    std::variant<std::monostate, FaginOptions, StopAfterOptions,
                 ProbabilisticOptions, QualitySwitchOptions, MaxScoreOptions>;

namespace exec_detail {
template <typename T, typename Variant>
struct VariantIndexOf;
template <typename T, typename... Ts>
struct VariantIndexOf<T, std::variant<Ts...>> {
  static constexpr size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Ts>...};
    size_t i = 0;
    for (bool m : matches) {
      if (m) break;
      ++i;
    }
    return i;
  }();
  static_assert(value < sizeof...(Ts), "T is not an ExecOptions alternative");
};
}  // namespace exec_detail

/// Variant index of strategy-option type T — the registry's currency for
/// "which typed options does this strategy accept" (see
/// StrategyRegistry::Register).
template <typename T>
constexpr size_t ExecOptionsIndexOf() {
  return exec_detail::VariantIndexOf<T, StrategyOptionsVariant>::value;
}

/// Registration value for strategies that take no typed options: only the
/// monostate alternative (and the common knobs) are accepted for them.
inline constexpr size_t kNoStrategyOptions = 0;

/// \brief Per-execution tuning carried to an executor factory.
///
/// `strategy_options` carries at most one strategy-specific option struct.
/// The registry rejects an execution whose typed options do not belong to
/// the target strategy's family (an InvalidArgument instead of a silent
/// ignore); a factory whose family matches uses them and falls back to
/// per-strategy defaults (seeded from the common knobs below) otherwise.
///
/// The common knobs are *hints*, not typed options: every strategy accepts
/// them and strategies they do not apply to ignore them by design.
/// `switch_threshold` is consulted by the fragment strategies only — this
/// is what lets callers that only know the common knobs, e.g.
/// MmDatabase::Search, dispatch to any planner-chosen strategy without
/// per-strategy code.
struct ExecOptions {
  /// Quality-switch threshold used by fragment strategies when no explicit
  /// QualitySwitchOptions is supplied; ignored by every other strategy.
  double switch_threshold = 0.0;

  StrategyOptionsVariant strategy_options;

  /// The strategy-specific options if they are of type T, else nullptr.
  template <typename T>
  const T* GetIf() const {
    return std::get_if<T>(&strategy_options);
  }
};

/// \brief Uniform execution interface over all physical strategies.
class StrategyExecutor {
 public:
  virtual ~StrategyExecutor() = default;

  /// Runs the strategy for (query, n) against the borrowed context.
  virtual Result<TopNResult> Execute(const ExecContext& context,
                                     const Query& query, size_t n) const = 0;
};

}  // namespace moa

#endif  // MOA_EXEC_EXECUTOR_H_
