// StrategyExecutor: the uniform interface every physical top-N strategy is
// executed through, plus the unified ExecOptions bundle.
//
// The legacy free functions in src/topn/ keep their heterogeneous
// signatures (they remain the implementation and the source-compatible
// API); executors adapt them to one shape so the engine, the planner's
// RetrievalPlan::Execute, Explain and the benches all dispatch identically
// through the StrategyRegistry.
#ifndef MOA_EXEC_EXECUTOR_H_
#define MOA_EXEC_EXECUTOR_H_

#include <variant>

#include "exec/exec_context.h"
#include "ir/query_gen.h"
#include "topn/fagin.h"
#include "topn/fragment_topn.h"
#include "topn/maxscore.h"
#include "topn/probabilistic.h"
#include "topn/stop_after.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief Per-execution tuning carried to an executor factory.
///
/// `strategy_options` carries at most one strategy-specific option struct;
/// a factory uses it when the alternative matches its strategy family and
/// falls back to per-strategy defaults (seeded from the common knobs
/// below) otherwise. This is what lets callers that only know the common
/// knobs — e.g. MmDatabase::Search with its switch_threshold — dispatch
/// without per-strategy code.
struct ExecOptions {
  /// Quality-switch threshold used by fragment strategies when no explicit
  /// QualitySwitchOptions is supplied.
  double switch_threshold = 0.0;

  std::variant<std::monostate, FaginOptions, StopAfterOptions,
               ProbabilisticOptions, QualitySwitchOptions, MaxScoreOptions>
      strategy_options;

  /// The strategy-specific options if they are of type T, else nullptr.
  template <typename T>
  const T* GetIf() const {
    return std::get_if<T>(&strategy_options);
  }
};

/// \brief Uniform execution interface over all physical strategies.
class StrategyExecutor {
 public:
  virtual ~StrategyExecutor() = default;

  /// Runs the strategy for (query, n) against the borrowed context.
  virtual Result<TopNResult> Execute(const ExecContext& context,
                                     const Query& query, size_t n) const = 0;
};

}  // namespace moa

#endif  // MOA_EXEC_EXECUTOR_H_
