// Per-strategy planner hooks: the cost and quality formulas a strategy
// registers alongside its executor factory.
//
// The Step-3 cost model used to keep one big switch over all strategies in
// optimizer/cost_model.cc; that knowledge now lives with each executor
// (exec/executors/*.cc) as a PlannerHooks bundle on its StrategyRegistry
// entry. Two consumers read the hooks through the registry:
//
//   - CostModel (optimizer/cost_model.h) with *neutral* storage signals —
//     bit-identical to the historical formulas, calibrated against the
//     e5/e9/e11 benches;
//   - StrategyPlanner (optimizer/strategy_planner.h) with signals derived
//     from the live snapshot (codec decode cost, tombstone density,
//     segment count, fragment-directory presence), which is what makes the
//     per-query adaptive choice storage-aware.
//
// Formulas are pure functions of StrategyCostInputs: no executor state, no
// storage access — planning a query must never touch a posting.
#ifndef MOA_EXEC_PLAN_HOOKS_H_
#define MOA_EXEC_PLAN_HOOKS_H_

#include <cmath>
#include <cstdint>

#include "common/cost_ticker.h"

namespace moa {

/// \brief Everything a cost/quality hook may consult, pre-digested.
///
/// Cardinality fields come from the CardinalityEstimator over *live*
/// statistics (a catalog snapshot's df, or the static file's). Storage
/// fields default to the neutral static in-memory configuration, where
/// every factor is exactly 1 (or 0): with defaults, Seq/Sorted/Random are
/// the identity and the formulas reproduce the historical cost model
/// bit-for-bit.
struct StrategyCostInputs {
  // ---- query cardinality (live statistics) ----
  double volume = 0.0;        ///< total postings volume of the query
  double candidates = 1.0;    ///< expected distinct candidates, >= 1
  double n = 1.0;             ///< requested top-N, >= 1
  double active_terms = 1.0;  ///< query terms with df > 0, >= 1

  // ---- fragment split (zeros when no fragmentation is installed) ----
  bool has_fragmentation = false;
  double small_volume = 0.0;        ///< volume in the small fragment
  double large_volume = 0.0;        ///< volume in the large fragment
  double large_active_terms = 0.0;  ///< active terms in the large fragment

  // ---- storage signals (neutral = static in-memory inverted file) ----
  /// Per-posting sequential read multiplier: >1 when postings are decoded
  /// from compressed blocks (varbyte costs more than bit-packed).
  double decode_factor = 1.0;
  /// Dead postings streamed-and-skipped per live posting (tombstoned docs
  /// keep their slots until a merge reclaims them).
  double tombstone_overhead = 0.0;
  /// Point-lookup multiplier: locating the owning component of a doc id
  /// across a multi-segment snapshot makes random access costlier.
  double random_access_factor = 1.0;
  /// Impact-ordered (sorted) access multiplier: 1 when the storage serves
  /// it natively (in-memory impact orders, MOAFRG01 fragment directory);
  /// larger when sorted access must decode and sort whole lists.
  double sorted_access_factor = 1.0;

  double log2_candidates() const { return std::log2(candidates + 2.0); }
  double log2_n() const { return std::log2(n + 2.0); }

  /// Cost of sequentially streaming `postings` live postings.
  double Seq(double postings) const {
    return postings * decode_factor * (1.0 + tombstone_overhead);
  }
  /// Cost of consuming `postings` postings in impact order.
  double Sorted(double postings) const {
    return Seq(postings) * sorted_access_factor;
  }
  /// Cost of `probes` point lookups.
  double Random(double probes) const {
    return probes * random_access_factor;
  }
};

/// Builds the counter bundle the way the historical cost model did
/// (truncating casts included, so legacy estimates stay bit-identical).
inline CostCounters MakeCostEstimate(double seq, double rnd, double score,
                                     double cmp, double bytes) {
  CostCounters c;
  c.sequential_reads = static_cast<int64_t>(seq);
  c.random_reads = static_cast<int64_t>(rnd);
  c.score_evals = static_cast<int64_t>(score);
  c.compares = static_cast<int64_t>(cmp);
  c.bytes_touched = static_cast<int64_t>(bytes);
  return c;
}

/// Predicts the work of one execution. Pure; must not touch storage.
using StrategyCostFn = CostCounters (*)(const StrategyCostInputs&);

/// Predicts answer quality as expected overlap@n against the exact top-N
/// in [0, 1]. Only unsafe strategies register one; safe strategies are
/// exact by definition (the planner uses 1.0 when the hook is null).
using StrategyQualityFn = double (*)(const StrategyCostInputs&);

/// \brief Planner-facing metadata registered with every strategy.
struct PlannerHooks {
  /// Null = the planner cannot cost this strategy and never picks it
  /// un-forced (custom strategies without a model stay forced-only).
  StrategyCostFn cost = nullptr;
  /// Null = exact (predicted quality 1.0).
  StrategyQualityFn quality = nullptr;
  /// Requires ExecContext::fragmentation (the planner also needs the
  /// fragment split to cost it).
  bool needs_fragmentation = false;
  /// Requires >= 1 query term with df > 0 to execute.
  bool needs_active_terms = false;
};

}  // namespace moa

#endif  // MOA_EXEC_PLAN_HOOKS_H_
