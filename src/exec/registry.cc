#include "exec/registry.h"

#include <cstdio>
#include <cstdlib>

#include "exec/builtin.h"

namespace moa {

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    RegisterBuiltinExecutors(*r);
    return r;
  }();
  return *registry;
}

const char* ExecOptionsVariantName(size_t index) {
  switch (index) {
    case kNoStrategyOptions: return "none";
    case ExecOptionsIndexOf<FaginOptions>(): return "FaginOptions";
    case ExecOptionsIndexOf<StopAfterOptions>(): return "StopAfterOptions";
    case ExecOptionsIndexOf<ProbabilisticOptions>():
      return "ProbabilisticOptions";
    case ExecOptionsIndexOf<QualitySwitchOptions>():
      return "QualitySwitchOptions";
    case ExecOptionsIndexOf<MaxScoreOptions>(): return "MaxScoreOptions";
  }
  return "?";
}

Status StrategyRegistry::Register(PhysicalStrategy strategy, std::string name,
                                  bool safe, Factory factory,
                                  size_t accepts_options,
                                  PlannerHooks planner) {
  if (!factory) {
    return Status::InvalidArgument("null factory for strategy " + name);
  }
  if (entries_.count(strategy) > 0) {
    return Status::InvalidArgument("strategy already registered: " + name);
  }
  if (FromName(name).has_value()) {
    return Status::InvalidArgument("strategy name already taken: " + name);
  }
  entries_.emplace(strategy, Entry{std::move(name), safe, std::move(factory),
                                   accepts_options, planner});
  return Status::OK();
}

void StrategyRegistry::MustRegister(PhysicalStrategy strategy,
                                    std::string name, bool safe,
                                    Factory factory, size_t accepts_options,
                                    PlannerHooks planner) {
  const std::string shown = name;
  Status st = Register(strategy, std::move(name), safe, std::move(factory),
                       accepts_options, planner);
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: registering strategy '%s': %s\n",
                 shown.c_str(), st.ToString().c_str());
    std::abort();
  }
}

bool StrategyRegistry::Has(PhysicalStrategy strategy) const {
  return entries_.count(strategy) > 0;
}

const StrategyRegistry::Entry* StrategyRegistry::Find(
    PhysicalStrategy strategy) const {
  auto it = entries_.find(strategy);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<PhysicalStrategy> StrategyRegistry::FromName(
    std::string_view name) const {
  for (const auto& [strategy, entry] : entries_) {
    if (entry.name == name) return strategy;
  }
  return std::nullopt;
}

std::vector<PhysicalStrategy> StrategyRegistry::Registered() const {
  std::vector<PhysicalStrategy> out;
  out.reserve(entries_.size());
  for (const auto& [strategy, entry] : entries_) out.push_back(strategy);
  return out;
}

Result<std::unique_ptr<StrategyExecutor>> StrategyRegistry::Make(
    PhysicalStrategy strategy, const ExecOptions& options) const {
  const Entry* entry = Find(strategy);
  if (entry == nullptr) {
    return Status::NotFound("no executor registered for strategy " +
                            std::to_string(static_cast<int>(strategy)));
  }
  // Typed options of the wrong family would be silently ignored by the
  // factory — reject them instead (the common knobs in ExecOptions are
  // hints every strategy accepts; see executor.h).
  const size_t supplied = options.strategy_options.index();
  if (supplied != kNoStrategyOptions && supplied != entry->accepts_options) {
    // Name the variant the strategy *does* accept, not just the mismatch —
    // the caller's fix is to send that type (or none at all).
    const std::string accepted =
        entry->accepts_options == kNoStrategyOptions
            ? "no typed strategy options (common knobs only)"
            : std::string(ExecOptionsVariantName(entry->accepts_options)) +
                  " strategy options";
    return Status::InvalidArgument(
        std::string("strategy '") + entry->name + "' accepts " + accepted +
        "; got " + ExecOptionsVariantName(supplied));
  }
  std::unique_ptr<StrategyExecutor> executor = entry->factory(options);
  if (executor == nullptr) {
    return Status::Internal("factory returned null for " + entry->name);
  }
  return executor;
}

Result<TopNResult> StrategyRegistry::Execute(PhysicalStrategy strategy,
                                             const ExecContext& context,
                                             const Query& query, size_t n,
                                             const ExecOptions& options) const {
  Result<std::unique_ptr<StrategyExecutor>> executor = Make(strategy, options);
  if (!executor.ok()) return executor.status();
  CostScope scope;
  Result<TopNResult> out = executor.ValueOrDie()->Execute(context, query, n);
  if (out.ok()) {
    // Operators report their own CostScope delta; backfill from the
    // registry's frame for executors that do not.
    TopNResult& result = out.ValueOrDie();
    if (result.stats.cost.Scalar() == 0.0) {
      result.stats.cost = scope.Snapshot();
    }
  }
  return out;
}

}  // namespace moa
