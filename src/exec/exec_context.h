// ExecContext: everything a physical strategy needs to run.
//
// The engine (or a bench with its own fragmentation / sparse cache) fills
// one of these and hands it to the StrategyRegistry; executors never reach
// back into MmDatabase. Work accounting flows through the thread-local
// CostTicker: the registry wraps every execution in a CostScope, so
// TopNResult.stats.cost is populated even for operators that do not keep
// their own frame.
//
// Concurrency contract: one ExecContext (or copies of it) may be used from
// many threads at once — this is what MmDatabase::SearchBatch does. The
// inverted file, scoring model and fragmentation are borrowed *read-only*
// (const) and must not be mutated while executions are in flight; the
// sparse cache is the only shared mutable state and synchronizes
// internally (build-once / read-many, see storage/sparse_index_cache.h).
// When the engine serves a mutable index (segment attach/detach, the
// IndexCatalog), each query's context carries a shared_ptr snapshot of the
// storage it reads (`postings_owner`), so in-flight executions keep their
// storage alive across concurrent swaps.
#ifndef MOA_EXEC_EXEC_CONTEXT_H_
#define MOA_EXEC_EXEC_CONTEXT_H_

#include <memory>

#include "common/cost_ticker.h"
#include "common/status.h"
#include "ir/scoring.h"
#include "storage/fragmentation.h"
#include "storage/inverted_file.h"
#include "storage/segment/posting_cursor.h"
#include "storage/sparse_index_cache.h"

namespace moa {

/// \brief Borrowed execution state shared by all strategy executors.
///
/// All raw pointers are non-owning; `model` plus at least one of
/// `file`/`postings` are required, the rest are optional capabilities a
/// strategy may demand via Validate().
struct ExecContext {
  /// In-memory inverted file. May be null when `postings` is set: a
  /// catalog-backed context has no materialized InvertedFile; every
  /// executor then streams from `postings` (all strategies are
  /// cursor-based since the fragment/Fagin/probabilistic families moved
  /// onto the PostingSource API).
  const InvertedFile* file = nullptr;
  const ScoringModel* model = nullptr;
  /// Step-1 fragmentation; required by fragment strategies only.
  const Fragmentation* fragmentation = nullptr;
  /// Shared sparse-index cache for kSparseProbe (filled on demand, safe
  /// for concurrent executions; nullptr makes the probe build throw-away
  /// indexes).
  SparseIndexCache* sparse_cache = nullptr;
  /// Optional representation-agnostic posting storage (an mmap-backed
  /// MOAIF02 segment, or a multi-segment catalog snapshot). When set,
  /// every executor streams postings from here instead of `file`; when
  /// null they adapt `file` through InMemoryPostingSource. When both are
  /// set they must describe the same collection.
  const PostingSource* postings = nullptr;
  /// Optional owner of `postings` (and anything it depends on — model,
  /// statistics view, catalog state). Copying the context copies the
  /// shared_ptr, so a query holding any copy keeps its storage snapshot
  /// alive even if the engine swaps segments or mutates the catalog
  /// mid-flight. Null for purely borrowed static contexts.
  std::shared_ptr<const void> postings_owner;

  /// OK iff the required pieces are present.
  Status Validate(bool needs_fragmentation = false) const {
    if (file == nullptr && postings == nullptr) {
      return Status::FailedPrecondition(
          "ExecContext: missing posting storage (no inverted file and no "
          "posting source)");
    }
    if (model == nullptr) {
      return Status::FailedPrecondition("ExecContext: missing scoring model");
    }
    if (needs_fragmentation && fragmentation == nullptr) {
      return Status::FailedPrecondition("ExecContext: missing fragmentation");
    }
    return Status::OK();
  }
};

}  // namespace moa

#endif  // MOA_EXEC_EXEC_CONTEXT_H_
