// ExecContext: everything a physical strategy needs to run.
//
// The engine (or a bench with its own fragmentation / sparse cache) fills
// one of these and hands it to the StrategyRegistry; executors never reach
// back into MmDatabase. Work accounting flows through the thread-local
// CostTicker: the registry wraps every execution in a CostScope, so
// TopNResult.stats.cost is populated even for operators that do not keep
// their own frame.
//
// Concurrency contract: one ExecContext (or copies of it) may be used from
// many threads at once — this is what MmDatabase::SearchBatch does. The
// inverted file, scoring model and fragmentation are borrowed *read-only*
// (const) and must not be mutated while executions are in flight; the
// sparse cache is the only shared mutable state and synchronizes
// internally (build-once / read-many, see storage/sparse_index_cache.h).
#ifndef MOA_EXEC_EXEC_CONTEXT_H_
#define MOA_EXEC_EXEC_CONTEXT_H_

#include "common/cost_ticker.h"
#include "common/status.h"
#include "ir/scoring.h"
#include "storage/fragmentation.h"
#include "storage/inverted_file.h"
#include "storage/segment/posting_cursor.h"
#include "storage/sparse_index_cache.h"

namespace moa {

/// \brief Borrowed execution state shared by all strategy executors.
///
/// All pointers are non-owning; `file` and `model` are required, the rest
/// are optional capabilities a strategy may demand via Validate().
struct ExecContext {
  const InvertedFile* file = nullptr;
  const ScoringModel* model = nullptr;
  /// Step-1 fragmentation; required by fragment strategies only.
  const Fragmentation* fragmentation = nullptr;
  /// Shared sparse-index cache for kSparseProbe (filled on demand, safe
  /// for concurrent executions; nullptr makes the probe build throw-away
  /// indexes).
  SparseIndexCache* sparse_cache = nullptr;
  /// Optional representation-agnostic posting storage (e.g. an mmap-backed
  /// MOAIF02 segment, storage/segment/segment_reader.h). When set, the
  /// cursor-based executors (baselines, max-score, stop-after) stream
  /// postings from here instead of `file`; when null they adapt `file`
  /// through InMemoryPostingSource. `file` stays required either way —
  /// collection statistics, impact orders and fragmentation are
  /// in-memory-only. Must describe the same collection as `file`.
  const PostingSource* postings = nullptr;

  /// OK iff the required pieces are present.
  Status Validate(bool needs_fragmentation = false) const {
    if (file == nullptr) {
      return Status::FailedPrecondition("ExecContext: missing inverted file");
    }
    if (model == nullptr) {
      return Status::FailedPrecondition("ExecContext: missing scoring model");
    }
    if (needs_fragmentation && fragmentation == nullptr) {
      return Status::FailedPrecondition("ExecContext: missing fragmentation");
    }
    return Status::OK();
  }
};

}  // namespace moa

#endif  // MOA_EXEC_EXEC_CONTEXT_H_
