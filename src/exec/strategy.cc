#include "exec/strategy.h"

#include "exec/registry.h"

namespace moa {

const char* StrategyName(PhysicalStrategy s) {
  const StrategyRegistry::Entry* entry = StrategyRegistry::Global().Find(s);
  return entry != nullptr ? entry->name.c_str() : "?";
}

std::optional<PhysicalStrategy> StrategyFromName(std::string_view name) {
  return StrategyRegistry::Global().FromName(name);
}

std::vector<PhysicalStrategy> AllStrategies() {
  return StrategyRegistry::Global().Registered();
}

bool IsSafeStrategy(PhysicalStrategy s) {
  const StrategyRegistry::Entry* entry = StrategyRegistry::Global().Find(s);
  // Unregistered strategies are treated as unsafe so a safe-only planner
  // can never pick something it cannot execute exactly.
  return entry != nullptr && entry->safe;
}

}  // namespace moa
