// Physical top-N strategy identifiers and name helpers.
//
// This is the bottom of the exec layer: the enum every other layer (topn
// wrappers aside) talks in. The name/safety metadata behind StrategyName,
// IsSafeStrategy and AllStrategies lives in the StrategyRegistry entries
// (see exec/registry.h), so adding a strategy means adding an enum value
// here plus one registry registration — nothing else enumerates strategies.
#ifndef MOA_EXEC_STRATEGY_H_
#define MOA_EXEC_STRATEGY_H_

#include <optional>
#include <string_view>
#include <vector>

namespace moa {

/// Physical execution strategies the planner can choose among.
enum class PhysicalStrategy {
  kFullSort = 0,
  kHeap,
  kFaginFA,
  kFaginTA,
  kFaginNRA,
  kStopAfterConservative,
  kStopAfterAggressive,
  kProbabilistic,
  kSmallFragment,          // unsafe
  kQualitySwitchFull,      // safe: small pass + checked large full scan
  kQualitySwitchSparse,    // approximate: large fragment via sparse probes
  kMaxScore,               // safe: term-at-a-time max-score pruning
  kQuitPrune,              // unsafe: Moffat-Zobel-style QUIT on the bound
};

/// Registry-backed display name ("?" for unregistered values).
const char* StrategyName(PhysicalStrategy s);

/// Inverse of StrategyName: resolves a strategy by its registered name.
std::optional<PhysicalStrategy> StrategyFromName(std::string_view name);

/// All registered strategies, in enum order.
std::vector<PhysicalStrategy> AllStrategies();

/// True if the strategy always returns the exact top-N ranking or set.
bool IsSafeStrategy(PhysicalStrategy s);

}  // namespace moa

#endif  // MOA_EXEC_STRATEGY_H_
