#include "exec/builtin.h"

#include "exec/registry.h"

namespace moa {

void RegisterBuiltinExecutors(StrategyRegistry& registry) {
  RegisterBaselineExecutors(registry);
  RegisterFaginExecutors(registry);
  RegisterStopAfterExecutors(registry);
  RegisterProbabilisticExecutors(registry);
  RegisterFragmentExecutors(registry);
  RegisterMaxScoreExecutors(registry);
}

}  // namespace moa
