// Status and Result<T>: exception-free error propagation for the public API.
//
// The library never throws across public boundaries; fallible operations
// return Status (or Result<T> when a value is produced). Mirrors the
// Arrow/Abseil convention used throughout production database code.
#ifndef MOA_COMMON_STATUS_H_
#define MOA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace moa {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// \brief Lightweight status object: either OK or (code, message).
///
/// Copies are cheap in the OK case (no allocation). Use the factory
/// functions (`Status::OK()`, `Status::InvalidArgument(...)`) rather than
/// constructing codes by hand.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logging.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Access the value with `ValueOrDie()` (asserts OK) or check `ok()` first.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace moa

/// Propagates a non-OK status to the caller (Arrow-style).
#define MOA_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::moa::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // MOA_COMMON_STATUS_H_
