// Equi-width histogram over doubles: selectivity estimation and bench stats.
#ifndef MOA_COMMON_HISTOGRAM_H_
#define MOA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace moa {

/// \brief Equi-width histogram built in one pass over known [min, max].
///
/// Two uses in the library:
///  1. The probabilistic top-N operator (Donjerkovic–Ramakrishnan) estimates
///     the score cutoff for the N-th best object from a score histogram.
///  2. The cost model estimates range-select selectivity.
class Histogram {
 public:
  /// \param num_buckets resolution; 64–256 is plenty for cutoff estimation.
  /// Values < 1 are clamped to 1 (never divides by zero).
  Histogram(double min, double max, int num_buckets);

  /// Builds from a sample in one pass (min/max taken from the data).
  static Histogram FromData(const std::vector<double>& values,
                            int num_buckets);

  void Add(double value);

  int64_t total_count() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t bucket_count(int i) const { return buckets_[i]; }

  /// Estimated fraction of values <= x (linear interpolation in-bucket).
  double CdfAtValue(double x) const;

  /// Estimated value v such that approximately `count` values are >= v.
  /// This is the Donjerkovic–Ramakrishnan cutoff estimator.
  double ValueWithCountAbove(int64_t count) const;

  /// Estimated q-quantile (q in [0, 1]): the value below which a fraction
  /// q of the data falls. Used for batch latency percentiles (p50/p95/p99).
  /// An empty histogram returns min() for every q — the contract lazily
  /// populated latency metrics rely on; no division by zero, ever.
  double ValueAtQuantile(double q) const;

  /// Estimated number of values in [lo, hi].
  double EstimateRangeCount(double lo, double hi) const;

  std::string ToString() const;

 private:
  int BucketIndex(double value) const;

  double min_, max_, width_;
  std::vector<int64_t> buckets_;
  int64_t total_ = 0;
};

}  // namespace moa

#endif  // MOA_COMMON_HISTOGRAM_H_
