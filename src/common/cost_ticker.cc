#include "common/cost_ticker.h"

#include <sstream>

namespace moa {

CostCounters& CostTicker::Current() {
  thread_local CostCounters counters;
  return counters;
}

std::string CostCounters::ToString() const {
  std::ostringstream os;
  os << "{seq=" << sequential_reads << " rnd=" << random_reads
     << " score=" << score_evals << " cmp=" << compares
     << " bytes=" << bytes_touched << " blk_dec=" << blocks_decoded
     << " blk_skip=" << blocks_skipped;
  if (shards_visited != 0 || shards_skipped != 0) {
    os << " shard_vis=" << shards_visited << " shard_skip=" << shards_skipped
       << " shard_post_skip=" << shard_postings_skipped;
  }
  os << " scalar=" << Scalar() << "}";
  return os.str();
}

}  // namespace moa
