#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace moa {

// ---------------------------------------------------------------------------
// ZipfSampler: rejection-inversion after Hörmann & Derflinger (1996).
// ---------------------------------------------------------------------------

namespace {

// Integral of x^{-s}: exact also at s == 1 (log).
double HIntegral(double x, double s) {
  if (std::fabs(s - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double HIntegralInverse(double x, double s) {
  if (std::fabs(s - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = HIntegral(1.5, s_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5, s_) - std::pow(2.0, -s_), s_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, s_); }
double ZipfSampler::HInverse(double x) const { return HIntegralInverse(x, s_); }

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

// ---------------------------------------------------------------------------
// ZipfAnalytics
// ---------------------------------------------------------------------------

ZipfAnalytics::ZipfAnalytics(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  const uint64_t exact = std::min<uint64_t>(n_, kExactPrefix);
  prefix_.resize(exact);
  double sum = 0.0;
  for (uint64_t r = 1; r <= exact; ++r) {
    sum += std::pow(static_cast<double>(r), -s_);
    prefix_[r - 1] = sum;
  }
  total_ = PartialHarmonic(n_);
}

double ZipfAnalytics::PartialHarmonic(uint64_t k) const {
  if (k == 0) return 0.0;
  if (k > n_) k = n_;
  if (k <= prefix_.size()) return prefix_[k - 1];
  // Exact prefix + Euler-Maclaurin tail approximation for r in (m, k].
  const double m = static_cast<double>(prefix_.size());
  const double kd = static_cast<double>(k);
  double tail;
  if (std::fabs(s_ - 1.0) < 1e-12) {
    tail = std::log(kd) - std::log(m);
  } else {
    tail = (std::pow(kd, 1.0 - s_) - std::pow(m, 1.0 - s_)) / (1.0 - s_);
  }
  // Boundary correction (trapezoid term of Euler–Maclaurin).
  tail += 0.5 * (std::pow(kd, -s_) - std::pow(m, -s_));
  return prefix_.back() + tail;
}

double ZipfAnalytics::VolumeFraction(uint64_t k) const {
  return PartialHarmonic(k) / total_;
}

uint64_t ZipfAnalytics::RanksForVolume(double fraction) const {
  assert(fraction >= 0.0 && fraction <= 1.0);
  uint64_t lo = 1, hi = n_;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (VolumeFraction(mid) >= fraction) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double ZipfAnalytics::Probability(uint64_t r) const {
  assert(r >= 1 && r <= n_);
  return std::pow(static_cast<double>(r), -s_) / total_;
}

}  // namespace moa
