#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace moa {

Histogram::Histogram(double min, double max, int num_buckets)
    : min_(min),
      max_(max),
      buckets_(static_cast<size_t>(std::max(num_buckets, 1)), 0) {
  // A degenerate num_buckets collapses to one bucket spanning [min, max]
  // instead of dividing by zero.
  if (max_ <= min_) max_ = min_ + 1e-12;
  width_ = (max_ - min_) / static_cast<double>(buckets_.size());
}

Histogram Histogram::FromData(const std::vector<double>& values,
                              int num_buckets) {
  double lo = 0.0, hi = 1.0;
  if (!values.empty()) {
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    lo = *mn;
    hi = *mx;
  }
  Histogram h(lo, hi, num_buckets);
  for (double v : values) h.Add(v);
  return h;
}

int Histogram::BucketIndex(double value) const {
  if (value <= min_) return 0;
  if (value >= max_) return num_buckets() - 1;
  int idx = static_cast<int>((value - min_) / width_);
  return std::clamp(idx, 0, num_buckets() - 1);
}

void Histogram::Add(double value) {
  ++buckets_[BucketIndex(value)];
  ++total_;
}

double Histogram::CdfAtValue(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= min_) return 0.0;
  if (x >= max_) return 1.0;
  const int idx = BucketIndex(x);
  int64_t below = 0;
  for (int i = 0; i < idx; ++i) below += buckets_[i];
  const double bucket_lo = min_ + idx * width_;
  const double in_bucket_frac = (x - bucket_lo) / width_;
  const double est = static_cast<double>(below) +
                     in_bucket_frac * static_cast<double>(buckets_[idx]);
  return est / static_cast<double>(total_);
}

double Histogram::ValueWithCountAbove(int64_t count) const {
  if (total_ == 0) return min_;
  if (count >= total_) return min_;
  if (count <= 0) return max_;
  // Walk buckets from the top until `count` values are accumulated.
  int64_t above = 0;
  for (int i = num_buckets() - 1; i >= 0; --i) {
    if (above + buckets_[i] >= count) {
      // Interpolate within bucket i: need (count - above) values from the
      // top of this bucket.
      const double need = static_cast<double>(count - above);
      const double frac =
          buckets_[i] > 0 ? need / static_cast<double>(buckets_[i]) : 0.0;
      const double bucket_hi = min_ + (i + 1) * width_;
      return bucket_hi - frac * width_;
    }
    above += buckets_[i];
  }
  return min_;
}

double Histogram::ValueAtQuantile(double q) const {
  if (total_ == 0) return min_;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t above =
      total_ - static_cast<int64_t>(std::llround(q * static_cast<double>(total_)));
  return ValueWithCountAbove(std::max<int64_t>(above, 0));
}

double Histogram::EstimateRangeCount(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return (CdfAtValue(hi) - CdfAtValue(lo)) * static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "Histogram[min=" << min_ << ", max=" << max_ << ", n=" << total_
     << ", buckets=" << num_buckets() << "]";
  return os.str();
}

}  // namespace moa
