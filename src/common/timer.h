// Monotonic wall-clock timing helpers for benches and the metrics registry.
#ifndef MOA_COMMON_TIMER_H_
#define MOA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace moa {

/// \brief Monotonic stopwatch; `ElapsedMicros()` can be read repeatedly.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the scope's duration (nanoseconds) to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedNanos(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  WallTimer timer_;
};

}  // namespace moa

#endif  // MOA_COMMON_TIMER_H_
