// Minimal leveled logging to stderr; off by default above WARNING.
//
// Each emitted line is prefixed `[LEVEL ts tid=N file:line]` where `ts`
// is UTC wall-clock (HH:MM:SS.mmm) and `tid` a small process-local
// thread ordinal (stable per thread, assigned on first log). A custom
// sink can be installed with SetLogSink so the observability layer and
// tests capture log output instead of scraping stderr.
#ifndef MOA_COMMON_LOGGING_H_
#define MOA_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace moa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives each emitted message (prefix included, no trailing newline).
/// Must be callable from any thread; invoked only for messages that pass
/// the level threshold.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the stderr writer with `sink`; pass nullptr to restore
/// stderr. Returns nothing; the previous sink is dropped.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace moa

#define MOA_LOG(level)                                              \
  ::moa::internal::LogMessage(::moa::LogLevel::k##level, __FILE__, \
                              __LINE__)

#endif  // MOA_COMMON_LOGGING_H_
