// Minimal leveled logging to stderr; off by default above WARNING.
#ifndef MOA_COMMON_LOGGING_H_
#define MOA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace moa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace moa

#define MOA_LOG(level)                                              \
  ::moa::internal::LogMessage(::moa::LogLevel::k##level, __FILE__, \
                              __LINE__)

#endif  // MOA_COMMON_LOGGING_H_
