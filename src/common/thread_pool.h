// Fixed-size worker pool for concurrent batch query execution.
//
// Deliberately simple — one locked queue, no work stealing: batch top-N
// fan-out produces coarse, similar-cost tasks (whole queries), so a shared
// queue is never the bottleneck and the implementation stays auditable
// under TSan. Tasks must not throw; fallible work reports through Status
// captured in the task's own state (the library is exception-free across
// public boundaries, see common/status.h).
//
// Parallelism budget: the engine runs every data-parallel loop — batch
// query fan-out (SearchBatch) and per-query shard fan-out
// (ShardCoordinator) — on the single process-wide `Shared()` pool.
// ParallelFor enlists the *calling* thread as a claimant and joins on
// completed-index count, never on helper exit, so the two levels compose
// on one pool without oversubscription: when all workers are busy with
// batch-level queries, a nested shard-level ParallelFor simply degrades
// toward inline execution on its caller (its queued helpers find no index
// left to claim and no-op). Total live threads stay bounded by the pool
// size plus its callers regardless of nesting depth.
#ifndef MOA_COMMON_THREAD_POOL_H_
#define MOA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace moa {

/// \brief Fixed-size thread pool with a single FIFO task queue.
///
/// Destruction drains the queue: every task submitted before the
/// destructor runs is executed before the workers join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task; must not be called during/after destruction.
  void Submit(std::function<void()> task);

  /// Runs body(0) .. body(count-1) and blocks until all calls return.
  /// Indexes are claimed dynamically (one atomic increment per call), so
  /// uneven per-index cost still balances.
  ///
  /// The calling thread participates as a claimant alongside at most
  /// `max_helpers` pool workers (so at most `max_helpers + 1` calls run
  /// concurrently), and the join waits for index *completion*, never for
  /// helper exit — safe to call from inside a pool task (nested use
  /// degrades gracefully instead of deadlocking; see the header comment).
  void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                   size_t max_helpers = std::numeric_limits<size_t>::max());

  /// max(1, hardware_concurrency): the default batch parallelism.
  static size_t DefaultParallelism();

  /// The process-wide pool (DefaultParallelism() workers, never
  /// destroyed): every engine-internal data-parallel loop shares it so
  /// nested fan-out cannot oversubscribe the machine.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace moa

#endif  // MOA_COMMON_THREAD_POOL_H_
