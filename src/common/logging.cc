#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <mutex>

namespace moa {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

// The sink is swapped under a mutex but invoked through a shared_ptr
// snapshot, so a concurrent SetLogSink never destroys a sink mid-call.
std::mutex g_sink_mutex;
std::shared_ptr<const LogSink> g_sink;  // null -> stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Small process-local thread ordinal: stable per thread, assigned on
/// first log. Friendlier in diffs than the platform's opaque ids.
int ThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

/// UTC HH:MM:SS.mmm of now.
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, static_cast<int>(millis));
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink) {
    g_sink = std::make_shared<const LogSink>(std::move(sink));
  } else {
    g_sink.reset();
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Timestamp()
          << " tid=" << ThreadOrdinal() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  std::shared_ptr<const LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  const std::string message = stream_.str();
  if (sink) {
    (*sink)(level_, message);
  } else {
    std::fprintf(stderr, "%s\n", message.c_str());
  }
}

}  // namespace internal
}  // namespace moa
