// Deterministic pseudo-random number generation for workloads and samplers.
//
// All generators in the library are seeded explicitly so every experiment in
// bench/ is exactly reproducible run-to-run and machine-to-machine.
#ifndef MOA_COMMON_RNG_H_
#define MOA_COMMON_RNG_H_

#include <cstdint>

namespace moa {

/// \brief xoshiro256** 1.0 generator (Blackman & Vigna).
///
/// Fast, high-quality, 256-bit state. Not cryptographic. Deterministic for a
/// given seed, independent of the standard library implementation (unlike
/// std::mt19937 + std::uniform_int_distribution, whose output is
/// implementation-defined).
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller, no caching).
  double NextGaussian();

  /// Bernoulli trial with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

}  // namespace moa

#endif  // MOA_COMMON_RNG_H_
