// Zipf-distributed sampling and analytic helpers.
//
// The paper's Step 1 rests on the observation that natural-language term
// frequencies follow a Zipf distribution: rank-r frequency proportional to
// 1/r^s. The sampler here drives the synthetic collection generator; the
// analytics (harmonic sums, volume-at-rank) drive fragment sizing — e.g.
// "which prefix of the rank axis carries 95% of the postings volume".
#ifndef MOA_COMMON_ZIPF_H_
#define MOA_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace moa {

/// \brief Samples ranks in [1, n] with P(rank = r) proportional to 1/r^s.
///
/// Uses rejection-inversion (W. Hörmann & G. Derflinger, 1996): O(1) expected
/// time per sample regardless of n, exact for any skew s >= 0 (s == 0 is the
/// uniform distribution; s == 1 is classic Zipf).
class ZipfSampler {
 public:
  /// \param n number of distinct items (vocabulary size); must be >= 1.
  /// \param s skew exponent; must be >= 0.
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [1, n]; rank 1 is the most frequent item.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// \brief Analytic properties of a Zipf(n, s) distribution.
///
/// Used by the fragmentation planner to size fragments without scanning:
/// `VolumeFraction(k)` is the fraction of all token occurrences produced by
/// the k most frequent terms.
class ZipfAnalytics {
 public:
  ZipfAnalytics(uint64_t n, double s);

  /// Generalized harmonic number H_{k,s} = sum_{r=1..k} 1/r^s.
  double PartialHarmonic(uint64_t k) const;

  /// Fraction of total probability mass held by ranks [1, k].
  double VolumeFraction(uint64_t k) const;

  /// Smallest k such that ranks [1, k] hold at least `fraction` of the mass.
  uint64_t RanksForVolume(double fraction) const;

  /// Expected probability of rank r.
  double Probability(uint64_t r) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double s_;
  // Prefix sums H_{k,s} at geometric checkpoints for O(log) queries; exact
  // for small k.
  std::vector<double> prefix_;   // prefix_[i] = H_{i+1, s} for i < kExactPrefix
  double total_;                 // H_{n, s}
  static constexpr uint64_t kExactPrefix = 4096;
};

}  // namespace moa

#endif  // MOA_COMMON_ZIPF_H_
