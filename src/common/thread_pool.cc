#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace moa {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body,
                             size_t max_helpers) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  // Shared claim/completion state. The state (body included) lives in a
  // shared_ptr because helper tasks may still be sitting in the queue
  // when ParallelFor returns: the join below waits for every *index* to
  // complete, not for every helper to run, so a late helper must find
  // valid state, observe next >= count, and no-op.
  struct State {
    std::function<void(size_t)> body;
    size_t count;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  state->body = body;
  state->count = count;

  const auto run = [](State& s) {
    size_t i;
    while ((i = s.next.fetch_add(1)) < s.count) {
      s.body(i);
      if (s.completed.fetch_add(1) + 1 == s.count) {
        // Lock pairs with the waiter's predicate check: without it the
        // notify could fire between the caller's predicate evaluation
        // and its wait, and the wake would be lost.
        std::lock_guard<std::mutex> lock(s.mutex);
        s.done.notify_all();
      }
    }
  };

  // The caller claims indexes too, so at most count-1 helpers are ever
  // useful — and if none of them is scheduled (every worker busy with an
  // outer-level ParallelFor), the caller alone still finishes the loop.
  const size_t helpers =
      std::min({workers_.size(), count - 1, max_helpers});
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(*state); });
  }
  run(*state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(
      lock, [&] { return state->completed.load() == state->count; });
}

size_t ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: worker threads must outlive every static-storage
  // engine object that might run a batch during shutdown, and joining
  // threads from a static destructor is itself undefined-behavior bait.
  static ThreadPool* pool = new ThreadPool(DefaultParallelism());
  return *pool;
}

}  // namespace moa
