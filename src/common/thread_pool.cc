#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace moa {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // Shared claim/completion state. Runners claim indexes with one atomic
  // increment per call; the last runner to finish wakes the caller.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> active{0};
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  const size_t runners = std::min(workers_.size(), count);
  state->active.store(runners);
  for (size_t r = 0; r < runners; ++r) {
    // `body` is captured by reference: ParallelFor blocks until every
    // runner has finished, so the reference cannot dangle.
    Submit([state, count, &body] {
      size_t i;
      while ((i = state->next.fetch_add(1)) < count) body(i);
      if (state->active.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->active.load() == 0; });
}

size_t ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace moa
