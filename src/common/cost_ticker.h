// Deterministic work accounting for operators and the cost model.
//
// Wall-clock timings vary with the machine; the paper's claims are about
// *work avoided* (postings not read, objects not scored). Every physical
// operator reports its work through CostCounters so that benches can report
// exact, reproducible work ratios alongside wall-clock, and so that the
// Step-3 cost model has a ground truth to calibrate against.
#ifndef MOA_COMMON_COST_TICKER_H_
#define MOA_COMMON_COST_TICKER_H_

#include <cstdint>
#include <string>

namespace moa {

/// \brief Counter bundle describing the work one operator (or plan) did.
///
/// Semantics:
///  - `sequential_reads`: postings/tuples consumed via sorted or scan access.
///  - `random_reads`: point lookups (Fagin random access, sparse-index probe).
///  - `score_evals`: scoring-function invocations.
///  - `compares`: comparison operations in sorts/heaps.
///  - `bytes_touched`: modelled data volume (for fragment-size arguments).
///  - `blocks_decoded` / `blocks_skipped`: compressed posting blocks a
///    segment cursor materialized vs passed over undecoded (block-dir
///    skips and block-max pruning). Storage-level observability for
///    ExplainSearch; deliberately outside Scalar() so pruning changes
///    never move the planner's abstract-cost comparisons.
///  - `shards_visited` / `shards_skipped`: catalog shards the coordinator
///    executed vs pruned by their aggregate impact upper bound;
///    `shard_postings_skipped` is the exact posting volume those pruned
///    shards held for the query's terms (the paper's "work avoided"
///    ledger, lifted to the partition level). Like the block counters,
///    outside Scalar(): shard pruning must not perturb per-shard planner
///    comparisons.
struct CostCounters {
  int64_t sequential_reads = 0;
  int64_t random_reads = 0;
  int64_t score_evals = 0;
  int64_t compares = 0;
  int64_t bytes_touched = 0;
  int64_t blocks_decoded = 0;
  int64_t blocks_skipped = 0;
  int64_t shards_visited = 0;
  int64_t shards_skipped = 0;
  int64_t shard_postings_skipped = 0;

  CostCounters& operator+=(const CostCounters& o) {
    sequential_reads += o.sequential_reads;
    random_reads += o.random_reads;
    score_evals += o.score_evals;
    compares += o.compares;
    bytes_touched += o.bytes_touched;
    blocks_decoded += o.blocks_decoded;
    blocks_skipped += o.blocks_skipped;
    shards_visited += o.shards_visited;
    shards_skipped += o.shards_skipped;
    shard_postings_skipped += o.shard_postings_skipped;
    return *this;
  }
  friend CostCounters operator+(CostCounters a, const CostCounters& b) {
    a += b;
    return a;
  }
  friend CostCounters operator-(CostCounters a, const CostCounters& b) {
    a.sequential_reads -= b.sequential_reads;
    a.random_reads -= b.random_reads;
    a.score_evals -= b.score_evals;
    a.compares -= b.compares;
    a.bytes_touched -= b.bytes_touched;
    a.blocks_decoded -= b.blocks_decoded;
    a.blocks_skipped -= b.blocks_skipped;
    a.shards_visited -= b.shards_visited;
    a.shards_skipped -= b.shards_skipped;
    a.shard_postings_skipped -= b.shard_postings_skipped;
    return a;
  }

  /// Scalar "abstract cost" used when one number is needed: weights chosen to
  /// reflect a main-memory system where random access costs a few sequential
  /// accesses (cache misses), and scoring dominates comparison.
  double Scalar() const {
    return 1.0 * static_cast<double>(sequential_reads) +
           4.0 * static_cast<double>(random_reads) +
           2.0 * static_cast<double>(score_evals) +
           0.25 * static_cast<double>(compares);
  }

  std::string ToString() const;
};

/// \brief Thread-local accumulation point operators tick into.
///
/// Scoped usage:
///   CostScope scope;                 // zeroes a fresh frame
///   ... run operator ...
///   CostCounters used = scope.Snapshot();
class CostTicker {
 public:
  static CostCounters& Current();

  static void TickSeq(int64_t n = 1) { Current().sequential_reads += n; }
  static void TickRandom(int64_t n = 1) { Current().random_reads += n; }
  static void TickScore(int64_t n = 1) { Current().score_evals += n; }
  static void TickCompare(int64_t n = 1) { Current().compares += n; }
  static void TickBytes(int64_t n) { Current().bytes_touched += n; }
  static void TickBlockDecoded(int64_t n = 1) { Current().blocks_decoded += n; }
  static void TickBlockSkipped(int64_t n = 1) { Current().blocks_skipped += n; }
  static void TickShardVisited(int64_t n = 1) { Current().shards_visited += n; }
  static void TickShardSkipped(int64_t n = 1) { Current().shards_skipped += n; }
  static void TickShardPostingsSkipped(int64_t n) {
    Current().shard_postings_skipped += n;
  }
};

/// \brief RAII frame: captures the counters delta produced inside the scope.
class CostScope {
 public:
  CostScope() : base_(CostTicker::Current()) {}

  /// Work performed since construction.
  CostCounters Snapshot() const { return CostTicker::Current() - base_; }

 private:
  CostCounters base_;
};

}  // namespace moa

#endif  // MOA_COMMON_COST_TICKER_H_
