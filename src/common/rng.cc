#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace moa {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: accept unless in the biased tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace moa
