// Answer-quality metrics: how an optimized (possibly unsafe) top-N result
// compares to the exact one. These quantify the paper's ">30% quality drop"
// claim and verify the "safe technique == exact answer" invariant.
#ifndef MOA_IR_METRICS_H_
#define MOA_IR_METRICS_H_

#include <vector>

#include "ir/scoring.h"

namespace moa {

/// \brief Quality of `answer` measured against the exact `truth` top-N.
struct QualityReport {
  /// |answer ∩ truth| / |truth| — set overlap at N ("precision at N" when
  /// the exact top-N is taken as the relevant set, the usual measure for
  /// unsafe top-N techniques).
  double overlap_at_n = 0.0;
  /// Sum of true scores of returned docs / sum of true top-N scores. 1.0
  /// means the answer is as good as exact in score mass even if different
  /// documents were returned (score-based recall).
  double score_ratio = 0.0;
  /// Kendall-tau-b rank correlation over the union of both lists (1.0 =
  /// identical order, 0 = unrelated, negative = inverted).
  double kendall_tau = 0.0;
  /// True iff answer is exactly truth (same docs, same order).
  bool exact_match = false;
};

/// Computes all quality measures. `truth_scores` maps every doc to its exact
/// full score (from AccumulateScores on the unfragmented file); it backs the
/// score_ratio measure for docs the approximate answer returned that are not
/// in the exact top-N.
QualityReport EvaluateQuality(const std::vector<ScoredDoc>& answer,
                              const std::vector<ScoredDoc>& truth,
                              const std::vector<double>& truth_scores);

/// Mean of per-query overlap_at_n (macro average).
double MeanOverlap(const std::vector<QualityReport>& reports);
/// Mean of per-query score_ratio.
double MeanScoreRatio(const std::vector<QualityReport>& reports);

}  // namespace moa

#endif  // MOA_IR_METRICS_H_
