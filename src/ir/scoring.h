// Retrieval scoring models: per-term document weights w(t, d).
//
// All models are *monotone aggregations*: score(d) = sum over query terms of
// w(t, d), with w >= 0. Monotonicity is what makes Fagin-style upper/lower
// bound administration safe (a document's score can only grow as more terms
// are seen), which the paper's "State of the Art" section builds on.
#ifndef MOA_IR_SCORING_H_
#define MOA_IR_SCORING_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/inverted_file.h"

namespace moa {

/// \brief One entry of a ranked retrieval result.
struct ScoredDoc {
  DocId doc;
  double score;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// Deterministic ordering for rankings: by descending score, ties by
/// ascending doc id (keeps every algorithm's output comparable).
inline bool ScoredDocLess(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// \brief Interface of a scoring model bound to one inverted file.
class ScoringModel {
 public:
  virtual ~ScoringModel() = default;

  /// Weight contribution of term `t` occurring as posting `p`.
  virtual double Weight(TermId t, const Posting& p) const = 0;

  /// Model name for Explain output.
  virtual std::string name() const = 0;

  /// The inverted file the model is bound to.
  virtual const InvertedFile& file() const = 0;
};

/// Classic TF-IDF with log-saturated tf and document-length dampening.
///   w = (1 + ln tf) * ln(1 + N/df) / sqrt(dl)
std::unique_ptr<ScoringModel> MakeTfIdf(const InvertedFile* file);

/// Okapi BM25 (k1, b tunable).
std::unique_ptr<ScoringModel> MakeBm25(const InvertedFile* file,
                                       double k1 = 1.2, double b = 0.75);

/// Hiemstra-style language model with linear (Jelinek-Mercer) smoothing —
/// the model used by the mi*RR*or system at TREC [VH99].
///   w = ln(1 + lambda/(1-lambda) * (tf/dl) / (cf/C))
std::unique_ptr<ScoringModel> MakeLanguageModel(const InvertedFile* file,
                                                double lambda = 0.15);

}  // namespace moa

#endif  // MOA_IR_SCORING_H_
