// Retrieval scoring models: per-term document weights w(t, d).
//
// All models are *monotone aggregations*: score(d) = sum over query terms of
// w(t, d), with w >= 0. Monotonicity is what makes Fagin-style upper/lower
// bound administration safe (a document's score can only grow as more terms
// are seen), which the paper's "State of the Art" section builds on.
//
// Models read collection statistics through CollectionStatsView
// (ir/collection_stats.h), not from a concrete storage structure. Bind a
// model to an InvertedFile for the classic static path, or to a live view
// (e.g. the IndexCatalog's) whose statistics evolve with adds and deletes;
// the weight arithmetic is identical either way, so equal statistics give
// bit-identical weights.
#ifndef MOA_IR_SCORING_H_
#define MOA_IR_SCORING_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/collection_stats.h"
#include "storage/inverted_file.h"

namespace moa {

/// \brief One entry of a ranked retrieval result.
struct ScoredDoc {
  DocId doc;
  double score;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// Deterministic ordering for rankings: by descending score, ties by
/// ascending doc id (keeps every algorithm's output comparable).
inline bool ScoredDocLess(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Scoring model choice (engine configuration and catalog serving).
enum class ScoringModelKind { kTfIdf, kBm25, kLanguageModel };

/// \brief Interface of a scoring model bound to one statistics view.
class ScoringModel {
 public:
  virtual ~ScoringModel() = default;

  /// Weight contribution of term `t` occurring as posting `p`.
  virtual double Weight(TermId t, const Posting& p) const = 0;

  /// Model name for Explain output.
  virtual std::string name() const = 0;

  /// The statistics view the model reads.
  virtual const CollectionStatsView& stats() const = 0;
};

/// Classic TF-IDF with log-saturated tf and document-length dampening.
///   w = (1 + ln tf) * ln(1 + N/df) / sqrt(dl)
std::unique_ptr<ScoringModel> MakeTfIdf(const InvertedFile* file);
std::unique_ptr<ScoringModel> MakeTfIdf(const CollectionStatsView* stats);

/// Okapi BM25 (k1, b tunable). The average document length is sampled from
/// the view at construction, so construct the model *after* the statistics
/// it should score under (per query, for a mutable catalog).
std::unique_ptr<ScoringModel> MakeBm25(const InvertedFile* file,
                                       double k1 = 1.2, double b = 0.75);
std::unique_ptr<ScoringModel> MakeBm25(const CollectionStatsView* stats,
                                       double k1 = 1.2, double b = 0.75);

/// Hiemstra-style language model with linear (Jelinek-Mercer) smoothing —
/// the model used by the mi*RR*or system at TREC [VH99].
///   w = ln(1 + lambda/(1-lambda) * (tf/dl) / (cf/C))
/// The InvertedFile overload precomputes collection frequencies; the view
/// overload reads CollectionFrequency from the view (which must be O(1),
/// as the catalog's is).
std::unique_ptr<ScoringModel> MakeLanguageModel(const InvertedFile* file,
                                                double lambda = 0.15);
std::unique_ptr<ScoringModel> MakeLanguageModel(
    const CollectionStatsView* stats, double lambda = 0.15);

/// Factory over the kind enum with default parameters; `stats` is borrowed
/// and must outlive the model.
std::unique_ptr<ScoringModel> MakeScoringModel(ScoringModelKind kind,
                                               const CollectionStatsView* stats);
/// InvertedFile-bound factory (same defaults); `file` is borrowed.
std::unique_ptr<ScoringModel> MakeScoringModel(ScoringModelKind kind,
                                               const InvertedFile* file);

}  // namespace moa

#endif  // MOA_IR_SCORING_H_
