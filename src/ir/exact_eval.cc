#include "ir/exact_eval.h"

#include <algorithm>

#include "common/cost_ticker.h"

namespace moa {

std::vector<double> AccumulateScores(const PostingSource& source,
                                     const ScoringModel& model,
                                     const Query& query) {
  std::vector<double> acc(source.num_docs(), 0.0);
  for (TermId t : query.terms) {
    for (auto cursor = source.OpenCursor(t); !cursor->at_end();
         cursor->next()) {
      CostTicker::TickSeq();
      CostTicker::TickScore();
      const Posting p{cursor->doc(), cursor->tf()};
      acc[p.doc] += model.Weight(t, p);
    }
  }
  return acc;
}

std::vector<double> AccumulateScores(const InvertedFile& file,
                                     const ScoringModel& model,
                                     const Query& query) {
  return AccumulateScores(InMemoryPostingSource(&file), model, query);
}

namespace {

std::vector<ScoredDoc> CollectNonZero(const std::vector<double>& acc) {
  std::vector<ScoredDoc> docs;
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0) docs.push_back(ScoredDoc{d, acc[d]});
  }
  return docs;
}

}  // namespace

std::vector<ScoredDoc> ExactRanking(const InvertedFile& file,
                                    const ScoringModel& model,
                                    const Query& query) {
  std::vector<double> acc = AccumulateScores(file, model, query);
  std::vector<ScoredDoc> docs = CollectNonZero(acc);
  std::sort(docs.begin(), docs.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    CostTicker::TickCompare();
    return ScoredDocLess(a, b);
  });
  return docs;
}

std::vector<ScoredDoc> ExactTopN(const PostingSource& source,
                                 const ScoringModel& model, const Query& query,
                                 size_t n) {
  std::vector<double> acc = AccumulateScores(source, model, query);
  std::vector<ScoredDoc> docs = CollectNonZero(acc);
  const size_t k = std::min(n, docs.size());
  std::partial_sort(docs.begin(), docs.begin() + k, docs.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      CostTicker::TickCompare();
                      return ScoredDocLess(a, b);
                    });
  docs.resize(k);
  return docs;
}

std::vector<ScoredDoc> ExactTopN(const InvertedFile& file,
                                 const ScoringModel& model, const Query& query,
                                 size_t n) {
  return ExactTopN(InMemoryPostingSource(&file), model, query, n);
}

}  // namespace moa
