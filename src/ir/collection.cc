#include "ir/collection.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/zipf.h"

namespace moa {

Result<Collection> Collection::Generate(const CollectionConfig& config) {
  if (config.num_docs == 0) {
    return Status::InvalidArgument("num_docs must be > 0");
  }
  if (config.vocabulary == 0) {
    return Status::InvalidArgument("vocabulary must be > 0");
  }
  if (config.mean_doc_length == 0) {
    return Status::InvalidArgument("mean_doc_length must be > 0");
  }
  if (config.zipf_skew < 0.0) {
    return Status::InvalidArgument("zipf_skew must be >= 0");
  }

  Rng rng(config.seed);
  ZipfSampler zipf(config.vocabulary, config.zipf_skew);
  InvertedFileBuilder builder(config.vocabulary);

  // Log-normal document length with mean ~= mean_doc_length:
  // E[e^X] = e^{mu + sigma^2/2}  =>  mu = ln(mean) - sigma^2/2.
  const double sigma = config.doc_length_sigma;
  const double mu =
      std::log(static_cast<double>(config.mean_doc_length)) -
      0.5 * sigma * sigma;

  std::map<TermId, uint32_t> doc_terms;  // ordered: deterministic iteration
  for (DocId d = 0; d < config.num_docs; ++d) {
    const double raw = std::exp(mu + sigma * rng.NextGaussian());
    const uint32_t len = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(raw)));
    doc_terms.clear();
    for (uint32_t k = 0; k < len; ++k) {
      // Zipf rank 1 (most frequent) maps to term id 0 and so on, so term id
      // order coincides with descending expected frequency.
      const TermId t = static_cast<TermId>(zipf.Sample(&rng) - 1);
      ++doc_terms[t];
    }
    std::vector<std::pair<TermId, uint32_t>> pairs(doc_terms.begin(),
                                                   doc_terms.end());
    MOA_RETURN_NOT_OK(builder.AddDocument(d, pairs));
  }
  return Collection(config, builder.Build());
}

}  // namespace moa
