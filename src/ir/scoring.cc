#include "ir/scoring.h"

#include <cmath>
#include <utility>

namespace moa {
namespace {

/// Shared base: models either borrow a caller-owned view or own an
/// InvertedFileStatsView adapter built from the legacy InvertedFile
/// overloads. Weight arithmetic only ever goes through stats(), so both
/// binding styles are bit-identical on equal statistics.
class StatsBoundModel : public ScoringModel {
 public:
  explicit StatsBoundModel(const CollectionStatsView* stats) : stats_(stats) {}
  StatsBoundModel(const InvertedFile* file, bool precompute_cf)
      : owned_(std::make_unique<InvertedFileStatsView>(file, precompute_cf)),
        stats_(owned_.get()) {}

  const CollectionStatsView& stats() const override { return *stats_; }

 private:
  std::unique_ptr<CollectionStatsView> owned_;

 protected:
  const CollectionStatsView* stats_;
};

class TfIdfModel final : public StatsBoundModel {
 public:
  using StatsBoundModel::StatsBoundModel;

  double Weight(TermId t, const Posting& p) const override {
    const double tf = static_cast<double>(p.tf);
    const double df = static_cast<double>(stats_->DocFrequency(t));
    if (df == 0) return 0.0;
    const double n = static_cast<double>(stats_->num_docs());
    const double dl = static_cast<double>(stats_->DocLength(p.doc));
    return (1.0 + std::log(tf)) * std::log(1.0 + n / df) / std::sqrt(dl);
  }

  std::string name() const override { return "tfidf"; }
};

class Bm25Model final : public StatsBoundModel {
 public:
  Bm25Model(const CollectionStatsView* stats, double k1, double b)
      : StatsBoundModel(stats), k1_(k1), b_(b),
        avgdl_(stats_->AverageDocLength()) {}
  Bm25Model(const InvertedFile* file, double k1, double b)
      : StatsBoundModel(file, /*precompute_cf=*/false), k1_(k1), b_(b),
        avgdl_(stats_->AverageDocLength()) {}

  double Weight(TermId t, const Posting& p) const override {
    const double tf = static_cast<double>(p.tf);
    const double df = static_cast<double>(stats_->DocFrequency(t));
    if (df == 0) return 0.0;
    const double n = static_cast<double>(stats_->num_docs());
    const double dl = static_cast<double>(stats_->DocLength(p.doc));
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    const double denom = tf + k1_ * (1.0 - b_ + b_ * dl / avgdl_);
    return idf * tf * (k1_ + 1.0) / denom;
  }

  std::string name() const override { return "bm25"; }

 private:
  double k1_, b_, avgdl_;
};

class LanguageModel final : public StatsBoundModel {
 public:
  LanguageModel(const CollectionStatsView* stats, double lambda)
      : StatsBoundModel(stats), lambda_(lambda) {}
  LanguageModel(const InvertedFile* file, double lambda)
      : StatsBoundModel(file, /*precompute_cf=*/true), lambda_(lambda) {}

  double Weight(TermId t, const Posting& p) const override {
    const int64_t cf = stats_->CollectionFrequency(t);
    if (cf == 0) return 0.0;
    const double tf = static_cast<double>(p.tf);
    const double dl = static_cast<double>(stats_->DocLength(p.doc));
    const double c = static_cast<double>(stats_->total_tokens());
    const double p_doc = tf / dl;
    const double p_coll = static_cast<double>(cf) / c;
    return std::log(1.0 + lambda_ / (1.0 - lambda_) * p_doc / p_coll);
  }

  std::string name() const override { return "lm"; }

 private:
  double lambda_;
};

}  // namespace

std::unique_ptr<ScoringModel> MakeTfIdf(const InvertedFile* file) {
  return std::make_unique<TfIdfModel>(file, /*precompute_cf=*/false);
}

std::unique_ptr<ScoringModel> MakeTfIdf(const CollectionStatsView* stats) {
  return std::make_unique<TfIdfModel>(stats);
}

std::unique_ptr<ScoringModel> MakeBm25(const InvertedFile* file, double k1,
                                       double b) {
  return std::make_unique<Bm25Model>(file, k1, b);
}

std::unique_ptr<ScoringModel> MakeBm25(const CollectionStatsView* stats,
                                       double k1, double b) {
  return std::make_unique<Bm25Model>(stats, k1, b);
}

std::unique_ptr<ScoringModel> MakeLanguageModel(const InvertedFile* file,
                                                double lambda) {
  return std::make_unique<LanguageModel>(file, lambda);
}

std::unique_ptr<ScoringModel> MakeLanguageModel(
    const CollectionStatsView* stats, double lambda) {
  return std::make_unique<LanguageModel>(stats, lambda);
}

std::unique_ptr<ScoringModel> MakeScoringModel(
    ScoringModelKind kind, const CollectionStatsView* stats) {
  switch (kind) {
    case ScoringModelKind::kTfIdf:
      return MakeTfIdf(stats);
    case ScoringModelKind::kBm25:
      return MakeBm25(stats);
    case ScoringModelKind::kLanguageModel:
      return MakeLanguageModel(stats);
  }
  return nullptr;
}

std::unique_ptr<ScoringModel> MakeScoringModel(ScoringModelKind kind,
                                               const InvertedFile* file) {
  switch (kind) {
    case ScoringModelKind::kTfIdf:
      return MakeTfIdf(file);
    case ScoringModelKind::kBm25:
      return MakeBm25(file);
    case ScoringModelKind::kLanguageModel:
      return MakeLanguageModel(file);
  }
  return nullptr;
}

}  // namespace moa
