#include "ir/scoring.h"

#include <cmath>

namespace moa {
namespace {

class TfIdfModel final : public ScoringModel {
 public:
  explicit TfIdfModel(const InvertedFile* file) : file_(file) {}

  double Weight(TermId t, const Posting& p) const override {
    const double tf = static_cast<double>(p.tf);
    const double df = static_cast<double>(file_->DocFrequency(t));
    if (df == 0) return 0.0;
    const double n = static_cast<double>(file_->num_docs());
    const double dl = static_cast<double>(file_->DocLength(p.doc));
    return (1.0 + std::log(tf)) * std::log(1.0 + n / df) / std::sqrt(dl);
  }

  std::string name() const override { return "tfidf"; }
  const InvertedFile& file() const override { return *file_; }

 private:
  const InvertedFile* file_;
};

class Bm25Model final : public ScoringModel {
 public:
  Bm25Model(const InvertedFile* file, double k1, double b)
      : file_(file), k1_(k1), b_(b), avgdl_(file->AverageDocLength()) {}

  double Weight(TermId t, const Posting& p) const override {
    const double tf = static_cast<double>(p.tf);
    const double df = static_cast<double>(file_->DocFrequency(t));
    if (df == 0) return 0.0;
    const double n = static_cast<double>(file_->num_docs());
    const double dl = static_cast<double>(file_->DocLength(p.doc));
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    const double denom = tf + k1_ * (1.0 - b_ + b_ * dl / avgdl_);
    return idf * tf * (k1_ + 1.0) / denom;
  }

  std::string name() const override { return "bm25"; }
  const InvertedFile& file() const override { return *file_; }

 private:
  const InvertedFile* file_;
  double k1_, b_, avgdl_;
};

class LanguageModel final : public ScoringModel {
 public:
  LanguageModel(const InvertedFile* file, double lambda)
      : file_(file), lambda_(lambda) {
    // Precompute per-term collection frequencies (sum of tf).
    cf_.resize(file->num_terms(), 0);
    for (TermId t = 0; t < file->num_terms(); ++t) {
      int64_t sum = 0;
      const auto& list = file->list(t);
      for (size_t i = 0; i < list.size(); ++i) sum += list[i].tf;
      cf_[t] = sum;
    }
  }

  double Weight(TermId t, const Posting& p) const override {
    if (cf_[t] == 0) return 0.0;
    const double tf = static_cast<double>(p.tf);
    const double dl = static_cast<double>(file_->DocLength(p.doc));
    const double c = static_cast<double>(file_->total_tokens());
    const double p_doc = tf / dl;
    const double p_coll = static_cast<double>(cf_[t]) / c;
    return std::log(1.0 + lambda_ / (1.0 - lambda_) * p_doc / p_coll);
  }

  std::string name() const override { return "lm"; }
  const InvertedFile& file() const override { return *file_; }

 private:
  const InvertedFile* file_;
  double lambda_;
  std::vector<int64_t> cf_;
};

}  // namespace

std::unique_ptr<ScoringModel> MakeTfIdf(const InvertedFile* file) {
  return std::make_unique<TfIdfModel>(file);
}

std::unique_ptr<ScoringModel> MakeBm25(const InvertedFile* file, double k1,
                                       double b) {
  return std::make_unique<Bm25Model>(file, k1, b);
}

std::unique_ptr<ScoringModel> MakeLanguageModel(const InvertedFile* file,
                                                double lambda) {
  return std::make_unique<LanguageModel>(file, lambda);
}

}  // namespace moa
