#include "ir/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace moa {

QualityReport EvaluateQuality(const std::vector<ScoredDoc>& answer,
                              const std::vector<ScoredDoc>& truth,
                              const std::vector<double>& truth_scores) {
  QualityReport report;
  if (truth.empty()) {
    report.overlap_at_n = answer.empty() ? 1.0 : 0.0;
    report.score_ratio = 1.0;
    report.kendall_tau = 1.0;
    report.exact_match = answer.empty();
    return report;
  }

  std::unordered_set<DocId> truth_set;
  double truth_mass = 0.0;
  for (const auto& sd : truth) {
    truth_set.insert(sd.doc);
    truth_mass += truth_scores.empty() ? sd.score : truth_scores[sd.doc];
  }

  size_t hits = 0;
  double answer_mass = 0.0;
  for (const auto& sd : answer) {
    if (truth_set.count(sd.doc)) ++hits;
    if (!truth_scores.empty() && sd.doc < truth_scores.size()) {
      answer_mass += truth_scores[sd.doc];
    }
  }
  report.overlap_at_n =
      static_cast<double>(hits) / static_cast<double>(truth.size());
  report.score_ratio = truth_mass > 0.0 ? answer_mass / truth_mass : 1.0;

  // Kendall tau-b over the union, using rank |list| for absent docs
  // (treating "not returned" as ranked past the end).
  std::unordered_map<DocId, int> rank_a, rank_b;
  for (size_t i = 0; i < answer.size(); ++i) rank_a[answer[i].doc] = static_cast<int>(i);
  for (size_t i = 0; i < truth.size(); ++i) rank_b[truth[i].doc] = static_cast<int>(i);
  std::vector<DocId> universe;
  for (const auto& [d, r] : rank_a) universe.push_back(d);
  for (const auto& [d, r] : rank_b) {
    if (!rank_a.count(d)) universe.push_back(d);
  }
  const int miss_a = static_cast<int>(answer.size());
  const int miss_b = static_cast<int>(truth.size());
  auto ra = [&](DocId d) {
    auto it = rank_a.find(d);
    return it == rank_a.end() ? miss_a : it->second;
  };
  auto rb = [&](DocId d) {
    auto it = rank_b.find(d);
    return it == rank_b.end() ? miss_b : it->second;
  };
  long long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i + 1; j < universe.size(); ++j) {
      const int da = ra(universe[i]) - ra(universe[j]);
      const int db = rb(universe[i]) - rb(universe[j]);
      if (da == 0 && db == 0) continue;
      if (da == 0) { ++ties_a; continue; }
      if (db == 0) { ++ties_b; continue; }
      if ((da > 0) == (db > 0)) ++concordant;
      else ++discordant;
    }
  }
  const double denom = std::sqrt(static_cast<double>(concordant + discordant + ties_a) *
                                 static_cast<double>(concordant + discordant + ties_b));
  report.kendall_tau =
      denom > 0.0 ? static_cast<double>(concordant - discordant) / denom : 1.0;

  report.exact_match =
      answer.size() == truth.size() &&
      std::equal(answer.begin(), answer.end(), truth.begin(),
                 [](const ScoredDoc& x, const ScoredDoc& y) {
                   return x.doc == y.doc;
                 });
  return report;
}

double MeanOverlap(const std::vector<QualityReport>& reports) {
  if (reports.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports) sum += r.overlap_at_n;
  return sum / static_cast<double>(reports.size());
}

double MeanScoreRatio(const std::vector<QualityReport>& reports) {
  if (reports.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports) sum += r.score_ratio;
  return sum / static_cast<double>(reports.size());
}

}  // namespace moa
