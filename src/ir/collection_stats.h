// CollectionStatsView: the statistics a scoring model reads, decoupled
// from any particular posting storage.
//
// Every retrieval weight in this system is a function of the posting's
// (tf, doc) plus *collection statistics*: document frequency, live
// document count, document lengths, average document length, collection
// frequency and total token count. Historically those came straight off
// the in-memory InvertedFile, which froze the engine at one static
// collection. This interface is what lets the same ScoringModel arithmetic
// run over an InvertedFile *and* over the multi-segment IndexCatalog
// (storage/catalog/), whose statistics change as documents are added and
// deleted — scoring stays consistent because the model always reads the
// current live-document statistics, never stale per-segment ones.
//
// Bit-parity contract: two views reporting the same numbers make a model
// produce bit-identical weights. The catalog maintains its statistics
// incrementally but exactly (see storage/catalog/catalog_state.h), so a
// catalog holding the same live documents as a freshly built InvertedFile
// scores every posting bit-identically.
#ifndef MOA_IR_COLLECTION_STATS_H_
#define MOA_IR_COLLECTION_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/inverted_file.h"

namespace moa {

/// \brief Read-only collection statistics used by scoring models.
///
/// Implementations must be safe for concurrent reads. `num_docs` counts
/// *live* documents only (the scoring N); storage layers with tombstoned
/// documents report the surviving count here even though deleted ids may
/// still occupy slots in the doc-id space.
class CollectionStatsView {
 public:
  virtual ~CollectionStatsView() = default;

  virtual size_t num_terms() const = 0;
  /// Live documents (the N of idf formulas).
  virtual size_t num_docs() const = 0;
  /// Live documents containing term t.
  virtual uint32_t DocFrequency(TermId t) const = 0;
  /// Token count of document d (d must be a valid, live doc id).
  virtual uint32_t DocLength(DocId d) const = 0;
  /// Mean token count over live documents.
  virtual double AverageDocLength() const = 0;
  /// Total tokens over live documents.
  virtual int64_t total_tokens() const = 0;
  /// Sum of tf over live postings of t (language-model smoothing).
  virtual int64_t CollectionFrequency(TermId t) const = 0;
};

/// \brief CollectionStatsView over a static in-memory InvertedFile.
///
/// Cheap to construct unless `precompute_cf` is set, which materializes
/// per-term collection frequencies in O(postings) — required before
/// CollectionFrequency is called on a hot path (the language model), since
/// the fallback recomputes by scanning the term's list.
class InvertedFileStatsView final : public CollectionStatsView {
 public:
  explicit InvertedFileStatsView(const InvertedFile* file,
                                 bool precompute_cf = false)
      : file_(file) {
    if (precompute_cf) {
      cf_.resize(file_->num_terms(), 0);
      for (TermId t = 0; t < file_->num_terms(); ++t) {
        int64_t sum = 0;
        const PostingList& list = file_->list(t);
        for (size_t i = 0; i < list.size(); ++i) sum += list[i].tf;
        cf_[t] = sum;
      }
    }
  }

  size_t num_terms() const override { return file_->num_terms(); }
  size_t num_docs() const override { return file_->num_docs(); }
  uint32_t DocFrequency(TermId t) const override {
    return file_->DocFrequency(t);
  }
  uint32_t DocLength(DocId d) const override { return file_->DocLength(d); }
  double AverageDocLength() const override {
    return file_->AverageDocLength();
  }
  int64_t total_tokens() const override { return file_->total_tokens(); }
  int64_t CollectionFrequency(TermId t) const override {
    if (!cf_.empty()) return cf_[t];
    int64_t sum = 0;
    const PostingList& list = file_->list(t);
    for (size_t i = 0; i < list.size(); ++i) sum += list[i].tf;
    return sum;
  }

 private:
  const InvertedFile* file_;
  std::vector<int64_t> cf_;  // empty unless precomputed
};

}  // namespace moa

#endif  // MOA_IR_COLLECTION_STATS_H_
