// TREC-style synthetic query workload generator.
#ifndef MOA_IR_QUERY_GEN_H_
#define MOA_IR_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ir/collection.h"

namespace moa {

/// \brief A retrieval query: a set of distinct term ids.
struct Query {
  std::vector<TermId> terms;
};

/// How query terms are drawn from the vocabulary.
enum class QueryTermDistribution {
  /// Terms drawn Zipf-like (users type natural language: frequent terms
  /// frequently). Matches the "half of all documents contain at least one
  /// query term" observation in the paper's introduction.
  kZipf,
  /// Uniform over terms that occur in the collection.
  kUniform,
  /// Deliberate mix: half frequent ("head") terms, half rare ("tail")
  /// content terms — models short web-style queries with one good
  /// discriminating term.
  kMixed,
};

/// \brief Workload parameters.
struct QueryWorkloadConfig {
  uint32_t num_queries = 50;
  uint32_t terms_per_query = 4;
  QueryTermDistribution distribution = QueryTermDistribution::kZipf;
  double zipf_skew = 1.0;   ///< skew used by kZipf / head part of kMixed
  uint64_t seed = 7;
};

/// Generates a deterministic query workload over `collection`. Every query
/// has exactly `terms_per_query` distinct terms, all with df > 0.
Result<std::vector<Query>> GenerateQueries(const Collection& collection,
                                           const QueryWorkloadConfig& config);

}  // namespace moa

#endif  // MOA_IR_QUERY_GEN_H_
