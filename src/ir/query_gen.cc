#include "ir/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/zipf.h"

namespace moa {

Result<std::vector<Query>> GenerateQueries(const Collection& collection,
                                           const QueryWorkloadConfig& config) {
  const InvertedFile& file = collection.inverted_file();
  if (config.terms_per_query == 0) {
    return Status::InvalidArgument("terms_per_query must be > 0");
  }

  // Candidate terms: those that actually occur.
  std::vector<TermId> occurring;
  for (TermId t = 0; t < file.num_terms(); ++t) {
    if (file.DocFrequency(t) > 0) occurring.push_back(t);
  }
  if (occurring.size() < config.terms_per_query) {
    return Status::FailedPrecondition("vocabulary too small for query length");
  }

  Rng rng(config.seed);
  ZipfSampler zipf(collection.vocabulary(), config.zipf_skew);

  auto draw_zipf = [&]() -> TermId {
    // Term ids coincide with Zipf rank order (see collection.cc); resample
    // until the drawn term occurs.
    for (;;) {
      TermId t = static_cast<TermId>(zipf.Sample(&rng) - 1);
      if (file.DocFrequency(t) > 0) return t;
    }
  };
  auto draw_uniform = [&]() -> TermId {
    return occurring[rng.Uniform(occurring.size())];
  };
  auto draw_tail = [&]() -> TermId {
    // Rare term: uniform over the rarest half of occurring terms (term ids
    // are frequency-ranked, so the tail is the upper id range).
    const size_t half = occurring.size() / 2;
    return occurring[half + rng.Uniform(occurring.size() - half)];
  };

  std::vector<Query> queries;
  queries.reserve(config.num_queries);
  for (uint32_t q = 0; q < config.num_queries; ++q) {
    std::unordered_set<TermId> seen;
    Query query;
    uint32_t draws = 0;
    while (query.terms.size() < config.terms_per_query) {
      TermId t = 0;
      switch (config.distribution) {
        case QueryTermDistribution::kZipf:
          t = draw_zipf();
          break;
        case QueryTermDistribution::kUniform:
          t = draw_uniform();
          break;
        case QueryTermDistribution::kMixed:
          t = (draws % 2 == 0) ? draw_zipf() : draw_tail();
          break;
      }
      ++draws;
      if (seen.insert(t).second) query.terms.push_back(t);
      if (draws > 10000 * config.terms_per_query) {
        return Status::Internal("query generation failed to find terms");
      }
    }
    std::sort(query.terms.begin(), query.terms.end());
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace moa
