// Synthetic TREC-FT-like document collection (substitution for the paper's
// TREC Financial Times collection; see DESIGN.md §1).
//
// The generator draws every token's term from Zipf(vocabulary, skew) — the
// distributional property the paper's Step 1 explicitly relies on — and
// document lengths from a clamped log-normal, then materializes the
// inverted file. Everything is seeded and deterministic.
#ifndef MOA_IR_COLLECTION_H_
#define MOA_IR_COLLECTION_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "storage/inverted_file.h"

namespace moa {

/// \brief Generation parameters for a synthetic collection.
struct CollectionConfig {
  uint32_t num_docs = 10000;        ///< documents in the collection
  uint32_t vocabulary = 20000;      ///< distinct terms
  double zipf_skew = 1.0;           ///< term-distribution skew (1.0 = Zipf)
  uint32_t mean_doc_length = 150;   ///< mean tokens per document
  double doc_length_sigma = 0.4;    ///< log-normal sigma of doc length
  uint64_t seed = 42;               ///< RNG seed
};

/// \brief A generated collection: the inverted file plus its config.
class Collection {
 public:
  /// Generates the collection. O(num_docs * mean_doc_length).
  static Result<Collection> Generate(const CollectionConfig& config);

  const InvertedFile& inverted_file() const { return file_; }
  InvertedFile& mutable_inverted_file() { return file_; }
  const CollectionConfig& config() const { return config_; }

  uint32_t num_docs() const { return config_.num_docs; }
  uint32_t vocabulary() const { return config_.vocabulary; }

 private:
  Collection(CollectionConfig config, InvertedFile file)
      : config_(config), file_(std::move(file)) {}

  CollectionConfig config_;
  InvertedFile file_;
};

}  // namespace moa

#endif  // MOA_IR_COLLECTION_H_
