// Exact (unoptimized) retrieval evaluation: the ground truth and baseline.
//
// Scores every candidate document by scanning the full posting list of every
// query term, then sorts. This is the paper's "unoptimized case" against
// which all safe techniques must be answer-identical and all techniques are
// speed-compared.
#ifndef MOA_IR_EXACT_EVAL_H_
#define MOA_IR_EXACT_EVAL_H_

#include <vector>

#include "ir/query_gen.h"
#include "ir/scoring.h"
#include "storage/segment/posting_cursor.h"

namespace moa {

/// \brief Full ranking (all matching docs, best first) for `query`.
///
/// Cost-ticks one sequential read + one score eval per posting touched and
/// one compare per sort comparison.
std::vector<ScoredDoc> ExactRanking(const InvertedFile& file,
                                    const ScoringModel& model,
                                    const Query& query);

/// \brief Exact top-`n` prefix of ExactRanking (partial sort; cheaper).
///
/// The PostingSource overload runs the same float operations in the same
/// order over any posting storage (in-memory file, mmap segment, or the
/// multi-segment catalog); the InvertedFile overload adapts and delegates.
std::vector<ScoredDoc> ExactTopN(const PostingSource& source,
                                 const ScoringModel& model, const Query& query,
                                 size_t n);
std::vector<ScoredDoc> ExactTopN(const InvertedFile& file,
                                 const ScoringModel& model, const Query& query,
                                 size_t n);

/// \brief Dense score accumulation: score of every document (0 if no query
/// term matches). Building block shared by several physical operators.
///
/// The PostingSource overload is the implementation: it streams every
/// term's postings through a cursor, so it runs identically over the
/// in-memory file and over a compressed mmap-backed segment. The
/// InvertedFile overload adapts and delegates — both paths execute the
/// same float operations in the same order (bit-identical scores).
std::vector<double> AccumulateScores(const PostingSource& source,
                                     const ScoringModel& model,
                                     const Query& query);
std::vector<double> AccumulateScores(const InvertedFile& file,
                                     const ScoringModel& model,
                                     const Query& query);

}  // namespace moa

#endif  // MOA_IR_EXACT_EVAL_H_
