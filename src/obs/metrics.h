// Process-wide metrics registry: named counters, gauges and
// histogram-backed timers with cheap single-label support.
//
// Design constraints, in order:
//  1. The block-decode hot path must never see this layer. Nothing here
//     is called per posting; engine and storage code records metrics at
//     query/stage/operation granularity only, and the whole layer
//     compiles to empty inline stubs under -DMOA_OBS_ENABLED=0 (CMake:
//     -DMOA_OBS=OFF) so the zero-cost claim is checkable by building the
//     registry out and re-running bench_e13.
//  2. SearchBatch workers must not contend: Counter::Add is a relaxed
//     atomic add into one of kShards cache-line-padded cells picked by a
//     thread-local shard index; cells are merged on read. Value() is
//     O(kShards) — fine for a scrape, never on a query path.
//  3. Render output is deterministic: metrics are kept in ordered maps
//     keyed by (name, label), so two Renders of the same registry state
//     produce byte-identical text, and the exposition is diffable across
//     runs (docs/metrics.txt pins the name inventory in CI).
//
// Naming convention (enforced by the docs/metrics.txt CI diff, spelled
// out in CONTRIBUTING.md): `moa_<layer>_<what>` plus a `_total` suffix
// for counters and a unit suffix (`_ms`, `_bytes`) for everything
// measured. Labels are a single pre-rendered `key=value` pair ("cheap
// label support"): one dimension is enough for per-strategy breakdowns,
// and it keeps the handle lookup a single map probe.
#ifndef MOA_OBS_METRICS_H_
#define MOA_OBS_METRICS_H_

#ifndef MOA_OBS_ENABLED
#define MOA_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace moa {
namespace obs {

/// True when the observability layer is compiled in; callers can branch
/// on it with an ordinary `if` (the dead arm folds away).
inline constexpr bool kEnabled = MOA_OBS_ENABLED != 0;

enum class MetricsFormat {
  kPrometheus,  ///< text exposition: `name{label} value` + # TYPE lines
  kJson,        ///< one object: {"counters":[...],"gauges":...,"histograms":...}
};

#if MOA_OBS_ENABLED

/// \brief Monotonically increasing sum (doubles: planner scalar costs
/// feed counters too; integer increments stay exact below 2^53).
///
/// Sharded per-thread: Add lands in a cache-line-padded cell chosen by a
/// thread-local index, so concurrent SearchBatch workers never bounce a
/// line. Merged on read.
class Counter {
 public:
  void Add(double delta = 1.0);
  /// Merged sum across all cells. O(kShards); scrape-path only.
  double Value() const;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  static constexpr size_t kShards = 16;  // power of two: index is a mask

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();

  struct alignas(64) Cell {
    std::atomic<double> value{0.0};
  };
  Cell cells_[kShards];
};

/// \brief Last-written value (tombstone density, segment count, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// \brief Latency/size distribution: count, sum, min/max plus quantiles
/// estimated through the library's equi-width `Histogram` (the same
/// estimator SearchBatch already uses for its p50/p95/p99).
///
/// Samples are retained up to a fixed cap (first-N; count/sum/min/max
/// keep exact totals beyond it) so a long-lived process stays bounded;
/// quantiles are then estimates over the retained prefix. Populated
/// lazily — an empty histogram renders with count 0 and quantiles equal
/// to Histogram's defined empty behavior (its min), never dividing by
/// zero. Mutex-protected: observations are per-query/per-flush events,
/// not hot-path ticks.
class HistogramMetric {
 public:
  void Observe(double value);

  int64_t Count() const;
  double Sum() const;
  double Min() const;  ///< 0 when empty
  double Max() const;  ///< 0 when empty
  /// q-quantile estimate over the retained samples (0 when empty).
  double Quantile(double q) const;

  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

 private:
  friend class MetricsRegistry;
  HistogramMetric() = default;
  void Reset();

  static constexpr size_t kMaxSamples = 8192;
  static constexpr int kBuckets = 64;

  mutable std::shared_mutex mutex_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

/// \brief The process-wide registry behind MetricsRegistry::Global().
///
/// Handles returned by Get* stay valid for the process lifetime (metrics
/// are never erased; ResetForTest zeroes values but keeps the objects),
/// so call sites may cache them in function-local statics. Lookups take
/// a shared lock — one map probe per query-granularity event.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// The counter/gauge/histogram registered under (name, label),
  /// creating it on first use. `label` is one pre-rendered `key=value`
  /// pair (empty = unlabeled). A name must keep one metric kind.
  Counter* GetCounter(std::string_view name, std::string_view label = "");
  Gauge* GetGauge(std::string_view name, std::string_view label = "");
  HistogramMetric* GetHistogram(std::string_view name,
                                std::string_view label = "");

  /// Deterministic text rendering of every registered metric: metrics
  /// sorted by (name, label); histograms expose count/sum/min/max and
  /// p50/p95/p99 (Prometheus summary-style).
  std::string Render(MetricsFormat format) const;

  /// Sorted, de-duplicated metric family names — the CI inventory that
  /// docs/metrics.txt pins.
  std::vector<std::string> MetricNames() const;

  /// Zeroes every value but keeps the registered objects alive (cached
  /// handles stay valid). Tests only; must not race concurrent writers.
  void ResetForTest();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, label)

  template <typename T>
  T* GetOrCreate(std::map<Key, std::unique_ptr<T>>* map,
                 std::string_view name, std::string_view label);

  mutable std::shared_mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
};

#else  // !MOA_OBS_ENABLED

// Inert stand-ins: every member is an empty inline function, so call
// sites compile to nothing and need no #ifdefs of their own.

class Counter {
 public:
  void Add(double = 1.0) {}
  double Value() const { return 0.0; }
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0.0; }
};

class HistogramMetric {
 public:
  void Observe(double) {}
  int64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
  double Min() const { return 0.0; }
  double Max() const { return 0.0; }
  double Quantile(double) const { return 0.0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter* GetCounter(std::string_view, std::string_view = "") {
    return &counter_;
  }
  Gauge* GetGauge(std::string_view, std::string_view = "") { return &gauge_; }
  HistogramMetric* GetHistogram(std::string_view, std::string_view = "") {
    return &histogram_;
  }
  std::string Render(MetricsFormat) const {
    return "# observability compiled out (MOA_OBS=OFF)\n";
  }
  std::vector<std::string> MetricNames() const { return {}; }
  void ResetForTest() {}

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric histogram_;
};

#endif  // MOA_OBS_ENABLED

}  // namespace obs
}  // namespace moa

#endif  // MOA_OBS_METRICS_H_
