#include "obs/metrics.h"

#if MOA_OBS_ENABLED

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/histogram.h"

namespace moa {
namespace obs {
namespace {

/// Stable per-thread shard index: threads are striped round-robin over
/// the cells, so a fixed worker pool spreads evenly and two workers
/// never share a line by construction (up to kShards workers).
size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index & (Counter::kShards - 1);
}

/// Relaxed atomic double add. GCC/Clang compile the C++20
/// fetch_add(double) through a CAS loop anyway; writing the loop out
/// keeps the code portable to standard libraries that lack the
/// floating-point overloads.
void AtomicAdd(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

/// Shortest round-trip double formatting (%.17g is bit-faithful but
/// noisy; %g keeps integral counters rendering as integers).
std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the short form when it round-trips losslessly.
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%g", value);
  double reparsed = 0.0;
  if (std::sscanf(short_buf, "%lf", &reparsed) == 1 && reparsed == value) {
    return short_buf;
  }
  return buf;
}

/// `strategy=maxscore` -> `strategy="maxscore"` (exposition braces are
/// added by the caller). Empty label -> empty string.
std::string PrometheusLabel(const std::string& label) {
  const size_t eq = label.find('=');
  if (eq == std::string::npos) return label;
  return label.substr(0, eq) + "=\"" + label.substr(eq + 1) + "\"";
}

struct HistogramSnapshot {
  int64_t count;
  double sum, min, max, p50, p95, p99;
};

HistogramSnapshot Snapshot(const HistogramMetric& h) {
  return HistogramSnapshot{h.Count(), h.Sum(),           h.Min(),
                           h.Max(),   h.Quantile(0.50),  h.Quantile(0.95),
                           h.Quantile(0.99)};
}

}  // namespace

// ----------------------------------------------------------------- Counter

void Counter::Add(double delta) { AtomicAdd(cells_[ShardIndex()].value, delta); }

double Counter::Value() const {
  double total = 0.0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------- HistogramMetric

void HistogramMetric::Observe(double value) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

int64_t HistogramMetric::Count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return count_;
}

double HistogramMetric::Sum() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return sum_;
}

double HistogramMetric::Min() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return min_;
}

double HistogramMetric::Max() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return max_;
}

double HistogramMetric::Quantile(double q) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // Empty histograms are well-defined by the underlying estimator
  // (ValueAtQuantile of an empty Histogram returns its min) — the lazy
  // population contract the engine's latency metrics rely on.
  const Histogram h = Histogram::FromData(samples_, kBuckets);
  return h.ValueAtQuantile(q);
}

void HistogramMetric::Reset() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  samples_.clear();
}

// --------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metrics outlive every static destructor that might
  // still record during teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::map<Key, std::unique_ptr<T>>* map,
                                std::string_view name,
                                std::string_view label) {
  const Key key{std::string(name), std::string(label)};
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = map->find(key);
    if (it != map->end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = map->find(key);
  if (it == map->end()) {
    it = map->emplace(key, std::unique_ptr<T>(new T())).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view label) {
  return GetOrCreate(&counters_, name, label);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view label) {
  return GetOrCreate(&gauges_, name, label);
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name,
                                               std::string_view label) {
  return GetOrCreate(&histograms_, name, label);
}

std::string MetricsRegistry::Render(MetricsFormat format) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::ostringstream os;
  if (format == MetricsFormat::kPrometheus) {
    std::string last_typed;
    auto type_line = [&](const std::string& name, const char* type) {
      if (name != last_typed) {
        os << "# TYPE " << name << " " << type << "\n";
        last_typed = name;
      }
    };
    for (const auto& [key, counter] : counters_) {
      type_line(key.first, "counter");
      os << key.first;
      if (!key.second.empty()) os << "{" << PrometheusLabel(key.second) << "}";
      os << " " << FormatValue(counter->Value()) << "\n";
    }
    for (const auto& [key, gauge] : gauges_) {
      type_line(key.first, "gauge");
      os << key.first;
      if (!key.second.empty()) os << "{" << PrometheusLabel(key.second) << "}";
      os << " " << FormatValue(gauge->Value()) << "\n";
    }
    for (const auto& [key, histogram] : histograms_) {
      type_line(key.first, "summary");
      const HistogramSnapshot snap = Snapshot(*histogram);
      const std::string label = PrometheusLabel(key.second);
      auto quantile_line = [&](const char* q, double value) {
        os << key.first << "{" << label << (label.empty() ? "" : ",")
           << "quantile=\"" << q << "\"} " << FormatValue(value) << "\n";
      };
      quantile_line("0.5", snap.p50);
      quantile_line("0.95", snap.p95);
      quantile_line("0.99", snap.p99);
      const std::string suffix_label =
          key.second.empty() ? "" : "{" + label + "}";
      os << key.first << "_sum" << suffix_label << " "
         << FormatValue(snap.sum) << "\n";
      os << key.first << "_count" << suffix_label << " " << snap.count
         << "\n";
    }
    return os.str();
  }

  // JSON: one object, arrays sorted like the maps (deterministic).
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    os << (first ? "" : ",") << "{\"name\":\"" << key.first
       << "\",\"label\":\"" << key.second
       << "\",\"value\":" << FormatValue(counter->Value()) << "}";
    first = false;
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    os << (first ? "" : ",") << "{\"name\":\"" << key.first
       << "\",\"label\":\"" << key.second
       << "\",\"value\":" << FormatValue(gauge->Value()) << "}";
    first = false;
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    const HistogramSnapshot snap = Snapshot(*histogram);
    os << (first ? "" : ",") << "{\"name\":\"" << key.first
       << "\",\"label\":\"" << key.second << "\",\"count\":" << snap.count
       << ",\"sum\":" << FormatValue(snap.sum)
       << ",\"min\":" << FormatValue(snap.min)
       << ",\"max\":" << FormatValue(snap.max)
       << ",\"p50\":" << FormatValue(snap.p50)
       << ",\"p95\":" << FormatValue(snap.p95)
       << ",\"p99\":" << FormatValue(snap.p99) << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [key, value] : counters_) names.push_back(key.first);
  for (const auto& [key, value] : gauges_) names.push_back(key.first);
  for (const auto& [key, value] : histograms_) names.push_back(key.first);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void MetricsRegistry::ResetForTest() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (auto& [key, counter] : counters_) counter->Reset();
  for (auto& [key, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [key, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace moa

#endif  // MOA_OBS_ENABLED
