// Per-query stage tracing: RAII spans recording wall time and
// CostCounters deltas for the plan / cursor-open / accumulate /
// heap-merge stages of one query, plus an engine-level ring buffer of
// the last K completed traces for post-hoc inspection.
//
// How a trace flows: the engine constructs a QueryTrace on the stack at
// the top of a query (it installs itself as the thread's current trace),
// layers below open TraceSpan scopes against whatever trace is current —
// a null current trace makes the span a no-op, so executors need no
// plumbing and benches that call executors directly pay nothing. Stage
// deltas are taken from the existing thread-local CostTicker at span
// boundaries: the per-posting loop is never touched, and the counters a
// trace reports are bit-identical to what CostScope would capture (the
// trace only *reads* the ticker, it never ticks).
//
// Under -DMOA_OBS_ENABLED=0 QueryTrace/TraceSpan collapse to empty
// inline types; TraceRing stays functional (it is engine state, not a
// hot-path structure) but never receives a trace.
#ifndef MOA_OBS_QUERY_TRACE_H_
#define MOA_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "common/timer.h"
#include "obs/metrics.h"  // for MOA_OBS_ENABLED / obs::kEnabled

namespace moa {
namespace obs {

// Canonical stage names (see CONTRIBUTING.md): spans are free-form, but
// the built-in executors report these four.
inline constexpr char kStagePlan[] = "plan";
inline constexpr char kStageCursorOpen[] = "cursor_open";
inline constexpr char kStageAccumulate[] = "accumulate";
inline constexpr char kStageHeapMerge[] = "heap_merge";
/// Sharded scatter-gather (engine thread only: per-shard executions on
/// pool threads have no installed trace, so their stage spans are no-ops;
/// their work lands in the result's CostCounters instead).
inline constexpr char kStageShardScatter[] = "shard_scatter";
inline constexpr char kStageShardGather[] = "shard_gather";

/// \brief One completed stage of a query.
struct TraceSpanData {
  const char* stage = "";  ///< static string (kStage* for built-ins)
  double wall_millis = 0.0;
  CostCounters cost;  ///< ticker delta across the span
};

/// \brief One completed query trace.
struct QueryTraceData {
  /// Monotone id stamped by the TraceRing at Push (0 before).
  uint64_t sequence = 0;
  /// Chosen strategy's registry name; empty for direct Execute calls.
  std::string strategy;
  bool planned = false;  ///< chosen by the planner (vs forced/direct)
  /// Planner-predicted scalar cost for the executed strategy (0 when the
  /// query bypassed the planner). With `cost.Scalar()` this is the raw
  /// predicted-vs-observed feed for the calibration loop.
  double predicted_scalar = 0.0;
  double predicted_quality = 1.0;
  double wall_millis = 0.0;  ///< whole query span
  CostCounters cost;         ///< whole query ticker delta
  std::vector<TraceSpanData> spans;

  double observed_scalar() const { return cost.Scalar(); }

  /// Multi-line rendering: one header line, one line per stage.
  std::string ToString() const;
};

#if MOA_OBS_ENABLED

/// \brief Active per-query recorder; stack-allocated by the engine.
///
/// Installs itself as the thread's current trace on construction and
/// restores the previous one on destruction (traces may nest; spans
/// attach to the innermost). Thread-local throughout — no atomics, no
/// locks, SearchBatch workers each trace their own queries.
class QueryTrace {
 public:
  QueryTrace();
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// The innermost active trace of this thread (null outside queries).
  static QueryTrace* Current();

  void AddSpan(const char* stage, double wall_millis,
               const CostCounters& cost);

  /// Closes the query span (wall time + ticker delta since construction)
  /// and moves the record out. Call at most once; the trace stays
  /// installed until destruction but records nothing further.
  QueryTraceData Finish();

 private:
  QueryTrace* prev_;
  WallTimer timer_;
  CostCounters base_;
  QueryTraceData data_;
  bool finished_ = false;
};

/// \brief RAII stage span against the thread's current trace (no-op when
/// no trace is active). Constructed at stage granularity only.
class TraceSpan {
 public:
  explicit TraceSpan(const char* stage)
      : trace_(QueryTrace::Current()), stage_(stage) {
    if (trace_ != nullptr) base_ = CostTicker::Current();
  }
  ~TraceSpan() {
    if (trace_ != nullptr) {
      trace_->AddSpan(stage_, timer_.ElapsedMillis(),
                      CostTicker::Current() - base_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  const char* stage_;
  WallTimer timer_;
  CostCounters base_;
};

#else  // !MOA_OBS_ENABLED

class QueryTrace {
 public:
  static constexpr QueryTrace* Current() { return nullptr; }
  void AddSpan(const char*, double, const CostCounters&) {}
  QueryTraceData Finish() { return QueryTraceData{}; }
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
};

#endif  // MOA_OBS_ENABLED

/// \brief Fixed-capacity ring of the last K completed traces.
///
/// Mutex-protected (one short move per completed query); Snapshot copies
/// out oldest-first. Engine state rather than hot-path: functional even
/// with the recorder compiled out, it just stays empty.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {}

  /// Stamps `trace.sequence` and retires the oldest entry when full.
  void Push(QueryTraceData trace);

  /// The retained traces, oldest first.
  std::vector<QueryTraceData> Snapshot() const;

  size_t capacity() const { return capacity_; }
  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<QueryTraceData> ring_;  ///< ring_[next_] is the oldest
  size_t next_ = 0;
  uint64_t sequence_ = 0;
};

}  // namespace obs
}  // namespace moa

#endif  // MOA_OBS_QUERY_TRACE_H_
