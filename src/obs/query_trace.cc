#include "obs/query_trace.h"

#include <cstdio>
#include <utility>

namespace moa {
namespace obs {

std::string QueryTraceData::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace #%llu strategy=%s %s wall=%.3fms observed=%.1f "
                "predicted=%.1f\n",
                static_cast<unsigned long long>(sequence),
                strategy.empty() ? "(direct)" : strategy.c_str(),
                planned ? "planned" : "forced", wall_millis,
                observed_scalar(), predicted_scalar);
  out += buf;
  for (const TraceSpanData& span : spans) {
    std::snprintf(buf, sizeof(buf),
                  "  %-12s %8.3fms scalar=%.1f seq=%lld rand=%lld score=%lld "
                  "cmp=%lld blk=%lld/%lld\n",
                  span.stage, span.wall_millis, span.cost.Scalar(),
                  static_cast<long long>(span.cost.sequential_reads),
                  static_cast<long long>(span.cost.random_reads),
                  static_cast<long long>(span.cost.score_evals),
                  static_cast<long long>(span.cost.compares),
                  static_cast<long long>(span.cost.blocks_decoded),
                  static_cast<long long>(span.cost.blocks_skipped));
    out += buf;
  }
  return out;
}

#if MOA_OBS_ENABLED

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
}  // namespace

QueryTrace::QueryTrace()
    : prev_(g_current_trace), base_(CostTicker::Current()) {
  // One exact allocation up front instead of three growth steps while
  // the four built-in stage spans trickle in.
  data_.spans.reserve(8);
  g_current_trace = this;
}

QueryTrace::~QueryTrace() { g_current_trace = prev_; }

QueryTrace* QueryTrace::Current() { return g_current_trace; }

void QueryTrace::AddSpan(const char* stage, double wall_millis,
                         const CostCounters& cost) {
  if (finished_) return;
  TraceSpanData span;
  span.stage = stage;
  span.wall_millis = wall_millis;
  span.cost = cost;
  data_.spans.push_back(span);
}

QueryTraceData QueryTrace::Finish() {
  if (!finished_) {
    finished_ = true;
    data_.wall_millis = timer_.ElapsedMillis();
    data_.cost = CostTicker::Current() - base_;
  }
  return std::move(data_);
}

#endif  // MOA_OBS_ENABLED

void TraceRing::Push(QueryTraceData trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace.sequence = ++sequence_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else if (capacity_ > 0) {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<QueryTraceData> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueryTraceData> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace obs
}  // namespace moa
