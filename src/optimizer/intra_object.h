// Intra-object (E-ADT) optimizers, after PREDATOR [SP97].
//
// Each extension owns a rule engine that may only inspect and rewrite
// operators of its *own* extension. This reproduces the state of the art
// the paper criticizes: an E-ADT optimizer "cannot optimize" Example 1
// because the select and the cast belong to different extensions — the
// dedicated test suite asserts precisely this inability, and the inter-
// object layer's ability.
#ifndef MOA_OPTIMIZER_INTRA_OBJECT_H_
#define MOA_OPTIMIZER_INTRA_OBJECT_H_

#include <string>
#include <vector>

#include "optimizer/rule.h"

namespace moa {

/// \brief E-ADT optimizer for one extension: wraps a rule set and refuses
/// to fire any rule at a node unless the node *and all its direct operator
/// children* belong to the extension.
class IntraObjectOptimizer {
 public:
  /// \param extension e.g. "LIST"; \param rules the rules it may use.
  IntraObjectOptimizer(std::string extension, std::vector<RulePtr> rules);

  /// Rewrites `expr` bottom-up to fixpoint under the E-ADT restriction.
  ExprPtr Optimize(const ExprPtr& expr, const ExtensionRegistry& registry,
                   RewriteTrace* trace = nullptr) const;

  const std::string& extension() const { return extension_; }

 private:
  std::string extension_;
  std::vector<RulePtr> rules_;
};

/// The default per-extension E-ADT optimizers (LIST, BAG, SET), each with
/// the logical rules that are expressible inside the extension.
std::vector<IntraObjectOptimizer> DefaultIntraObjectOptimizers();

/// Convenience: runs every E-ADT optimizer once, in sequence (the best a
/// PREDATOR-style system can do without an inter-object layer).
ExprPtr IntraObjectOnlyOptimize(const ExprPtr& expr,
                                const ExtensionRegistry& registry,
                                RewriteTrace* trace = nullptr);

}  // namespace moa

#endif  // MOA_OPTIMIZER_INTRA_OBJECT_H_
