#include "optimizer/strategy_planner.h"

#include <algorithm>
#include <cmath>

#include "exec/registry.h"

namespace moa {
namespace {

// ---- storage-signal calibration ------------------------------------------
//
// Measured against the cursor benches (bench_e13 batch throughput,
// bench_e14 storage comparison, bench_e15 lifecycle): scan rate over
// mmap-compressed blocks vs the in-memory file, and FindTf over a
// multi-component snapshot vs a single segment. Recalibrate with
// scripts/bench_snapshot.sh (see CONTRIBUTING.md).

/// Bit-packed (MOAIF03) blocks bulk-decode close to memory speed.
constexpr double kBitPackedDecodeFactor = 1.15;
/// Varbyte (MOAIF02) decodes byte-at-a-time, noticeably slower per
/// posting (bench_e14: ~1.3-1.6x the bit-packed scan time).
constexpr double kVarbyteDecodeFactor = 1.4;
/// Each extra snapshot component adds a binary-search step to every
/// random probe (CatalogState::Locate) plus a per-component seek.
constexpr double kComponentProbeFactor = 0.5;
/// Sorted (impact-order) access over a segment *with* a fragment
/// directory decodes lazily but still touches directory blocks.
constexpr double kDirectorySortedFactor = 1.1;
/// Without a directory, impact order means decode-and-sort whole lists.
constexpr double kNoDirectorySortedFactor = 3.0;

/// Quality comparisons tolerate FP noise from the hook arithmetic.
constexpr double kQualityEps = 1e-9;

double Share(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// One candidate's evaluation — shared verbatim by Plan() (which collects
/// all of them) and PlanChoice() (which only tracks the running minimum),
/// so the two paths cannot disagree on eligibility or cost.
PlanCandidate Evaluate(const StrategyRegistry::Entry& entry,
                       PhysicalStrategy s, const StrategyCostInputs& inputs,
                       int active_terms, const PlanRequest& request) {
  const PlannerHooks& hooks = entry.planner;

  PlanCandidate cand;
  cand.strategy = s;
  cand.safe = entry.safe;

  const bool excluded =
      std::find(request.exclude.begin(), request.exclude.end(), s) !=
      request.exclude.end();
  const bool missing_frag =
      hooks.needs_fragmentation && !inputs.has_fragmentation;
  const bool missing_terms = hooks.needs_active_terms && active_terms < 1;

  // Cost whatever we can, rejected candidates included: the Explain
  // report shows every alternative's prediction. Only a missing
  // fragmentation makes the fragment-split inputs meaningless.
  if (hooks.cost != nullptr && !missing_frag) {
    cand.costed = true;
    cand.predicted = hooks.cost(inputs);
    cand.scalar = cand.predicted.Scalar();
    cand.predicted_quality =
        hooks.quality != nullptr ? hooks.quality(inputs) : 1.0;
  }

  if (hooks.cost == nullptr) {
    cand.reject = PlanReject::kNoCostModel;
  } else if (missing_frag) {
    cand.reject = PlanReject::kNeedsFragmentation;
  } else if (missing_terms) {
    cand.reject = PlanReject::kNoActiveTerms;
  } else if (excluded) {
    cand.reject = PlanReject::kExcluded;
  } else if (cand.predicted_quality + kQualityEps < request.quality_target) {
    cand.reject = PlanReject::kBelowQualityTarget;
  }
  return cand;
}

Status NoEligibleCandidate() {
  return Status::FailedPrecondition(
      "no strategy meets the request (quality target too high for the "
      "eligible candidates?)");
}

}  // namespace

const char* PlanRejectName(PlanReject reject) {
  switch (reject) {
    case PlanReject::kNone: return "chosen";
    case PlanReject::kNoCostModel: return "no-cost-model";
    case PlanReject::kNeedsFragmentation: return "needs-fragmentation";
    case PlanReject::kNoActiveTerms: return "no-active-terms";
    case PlanReject::kExcluded: return "excluded";
    case PlanReject::kBelowQualityTarget: return "below-quality-target";
    case PlanReject::kCostlier: return "costlier";
    case PlanReject::kForcedOther: return "forced-other";
  }
  return "?";
}

StrategyCostInputs StorageInputsFor(const CatalogComposition& c) {
  StrategyCostInputs in;
  const uint64_t total = c.total_slots();
  if (total == 0) return in;

  // Decode cost: weighted by where the postings actually live. The
  // memtable streams raw arrays (factor 1).
  in.decode_factor =
      1.0 +
      (kBitPackedDecodeFactor - 1.0) * Share(c.bitpacked_slots, total) +
      (kVarbyteDecodeFactor - 1.0) * Share(c.varbyte_slots, total);

  // Tombstoned slots keep their postings until a merge: cursors stream
  // and skip them, so per live posting the scan pays ~dead/live extra.
  const uint64_t live = total - std::min(total, c.dead_slots);
  in.tombstone_overhead =
      live == 0 ? 0.0
                : static_cast<double>(c.dead_slots) / static_cast<double>(live);

  // Random access: FindTf locates the owning component first.
  const size_t components = c.num_segments + (c.memtable_slots > 0 ? 1 : 0);
  in.random_access_factor =
      1.0 + kComponentProbeFactor *
                std::log2(static_cast<double>(std::max<size_t>(1, components)));

  // Sorted access: memtable impact orders are native; segments depend on
  // the fragment directory.
  in.sorted_access_factor =
      Share(c.memtable_slots, total) +
      kDirectorySortedFactor * Share(c.directory_slots, total) +
      kNoDirectorySortedFactor *
          Share(c.segment_slots - std::min(c.segment_slots, c.directory_slots),
                total);
  return in;
}

StrategyCostInputs StorageInputsForSegment(SegmentCodec codec,
                                           bool has_fragment_directory) {
  StrategyCostInputs in;
  in.decode_factor = codec == SegmentCodec::kBitPacked
                         ? kBitPackedDecodeFactor
                         : kVarbyteDecodeFactor;
  in.sorted_access_factor = has_fragment_directory ? kDirectorySortedFactor
                                                   : kNoDirectorySortedFactor;
  return in;
}

StrategyPlanner::StrategyPlanner(const CardinalityEstimator* estimator,
                                 const StrategyCostInputs& storage)
    : est_(estimator), storage_(storage) {}

Result<PlanDecision> StrategyPlanner::Plan(const Query& query,
                                           const PlanRequest& request) const {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const StrategyCostInputs inputs =
      BuildCostInputs(*est_, query, request.n, storage_);
  const int active_terms = est_->ActiveTerms(query);

  PlanDecision decision;
  decision.quality_target = request.quality_target;
  decision.candidates.reserve(AllStrategies().size());

  for (PhysicalStrategy s : AllStrategies()) {
    const StrategyRegistry::Entry* entry = registry.Find(s);
    if (entry == nullptr) continue;  // not executable at all
    decision.candidates.push_back(
        Evaluate(*entry, s, inputs, active_terms, request));
  }

  // Costed candidates cheapest-first, uncostable ones after; enum order
  // breaks ties, so the decision is deterministic.
  std::sort(decision.candidates.begin(), decision.candidates.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              if (a.costed != b.costed) return a.costed;
              if (a.costed && a.scalar != b.scalar) return a.scalar < b.scalar;
              return static_cast<int>(a.strategy) <
                     static_cast<int>(b.strategy);
            });

  if (request.force.has_value()) {
    PlanCandidate* forced = nullptr;
    for (PlanCandidate& c : decision.candidates) {
      if (c.strategy == *request.force) forced = &c;
    }
    if (forced == nullptr) {
      return Status::FailedPrecondition(
          std::string("forced strategy unregistered: ") +
          StrategyName(*request.force));
    }
    if (forced->reject == PlanReject::kNeedsFragmentation ||
        forced->reject == PlanReject::kNoActiveTerms) {
      return Status::FailedPrecondition(
          std::string("forced strategy unavailable: ") +
          StrategyName(*request.force));
    }
    // Forcing overrides cost- and quality-based rejection by design.
    forced->reject = PlanReject::kNone;
    decision.forced = true;
    decision.strategy = *request.force;
    decision.chosen = *forced;
    for (PlanCandidate& c : decision.candidates) {
      if (c.strategy != *request.force && c.reject == PlanReject::kNone) {
        c.reject = PlanReject::kForcedOther;
      }
    }
    return decision;
  }

  return Choose(std::move(decision));
}

Result<PlanCandidate> StrategyPlanner::PlanChoice(
    const Query& query, const PlanRequest& request) const {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const StrategyCostInputs inputs =
      BuildCostInputs(*est_, query, request.n, storage_);
  const int active_terms = est_->ActiveTerms(query);

  PlanCandidate best;
  bool have = false;
  for (PhysicalStrategy s : AllStrategies()) {
    const StrategyRegistry::Entry* entry = registry.Find(s);
    if (entry == nullptr) continue;
    const PlanCandidate cand =
        Evaluate(*entry, s, inputs, active_terms, request);
    if (cand.reject != PlanReject::kNone) continue;  // eligible == costed
    // Strict < keeps the earlier (lower-enum) strategy on scalar ties —
    // AllStrategies iterates in enum order, so this reproduces Plan()'s
    // deterministic sort exactly.
    if (!have || cand.scalar < best.scalar) {
      best = cand;
      have = true;
    }
  }
  if (!have) return NoEligibleCandidate();
  return best;
}

Result<PlanDecision> StrategyPlanner::PlanForced(
    const Query& query, const PlanRequest& request) const {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  const PhysicalStrategy s = *request.force;
  const StrategyRegistry::Entry* entry = registry.Find(s);
  if (entry == nullptr) {
    return Status::FailedPrecondition(
        std::string("forced strategy unregistered: ") + StrategyName(s));
  }
  const PlannerHooks& hooks = entry->planner;
  const StrategyCostInputs inputs =
      BuildCostInputs(*est_, query, request.n, storage_);
  if (hooks.needs_fragmentation && !inputs.has_fragmentation) {
    return Status::FailedPrecondition(
        std::string("forced strategy unavailable: ") + StrategyName(s));
  }
  if (hooks.needs_active_terms && est_->ActiveTerms(query) < 1) {
    return Status::FailedPrecondition(
        std::string("forced strategy unavailable: ") + StrategyName(s));
  }
  PlanDecision decision;
  decision.forced = true;
  decision.strategy = s;
  decision.quality_target = request.quality_target;
  decision.chosen.strategy = s;
  decision.chosen.safe = entry->safe;
  if (hooks.cost != nullptr) {
    decision.chosen.costed = true;
    decision.chosen.predicted = hooks.cost(inputs);
    decision.chosen.scalar = decision.chosen.predicted.Scalar();
    decision.chosen.predicted_quality =
        hooks.quality != nullptr ? hooks.quality(inputs) : 1.0;
  }
  decision.candidates.push_back(decision.chosen);
  return decision;
}

Result<PlanDecision> StrategyPlanner::Choose(PlanDecision decision) {
  PlanCandidate* best = nullptr;
  for (PlanCandidate& c : decision.candidates) {
    if (c.reject != PlanReject::kNone) continue;
    best = &c;  // candidates are sorted cheapest-first
    break;
  }
  if (best == nullptr) return NoEligibleCandidate();
  decision.strategy = best->strategy;
  decision.chosen = *best;

  for (PlanCandidate& c : decision.candidates) {
    if (c.reject == PlanReject::kNone && c.strategy != best->strategy) {
      c.reject = PlanReject::kCostlier;
    }
  }
  return decision;
}

}  // namespace moa
