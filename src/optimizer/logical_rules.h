// Logical (high-level algebraic) rules: rewrites that stay within general
// algebra knowledge — merging selects, eliding redundant sorts — without
// crossing extension boundaries.
#ifndef MOA_OPTIMIZER_LOGICAL_RULES_H_
#define MOA_OPTIMIZER_LOGICAL_RULES_H_

#include <vector>

#include "optimizer/rule.h"

namespace moa {

/// select(select(e, a, b), c, d) -> select(e, max(a,c), min(b,d)); fires for
/// LIST.select, LIST.select_sorted, BAG.select, SET.select pairs of the
/// same extension.
RulePtr MakeMergeSelectsRule();

/// sort(e) -> e when e is already known sorted (formal order).
RulePtr MakeElideSortRule();

/// parent(sort(e), ...) -> parent(e, ...) when parent is order-insensitive:
/// the sort's only effect was ordering, which the parent ignores.
RulePtr MakeSortUnderOrderInsensitiveRule();

/// slice(x, 0, len>=|x|) -> x and similar no-op eliminations on constants.
RulePtr MakeNoopSliceRule();

/// All logical rules in recommended order.
std::vector<RulePtr> LogicalRules();

}  // namespace moa

#endif  // MOA_OPTIMIZER_LOGICAL_RULES_H_
