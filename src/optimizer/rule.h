// Rewrite-rule framework shared by all three optimizer layers.
#ifndef MOA_OPTIMIZER_RULE_H_
#define MOA_OPTIMIZER_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/extension.h"

namespace moa {

/// \brief One rewrite rule: pattern match + sound replacement at a node.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;

  /// Rule name for traces and Explain.
  virtual std::string name() const = 0;

  /// Attempts to rewrite the *root* of `expr`. Returns the replacement, or
  /// nullptr when the rule does not match. Must be semantics-preserving
  /// (bag-equal values; list-equal when the expression's formal type is
  /// ordered).
  virtual ExprPtr Apply(const ExprPtr& expr,
                        const ExtensionRegistry& registry) const = 0;
};

using RulePtr = std::shared_ptr<const RewriteRule>;

/// \brief Record of which rules fired during a rewrite pass.
struct RewriteTrace {
  std::vector<std::string> fired;  ///< rule names, in firing order
  int iterations = 0;              ///< fixpoint sweeps performed
};

/// Applies `rules` bottom-up over the tree repeatedly until no rule fires
/// or `max_iterations` sweeps are done. Returns the rewritten tree (input
/// unchanged — trees are immutable).
ExprPtr RewriteToFixpoint(const ExprPtr& expr,
                          const std::vector<RulePtr>& rules,
                          const ExtensionRegistry& registry,
                          RewriteTrace* trace = nullptr,
                          int max_iterations = 16);

}  // namespace moa

#endif  // MOA_OPTIMIZER_RULE_H_
