#include "optimizer/planner.h"

#include <algorithm>

#include "exec/registry.h"

namespace moa {

Result<TopNResult> RetrievalPlan::Execute(const ExecContext& context,
                                          const Query& query, size_t n,
                                          const ExecOptions& options) const {
  return StrategyRegistry::Global().Execute(strategy, context, query, n,
                                            options);
}

Planner::Planner(const CostModel* model) : model_(model) {}

Result<RetrievalPlan> Planner::Plan(const Query& query, size_t n,
                                    const PlannerOptions& options) const {
  RetrievalPlan plan;

  if (options.force.has_value()) {
    if (!model_->Available(*options.force, query)) {
      return Status::FailedPrecondition(
          std::string("forced strategy unavailable: ") +
          StrategyName(*options.force));
    }
    plan.strategy = *options.force;
    plan.chosen = model_->Estimate(*options.force, query, n);
    plan.alternatives = {plan.chosen};
    return plan;
  }

  for (PhysicalStrategy s : AllStrategies()) {
    if (options.safe_only && !IsSafeStrategy(s)) continue;
    if (std::find(options.exclude.begin(), options.exclude.end(), s) !=
        options.exclude.end()) {
      continue;
    }
    if (!model_->Available(s, query)) continue;
    plan.alternatives.push_back(model_->Estimate(s, query, n));
  }
  if (plan.alternatives.empty()) {
    return Status::FailedPrecondition("no available strategy");
  }
  std::sort(plan.alternatives.begin(), plan.alternatives.end(),
            [](const PlanCostEstimate& a, const PlanCostEstimate& b) {
              if (a.scalar != b.scalar) return a.scalar < b.scalar;
              return static_cast<int>(a.strategy) <
                     static_cast<int>(b.strategy);
            });
  plan.chosen = plan.alternatives.front();
  plan.strategy = plan.chosen.strategy;
  return plan;
}

}  // namespace moa
