#include "optimizer/interobject_rules.h"

#include "optimizer/logical_rules.h"
#include "optimizer/order_property.h"

namespace moa {
namespace {

class SelectProjectCommuteRule final : public RewriteRule {
 public:
  std::string name() const override { return "select_project_commute"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "BAG.select") {
      return nullptr;
    }
    const auto& args = expr->args();
    if (args.size() != 3) return nullptr;
    const ExprPtr& cast = args[0];
    if (cast->kind() != Expr::Kind::kApply ||
        cast->op() != "LIST.projecttobag") {
      return nullptr;
    }
    ExprPtr inner_select =
        Expr::Apply("LIST.select", {cast->args()[0], args[1], args[2]});
    return Expr::Apply("LIST.projecttobag", {std::move(inner_select)});
  }
};

class SelectSortedIntroRule final : public RewriteRule {
 public:
  std::string name() const override { return "select_sorted_intro"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "LIST.select") {
      return nullptr;
    }
    if (!DeriveOrder(expr->args()[0], registry).sorted) return nullptr;
    return Expr::Apply("LIST.select_sorted", expr->args());
  }
};

class CastRoundTripRule final : public RewriteRule {
 public:
  std::string name() const override { return "cast_round_trip"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply ||
        expr->op() != "BAG.projecttolist") {
      return nullptr;
    }
    const ExprPtr& child = expr->args()[0];
    if (child->kind() != Expr::Kind::kApply ||
        child->op() != "LIST.projecttobag") {
      return nullptr;
    }
    return child->args()[0];
  }
};

class TopNPushThroughCastRule final : public RewriteRule {
 public:
  std::string name() const override { return "topn_push_through_cast"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "LIST.topn") {
      return nullptr;
    }
    const auto& args = expr->args();
    if (args.size() != 2) return nullptr;
    const ExprPtr& cast = args[0];
    if (cast->kind() != Expr::Kind::kApply ||
        cast->op() != "BAG.projecttolist") {
      return nullptr;
    }
    return Expr::Apply("BAG.topn", {cast->args()[0], args[1]});
  }
};

class AggregatePushThroughCastRule final : public RewriteRule {
 public:
  std::string name() const override { return "aggregate_push_through_cast"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || expr->args().size() != 1) {
      return nullptr;
    }
    const ExprPtr& child = expr->args()[0];
    if (child->kind() != Expr::Kind::kApply) return nullptr;

    const std::string& op = expr->op();
    const std::string& cast = child->op();
    // (aggregate over cast) -> aggregate on the cast's input extension.
    if ((op == "BAG.count" || op == "BAG.sum") &&
        cast == "LIST.projecttobag") {
      return Expr::Apply(op == "BAG.count" ? "LIST.count" : "LIST.sum",
                         {child->args()[0]});
    }
    if ((op == "LIST.count" || op == "LIST.sum") &&
        cast == "BAG.projecttolist") {
      return Expr::Apply(op == "LIST.count" ? "BAG.count" : "BAG.sum",
                         {child->args()[0]});
    }
    return nullptr;
  }
};

class SetMakeElidesSortRule final : public RewriteRule {
 public:
  std::string name() const override { return "set_make_elides_sort"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "SET.make") {
      return nullptr;
    }
    const ExprPtr& child = expr->args()[0];
    if (child->kind() != Expr::Kind::kApply || child->op() != "LIST.sort") {
      return nullptr;
    }
    return Expr::Apply("SET.make", {child->args()[0]});
  }
};

}  // namespace

RulePtr MakeSelectProjectCommuteRule() {
  return std::make_shared<SelectProjectCommuteRule>();
}
RulePtr MakeSelectSortedIntroRule() {
  return std::make_shared<SelectSortedIntroRule>();
}
RulePtr MakeCastRoundTripRule() {
  return std::make_shared<CastRoundTripRule>();
}
RulePtr MakeTopNPushThroughCastRule() {
  return std::make_shared<TopNPushThroughCastRule>();
}
RulePtr MakeAggregatePushThroughCastRule() {
  return std::make_shared<AggregatePushThroughCastRule>();
}
RulePtr MakeSetMakeElidesSortRule() {
  return std::make_shared<SetMakeElidesSortRule>();
}

std::vector<RulePtr> InterObjectRules() {
  return {MakeSelectProjectCommuteRule(), MakeSelectSortedIntroRule(),
          MakeCastRoundTripRule(),        MakeTopNPushThroughCastRule(),
          MakeAggregatePushThroughCastRule(), MakeSetMakeElidesSortRule()};
}

std::vector<RulePtr> FullRuleSet() {
  std::vector<RulePtr> rules = InterObjectRules();
  for (auto& r : LogicalRules()) rules.push_back(std::move(r));
  return rules;
}

}  // namespace moa
