#include "optimizer/logical_rules.h"

#include <algorithm>

#include "optimizer/order_property.h"

namespace moa {
namespace {

bool IsSelectOp(const std::string& op) {
  return op == "LIST.select" || op == "LIST.select_sorted" ||
         op == "BAG.select" || op == "SET.select";
}

bool IsNumericConst(const ExprPtr& e) {
  return e->kind() == Expr::Kind::kConst && e->constant().is_numeric();
}

class MergeSelectsRule final : public RewriteRule {
 public:
  std::string name() const override { return "merge_selects"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || !IsSelectOp(expr->op())) {
      return nullptr;
    }
    const auto& args = expr->args();
    if (args.size() != 3) return nullptr;
    const ExprPtr& child = args[0];
    if (child->kind() != Expr::Kind::kApply || !IsSelectOp(child->op())) {
      return nullptr;
    }
    // Both selects must come from the same extension to merge blindly
    // (LIST.select over BAG.select cannot type-check anyway).
    if (expr->ExtensionName() != child->ExtensionName()) return nullptr;
    if (child->args().size() != 3) return nullptr;
    if (!IsNumericConst(args[1]) || !IsNumericConst(args[2]) ||
        !IsNumericConst(child->args()[1]) ||
        !IsNumericConst(child->args()[2])) {
      return nullptr;
    }
    const double lo = std::max(args[1]->constant().AsDouble(),
                               child->args()[1]->constant().AsDouble());
    const double hi = std::min(args[2]->constant().AsDouble(),
                               child->args()[2]->constant().AsDouble());
    // Keep the *inner* op name: if the inner was select_sorted the merged
    // one still requires (and has) sorted input.
    return Expr::Apply(child->op(),
                       {child->args()[0], Expr::Const(Value::Double(lo)),
                        Expr::Const(Value::Double(hi))});
  }
};

class ElideSortRule final : public RewriteRule {
 public:
  std::string name() const override { return "elide_sort"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "LIST.sort") {
      return nullptr;
    }
    const ExprPtr& child = expr->args()[0];
    if (DeriveOrder(child, registry).sorted) return child;
    return nullptr;
  }
};

class SortUnderOrderInsensitiveRule final : public RewriteRule {
 public:
  std::string name() const override { return "sort_under_order_insensitive"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    if (expr->kind() != Expr::Kind::kApply || expr->args().empty()) {
      return nullptr;
    }
    const OpDef* def = registry.Find(expr->op());
    if (def == nullptr || !def->props.order_insensitive) return nullptr;
    const ExprPtr& child = expr->args()[0];
    if (child->kind() != Expr::Kind::kApply ||
        (child->op() != "LIST.sort" && child->op() != "LIST.reverse")) {
      return nullptr;
    }
    std::vector<ExprPtr> new_args = expr->args();
    new_args[0] = child->args()[0];
    return Expr::Apply(expr->op(), std::move(new_args));
  }
};

class NoopSliceRule final : public RewriteRule {
 public:
  std::string name() const override { return "noop_slice"; }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    (void)registry;
    if (expr->kind() != Expr::Kind::kApply || expr->op() != "LIST.slice") {
      return nullptr;
    }
    const auto& args = expr->args();
    if (args.size() != 3) return nullptr;
    const ExprPtr& child = args[0];
    if (child->kind() != Expr::Kind::kConst ||
        child->constant().kind() != ValueKind::kList) {
      return nullptr;
    }
    if (args[1]->kind() != Expr::Kind::kConst ||
        args[2]->kind() != Expr::Kind::kConst ||
        args[1]->constant().kind() != ValueKind::kInt ||
        args[2]->constant().kind() != ValueKind::kInt) {
      return nullptr;
    }
    const int64_t start = args[1]->constant().AsInt();
    const int64_t len = args[2]->constant().AsInt();
    const int64_t size =
        static_cast<int64_t>(child->constant().Elements().size());
    if (start == 0 && len >= size) return child;
    return nullptr;
  }
};

}  // namespace

RulePtr MakeMergeSelectsRule() { return std::make_shared<MergeSelectsRule>(); }
RulePtr MakeElideSortRule() { return std::make_shared<ElideSortRule>(); }
RulePtr MakeSortUnderOrderInsensitiveRule() {
  return std::make_shared<SortUnderOrderInsensitiveRule>();
}
RulePtr MakeNoopSliceRule() { return std::make_shared<NoopSliceRule>(); }

std::vector<RulePtr> LogicalRules() {
  return {MakeMergeSelectsRule(), MakeElideSortRule(),
          MakeSortUnderOrderInsensitiveRule(), MakeNoopSliceRule()};
}

}  // namespace moa
