// Cardinality estimation for retrieval plans.
#ifndef MOA_OPTIMIZER_CARDINALITY_H_
#define MOA_OPTIMIZER_CARDINALITY_H_

#include <cstdint>

#include "ir/query_gen.h"
#include "storage/fragmentation.h"
#include "storage/inverted_file.h"

namespace moa {

/// \brief Estimates over one inverted file (and optional fragmentation).
///
/// All estimates come from exact, cheap statistics (document frequencies),
/// combined under a term-independence assumption — the centralized "much
/// simpler cost model" the paper's Step 3 argues Moa affords.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const InvertedFile* file,
                                const Fragmentation* frag = nullptr);

  /// Total postings volume of the query (sum of document frequencies).
  int64_t QueryVolume(const Query& query) const;

  /// Postings volume restricted to one fragment's query terms.
  int64_t QueryVolume(const Query& query, FragmentId fragment) const;

  /// Expected number of distinct candidate documents (>= 1 query term),
  /// under independence: D * (1 - prod_t (1 - df_t / D)).
  double ExpectedCandidates(const Query& query) const;

  /// Number of query terms with df > 0.
  int ActiveTerms(const Query& query) const;

  /// Number of query terms living in the given fragment (df > 0).
  int ActiveTerms(const Query& query, FragmentId fragment) const;

  const InvertedFile& file() const { return *file_; }
  const Fragmentation* fragmentation() const { return frag_; }

 private:
  const InvertedFile* file_;
  const Fragmentation* frag_;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_CARDINALITY_H_
