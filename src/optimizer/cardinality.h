// Cardinality estimation for retrieval plans.
#ifndef MOA_OPTIMIZER_CARDINALITY_H_
#define MOA_OPTIMIZER_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "ir/query_gen.h"
#include "storage/fragmentation.h"
#include "storage/inverted_file.h"

namespace moa {

/// \brief Estimates over one statistics source (and optional
/// fragmentation).
///
/// All estimates come from exact, cheap statistics (document frequencies),
/// combined under a term-independence assumption — the centralized "much
/// simpler cost model" the paper's Step 3 argues Moa affords. The
/// statistics come either from a static InvertedFile or from a plain df
/// vector (e.g. a catalog snapshot's live per-term df), so the same
/// estimator serves static and dynamic serving modes.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const InvertedFile* file,
                                const Fragmentation* frag = nullptr);

  /// Estimator over live statistics: per-term df (indexed by TermId,
  /// out-of-range terms have df 0) and the live document count. Borrows
  /// `df_by_term` — the caller keeps it alive (a catalog snapshot's
  /// stats vector, pinned by the query's read view) so per-query
  /// planning never copies statistics.
  CardinalityEstimator(const std::vector<uint32_t>* df_by_term,
                       int64_t num_docs,
                       const Fragmentation* frag = nullptr);

  /// Total postings volume of the query (sum of document frequencies).
  int64_t QueryVolume(const Query& query) const;

  /// Postings volume restricted to one fragment's query terms.
  int64_t QueryVolume(const Query& query, FragmentId fragment) const;

  /// Expected number of distinct candidate documents (>= 1 query term),
  /// under independence: D * (1 - prod_t (1 - df_t / D)).
  double ExpectedCandidates(const Query& query) const;

  /// Number of query terms with df > 0.
  int ActiveTerms(const Query& query) const;

  /// Number of query terms living in the given fragment (df > 0).
  int ActiveTerms(const Query& query, FragmentId fragment) const;

  /// Document frequency of one term under this estimator's statistics.
  uint32_t df(TermId t) const;
  /// Live document count under this estimator's statistics.
  int64_t num_docs() const;

  /// Only valid for file-backed estimators (static serving mode).
  const InvertedFile& file() const { return *file_; }
  const Fragmentation* fragmentation() const { return frag_; }

 private:
  const InvertedFile* file_;
  const Fragmentation* frag_;
  const std::vector<uint32_t>* df_ = nullptr;  ///< used when file_ == nullptr
  int64_t num_docs_ = 0;                       ///< used when file_ == nullptr
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_CARDINALITY_H_
