// Inter-object optimizer rules: rewrites across extension boundaries.
//
// This is the paper's proposed contribution (Step 2): a layer between the
// general logical optimizer and the per-extension (E-ADT) optimizers that
// coordinates operators of *distinct* extensions. Example 1 of the paper is
// the first rule below.
#ifndef MOA_OPTIMIZER_INTEROBJECT_RULES_H_
#define MOA_OPTIMIZER_INTEROBJECT_RULES_H_

#include <vector>

#include "optimizer/rule.h"

namespace moa {

/// Paper Example 1:
///   BAG.select(LIST.projecttobag(e), lo, hi)
///     -> LIST.projecttobag(LIST.select(e, lo, hi))
/// The select filters before the (copying) structure cast, so the cast
/// touches only the survivors.
RulePtr MakeSelectProjectCommuteRule();

/// LIST.select(e, lo, hi) -> LIST.select_sorted(e, lo, hi) when e is known
/// sorted — "evaluated even more efficiently when the system is aware of
/// the ordering of the elements".
RulePtr MakeSelectSortedIntroRule();

/// BAG.projecttolist(LIST.projecttobag(e)) -> e. Sound here because the
/// engine's BAG physically preserves storage order; only the inter-object
/// layer (which owns physical knowledge across extensions) may assume this.
RulePtr MakeCastRoundTripRule();

/// LIST.topn(BAG.projecttolist(b), n) -> BAG.topn(b, n): rank directly on
/// the bag, skipping the cast copy.
RulePtr MakeTopNPushThroughCastRule();

/// Aggregate pushdown through casts:
///   BAG.count(LIST.projecttobag(e)) -> LIST.count(e)     (and sum;
///   LIST.count(BAG.projecttolist(b)) -> BAG.count(b)      both ways).
RulePtr MakeAggregatePushThroughCastRule();

/// SET.make(LIST.sort(e)) -> SET.make(e): sets are order-insensitive.
/// (Also covered by the logical sort_under_order_insensitive rule; kept to
/// show the layer boundary in ablations.)
RulePtr MakeSetMakeElidesSortRule();

/// All inter-object rules in recommended order.
std::vector<RulePtr> InterObjectRules();

/// Inter-object + logical rules: the full rewriting pipeline.
std::vector<RulePtr> FullRuleSet();

}  // namespace moa

#endif  // MOA_OPTIMIZER_INTEROBJECT_RULES_H_
