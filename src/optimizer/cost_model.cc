#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace moa {

std::string PlanCostEstimate::ToString() const {
  std::ostringstream os;
  os << StrategyName(strategy) << ": scalar=" << scalar << " "
     << predicted.ToString();
  return os.str();
}

CostModel::CostModel(const CardinalityEstimator* estimator)
    : est_(estimator) {}

bool CostModel::Available(PhysicalStrategy strategy, const Query& query) const {
  switch (strategy) {
    case PhysicalStrategy::kSmallFragment:
    case PhysicalStrategy::kQualitySwitchFull:
    case PhysicalStrategy::kQualitySwitchSparse:
      return est_->fragmentation() != nullptr;
    case PhysicalStrategy::kFaginFA:
    case PhysicalStrategy::kFaginTA:
    case PhysicalStrategy::kFaginNRA:
    case PhysicalStrategy::kMaxScore:
    case PhysicalStrategy::kQuitPrune:
      return est_->ActiveTerms(query) >= 1;
    default:
      return true;
  }
}

PlanCostEstimate CostModel::Estimate(PhysicalStrategy strategy,
                                     const Query& query, size_t n) const {
  PlanCostEstimate out;
  out.strategy = strategy;
  CostCounters& c = out.predicted;

  const double v = static_cast<double>(est_->QueryVolume(query));
  const double cand = std::max(1.0, est_->ExpectedCandidates(query));
  const double nn = std::max<double>(1.0, static_cast<double>(n));
  const double m = std::max(1, est_->ActiveTerms(query));
  const double log2c = std::log2(cand + 2.0);
  const double log2n = std::log2(nn + 2.0);

  auto set = [&](double seq, double rnd, double score, double cmp,
                 double bytes) {
    c.sequential_reads = static_cast<int64_t>(seq);
    c.random_reads = static_cast<int64_t>(rnd);
    c.score_evals = static_cast<int64_t>(score);
    c.compares = static_cast<int64_t>(cmp);
    c.bytes_touched = static_cast<int64_t>(bytes);
  };

  switch (strategy) {
    case PhysicalStrategy::kFullSort:
      set(v, 0, v, cand * log2c, 0);
      break;
    case PhysicalStrategy::kHeap:
      // One heap-offer per candidate; offers past the n-th cost ~log n but
      // most candidates fail the cheap threshold compare.
      set(v, 0, v, cand + nn * log2n * log2c, 0);
      break;
    case PhysicalStrategy::kFaginTA: {
      // On impact-ordered Zipf-weighted lists the threshold collapses far
      // faster than the classical independence bound suggests; calibrated
      // against bench_e5: per-list depth ~ n + sqrt(cand).
      const double depth = nn + std::sqrt(cand);
      const double sorted = std::min(v, m * depth);
      const double random = sorted * (m - 1.0);
      set(sorted, random, random + sorted, sorted * log2n, 0);
      break;
    }
    case PhysicalStrategy::kFaginFA: {
      // FA's sorted phase runs ~4-6x deeper than TA's (it cannot stop on
      // the threshold), and phase 2 random-accesses every seen document in
      // every list.
      const double depth = 5.0 * (nn + std::sqrt(cand));
      const double sorted = std::min(v, m * depth);
      const double seen = std::min(cand, 2.0 * sorted);
      set(sorted, seen * m, seen * m, seen * log2n, 0);
      break;
    }
    case PhysicalStrategy::kFaginNRA: {
      // Without random access NRA must drain most of the volume before the
      // per-candidate upper bounds drop below the n-th lower bound
      // (bench_e5: 40-85% of the volume); bound maintenance adds compares.
      const double sorted = 0.6 * v;
      set(sorted, 0, 0, 4.0 * sorted, 0);
      break;
    }
    case PhysicalStrategy::kStopAfterConservative:
      set(v, 0, v, cand + nn * log2c, 16.0 * cand);
      break;
    case PhysicalStrategy::kStopAfterAggressive: {
      const double survivors = std::min(cand, 1.5 * nn);
      set(v, 512, v, cand + survivors * log2n, 16.0 * survivors);
      break;
    }
    case PhysicalStrategy::kProbabilistic: {
      const double survivors = std::min(cand, nn + 2.0 * std::sqrt(nn));
      set(v, 512, v, cand + survivors * log2n, 16.0 * survivors);
      break;
    }
    case PhysicalStrategy::kSmallFragment: {
      const double vs = static_cast<double>(
          est_->QueryVolume(query, FragmentId::kSmall));
      set(vs, 0, vs, vs + nn * log2n, 0);
      break;
    }
    case PhysicalStrategy::kQualitySwitchFull: {
      const double vs = static_cast<double>(
          est_->QueryVolume(query, FragmentId::kSmall));
      const double vl = static_cast<double>(
          est_->QueryVolume(query, FragmentId::kLarge));
      // Assume the check fires (frequent terms almost always can shift the
      // top n); cost = both passes + final selection.
      set(vs + vl, 0, vs + vl, cand + nn * log2n * log2c, 0);
      break;
    }
    case PhysicalStrategy::kQualitySwitchSparse: {
      const double vs = static_cast<double>(
          est_->QueryVolume(query, FragmentId::kSmall));
      const double ml = est_->ActiveTerms(query, FragmentId::kLarge);
      const double pool = 4.0 * nn;
      const double block = 64.0;
      // Per probe: one directory descent + half a block scan.
      set(vs + ml * pool * block / 2.0, ml * pool, vs + ml * pool,
          cand + nn * log2n, 0);
      break;
    }
    case PhysicalStrategy::kMaxScore: {
      // All postings are read; scoring stops for non-accumulated docs once
      // the bound binds. Rare terms insert ~their volume; the frequent
      // tail mostly updates. Model: full seq, ~60% scored, nth-refresh
      // compares per term.
      set(v, 0, 0.6 * v, cand + m * cand * 0.1 + nn * log2n, 0);
      break;
    }
    case PhysicalStrategy::kQuitPrune: {
      // QUIT stops after the selective (rare) terms have filled the top n:
      // work tracks the TA-like depth, not the volume (bench_e11: the
      // frequent tail is never touched).
      const double touched = std::min(v, 2.0 * m * (nn + std::sqrt(cand)));
      set(touched, 0, touched, touched + nn * log2n, 0);
      break;
    }
  }
  out.scalar = c.Scalar();
  return out;
}

}  // namespace moa
