#include "optimizer/cost_model.h"

#include <algorithm>
#include <sstream>

#include "exec/registry.h"

namespace moa {

std::string PlanCostEstimate::ToString() const {
  std::ostringstream os;
  os << StrategyName(strategy) << ": scalar=" << scalar << " "
     << predicted.ToString();
  return os.str();
}

StrategyCostInputs BuildCostInputs(const CardinalityEstimator& est,
                                   const Query& query, size_t n,
                                   const StrategyCostInputs& storage) {
  StrategyCostInputs in = storage;
  in.volume = static_cast<double>(est.QueryVolume(query));
  in.candidates = std::max(1.0, est.ExpectedCandidates(query));
  in.n = std::max<double>(1.0, static_cast<double>(n));
  in.active_terms = static_cast<double>(std::max(1, est.ActiveTerms(query)));
  in.has_fragmentation = est.fragmentation() != nullptr;
  if (in.has_fragmentation) {
    in.small_volume =
        static_cast<double>(est.QueryVolume(query, FragmentId::kSmall));
    in.large_volume =
        static_cast<double>(est.QueryVolume(query, FragmentId::kLarge));
    in.large_active_terms =
        static_cast<double>(est.ActiveTerms(query, FragmentId::kLarge));
  }
  return in;
}

CostModel::CostModel(const CardinalityEstimator* estimator)
    : est_(estimator) {}

bool CostModel::Available(PhysicalStrategy strategy, const Query& query) const {
  const StrategyRegistry::Entry* entry =
      StrategyRegistry::Global().Find(strategy);
  if (entry == nullptr) return false;
  const PlannerHooks& hooks = entry->planner;
  if (hooks.cost == nullptr) return false;  // no model -> forced-only
  if (hooks.needs_fragmentation && est_->fragmentation() == nullptr) {
    return false;
  }
  if (hooks.needs_active_terms && est_->ActiveTerms(query) < 1) return false;
  return true;
}

PlanCostEstimate CostModel::Estimate(PhysicalStrategy strategy,
                                     const Query& query, size_t n) const {
  PlanCostEstimate out;
  out.strategy = strategy;
  const StrategyRegistry::Entry* entry =
      StrategyRegistry::Global().Find(strategy);
  if (entry == nullptr || entry->planner.cost == nullptr) {
    // Unregistered or model-less strategy: nothing to predict (scalar 0,
    // and Available() already excludes it from cost-based choice).
    return out;
  }
  // Neutral storage signals: the historical cost model assumed the static
  // in-memory inverted file, so CostModel stays bit-identical to it (the
  // storage-aware inputs are the StrategyPlanner's job).
  const StrategyCostInputs in = BuildCostInputs(*est_, query, n);
  out.predicted = entry->planner.cost(in);
  out.scalar = out.predicted.Scalar();
  return out;
}

}  // namespace moa
