// StrategyPlanner: per-query cost/quality-based strategy choice (the
// paper's Step-3 loop, closed).
//
// For every registered strategy the planner evaluates its cost hook over
// the same StrategyCostInputs — cardinalities from live statistics (a
// catalog snapshot's df or the static file's) plus storage signals
// derived from what the query will actually read (codec decode cost,
// tombstone density, component count, fragment-directory presence) — and
// picks the cheapest candidate whose predicted quality meets the
// request's target. Safe strategies predict quality 1.0 by definition;
// unsafe ones register a quality hook.
//
// The decision is a pure function of (snapshot statistics, query, n,
// request): same inputs, same plan. Planning never touches a posting,
// and the decision record is plain data (reject reasons are enums;
// rendering happens only in Explain) so Search can afford a full plan
// per query.
#ifndef MOA_OPTIMIZER_STRATEGY_PLANNER_H_
#define MOA_OPTIMIZER_STRATEGY_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/plan_hooks.h"
#include "exec/strategy.h"
#include "optimizer/cost_model.h"
#include "storage/catalog/catalog_state.h"

namespace moa {

/// \brief Why a candidate was not chosen.
enum class PlanReject {
  kNone = 0,            ///< chosen
  kNoCostModel,         ///< no cost hook registered (forced-only)
  kNeedsFragmentation,  ///< fragment strategy, no fragmentation installed
  kNoActiveTerms,       ///< needs >= 1 query term with df > 0
  kExcluded,            ///< excluded by the request
  kBelowQualityTarget,  ///< predicted quality under the target
  kCostlier,            ///< eligible, but a cheaper candidate won
  kForcedOther,         ///< the request forced a different strategy
};

/// Short display name of a reject reason ("costlier", "below-quality"...).
const char* PlanRejectName(PlanReject reject);

/// \brief One candidate strategy in a planning decision.
struct PlanCandidate {
  PhysicalStrategy strategy = PhysicalStrategy::kHeap;
  bool safe = true;
  bool costed = false;      ///< `predicted`/`scalar` are meaningful
  CostCounters predicted;   ///< predicted work (cost-hook output)
  double scalar = 0.0;      ///< predicted.Scalar()
  double predicted_quality = 1.0;  ///< expected overlap@n in [0, 1]
  PlanReject reject = PlanReject::kNone;  ///< kNone only for the chosen one
};

/// \brief The planner's decision: every candidate plus the choice.
struct PlanDecision {
  PhysicalStrategy strategy = PhysicalStrategy::kHeap;  ///< chosen
  bool forced = false;          ///< request named the strategy
  double quality_target = 1.0;  ///< the target the choice honored
  PlanCandidate chosen;
  /// Every registered strategy: costed ones cheapest-first, uncostable
  /// ones after (enum order within each group).
  std::vector<PlanCandidate> candidates;
};

/// \brief What the caller asks of the planner.
struct PlanRequest {
  size_t n = 10;
  /// Minimum predicted overlap@n: 1.0 admits only exact (safe)
  /// strategies; lower values let cheap unsafe strategies win.
  double quality_target = 1.0;
  /// Forced strategy: bypasses cost-based choice (the decision still
  /// lists every candidate), but must be executable here.
  std::optional<PhysicalStrategy> force;
  /// Strategies to exclude from choice (ablation benches).
  std::vector<PhysicalStrategy> exclude;
};

/// Digests a catalog snapshot's composition into the storage-signal
/// fields of StrategyCostInputs (cardinality fields are left at their
/// defaults; BuildCostInputs fills them per query). Constants calibrated
/// against the e13/e14/e15 benches — see CONTRIBUTING.md for the
/// recalibration procedure.
StrategyCostInputs StorageInputsFor(const CatalogComposition& composition);

/// Storage signals for static serving over an attached mmap segment.
StrategyCostInputs StorageInputsForSegment(SegmentCodec codec,
                                           bool has_fragment_directory);

/// \brief Enumerates registered strategies, costs them through their
/// planner hooks, picks the cheapest meeting the quality target.
class StrategyPlanner {
 public:
  /// \param estimator cardinality source (outlives the planner);
  /// \param storage storage-signal inputs (cardinality fields ignored) —
  ///        default = neutral static in-memory configuration.
  explicit StrategyPlanner(const CardinalityEstimator* estimator,
                           const StrategyCostInputs& storage = {});

  /// Plans one query. Fails only when a forced strategy is not
  /// executable here, or when no candidate is eligible.
  Result<PlanDecision> Plan(const Query& query,
                            const PlanRequest& request) const;

  /// Hot-path variant of Plan() for unforced requests: the identical
  /// choice (same eligibility rules, same cheapest-scalar/enum-order
  /// tie-break), but one pass over the registry with no candidate table,
  /// no allocation and no sort. Search uses this; Explain pays for
  /// Plan()'s full table. `request.force` is ignored here.
  Result<PlanCandidate> PlanChoice(const Query& query,
                                   const PlanRequest& request) const;

  /// Forced fast path: request.force must be set. Validates
  /// executability and costs only the forced strategy — the decision's
  /// candidate list holds just the chosen entry, and no enumeration or
  /// sort happens (Search's hot path; Explain uses Plan() for the full
  /// table).
  Result<PlanDecision> PlanForced(const Query& query,
                                  const PlanRequest& request) const;

 private:
  /// Picks the cheapest eligible candidate from a sorted decision and
  /// stamps reject reasons onto the eligible losers.
  static Result<PlanDecision> Choose(PlanDecision decision);

  const CardinalityEstimator* est_;
  StrategyCostInputs storage_;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_STRATEGY_PLANNER_H_
