// Centralized cost model over all physical top-N strategies (paper Step 3).
//
// "Using Moa, we have the means to handle all types of data in one algebra
//  ... This allows us to keep the cost model much simpler." Every strategy
// is costed in the same CostCounters currency the operators actually tick,
// so estimates and measurements are directly comparable (bench E9).
#ifndef MOA_OPTIMIZER_COST_MODEL_H_
#define MOA_OPTIMIZER_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "optimizer/cardinality.h"

namespace moa {

/// Physical execution strategies the planner can choose among.
enum class PhysicalStrategy {
  kFullSort = 0,
  kHeap,
  kFaginFA,
  kFaginTA,
  kFaginNRA,
  kStopAfterConservative,
  kStopAfterAggressive,
  kProbabilistic,
  kSmallFragment,          // unsafe
  kQualitySwitchFull,      // safe: small pass + checked large full scan
  kQualitySwitchSparse,    // approximate: large fragment via sparse probes
  kMaxScore,               // safe: term-at-a-time max-score pruning
  kQuitPrune,              // unsafe: Moffat-Zobel-style QUIT on the bound
};

const char* StrategyName(PhysicalStrategy s);

/// All strategies, in enum order.
std::vector<PhysicalStrategy> AllStrategies();

/// True if the strategy always returns the exact top-N ranking or set.
bool IsSafeStrategy(PhysicalStrategy s);

/// \brief Predicted work + scalar cost for one (strategy, query, n).
struct PlanCostEstimate {
  PhysicalStrategy strategy;
  CostCounters predicted;
  double scalar = 0.0;  ///< predicted.Scalar()

  std::string ToString() const;
};

/// \brief Analytic cost formulas per strategy.
class CostModel {
 public:
  /// \param estimator cardinality source; \param n_docs needed for bounds.
  explicit CostModel(const CardinalityEstimator* estimator);

  /// Predicts the work of running `strategy` for (query, n).
  PlanCostEstimate Estimate(PhysicalStrategy strategy, const Query& query,
                            size_t n) const;

  /// Whether the strategy is executable in the current setup (fragment
  /// strategies need a fragmentation; Fagin needs >= 1 active term).
  bool Available(PhysicalStrategy strategy, const Query& query) const;

 private:
  const CardinalityEstimator* est_;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_COST_MODEL_H_
