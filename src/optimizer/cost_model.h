// Centralized cost model over all physical top-N strategies (paper Step 3).
//
// "Using Moa, we have the means to handle all types of data in one algebra
//  ... This allows us to keep the cost model much simpler." Every strategy
// is costed in the same CostCounters currency the operators actually tick,
// so estimates and measurements are directly comparable (bench E9).
#ifndef MOA_OPTIMIZER_COST_MODEL_H_
#define MOA_OPTIMIZER_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/cost_ticker.h"
#include "exec/plan_hooks.h"
// PhysicalStrategy and the name/safety helpers live in the exec layer now;
// re-exported here for source compatibility with pre-exec callers.
#include "exec/strategy.h"
#include "optimizer/cardinality.h"

namespace moa {

/// Digests (query, n) into the inputs a strategy's registered cost hook
/// consumes: cardinalities from `est`, fragment split when `est` carries a
/// fragmentation, storage signals copied from `storage` (defaults =
/// neutral static in-memory configuration). Shared by CostModel (neutral)
/// and StrategyPlanner (snapshot-derived signals).
StrategyCostInputs BuildCostInputs(const CardinalityEstimator& est,
                                   const Query& query, size_t n,
                                   const StrategyCostInputs& storage = {});

/// \brief Predicted work + scalar cost for one (strategy, query, n).
struct PlanCostEstimate {
  PhysicalStrategy strategy;
  CostCounters predicted;
  double scalar = 0.0;  ///< predicted.Scalar()

  std::string ToString() const;
};

/// \brief Analytic cost formulas per strategy.
class CostModel {
 public:
  /// \param estimator cardinality source; \param n_docs needed for bounds.
  explicit CostModel(const CardinalityEstimator* estimator);

  /// Predicts the work of running `strategy` for (query, n).
  PlanCostEstimate Estimate(PhysicalStrategy strategy, const Query& query,
                            size_t n) const;

  /// Whether the strategy is executable in the current setup (fragment
  /// strategies need a fragmentation; Fagin needs >= 1 active term).
  bool Available(PhysicalStrategy strategy, const Query& query) const;

 private:
  const CardinalityEstimator* est_;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_COST_MODEL_H_
