#include "optimizer/cardinality.h"

namespace moa {

CardinalityEstimator::CardinalityEstimator(const InvertedFile* file,
                                           const Fragmentation* frag)
    : file_(file), frag_(frag) {}

int64_t CardinalityEstimator::QueryVolume(const Query& query) const {
  int64_t v = 0;
  for (TermId t : query.terms) v += file_->DocFrequency(t);
  return v;
}

int64_t CardinalityEstimator::QueryVolume(const Query& query,
                                          FragmentId fragment) const {
  if (frag_ == nullptr) return fragment == FragmentId::kLarge ? 0 : QueryVolume(query);
  int64_t v = 0;
  for (TermId t : query.terms) {
    if (frag_->fragment_of(t) == fragment) v += file_->DocFrequency(t);
  }
  return v;
}

double CardinalityEstimator::ExpectedCandidates(const Query& query) const {
  const double d = static_cast<double>(file_->num_docs());
  if (d == 0) return 0.0;
  double p_none = 1.0;
  for (TermId t : query.terms) {
    p_none *= 1.0 - static_cast<double>(file_->DocFrequency(t)) / d;
  }
  return d * (1.0 - p_none);
}

int CardinalityEstimator::ActiveTerms(const Query& query) const {
  int m = 0;
  for (TermId t : query.terms) m += file_->DocFrequency(t) > 0 ? 1 : 0;
  return m;
}

int CardinalityEstimator::ActiveTerms(const Query& query,
                                      FragmentId fragment) const {
  if (frag_ == nullptr) return fragment == FragmentId::kLarge ? 0 : ActiveTerms(query);
  int m = 0;
  for (TermId t : query.terms) {
    if (file_->DocFrequency(t) > 0 && frag_->fragment_of(t) == fragment) ++m;
  }
  return m;
}

}  // namespace moa
