#include "optimizer/cardinality.h"

namespace moa {

CardinalityEstimator::CardinalityEstimator(const InvertedFile* file,
                                           const Fragmentation* frag)
    : file_(file), frag_(frag) {}

CardinalityEstimator::CardinalityEstimator(
    const std::vector<uint32_t>* df_by_term, int64_t num_docs,
    const Fragmentation* frag)
    : file_(nullptr), frag_(frag), df_(df_by_term), num_docs_(num_docs) {}

uint32_t CardinalityEstimator::df(TermId t) const {
  if (file_ != nullptr) return file_->DocFrequency(t);
  return t < df_->size() ? (*df_)[t] : 0;
}

int64_t CardinalityEstimator::num_docs() const {
  return file_ != nullptr ? static_cast<int64_t>(file_->num_docs())
                          : num_docs_;
}

int64_t CardinalityEstimator::QueryVolume(const Query& query) const {
  int64_t v = 0;
  for (TermId t : query.terms) v += df(t);
  return v;
}

int64_t CardinalityEstimator::QueryVolume(const Query& query,
                                          FragmentId fragment) const {
  if (frag_ == nullptr) return fragment == FragmentId::kLarge ? 0 : QueryVolume(query);
  int64_t v = 0;
  for (TermId t : query.terms) {
    if (frag_->fragment_of(t) == fragment) v += df(t);
  }
  return v;
}

double CardinalityEstimator::ExpectedCandidates(const Query& query) const {
  const double d = static_cast<double>(num_docs());
  if (d == 0) return 0.0;
  double p_none = 1.0;
  for (TermId t : query.terms) {
    p_none *= 1.0 - static_cast<double>(df(t)) / d;
  }
  return d * (1.0 - p_none);
}

int CardinalityEstimator::ActiveTerms(const Query& query) const {
  int m = 0;
  for (TermId t : query.terms) m += df(t) > 0 ? 1 : 0;
  return m;
}

int CardinalityEstimator::ActiveTerms(const Query& query,
                                      FragmentId fragment) const {
  if (frag_ == nullptr) return fragment == FragmentId::kLarge ? 0 : ActiveTerms(query);
  int m = 0;
  for (TermId t : query.terms) {
    if (df(t) > 0 && frag_->fragment_of(t) == fragment) ++m;
  }
  return m;
}

}  // namespace moa
