// Order-property derivation (after Simmen/Shekita/Malkemus, SIGMOD'96).
//
// The optimizer tracks, per expression, whether its value is known to be
// ascending-sorted — either formally (LIST.sort output) or *physically*
// (a BAG's storage order inherited from a sorted LIST). Order that exists
// physically but not formally is exactly what the paper's inter-object
// optimizer is allowed to exploit and an E-ADT optimizer is not.
#ifndef MOA_OPTIMIZER_ORDER_PROPERTY_H_
#define MOA_OPTIMIZER_ORDER_PROPERTY_H_

#include "algebra/expr.h"
#include "algebra/extension.h"

namespace moa {

/// \brief Derived ordering knowledge about one expression.
struct OrderInfo {
  /// The value is ascending-sorted and its type makes order meaningful
  /// (LIST/SET).
  bool sorted = false;
  /// The value's *physical storage* is ascending-sorted even though the
  /// formal type (BAG) has no order. Only the inter-object layer may use
  /// this.
  bool physically_sorted = false;
};

/// Derives ordering bottom-up from operator properties. For constant LIST
/// leaves the elements are inspected once (O(n)); the result is sound:
/// `sorted` is only reported when provably true.
OrderInfo DeriveOrder(const ExprPtr& expr,
                      const ExtensionRegistry& registry =
                          ExtensionRegistry::Default());

}  // namespace moa

#endif  // MOA_OPTIMIZER_ORDER_PROPERTY_H_
