#include "optimizer/order_property.h"

namespace moa {
namespace {

bool ElementsSorted(const Value& v) {
  const auto& elems = v.Elements();
  for (size_t i = 1; i < elems.size(); ++i) {
    if (Value::Compare(elems[i - 1], elems[i]) > 0) return false;
  }
  return true;
}

}  // namespace

OrderInfo DeriveOrder(const ExprPtr& expr, const ExtensionRegistry& registry) {
  OrderInfo info;
  if (!expr) return info;

  if (expr->kind() == Expr::Kind::kConst) {
    const Value& v = expr->constant();
    if (v.kind() == ValueKind::kList) {
      info.sorted = ElementsSorted(v);
      info.physically_sorted = info.sorted;
    } else if (v.kind() == ValueKind::kSet) {
      info.sorted = true;  // canonical storage
      info.physically_sorted = true;
    } else if (v.kind() == ValueKind::kBag) {
      info.physically_sorted = ElementsSorted(v);
    }
    return info;
  }

  const OpDef* def = registry.Find(expr->op());
  if (def == nullptr) return info;

  if (def->props.produces_sorted_output) {
    info.sorted = true;
    info.physically_sorted = true;
    return info;
  }
  if (expr->args().empty()) return info;

  const OrderInfo child = DeriveOrder(expr->args()[0], registry);
  if (def->props.preserves_order) {
    // Order flows through; whether it is *formal* depends on the result
    // kind: a LIST output keeps formal order, a BAG output only physical.
    if (def->props.result_kind == ValueKind::kBag) {
      info.physically_sorted = child.sorted || child.physically_sorted;
    } else {
      info.sorted = child.sorted;
      info.physically_sorted = child.physically_sorted || child.sorted;
    }
    return info;
  }

  // Filters on formally-unordered structures (BAG.select) still emit the
  // survivors in storage order, so the *physical* order survives even
  // though no formal order exists to preserve.
  if (def->props.is_filter) {
    info.physically_sorted = child.sorted || child.physically_sorted;
    if (def->props.result_kind != ValueKind::kBag) {
      info.sorted = child.sorted;
    }
    return info;
  }

  // Structure casts preserve the physical element sequence even though they
  // change the formal type (LIST.projecttobag / BAG.projecttolist copy in
  // storage order).
  if (expr->op() == "LIST.projecttobag") {
    info.physically_sorted = child.sorted || child.physically_sorted;
    return info;
  }
  if (expr->op() == "BAG.projecttolist") {
    // The list's formal order is whatever the bag's physical order was.
    info.sorted = child.physically_sorted;
    info.physically_sorted = child.physically_sorted;
    return info;
  }
  return info;
}

}  // namespace moa
