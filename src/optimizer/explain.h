// Pretty-printing of expressions, rewrite traces and plan decisions.
#ifndef MOA_OPTIMIZER_EXPLAIN_H_
#define MOA_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "algebra/expr.h"
#include "optimizer/rule.h"

namespace moa {

/// Indented multi-line rendering of an expression tree with derived order
/// annotations per node.
std::string ExplainExpr(const ExprPtr& expr,
                        const ExtensionRegistry& registry =
                            ExtensionRegistry::Default());

/// Renders a rewrite trace ("rule1 -> rule2 -> ...").
std::string ExplainTrace(const RewriteTrace& trace);

struct RetrievalPlan;

/// Multi-line Explain rendering of a plan decision. Each alternative is
/// annotated with its exec-registry metadata ([safe] / [unsafe] /
/// [unregistered]) — no per-strategy knowledge lives here.
std::string ExplainPlan(const RetrievalPlan& plan);

}  // namespace moa

#endif  // MOA_OPTIMIZER_EXPLAIN_H_
