// Pretty-printing of expressions, rewrite traces and plan decisions.
#ifndef MOA_OPTIMIZER_EXPLAIN_H_
#define MOA_OPTIMIZER_EXPLAIN_H_

#include <cstdint>
#include <string>

#include "algebra/expr.h"
#include "obs/query_trace.h"
#include "optimizer/rule.h"
#include "optimizer/strategy_planner.h"

namespace moa {

/// Indented multi-line rendering of an expression tree with derived order
/// annotations per node.
std::string ExplainExpr(const ExprPtr& expr,
                        const ExtensionRegistry& registry =
                            ExtensionRegistry::Default());

/// Renders a rewrite trace ("rule1 -> rule2 -> ...").
std::string ExplainTrace(const RewriteTrace& trace);

struct RetrievalPlan;

/// Multi-line Explain rendering of a plan decision. Each alternative is
/// annotated with its exec-registry metadata ([safe] / [unsafe] /
/// [unregistered]) — no per-strategy knowledge lives here.
std::string ExplainPlan(const RetrievalPlan& plan);

/// \brief Structured result of MmDatabase::ExplainSearch.
///
/// Everything the old text output said, as data: the full planning
/// decision (every candidate with predicted cost, predicted quality and
/// reject reason), what storage the plan reads, the fragmentation the
/// fragment strategies would use, and the block-level behavior of a
/// best-effort execution. ToString() renders the classic multi-line text
/// ("chosen: ...", "alternatives (cheapest first): ...", "storage: ...",
/// "blocks: ...").
struct ExplainReport {
  PlanDecision decision;
  /// Payload of the `storage:` line (what the plan will read).
  std::string storage;
  /// Payload of the `fragmentation:` line; empty = line omitted (no
  /// fragment strategy involved).
  std::string fragmentation;
  /// Block-level counters from actually running the chosen strategy;
  /// has_blocks = false when that execution was not possible.
  bool has_blocks = false;
  int64_t blocks_decoded = 0;
  int64_t blocks_skipped = 0;
  /// Shard scatter-gather counters of the same best-effort execution;
  /// has_shards = false over unsharded storage.
  bool has_shards = false;
  int64_t shards_visited = 0;
  int64_t shards_skipped = 0;
  /// Stage trace of the same best-effort execution: per-stage wall time and
  /// CostCounters deltas plus the planner's predicted scalar for comparison
  /// against trace.observed_scalar(). has_trace = false when the execution
  /// failed or when observability is compiled out (MOA_OBS=OFF).
  bool has_trace = false;
  obs::QueryTraceData trace;

  std::string ToString() const;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_EXPLAIN_H_
