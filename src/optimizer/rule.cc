#include "optimizer/rule.h"

namespace moa {
namespace {

/// One bottom-up sweep; sets *changed when any rule fired.
ExprPtr SweepOnce(const ExprPtr& expr, const std::vector<RulePtr>& rules,
                  const ExtensionRegistry& registry, RewriteTrace* trace,
                  bool* changed) {
  if (!expr || expr->kind() == Expr::Kind::kConst) return expr;

  // Rewrite children first.
  std::vector<ExprPtr> new_args;
  new_args.reserve(expr->args().size());
  bool child_changed = false;
  for (const auto& a : expr->args()) {
    ExprPtr na = SweepOnce(a, rules, registry, trace, &child_changed);
    new_args.push_back(std::move(na));
  }
  ExprPtr node = child_changed
                     ? Expr::Apply(expr->op(), std::move(new_args))
                     : expr;
  if (child_changed) *changed = true;

  // Then the node itself, to local fixpoint.
  bool fired = true;
  while (fired) {
    fired = false;
    for (const auto& rule : rules) {
      ExprPtr replacement = rule->Apply(node, registry);
      if (replacement != nullptr && !Expr::Equal(replacement, node)) {
        if (trace != nullptr) trace->fired.push_back(rule->name());
        node = replacement;
        *changed = true;
        fired = true;
        break;
      }
    }
  }
  return node;
}

}  // namespace

ExprPtr RewriteToFixpoint(const ExprPtr& expr,
                          const std::vector<RulePtr>& rules,
                          const ExtensionRegistry& registry,
                          RewriteTrace* trace, int max_iterations) {
  ExprPtr current = expr;
  for (int i = 0; i < max_iterations; ++i) {
    bool changed = false;
    current = SweepOnce(current, rules, registry, trace, &changed);
    if (trace != nullptr) ++trace->iterations;
    if (!changed) break;
  }
  return current;
}

}  // namespace moa
