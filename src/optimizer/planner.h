// Cost-based strategy choice for retrieval queries.
#ifndef MOA_OPTIMIZER_PLANNER_H_
#define MOA_OPTIMIZER_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief What the caller allows the planner to pick.
struct PlannerOptions {
  /// Only strategies that return the exact answer (set) are considered.
  bool safe_only = true;
  /// Force one strategy (bypasses costing); must be Available.
  std::optional<PhysicalStrategy> force;
  /// Strategies to exclude (e.g. for ablation benches).
  std::vector<PhysicalStrategy> exclude;
};

/// \brief The planner's decision and its reasoning — executable via the
/// exec-layer StrategyRegistry.
struct RetrievalPlan {
  PhysicalStrategy strategy;
  PlanCostEstimate chosen;
  /// Every considered alternative, cheapest first (for Explain).
  std::vector<PlanCostEstimate> alternatives;

  /// Runs the chosen strategy through the global StrategyRegistry.
  Result<TopNResult> Execute(const ExecContext& context, const Query& query,
                             size_t n, const ExecOptions& options = {}) const;
};

/// \brief Enumerates available strategies, costs them, picks the cheapest.
class Planner {
 public:
  explicit Planner(const CostModel* model);

  Result<RetrievalPlan> Plan(const Query& query, size_t n,
                             const PlannerOptions& options) const;

 private:
  const CostModel* model_;
};

}  // namespace moa

#endif  // MOA_OPTIMIZER_PLANNER_H_
