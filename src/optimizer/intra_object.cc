#include "optimizer/intra_object.h"

#include "optimizer/logical_rules.h"

namespace moa {
namespace {

/// Wraps a rule so it only fires when the node and its operator children
/// all belong to `extension` — the E-ADT visibility restriction.
class ExtensionScopedRule final : public RewriteRule {
 public:
  ExtensionScopedRule(std::string extension, RulePtr inner)
      : extension_(std::move(extension)), inner_(std::move(inner)) {}

  std::string name() const override {
    return extension_ + ":" + inner_->name();
  }

  ExprPtr Apply(const ExprPtr& expr,
                const ExtensionRegistry& registry) const override {
    if (expr->kind() != Expr::Kind::kApply) return nullptr;
    if (expr->ExtensionName() != extension_) return nullptr;
    for (const auto& a : expr->args()) {
      if (a->kind() == Expr::Kind::kApply &&
          a->ExtensionName() != extension_) {
        return nullptr;  // crosses the extension boundary: not visible
      }
    }
    return inner_->Apply(expr, registry);
  }

 private:
  std::string extension_;
  RulePtr inner_;
};

}  // namespace

IntraObjectOptimizer::IntraObjectOptimizer(std::string extension,
                                           std::vector<RulePtr> rules)
    : extension_(std::move(extension)) {
  rules_.reserve(rules.size());
  for (auto& r : rules) {
    rules_.push_back(
        std::make_shared<ExtensionScopedRule>(extension_, std::move(r)));
  }
}

ExprPtr IntraObjectOptimizer::Optimize(const ExprPtr& expr,
                                       const ExtensionRegistry& registry,
                                       RewriteTrace* trace) const {
  return RewriteToFixpoint(expr, rules_, registry, trace);
}

std::vector<IntraObjectOptimizer> DefaultIntraObjectOptimizers() {
  std::vector<IntraObjectOptimizer> opts;
  opts.emplace_back("LIST", LogicalRules());
  opts.emplace_back("BAG", LogicalRules());
  opts.emplace_back("SET", LogicalRules());
  return opts;
}

ExprPtr IntraObjectOnlyOptimize(const ExprPtr& expr,
                                const ExtensionRegistry& registry,
                                RewriteTrace* trace) {
  ExprPtr current = expr;
  for (const auto& opt : DefaultIntraObjectOptimizers()) {
    current = opt.Optimize(current, registry, trace);
  }
  return current;
}

}  // namespace moa
