#include "optimizer/explain.h"

#include <sstream>

#include "exec/registry.h"
#include "optimizer/order_property.h"
#include "optimizer/planner.h"

namespace moa {
namespace {

void Render(const ExprPtr& expr, const ExtensionRegistry& registry,
            int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  if (expr->kind() == Expr::Kind::kConst) {
    const Value& v = expr->constant();
    if (v.is_collection() && v.Elements().size() > 16) {
      *os << ValueKindName(v.kind()) << "<" << v.Elements().size()
          << " elems>";
    } else {
      *os << v.ToString();
    }
  } else {
    *os << expr->op();
  }
  const OrderInfo order = DeriveOrder(expr, registry);
  if (order.sorted) {
    *os << "   [sorted]";
  } else if (order.physically_sorted) {
    *os << "   [physically-sorted]";
  }
  *os << "\n";
  if (expr->kind() == Expr::Kind::kApply) {
    for (const auto& a : expr->args()) {
      Render(a, registry, depth + 1, os);
    }
  }
}

}  // namespace

std::string ExplainExpr(const ExprPtr& expr,
                        const ExtensionRegistry& registry) {
  std::ostringstream os;
  Render(expr, registry, 0, &os);
  return os.str();
}

std::string ExplainTrace(const RewriteTrace& trace) {
  std::ostringstream os;
  if (trace.fired.empty()) {
    os << "(no rules fired)";
    return os.str();
  }
  for (size_t i = 0; i < trace.fired.size(); ++i) {
    if (i > 0) os << " -> ";
    os << trace.fired[i];
  }
  return os.str();
}

std::string ExplainReport::ToString() const {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  std::ostringstream os;
  os << "chosen: " << StrategyName(decision.strategy);
  if (decision.forced) {
    os << " (forced)";
  } else {
    os << " (planned: quality_target=" << decision.quality_target
       << ", predicted_quality=" << decision.chosen.predicted_quality << ")";
  }
  os << "\n";
  os << "alternatives (cheapest first):\n";
  for (const PlanCandidate& cand : decision.candidates) {
    os << "  " << StrategyName(cand.strategy) << ": ";
    if (cand.costed) {
      os << "scalar=" << cand.scalar << " " << cand.predicted.ToString();
      if (cand.predicted_quality < 1.0) {
        os << " quality=" << cand.predicted_quality;
      }
    } else {
      os << "(uncosted)";
    }
    os << (cand.safe ? " [safe]" : " [unsafe]");
    const StrategyRegistry::Entry* entry = registry.Find(cand.strategy);
    if (entry != nullptr && entry->accepts_options != kNoStrategyOptions) {
      os << " [options: " << ExecOptionsVariantName(entry->accepts_options)
         << "]";
    }
    if (cand.reject != PlanReject::kNone) {
      os << " — " << PlanRejectName(cand.reject);
    }
    os << "\n";
  }
  os << "storage: " << storage << "\n";
  if (!fragmentation.empty()) os << "fragmentation: " << fragmentation << "\n";
  if (has_blocks) {
    os << "blocks: decoded " << blocks_decoded << ", skipped "
       << blocks_skipped
       << " (block-directory skips + block-max pruning; 0/0 over "
          "blockless in-memory lists)\n";
  }
  if (has_shards) {
    os << "shards: visited " << shards_visited << ", skipped "
       << shards_skipped << " (aggregate impact-bound pruning)\n";
  }
  if (has_trace) {
    os << "trace: predicted_scalar=" << trace.predicted_scalar
       << " observed_scalar=" << trace.observed_scalar()
       << " wall=" << trace.wall_millis << "ms\n";
    for (const obs::TraceSpanData& span : trace.spans) {
      os << "  stage " << span.stage << ": wall=" << span.wall_millis
         << "ms scalar=" << span.cost.Scalar() << "\n";
    }
  }
  return os.str();
}

std::string ExplainPlan(const RetrievalPlan& plan) {
  const StrategyRegistry& registry = StrategyRegistry::Global();
  std::ostringstream os;
  os << "chosen: " << StrategyName(plan.strategy) << "\n";
  os << "alternatives (cheapest first):\n";
  for (const auto& alt : plan.alternatives) {
    os << "  " << alt.ToString();
    const StrategyRegistry::Entry* entry = registry.Find(alt.strategy);
    if (entry == nullptr) {
      os << " [unregistered]";
    } else {
      os << (entry->safe ? " [safe]" : " [unsafe]");
      if (entry->accepts_options != kNoStrategyOptions) {
        os << " [options: "
           << ExecOptionsVariantName(entry->accepts_options) << "]";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace moa
