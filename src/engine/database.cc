#include "engine/database.h"

#include "common/timer.h"
#include "topn/baselines.h"
#include "topn/fagin.h"
#include "topn/maxscore.h"
#include "topn/probabilistic.h"
#include "topn/stop_after.h"

namespace moa {

Result<std::unique_ptr<MmDatabase>> MmDatabase::Open(
    const DatabaseConfig& config) {
  auto db = std::unique_ptr<MmDatabase>(new MmDatabase());
  db->config_ = config;

  Result<Collection> coll = Collection::Generate(config.collection);
  if (!coll.ok()) return coll.status();
  db->collection_ = std::make_unique<Collection>(std::move(coll).ValueOrDie());

  InvertedFile& file = db->collection_->mutable_inverted_file();
  switch (config.scoring) {
    case ScoringModelKind::kTfIdf:
      db->model_ = MakeTfIdf(&file);
      break;
    case ScoringModelKind::kBm25:
      db->model_ = MakeBm25(&file);
      break;
    case ScoringModelKind::kLanguageModel:
      db->model_ = MakeLanguageModel(&file);
      break;
  }
  file.BuildImpactOrders([&](TermId t, const Posting& p) {
    return db->model_->Weight(t, p);
  });
  db->fragmentation_ = Fragmentation::Build(file, config.fragmentation);
  db->estimator_ = std::make_unique<CardinalityEstimator>(
      &file, &db->fragmentation_);
  db->cost_model_ = std::make_unique<CostModel>(db->estimator_.get());
  db->planner_ = std::make_unique<Planner>(db->cost_model_.get());
  return db;
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       double switch_threshold) {
  const InvertedFile& f = file();
  switch (strategy) {
    case PhysicalStrategy::kFullSort:
      return FullSortTopN(f, *model_, query, n);
    case PhysicalStrategy::kHeap:
      return HeapTopN(f, *model_, query, n);
    case PhysicalStrategy::kFaginFA:
      return FaginFA(f, *model_, query, n);
    case PhysicalStrategy::kFaginTA:
      return FaginTA(f, *model_, query, n);
    case PhysicalStrategy::kFaginNRA:
      return FaginNRA(f, *model_, query, n);
    case PhysicalStrategy::kStopAfterConservative: {
      StopAfterOptions opts;
      opts.policy = StopAfterPolicy::kConservative;
      return StopAfterTopN(f, *model_, query, n, opts);
    }
    case PhysicalStrategy::kStopAfterAggressive: {
      StopAfterOptions opts;
      opts.policy = StopAfterPolicy::kAggressive;
      return StopAfterTopN(f, *model_, query, n, opts);
    }
    case PhysicalStrategy::kProbabilistic: {
      ProbabilisticOptions opts;
      return ProbabilisticTopN(f, *model_, query, n, opts);
    }
    case PhysicalStrategy::kSmallFragment:
      return SmallFragmentTopN(f, fragmentation_, *model_, query, n);
    case PhysicalStrategy::kQualitySwitchFull: {
      QualitySwitchOptions opts;
      opts.switch_threshold = switch_threshold;
      opts.mode = LargeFragmentMode::kFullScan;
      return QualitySwitchTopN(f, fragmentation_, *model_, query, n, opts);
    }
    case PhysicalStrategy::kQualitySwitchSparse: {
      QualitySwitchOptions opts;
      opts.switch_threshold = switch_threshold;
      opts.mode = LargeFragmentMode::kSparseProbe;
      opts.sparse_cache = &sparse_cache_;
      return QualitySwitchTopN(f, fragmentation_, *model_, query, n, opts);
    }
    case PhysicalStrategy::kMaxScore: {
      MaxScoreOptions opts;
      opts.mode = PruneMode::kContinue;
      return MaxScoreTopN(f, *model_, query, n, opts);
    }
    case PhysicalStrategy::kQuitPrune: {
      MaxScoreOptions opts;
      opts.mode = PruneMode::kQuit;
      return MaxScoreTopN(f, *model_, query, n, opts);
    }
  }
  return Status::Internal("unhandled strategy");
}

Result<SearchResult> MmDatabase::Search(const Query& query,
                                        const SearchOptions& options) {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();

  SearchResult out;
  out.strategy = plan.ValueOrDie().strategy;
  out.estimate = plan.ValueOrDie().chosen;

  WallTimer timer;
  Result<TopNResult> top =
      Execute(out.strategy, query, options.n, options.switch_threshold);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();
  return out;
}

std::vector<ScoredDoc> MmDatabase::GroundTruth(const Query& query,
                                               size_t n) const {
  return ExactTopN(file(), *model_, query, n);
}

std::vector<double> MmDatabase::GroundTruthScores(const Query& query) const {
  return AccumulateScores(file(), *model_, query);
}

Result<std::string> MmDatabase::ExplainSearch(
    const Query& query, const SearchOptions& options) const {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(plan.ValueOrDie());
}

}  // namespace moa
