#include "engine/database.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>

#include "common/timer.h"
#include "engine/shard_coordinator.h"
#include "exec/registry.h"
#include "obs/metrics.h"
#include "optimizer/explain.h"
#include "storage/segment/segment_writer.h"

namespace moa {

Result<std::unique_ptr<MmDatabase>> MmDatabase::Open(
    const DatabaseConfig& config) {
  auto db = std::unique_ptr<MmDatabase>(new MmDatabase());
  db->config_ = config;

  Result<Collection> coll = Collection::Generate(config.collection);
  if (!coll.ok()) return coll.status();
  db->collection_ = std::make_unique<Collection>(std::move(coll).ValueOrDie());

  InvertedFile& file = db->collection_->mutable_inverted_file();
  switch (config.scoring) {
    case ScoringModelKind::kTfIdf:
      db->model_ = MakeTfIdf(&file);
      break;
    case ScoringModelKind::kBm25:
      db->model_ = MakeBm25(&file);
      break;
    case ScoringModelKind::kLanguageModel:
      db->model_ = MakeLanguageModel(&file);
      break;
  }
  file.BuildImpactOrders([&](TermId t, const Posting& p) {
    return db->model_->Weight(t, p);
  });
  db->fragmentation_ = Fragmentation::Build(file, config.fragmentation);
  db->estimator_ = std::make_unique<CardinalityEstimator>(
      &file, &db->fragmentation_);
  return db;
}

std::shared_ptr<const SegmentReader> MmDatabase::segment_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return segment_;
}

std::shared_ptr<const CatalogReadView> MmDatabase::catalog_view() const {
  return catalog_->OpenReadView();
}

std::shared_ptr<const Fragmentation> MmDatabase::DynamicFragmentation(
    const CatalogState& state) const {
  return DynamicFragmentation(state.stats().df, state.version());
}

std::shared_ptr<const Fragmentation> MmDatabase::DynamicFragmentation(
    const std::vector<uint32_t>& df, uint64_t version) const {
  std::lock_guard<std::mutex> lock(dyn_frag_mutex_);
  if (dyn_frag_ == nullptr || dyn_frag_version_ != version) {
    // Live df is all the assignment depends on, so this fragments exactly
    // like a fresh index of the surviving documents. Under sharding the
    // df is the global aggregate, so the term classification every shard
    // executes with is identical to a single catalog's.
    dyn_frag_ = std::make_shared<const Fragmentation>(
        Fragmentation::Build(df, config_.fragmentation));
    dyn_frag_version_ = version;
  }
  return dyn_frag_;
}

namespace {

/// Everything a catalog-backed query borrows, bundled so one shared_ptr
/// (ExecContext::postings_owner) keeps the whole chain alive across
/// concurrent mutations: the read view (state + stats + model) and the
/// snapshot's fragmentation.
struct DynamicQueryState {
  std::shared_ptr<const CatalogReadView> view;
  std::shared_ptr<const Fragmentation> fragmentation;
};

/// The strategies that read ExecContext::fragmentation — registry
/// metadata (PlannerHooks::needs_fragmentation), not a hard-coded list,
/// so custom registrations participate.
bool NeedsFragmentation(PhysicalStrategy s) {
  const StrategyRegistry::Entry* entry = StrategyRegistry::Global().Find(s);
  return entry != nullptr && entry->planner.needs_fragmentation;
}

}  // namespace

ExecContext MmDatabase::catalog_context(
    const std::shared_ptr<const CatalogReadView>& view,
    std::shared_ptr<const Fragmentation> fragmentation) const {
  // No materialized InvertedFile describes the evolving collection; every
  // strategy streams the snapshot through the cursor API instead. The
  // fragment strategies additionally get a fragmentation derived from the
  // snapshot's live statistics and the snapshot-scoped sparse cache.
  auto bundle = std::make_shared<DynamicQueryState>();
  bundle->view = view;
  bundle->fragmentation = std::move(fragmentation);

  ExecContext context;
  context.model = view->model();
  context.postings = view.get();
  context.fragmentation = bundle->fragmentation.get();
  context.sparse_cache = &view->state().sparse_cache();
  context.postings_owner = std::move(bundle);
  return context;
}

ExecContext MmDatabase::static_context() const {
  ExecContext context;
  context.file = &file();
  context.model = model_.get();
  context.fragmentation = &fragmentation_;
  context.sparse_cache = &sparse_cache_;
  std::shared_ptr<const SegmentReader> segment = segment_snapshot();
  context.postings = segment.get();
  context.postings_owner = std::move(segment);
  return context;
}

ExecContext MmDatabase::exec_context() const {
  if (is_dynamic()) {
    if (sharded_ != nullptr) {
      // No single PostingSource spans a sharded collection; the borrowed
      // context covers shard 0 under the global statistics (see the
      // header). Whole-collection queries go through Search/Execute.
      const std::shared_ptr<const ShardedSnapshot> snapshot =
          sharded_->Snapshot();
      ExecContext context;
      context.model = &snapshot->shard_model(0);
      context.postings = &snapshot->shard_source(0);
      context.sparse_cache = &snapshot->shard_sparse_cache(0);
      context.postings_owner = snapshot;
      return context;
    }
    // Callers of the borrowed view don't name a strategy up front, so
    // the context carries every capability, fragmentation included.
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    return catalog_context(view, DynamicFragmentation(view->state()));
  }
  return static_context();
}

namespace {

/// Header-stamped model identifier: ScoringModel::name() truncated the
/// same way the writer truncates it, so save/attach agree even for names
/// longer than the header field.
std::string SegmentModelId(const ScoringModel& model) {
  return model.name().substr(0, kImpactModelBytes - 1);
}

}  // namespace

Status MmDatabase::SaveSegment(const std::string& path,
                               uint32_t block_size) const {
  if (is_dynamic()) {
    return Status::FailedPrecondition(
        "SaveSegment serves the static collection; a dynamic database "
        "persists through Flush()");
  }
  SegmentWriterOptions options;
  options.block_size = block_size;
  options.impact_fn = [this](TermId t, const Posting& p) {
    return model_->Weight(t, p);
  };
  options.impact_model = SegmentModelId(*model_);
  return WriteSegment(file(), path, options);
}

Status MmDatabase::AttachSegment(const std::string& path,
                                 const AttachSegmentOptions& options) {
  if (is_dynamic()) {
    return Status::FailedPrecondition(
        "AttachSegment is a static-mode operation; the dynamic catalog "
        "manages its own segments");
  }
  Result<std::unique_ptr<SegmentReader>> reader = SegmentReader::Open(path);
  if (!reader.ok()) return reader.status();
  SegmentReader& segment = *reader.ValueOrDie();
  if (segment.num_terms() != file().num_terms() ||
      segment.num_docs() != file().num_docs() ||
      segment.total_tokens() != static_cast<uint64_t>(file().total_tokens())) {
    return Status::InvalidArgument(
        "segment does not match this database's collection: " + path);
  }
  // Impact bounds are only upper bounds under the model that computed
  // them; pruning with another model's bounds silently drops true top-N
  // documents. The engine therefore only attaches segments whose stamped
  // model matches its own (SaveSegment always stamps).
  if (!segment.has_impacts() ||
      segment.impact_model() != SegmentModelId(*model_)) {
    return Status::InvalidArgument(
        "segment impact bounds were not computed with this database's "
        "scoring model (" + model_->name() + "): " + path);
  }
  // Open only validates the directories; a flipped payload byte would
  // otherwise show up as a silently truncated posting list at query time
  // (the cursor fails closed on decode errors, it cannot report them).
  if (options.verify_payload) {
    Status integrity = segment.CheckIntegrity();
    if (!integrity.ok()) return integrity;
  }
  // Publish by pointer swap: in-flight queries keep the storage snapshot
  // they started with (exec_context copies the shared_ptr).
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  segment_ = std::shared_ptr<const SegmentReader>(
      std::move(reader).ValueOrDie().release());
  segment_path_ = path;
  return Status::OK();
}

void MmDatabase::DetachSegment() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  segment_.reset();
  segment_path_.clear();
}

// ------------------------------------------------------ index lifecycle

Status MmDatabase::EnsureDynamicLocked() {
  if (catalog_ != nullptr || sharded_ != nullptr) return Status::OK();

  IndexCatalog::Options options;
  options.num_terms = file().num_terms();
  options.dir = config_.catalog_dir;
  options.scoring = config_.scoring;
  options.wal_enabled = config_.wal_enabled;
  options.wal_fsync_every = config_.wal_fsync_every;
  if (config_.background_maintenance) {
    options.backpressure_memtable_docs = config_.backpressure_memtable_docs;
    options.backpressure_max_segments = config_.backpressure_max_segments;
    options.backpressure_soft_fail = config_.backpressure_soft_fail;
  }

  MaintenancePolicy maintenance_policy;
  maintenance_policy.flush_trigger_docs = config_.flush_trigger_docs;
  maintenance_policy.merge_trigger_segments = config_.merge_trigger_segments;
  maintenance_policy.merge_fanin = config_.merge_fanin;
  maintenance_policy.min_interval_millis =
      config_.maintenance_min_interval_millis;
  // Maintenance needs a directory to flush into; memory-only catalogs
  // would fail every background job.
  const bool attach_maintenance =
      config_.background_maintenance && !config_.catalog_dir.empty();

  if (config_.num_shards > 1) {
    ShardedCatalog::Options soptions;
    soptions.num_shards = config_.num_shards;
    soptions.shard = options;  // shard.dir is the root; shards nest under it

    std::unique_ptr<ShardedCatalog> sharded;
    if (!options.dir.empty() &&
        std::filesystem::exists(options.dir + "/shard_0/" +
                                kManifestFileName)) {
      // A durable sharded catalog from an earlier process: recover every
      // shard instead of re-seeding (same rule as the single catalog).
      Result<std::unique_ptr<ShardedCatalog>> opened =
          ShardedCatalog::Open(soptions);
      if (!opened.ok()) return opened.status();
      sharded = std::move(opened).ValueOrDie();
    } else {
      Result<std::unique_ptr<ShardedCatalog>> created =
          ShardedCatalog::Create(soptions);
      if (!created.ok()) return created.status();
      sharded = std::move(created).ValueOrDie();
      const InvertedFile& f = file();
      if (f.num_docs() > 0) {
        // Same transposed batch seed as below. Round-robin routing from
        // an empty catalog assigns document k the global id k — the seed
        // keeps the generated collection's ids under sharding too.
        std::vector<DocTerms> docs(f.num_docs());
        for (TermId t = 0; t < f.num_terms(); ++t) {
          const PostingList& list = f.list(t);
          for (size_t i = 0; i < list.size(); ++i) {
            docs[list[i].doc].emplace_back(t, list[i].tf);
          }
        }
        Result<std::vector<DocId>> ids = sharded->AddDocuments(docs);
        if (!ids.ok()) return ids.status();
      }
    }

    sharded_ = std::move(sharded);
    if (attach_maintenance) {
      // One loop per shard; every background publish drops the cached
      // multi-shard snapshot (a merge compacts the shard's local ids).
      ShardedCatalog* sharded_ptr = sharded_.get();
      for (size_t s = 0; s < sharded_->num_shards(); ++s) {
        maintenance_.push_back(std::make_unique<BackgroundMaintenance>(
            &sharded_->shard(s), maintenance_policy,
            [sharded_ptr] { sharded_ptr->InvalidateSnapshotCache(); }));
      }
    }
    dynamic_.store(true, std::memory_order_release);
    return Status::OK();
  }

  std::unique_ptr<IndexCatalog> catalog;
  if (!options.dir.empty() &&
      std::filesystem::exists(options.dir + "/" + kManifestFileName)) {
    // The directory already holds a durable catalog (an earlier process's
    // flushes): recover it. Its surviving documents — not the freshly
    // generated collection — become the served corpus; re-seeding would
    // duplicate every previously flushed document.
    Result<std::unique_ptr<IndexCatalog>> opened = IndexCatalog::Open(options);
    if (!opened.ok()) return opened.status();
    catalog = std::move(opened).ValueOrDie();
  } else {
    Result<std::unique_ptr<IndexCatalog>> created =
        IndexCatalog::Create(options);
    if (!created.ok()) return created.status();
    catalog = std::move(created).ValueOrDie();
    // Seed the fresh catalog with the generated collection under the
    // same doc ids: transpose the inverted file into per-document
    // compositions and ingest them as one batch.
    const InvertedFile& f = file();
    if (f.num_docs() > 0) {
      std::vector<DocTerms> docs(f.num_docs());
      for (TermId t = 0; t < f.num_terms(); ++t) {
        const PostingList& list = f.list(t);
        for (size_t i = 0; i < list.size(); ++i) {
          docs[list[i].doc].emplace_back(t, list[i].tf);
        }
      }
      Result<DocId> first = catalog->AddDocuments(docs);
      if (!first.ok()) return first.status();
    }
  }

  catalog_ = std::move(catalog);
  if (attach_maintenance) {
    maintenance_.push_back(std::make_unique<BackgroundMaintenance>(
        catalog_.get(), maintenance_policy));
  }
  // Release-publish: readers that observe dynamic_ == true see the fully
  // seeded catalog.
  dynamic_.store(true, std::memory_order_release);
  return Status::OK();
}

Status MmDatabase::WaitForMaintenance() {
  // maintenance_ is created once under mutation_mutex_ and only destroyed
  // with the database; snapshotting the loops here (not holding the lock
  // while waiting) keeps foreground mutations flowing while we drain.
  std::vector<BackgroundMaintenance*> loops;
  {
    std::lock_guard<std::mutex> lock(mutation_mutex_);
    for (const auto& m : maintenance_) loops.push_back(m.get());
  }
  Status first_error;
  for (BackgroundMaintenance* m : loops) {
    m->WaitIdle();
    const Status s = m->TakeLastError();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Result<DocId> MmDatabase::AddDocument(const DocTerms& terms) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) return sharded_->AddDocument(terms);
  return catalog_->AddDocument(terms);
}

Result<DocId> MmDatabase::AddDocuments(const std::vector<DocTerms>& docs) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) {
    // Sharded routing still returns the first document's global id; ids
    // are consecutive whenever the shards are balanced (always true for
    // the pristine seed and pure-append workloads).
    Result<std::vector<DocId>> ids = sharded_->AddDocuments(docs);
    if (!ids.ok()) return ids.status();
    const std::vector<DocId>& v = ids.ValueOrDie();
    return v.empty() ? DocId{0} : v.front();
  }
  return catalog_->AddDocuments(docs);
}

Status MmDatabase::DeleteDocument(DocId doc) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) return sharded_->DeleteDocument(doc);
  return catalog_->DeleteDocument(doc);
}

Result<DocId> MmDatabase::UpdateDocument(DocId doc, const DocTerms& terms) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) return sharded_->UpdateDocument(doc, terms);
  return catalog_->UpdateDocument(doc, terms);
}

Status MmDatabase::Flush() {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) return sharded_->FlushAll();
  return catalog_->Flush();
}

Result<size_t> MmDatabase::Merge(const MergePolicy& policy) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  if (sharded_ != nullptr) return sharded_->MergeAll(policy);
  return catalog_->Merge(policy);
}

// --------------------------------------------------------------- queries

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       double switch_threshold) const {
  ExecOptions options;
  options.switch_threshold = switch_threshold;
  return Execute(strategy, query, n, options);
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       const ExecOptions& options) const {
  // Direct registry execution, no planner in the loop: benches and
  // harnesses use this to drive any strategy over any backend with no
  // validation beyond the registry's own. The strategy is known here, so
  // dynamic contexts only pay for the live-statistics fragmentation when
  // a fragment strategy runs.
  if (is_dynamic() && sharded_ != nullptr) {
    const std::shared_ptr<const ShardedSnapshot> snapshot =
        sharded_->Snapshot();
    const std::shared_ptr<const Fragmentation> frag =
        NeedsFragmentation(strategy)
            ? DynamicFragmentation(snapshot->stats().df, snapshot->version())
            : nullptr;
    ShardCoordinator::Options copts;
    copts.fragmentation = frag.get();
    return ShardCoordinator::Execute(snapshot, strategy, query, n, options,
                                     copts);
  }
  ExecContext context;
  if (is_dynamic()) {
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    context = catalog_context(view, NeedsFragmentation(strategy)
                                        ? DynamicFragmentation(view->state())
                                        : nullptr);
  } else {
    context = static_context();
  }
  return StrategyRegistry::Global().Execute(strategy, context, query, n,
                                            options);
}

StrategyCostInputs MmDatabase::DynamicStorageInputs(
    const CatalogState& state) const {
  // Composition() walks every component, so the digest is cached per
  // snapshot version (single entry — mutations invalidate by bumping the
  // version, exactly like the fragmentation cache).
  std::lock_guard<std::mutex> lock(dyn_storage_mutex_);
  if (!dyn_storage_valid_ || dyn_storage_version_ != state.version()) {
    dyn_storage_ = StorageInputsFor(state.Composition());
    dyn_storage_version_ = state.version();
    dyn_storage_valid_ = true;
  }
  return dyn_storage_;
}

StrategyCostInputs MmDatabase::StaticStorageInputs(
    const SegmentReader* segment) const {
  if (segment == nullptr) return StrategyCostInputs{};  // neutral in-memory
  return StorageInputsForSegment(segment->codec(),
                                 segment->has_fragment_directory());
}

namespace {

/// The shared tail of RunQuery once storage has been snapshotted into a
/// planner + context: plan (PlanForced fast path unless `explain` wants
/// the full candidate table), fill the result's plan fields, execute.
/// Per-thread sampling decision for stage tracing. A plain thread_local
/// round-robin — no atomics, and SearchBatch workers each sample their
/// own every-Nth query independently.
bool SampleTrace(size_t every) {
  if (!obs::kEnabled || every == 0) return false;
  if (every == 1) return true;
  thread_local uint64_t counter = 0;
  return (counter++ % every) == 0;
}

Result<SearchResult> PlanAndRun(const StrategyPlanner& planner,
                                const ExecContext& context,
                                const QueryRequest& request, bool explain,
                                bool trace, PlanDecision* decision_out) {
  // When sampled, activates per-query tracing for this thread: the plan
  // span below and the stage spans the executors open all attach here
  // (spans against no current trace are no-ops). Stage CostCounters are
  // ticker deltas at span boundaries — the per-posting loop never sees
  // the trace. Compiles to nothing under MOA_OBS=OFF.
  std::optional<obs::QueryTrace> qtrace;
  if (trace) qtrace.emplace();

  PlanRequest preq;
  preq.n = request.n;
  preq.quality_target = request.options.quality_target;
  preq.force = request.options.strategy;

  SearchResult out;
  PlanCandidate chosen;
  {
    obs::TraceSpan span(obs::kStagePlan);
    if (!explain && !preq.force.has_value()) {
      // Unforced hot path: same choice as Plan(), no candidate table.
      Result<PlanCandidate> choice = planner.PlanChoice(request.query, preq);
      if (!choice.ok()) return choice.status();
      chosen = std::move(choice).ValueOrDie();
      out.planned = true;
    } else {
      Result<PlanDecision> plan = (preq.force.has_value() && !explain)
                                      ? planner.PlanForced(request.query, preq)
                                      : planner.Plan(request.query, preq);
      if (!plan.ok()) return plan.status();
      PlanDecision decision = std::move(plan).ValueOrDie();
      chosen = decision.chosen;
      out.planned = !decision.forced;
      if (decision_out != nullptr) *decision_out = std::move(decision);
    }
  }

  out.strategy = chosen.strategy;
  out.estimate.strategy = chosen.strategy;
  out.estimate.predicted = chosen.predicted;
  out.estimate.scalar = chosen.scalar;
  out.predicted_quality = chosen.predicted_quality;
  if (explain) return out;

  ExecOptions eopts;
  eopts.switch_threshold = request.options.switch_threshold;
  WallTimer timer;
  Result<TopNResult> top = StrategyRegistry::Global().Execute(
      out.strategy, context, request.query, request.n, eopts);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();

  if (qtrace.has_value()) {
    out.trace = qtrace->Finish();
    out.trace.strategy = StrategyName(out.strategy);
    out.trace.planned = out.planned;
    out.trace.predicted_scalar = chosen.scalar;
    out.trace.predicted_quality = chosen.predicted_quality;
    out.traced = true;
  }
  return out;
}

}  // namespace

Result<SearchResult> MmDatabase::RunQuery(const QueryRequest& request,
                                          bool explain,
                                          PlanDecision* decision_out) const {
  // deadline_millis is reserved (ROADMAP item 4 will enforce it), but a
  // negative value is malformed today, not merely unenforced — reject it
  // instead of silently accepting a request no future version could honor.
  if (request.options.deadline_millis < 0.0) {
    return Status::InvalidArgument(
        "query: deadline_millis must be >= 0 (0 = no deadline)");
  }
  // One storage snapshot per query: plan and execution must see the same
  // state. The dynamic/static decision is read once; a query that raced
  // the first mutation onto the static side stays static end-to-end (the
  // generated collection is immutable), instead of planning statically
  // and then executing against the catalog.
  const bool trace = !explain && SampleTrace(config_.trace_every);
  if (is_dynamic() && sharded_ != nullptr) {
    // Sharded serving: one consistent multi-shard snapshot, then the
    // bound-aware scatter-gather coordinator (per-shard planning, bound-
    // ordered visits with suffix skipping, threshold-seeded max-score).
    const std::shared_ptr<const ShardedSnapshot> snapshot =
        sharded_->Snapshot();
    const bool want_frag =
        explain || (request.options.strategy.has_value()
                        ? NeedsFragmentation(*request.options.strategy)
                        : request.options.quality_target < 1.0);
    const std::shared_ptr<const Fragmentation> frag =
        want_frag
            ? DynamicFragmentation(snapshot->stats().df, snapshot->version())
            : nullptr;
    ShardCoordinator::Options copts;
    copts.fragmentation = frag.get();
    return FinishQuery(ShardCoordinator::Run(snapshot, request, explain, trace,
                                             decision_out, copts),
                       explain);
  }
  if (is_dynamic()) {
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    const CatalogState& state = view->state();

    // The live-statistics fragmentation is only built when a fragment
    // strategy could actually run: a forced fragment strategy, or planner
    // choice with a quality target that admits unsafe strategies. At
    // target 1.0 no fragment strategy can win — the safe one
    // (quality_switch_full) predicts exactly heap's cost and loses the
    // deterministic tie — so the default cursor path skips the build and
    // its cache lock entirely. Explain always builds it: the candidate
    // table should show the fragment strategies' predictions.
    const bool want_frag =
        explain || (request.options.strategy.has_value()
                        ? NeedsFragmentation(*request.options.strategy)
                        : request.options.quality_target < 1.0);
    const std::shared_ptr<const Fragmentation> frag =
        want_frag ? DynamicFragmentation(state) : nullptr;

    // Statistics are borrowed straight from the snapshot (pinned by the
    // read view for the query's lifetime) — planning copies nothing.
    const CardinalityEstimator estimator(
        &state.stats().df, static_cast<int64_t>(state.stats().num_live_docs),
        frag.get());
    const StrategyPlanner planner(&estimator, DynamicStorageInputs(state));
    return FinishQuery(PlanAndRun(planner, catalog_context(view, frag),
                                  request, explain, trace, decision_out),
                       explain);
  }

  const ExecContext context = static_context();
  const SegmentReader* segment =
      static_cast<const SegmentReader*>(context.postings);
  const StrategyPlanner planner(estimator_.get(), StaticStorageInputs(segment));
  return FinishQuery(PlanAndRun(planner, context, request, explain, trace,
                                decision_out),
                     explain);
}

namespace {

/// Per-query metric handles. Registry handles are process-stable
/// (metrics are never erased; ResetForTest zeroes values in place), so
/// they are resolved once — the per-query cost is a handful of relaxed
/// sharded adds, never a string-keyed map probe.
struct QueryMetrics {
  obs::Counter* query_total[16];  // indexed by PhysicalStrategy
  obs::HistogramMetric* latency_ms;
  obs::Counter* plan_planned;
  obs::Counter* plan_forced;
  obs::Counter* predicted_scalar;
  obs::Counter* observed_scalar;
  obs::Counter* shard_visited;
  obs::Counter* shard_skipped;
  obs::Counter* shard_postings_skipped;

  static const QueryMetrics& Get() {
    static const QueryMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      QueryMetrics m{};  // unregistered slots stay null
      for (PhysicalStrategy strategy : AllStrategies()) {
        const auto i = static_cast<size_t>(strategy);
        if (i < std::size(m.query_total)) {
          m.query_total[i] = registry.GetCounter(
              "moa_query_total",
              "strategy=" + std::string(StrategyName(strategy)));
        }
      }
      m.latency_ms = registry.GetHistogram("moa_query_latency_ms");
      m.plan_planned = registry.GetCounter("moa_plan_total", "mode=planned");
      m.plan_forced = registry.GetCounter("moa_plan_total", "mode=forced");
      m.predicted_scalar =
          registry.GetCounter("moa_plan_predicted_scalar_total");
      m.observed_scalar = registry.GetCounter("moa_plan_observed_scalar_total");
      m.shard_visited = registry.GetCounter("moa_shard_visited_total");
      m.shard_skipped = registry.GetCounter("moa_shard_skipped_total");
      m.shard_postings_skipped =
          registry.GetCounter("moa_shard_postings_skipped_total");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Result<SearchResult> MmDatabase::FinishQuery(Result<SearchResult> result,
                                             bool explain) const {
  if (!obs::kEnabled || explain || !result.ok()) return result;
  const SearchResult& r = result.ValueOrDie();
  const QueryMetrics& metrics = QueryMetrics::Get();
  const auto strategy_index = static_cast<size_t>(r.strategy);
  if (strategy_index < std::size(metrics.query_total) &&
      metrics.query_total[strategy_index] != nullptr) {
    metrics.query_total[strategy_index]->Add();
  } else {
    // A strategy registered after the handle table was built (tests
    // with custom registrations): slow path, still correct.
    obs::MetricsRegistry::Global()
        .GetCounter("moa_query_total",
                    "strategy=" + std::string(StrategyName(r.strategy)))
        ->Add();
  }
  metrics.latency_ms->Observe(r.wall_millis);
  (r.planned ? metrics.plan_planned : metrics.plan_forced)->Add();
  // The raw predicted-vs-observed feed for the calibration loop: the
  // ratio of these two running sums is the planner's global cost-model
  // drift (bench_compare.py --calibration distills it from the JSON
  // dump). Driven off the result's own plan estimate and CostScope
  // counters, so it stays exact for untraced (unsampled) queries.
  metrics.predicted_scalar->Add(r.estimate.scalar);
  metrics.observed_scalar->Add(r.top.stats.cost.Scalar());
  // Shard scatter-gather accounting (zero on unsharded queries, so the
  // counters move only when the coordinator ran): visited vs bound-pruned
  // shards and the exact posting volume the pruned shards held.
  const CostCounters& cost = r.top.stats.cost;
  if (cost.shards_visited != 0 || cost.shards_skipped != 0) {
    metrics.shard_visited->Add(static_cast<double>(cost.shards_visited));
    metrics.shard_skipped->Add(static_cast<double>(cost.shards_skipped));
    metrics.shard_postings_skipped->Add(
        static_cast<double>(cost.shard_postings_skipped));
  }
  if (r.traced) trace_ring_.Push(r.trace);
  return result;
}

Result<SearchResult> MmDatabase::Search(const QueryRequest& request) const {
  return RunQuery(request, /*explain=*/false, nullptr);
}

Result<TopNResult> MmDatabase::Execute(const QueryRequest& request) const {
  Result<SearchResult> result = RunQuery(request, /*explain=*/false, nullptr);
  if (!result.ok()) return result.status();
  return std::move(result).ValueOrDie().top;
}

Result<SearchResult> MmDatabase::Search(const Query& query,
                                        const SearchOptions& options) const {
  QueryRequest request;
  request.query = query;
  request.n = options.n;
  request.options = options.ToQueryOptions();
  return Search(request);
}

std::vector<ScoredDoc> MmDatabase::GroundTruth(const Query& query,
                                               size_t n) const {
  if (is_dynamic()) {
    if (sharded_ != nullptr) {
      // Exact per-shard top-N under the global statistics, merged under
      // the global (score desc, doc asc) order — the exact global top-N,
      // since every document lives in exactly one shard.
      const std::shared_ptr<const ShardedSnapshot> snapshot =
          sharded_->Snapshot();
      std::vector<ScoredDoc> all;
      for (size_t s = 0; s < snapshot->num_shards(); ++s) {
        std::vector<ScoredDoc> top =
            ExactTopN(snapshot->shard_source(s), snapshot->shard_model(s),
                      query, n);
        for (ScoredDoc& sd : top) {
          sd.doc = ShardedCatalog::GlobalOf(sd.doc, s,
                                            snapshot->num_shards());
          all.push_back(sd);
        }
      }
      std::sort(all.begin(), all.end(), ScoredDocLess);
      if (all.size() > n) all.resize(n);
      return all;
    }
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    return ExactTopN(*view, *view->model(), query, n);
  }
  return ExactTopN(file(), *model_, query, n);
}

std::vector<double> MmDatabase::GroundTruthScores(const Query& query) const {
  if (is_dynamic()) {
    if (sharded_ != nullptr) {
      // Dense by *global* id: each shard's local score vector scattered
      // through the interleaved id mapping; unmapped slots stay 0.
      const std::shared_ptr<const ShardedSnapshot> snapshot =
          sharded_->Snapshot();
      std::vector<double> scores(snapshot->doc_space(), 0.0);
      for (size_t s = 0; s < snapshot->num_shards(); ++s) {
        const std::vector<double> local = AccumulateScores(
            snapshot->shard_source(s), snapshot->shard_model(s), query);
        for (size_t l = 0; l < local.size(); ++l) {
          const DocId g = ShardedCatalog::GlobalOf(
              static_cast<DocId>(l), s, snapshot->num_shards());
          if (static_cast<size_t>(g) < scores.size()) scores[g] = local[l];
        }
      }
      return scores;
    }
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    return AccumulateScores(*view, *view->model(), query);
  }
  return AccumulateScores(file(), *model_, query);
}

std::string MmDatabase::DescribeStorage() const {
  // Payload only — ExplainReport::ToString prepends the "storage: " key.
  if (is_dynamic()) {
    if (sharded_ != nullptr) return sharded_->Snapshot()->Describe();
    return catalog_->Snapshot()->Describe();
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (segment_ != nullptr) {
    return "in-memory inverted file; all strategies read mmap segment " +
           segment_path_ + " [" + segment_->format_name() + ", " +
           SegmentCodecName(segment_->codec()) + " codec]" +
           (segment_->has_fragment_directory()
                ? " (impact-ordered fragment directory)"
                : " (no fragment directory)");
  }
  return "in-memory inverted file";
}

bool MmDatabase::TracedExecution(PhysicalStrategy strategy, const Query& query,
                                 size_t n, double switch_threshold,
                                 ExplainReport* report) const {
  // Best effort: re-run the query and report how the storage layer
  // behaved, with per-query tracing active so the report also carries
  // stage spans and observed CostCounters. A strategy that cannot execute
  // here (missing impacts, precondition failures) simply contributes no
  // counters — the explain itself must not fail because of it.
  obs::QueryTrace qtrace;
  const Result<TopNResult> run = Execute(strategy, query, n, switch_threshold);
  obs::QueryTraceData data = qtrace.Finish();
  if (!run.ok()) return false;
  const CostCounters& cost = run.ValueOrDie().stats.cost;
  report->blocks_decoded = cost.blocks_decoded;
  report->blocks_skipped = cost.blocks_skipped;
  report->has_shards = cost.shards_visited != 0 || cost.shards_skipped != 0;
  report->shards_visited = cost.shards_visited;
  report->shards_skipped = cost.shards_skipped;
  report->trace = std::move(data);
  return true;
}

Result<ExplainReport> MmDatabase::ExplainSearch(
    const QueryRequest& request) const {
  ExplainReport report;
  Result<SearchResult> planned =
      RunQuery(request, /*explain=*/true, &report.decision);
  if (!planned.ok()) return planned.status();
  report.storage = DescribeStorage();
  // Fragment strategies run over a fragmentation; show the split the
  // chosen strategy would use.
  if (NeedsFragmentation(report.decision.strategy)) {
    if (!is_dynamic()) {
      report.fragmentation = fragmentation_.ToString();
    } else if (sharded_ != nullptr) {
      const std::shared_ptr<const ShardedSnapshot> snapshot =
          sharded_->Snapshot();
      report.fragmentation =
          DynamicFragmentation(snapshot->stats().df, snapshot->version())
              ->ToString();
    } else {
      report.fragmentation =
          DynamicFragmentation(*catalog_->Snapshot())->ToString();
    }
  }
  report.has_blocks = TracedExecution(report.decision.strategy, request.query,
                                      request.n,
                                      request.options.switch_threshold,
                                      &report);
  if (report.has_blocks && obs::kEnabled) {
    report.has_trace = true;
    report.trace.strategy = StrategyName(report.decision.strategy);
    report.trace.planned = !report.decision.forced;
    report.trace.predicted_scalar = report.decision.chosen.scalar;
    report.trace.predicted_quality = report.decision.chosen.predicted_quality;
  }
  return report;
}

Result<std::string> MmDatabase::ExplainSearch(
    const Query& query, const SearchOptions& options) const {
  QueryRequest request;
  request.query = query;
  request.n = options.n;
  request.options = options.ToQueryOptions();
  Result<ExplainReport> report = ExplainSearch(request);
  if (!report.ok()) return report.status();
  return report.ValueOrDie().ToString();
}

}  // namespace moa
