#include "engine/database.h"

#include "common/timer.h"
#include "exec/registry.h"
#include "optimizer/explain.h"
#include "storage/segment/segment_writer.h"

namespace moa {

Result<std::unique_ptr<MmDatabase>> MmDatabase::Open(
    const DatabaseConfig& config) {
  auto db = std::unique_ptr<MmDatabase>(new MmDatabase());
  db->config_ = config;

  Result<Collection> coll = Collection::Generate(config.collection);
  if (!coll.ok()) return coll.status();
  db->collection_ = std::make_unique<Collection>(std::move(coll).ValueOrDie());

  InvertedFile& file = db->collection_->mutable_inverted_file();
  switch (config.scoring) {
    case ScoringModelKind::kTfIdf:
      db->model_ = MakeTfIdf(&file);
      break;
    case ScoringModelKind::kBm25:
      db->model_ = MakeBm25(&file);
      break;
    case ScoringModelKind::kLanguageModel:
      db->model_ = MakeLanguageModel(&file);
      break;
  }
  file.BuildImpactOrders([&](TermId t, const Posting& p) {
    return db->model_->Weight(t, p);
  });
  db->fragmentation_ = Fragmentation::Build(file, config.fragmentation);
  db->estimator_ = std::make_unique<CardinalityEstimator>(
      &file, &db->fragmentation_);
  db->cost_model_ = std::make_unique<CostModel>(db->estimator_.get());
  db->planner_ = std::make_unique<Planner>(db->cost_model_.get());
  return db;
}

ExecContext MmDatabase::exec_context() const {
  ExecContext context;
  context.file = &file();
  context.model = model_.get();
  context.fragmentation = &fragmentation_;
  context.sparse_cache = &sparse_cache_;
  context.postings = segment_.get();
  return context;
}

namespace {

/// Header-stamped model identifier: ScoringModel::name() truncated the
/// same way the writer truncates it, so save/attach agree even for names
/// longer than the header field.
std::string SegmentModelId(const ScoringModel& model) {
  return model.name().substr(0, kImpactModelBytes - 1);
}

}  // namespace

Status MmDatabase::SaveSegment(const std::string& path,
                               uint32_t block_size) const {
  SegmentWriterOptions options;
  options.block_size = block_size;
  options.impact_fn = [this](TermId t, const Posting& p) {
    return model_->Weight(t, p);
  };
  options.impact_model = SegmentModelId(*model_);
  return WriteSegment(file(), path, options);
}

Status MmDatabase::AttachSegment(const std::string& path,
                                 const AttachSegmentOptions& options) {
  Result<std::unique_ptr<SegmentReader>> reader = SegmentReader::Open(path);
  if (!reader.ok()) return reader.status();
  SegmentReader& segment = *reader.ValueOrDie();
  if (segment.num_terms() != file().num_terms() ||
      segment.num_docs() != file().num_docs() ||
      segment.total_tokens() != static_cast<uint64_t>(file().total_tokens())) {
    return Status::InvalidArgument(
        "segment does not match this database's collection: " + path);
  }
  // Impact bounds are only upper bounds under the model that computed
  // them; pruning with another model's bounds silently drops true top-N
  // documents. The engine therefore only attaches segments whose stamped
  // model matches its own (SaveSegment always stamps).
  if (!segment.has_impacts() ||
      segment.impact_model() != SegmentModelId(*model_)) {
    return Status::InvalidArgument(
        "segment impact bounds were not computed with this database's "
        "scoring model (" + model_->name() + "): " + path);
  }
  // Open only validates the directories; a flipped payload byte would
  // otherwise show up as a silently truncated posting list at query time
  // (the cursor fails closed on decode errors, it cannot report them).
  if (options.verify_payload) {
    Status integrity = segment.CheckIntegrity();
    if (!integrity.ok()) return integrity;
  }
  segment_ = std::move(reader).ValueOrDie();
  return Status::OK();
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       double switch_threshold) const {
  ExecOptions options;
  options.switch_threshold = switch_threshold;
  return Execute(strategy, query, n, options);
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       const ExecOptions& options) const {
  return StrategyRegistry::Global().Execute(strategy, exec_context(), query,
                                            n, options);
}

Result<SearchResult> MmDatabase::Search(const Query& query,
                                        const SearchOptions& options) const {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();

  SearchResult out;
  out.strategy = plan.ValueOrDie().strategy;
  out.estimate = plan.ValueOrDie().chosen;

  ExecOptions eopts;
  eopts.switch_threshold = options.switch_threshold;

  WallTimer timer;
  Result<TopNResult> top =
      plan.ValueOrDie().Execute(exec_context(), query, options.n, eopts);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();
  return out;
}

std::vector<ScoredDoc> MmDatabase::GroundTruth(const Query& query,
                                               size_t n) const {
  return ExactTopN(file(), *model_, query, n);
}

std::vector<double> MmDatabase::GroundTruthScores(const Query& query) const {
  return AccumulateScores(file(), *model_, query);
}

Result<std::string> MmDatabase::ExplainSearch(
    const Query& query, const SearchOptions& options) const {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(plan.ValueOrDie());
}

}  // namespace moa
