#include "engine/database.h"

#include <filesystem>
#include <sstream>

#include "common/timer.h"
#include "exec/registry.h"
#include "optimizer/explain.h"
#include "storage/segment/segment_writer.h"

namespace moa {

Result<std::unique_ptr<MmDatabase>> MmDatabase::Open(
    const DatabaseConfig& config) {
  auto db = std::unique_ptr<MmDatabase>(new MmDatabase());
  db->config_ = config;

  Result<Collection> coll = Collection::Generate(config.collection);
  if (!coll.ok()) return coll.status();
  db->collection_ = std::make_unique<Collection>(std::move(coll).ValueOrDie());

  InvertedFile& file = db->collection_->mutable_inverted_file();
  switch (config.scoring) {
    case ScoringModelKind::kTfIdf:
      db->model_ = MakeTfIdf(&file);
      break;
    case ScoringModelKind::kBm25:
      db->model_ = MakeBm25(&file);
      break;
    case ScoringModelKind::kLanguageModel:
      db->model_ = MakeLanguageModel(&file);
      break;
  }
  file.BuildImpactOrders([&](TermId t, const Posting& p) {
    return db->model_->Weight(t, p);
  });
  db->fragmentation_ = Fragmentation::Build(file, config.fragmentation);
  db->estimator_ = std::make_unique<CardinalityEstimator>(
      &file, &db->fragmentation_);
  db->cost_model_ = std::make_unique<CostModel>(db->estimator_.get());
  db->planner_ = std::make_unique<Planner>(db->cost_model_.get());
  return db;
}

std::shared_ptr<const SegmentReader> MmDatabase::segment_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return segment_;
}

std::shared_ptr<const CatalogReadView> MmDatabase::catalog_view() const {
  return catalog_->OpenReadView();
}

std::shared_ptr<const Fragmentation> MmDatabase::DynamicFragmentation(
    const CatalogState& state) const {
  std::lock_guard<std::mutex> lock(dyn_frag_mutex_);
  if (dyn_frag_ == nullptr || dyn_frag_version_ != state.version()) {
    // Live df is all the assignment depends on, so this fragments exactly
    // like a fresh index of the surviving documents.
    dyn_frag_ = std::make_shared<const Fragmentation>(
        Fragmentation::Build(state.stats().df, config_.fragmentation));
    dyn_frag_version_ = state.version();
  }
  return dyn_frag_;
}

namespace {

/// Everything a catalog-backed query borrows, bundled so one shared_ptr
/// (ExecContext::postings_owner) keeps the whole chain alive across
/// concurrent mutations: the read view (state + stats + model) and the
/// snapshot's fragmentation.
struct DynamicQueryState {
  std::shared_ptr<const CatalogReadView> view;
  std::shared_ptr<const Fragmentation> fragmentation;
};

/// The strategies that read ExecContext::fragmentation.
bool NeedsFragmentation(PhysicalStrategy s) {
  return s == PhysicalStrategy::kSmallFragment ||
         s == PhysicalStrategy::kQualitySwitchFull ||
         s == PhysicalStrategy::kQualitySwitchSparse;
}

}  // namespace

ExecContext MmDatabase::catalog_context(
    const std::shared_ptr<const CatalogReadView>& view,
    bool with_fragmentation) const {
  // No materialized InvertedFile describes the evolving collection; every
  // strategy streams the snapshot through the cursor API instead. The
  // fragment strategies additionally get a fragmentation derived from the
  // snapshot's live statistics and the snapshot-scoped sparse cache.
  auto bundle = std::make_shared<DynamicQueryState>();
  bundle->view = view;
  if (with_fragmentation) {
    bundle->fragmentation = DynamicFragmentation(view->state());
  }

  ExecContext context;
  context.model = view->model();
  context.postings = view.get();
  context.fragmentation = bundle->fragmentation.get();
  context.sparse_cache = &view->state().sparse_cache();
  context.postings_owner = std::move(bundle);
  return context;
}

ExecContext MmDatabase::static_context() const {
  ExecContext context;
  context.file = &file();
  context.model = model_.get();
  context.fragmentation = &fragmentation_;
  context.sparse_cache = &sparse_cache_;
  std::shared_ptr<const SegmentReader> segment = segment_snapshot();
  context.postings = segment.get();
  context.postings_owner = std::move(segment);
  return context;
}

ExecContext MmDatabase::exec_context() const {
  if (is_dynamic()) {
    // Callers of the borrowed view don't name a strategy up front, so
    // the context carries every capability, fragmentation included.
    return catalog_context(catalog_view(), /*with_fragmentation=*/true);
  }
  return static_context();
}

namespace {

/// Header-stamped model identifier: ScoringModel::name() truncated the
/// same way the writer truncates it, so save/attach agree even for names
/// longer than the header field.
std::string SegmentModelId(const ScoringModel& model) {
  return model.name().substr(0, kImpactModelBytes - 1);
}

}  // namespace

Status MmDatabase::SaveSegment(const std::string& path,
                               uint32_t block_size) const {
  if (is_dynamic()) {
    return Status::FailedPrecondition(
        "SaveSegment serves the static collection; a dynamic database "
        "persists through Flush()");
  }
  SegmentWriterOptions options;
  options.block_size = block_size;
  options.impact_fn = [this](TermId t, const Posting& p) {
    return model_->Weight(t, p);
  };
  options.impact_model = SegmentModelId(*model_);
  return WriteSegment(file(), path, options);
}

Status MmDatabase::AttachSegment(const std::string& path,
                                 const AttachSegmentOptions& options) {
  if (is_dynamic()) {
    return Status::FailedPrecondition(
        "AttachSegment is a static-mode operation; the dynamic catalog "
        "manages its own segments");
  }
  Result<std::unique_ptr<SegmentReader>> reader = SegmentReader::Open(path);
  if (!reader.ok()) return reader.status();
  SegmentReader& segment = *reader.ValueOrDie();
  if (segment.num_terms() != file().num_terms() ||
      segment.num_docs() != file().num_docs() ||
      segment.total_tokens() != static_cast<uint64_t>(file().total_tokens())) {
    return Status::InvalidArgument(
        "segment does not match this database's collection: " + path);
  }
  // Impact bounds are only upper bounds under the model that computed
  // them; pruning with another model's bounds silently drops true top-N
  // documents. The engine therefore only attaches segments whose stamped
  // model matches its own (SaveSegment always stamps).
  if (!segment.has_impacts() ||
      segment.impact_model() != SegmentModelId(*model_)) {
    return Status::InvalidArgument(
        "segment impact bounds were not computed with this database's "
        "scoring model (" + model_->name() + "): " + path);
  }
  // Open only validates the directories; a flipped payload byte would
  // otherwise show up as a silently truncated posting list at query time
  // (the cursor fails closed on decode errors, it cannot report them).
  if (options.verify_payload) {
    Status integrity = segment.CheckIntegrity();
    if (!integrity.ok()) return integrity;
  }
  // Publish by pointer swap: in-flight queries keep the storage snapshot
  // they started with (exec_context copies the shared_ptr).
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  segment_ = std::shared_ptr<const SegmentReader>(
      std::move(reader).ValueOrDie().release());
  segment_path_ = path;
  return Status::OK();
}

void MmDatabase::DetachSegment() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  segment_.reset();
  segment_path_.clear();
}

// ------------------------------------------------------ index lifecycle

Status MmDatabase::EnsureDynamicLocked() {
  if (catalog_ != nullptr) return Status::OK();

  IndexCatalog::Options options;
  options.num_terms = file().num_terms();
  options.dir = config_.catalog_dir;
  options.scoring = config_.scoring;

  std::unique_ptr<IndexCatalog> catalog;
  if (!options.dir.empty() &&
      std::filesystem::exists(options.dir + "/" + kManifestFileName)) {
    // The directory already holds a durable catalog (an earlier process's
    // flushes): recover it. Its surviving documents — not the freshly
    // generated collection — become the served corpus; re-seeding would
    // duplicate every previously flushed document.
    Result<std::unique_ptr<IndexCatalog>> opened = IndexCatalog::Open(options);
    if (!opened.ok()) return opened.status();
    catalog = std::move(opened).ValueOrDie();
  } else {
    Result<std::unique_ptr<IndexCatalog>> created =
        IndexCatalog::Create(options);
    if (!created.ok()) return created.status();
    catalog = std::move(created).ValueOrDie();
    // Seed the fresh catalog with the generated collection under the
    // same doc ids: transpose the inverted file into per-document
    // compositions and ingest them as one batch.
    const InvertedFile& f = file();
    if (f.num_docs() > 0) {
      std::vector<DocTerms> docs(f.num_docs());
      for (TermId t = 0; t < f.num_terms(); ++t) {
        const PostingList& list = f.list(t);
        for (size_t i = 0; i < list.size(); ++i) {
          docs[list[i].doc].emplace_back(t, list[i].tf);
        }
      }
      Result<DocId> first = catalog->AddDocuments(docs);
      if (!first.ok()) return first.status();
    }
  }

  catalog_ = std::move(catalog);
  // Release-publish: readers that observe dynamic_ == true see the fully
  // seeded catalog.
  dynamic_.store(true, std::memory_order_release);
  return Status::OK();
}

Result<DocId> MmDatabase::AddDocument(const DocTerms& terms) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  return catalog_->AddDocument(terms);
}

Result<DocId> MmDatabase::AddDocuments(const std::vector<DocTerms>& docs) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  return catalog_->AddDocuments(docs);
}

Status MmDatabase::DeleteDocument(DocId doc) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  return catalog_->DeleteDocument(doc);
}

Status MmDatabase::Flush() {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  return catalog_->Flush();
}

Result<size_t> MmDatabase::Merge(const MergePolicy& policy) {
  std::lock_guard<std::mutex> lock(mutation_mutex_);
  MOA_RETURN_NOT_OK(EnsureDynamicLocked());
  return catalog_->Merge(policy);
}

// --------------------------------------------------------------- queries

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       double switch_threshold) const {
  ExecOptions options;
  options.switch_threshold = switch_threshold;
  return Execute(strategy, query, n, options);
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       const ExecOptions& options) const {
  // The strategy is known here, so dynamic contexts only pay for the
  // live-statistics fragmentation when a fragment strategy runs.
  const ExecContext context =
      is_dynamic()
          ? catalog_context(catalog_view(), NeedsFragmentation(strategy))
          : static_context();
  return StrategyRegistry::Global().Execute(strategy, context, query, n,
                                            options);
}

Result<SearchResult> MmDatabase::Search(const Query& query,
                                        const SearchOptions& options) const {
  ExecOptions eopts;
  eopts.switch_threshold = options.switch_threshold;

  // One context per query: plan and execution must see the same storage
  // snapshot. The dynamic/static decision is read once; a Search that
  // raced the first mutation onto the static side stays static
  // end-to-end (the generated collection is immutable), instead of
  // planning statically and then executing against the catalog.
  if (is_dynamic()) {
    // Dynamic serving. No cost model over the evolving catalog yet: obey
    // `force`, default to safe max-score pruning otherwise. The strategy
    // is known before the context is built, so only fragment strategies
    // pay for the live-statistics fragmentation.
    SearchResult out;
    out.strategy = options.force.value_or(PhysicalStrategy::kMaxScore);
    out.estimate.strategy = out.strategy;
    const ExecContext context =
        catalog_context(catalog_view(), NeedsFragmentation(out.strategy));

    WallTimer timer;
    Result<TopNResult> top = StrategyRegistry::Global().Execute(
        out.strategy, context, query, options.n, eopts);
    if (!top.ok()) return top.status();
    out.wall_millis = timer.ElapsedMillis();
    out.top = std::move(top).ValueOrDie();
    return out;
  }
  const ExecContext context = static_context();

  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();

  SearchResult out;
  out.strategy = plan.ValueOrDie().strategy;
  out.estimate = plan.ValueOrDie().chosen;

  WallTimer timer;
  Result<TopNResult> top =
      plan.ValueOrDie().Execute(context, query, options.n, eopts);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();
  return out;
}

std::vector<ScoredDoc> MmDatabase::GroundTruth(const Query& query,
                                               size_t n) const {
  if (is_dynamic()) {
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    return ExactTopN(*view, *view->model(), query, n);
  }
  return ExactTopN(file(), *model_, query, n);
}

std::vector<double> MmDatabase::GroundTruthScores(const Query& query) const {
  if (is_dynamic()) {
    const std::shared_ptr<const CatalogReadView> view = catalog_view();
    return AccumulateScores(*view, *view->model(), query);
  }
  return AccumulateScores(file(), *model_, query);
}

std::string MmDatabase::DescribeStorage() const {
  if (is_dynamic()) {
    return "storage: " + catalog_->Snapshot()->Describe();
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (segment_ != nullptr) {
    return "storage: in-memory inverted file; all strategies read mmap "
           "segment " + segment_path_ + " [" + segment_->format_name() +
           ", " + SegmentCodecName(segment_->codec()) + " codec]" +
           (segment_->has_fragment_directory()
                ? " (impact-ordered fragment directory)"
                : " (no fragment directory)");
  }
  return "storage: in-memory inverted file";
}

std::string MmDatabase::DescribeBlockUsage(PhysicalStrategy strategy,
                                           const Query& query,
                                           size_t n) const {
  // Best effort: re-run the query and report how the storage layer
  // behaved. A strategy that cannot execute here (missing impacts,
  // precondition failures) simply contributes no line — the explain
  // itself must not fail because of it.
  const Result<TopNResult> run = Execute(strategy, query, n);
  if (!run.ok()) return "";
  const CostCounters& cost = run.ValueOrDie().stats.cost;
  std::ostringstream os;
  os << "blocks: decoded " << cost.blocks_decoded << ", skipped "
     << cost.blocks_skipped
     << " (block-directory skips + block-max pruning; 0/0 over "
        "blockless in-memory lists)\n";
  return os.str();
}

Result<std::string> MmDatabase::ExplainSearch(
    const Query& query, const SearchOptions& options) const {
  if (is_dynamic()) {
    const PhysicalStrategy chosen =
        options.force.value_or(PhysicalStrategy::kMaxScore);
    std::ostringstream os;
    os << "chosen: " << StrategyName(chosen)
       << " (dynamic catalog serving: forced strategy or max-score "
          "default; no cost model over the evolving collection)\n"
       << DescribeStorage() << "\n";
    // Fragment strategies run over live-statistics fragmentation; show
    // the split the forced strategy would use.
    if (NeedsFragmentation(chosen)) {
      os << "fragmentation: "
         << DynamicFragmentation(*catalog_->Snapshot())->ToString() << "\n";
    }
    os << DescribeBlockUsage(chosen, query, options.n);
    return os.str();
  }
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(plan.ValueOrDie()) + DescribeStorage() + "\n" +
         DescribeBlockUsage(plan.ValueOrDie().strategy, query, options.n);
}

}  // namespace moa
