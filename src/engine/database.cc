#include "engine/database.h"

#include "common/timer.h"
#include "exec/registry.h"
#include "optimizer/explain.h"

namespace moa {

Result<std::unique_ptr<MmDatabase>> MmDatabase::Open(
    const DatabaseConfig& config) {
  auto db = std::unique_ptr<MmDatabase>(new MmDatabase());
  db->config_ = config;

  Result<Collection> coll = Collection::Generate(config.collection);
  if (!coll.ok()) return coll.status();
  db->collection_ = std::make_unique<Collection>(std::move(coll).ValueOrDie());

  InvertedFile& file = db->collection_->mutable_inverted_file();
  switch (config.scoring) {
    case ScoringModelKind::kTfIdf:
      db->model_ = MakeTfIdf(&file);
      break;
    case ScoringModelKind::kBm25:
      db->model_ = MakeBm25(&file);
      break;
    case ScoringModelKind::kLanguageModel:
      db->model_ = MakeLanguageModel(&file);
      break;
  }
  file.BuildImpactOrders([&](TermId t, const Posting& p) {
    return db->model_->Weight(t, p);
  });
  db->fragmentation_ = Fragmentation::Build(file, config.fragmentation);
  db->estimator_ = std::make_unique<CardinalityEstimator>(
      &file, &db->fragmentation_);
  db->cost_model_ = std::make_unique<CostModel>(db->estimator_.get());
  db->planner_ = std::make_unique<Planner>(db->cost_model_.get());
  return db;
}

ExecContext MmDatabase::exec_context() const {
  ExecContext context;
  context.file = &file();
  context.model = model_.get();
  context.fragmentation = &fragmentation_;
  context.sparse_cache = &sparse_cache_;
  return context;
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       double switch_threshold) const {
  ExecOptions options;
  options.switch_threshold = switch_threshold;
  return Execute(strategy, query, n, options);
}

Result<TopNResult> MmDatabase::Execute(PhysicalStrategy strategy,
                                       const Query& query, size_t n,
                                       const ExecOptions& options) const {
  return StrategyRegistry::Global().Execute(strategy, exec_context(), query,
                                            n, options);
}

Result<SearchResult> MmDatabase::Search(const Query& query,
                                        const SearchOptions& options) const {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();

  SearchResult out;
  out.strategy = plan.ValueOrDie().strategy;
  out.estimate = plan.ValueOrDie().chosen;

  ExecOptions eopts;
  eopts.switch_threshold = options.switch_threshold;

  WallTimer timer;
  Result<TopNResult> top =
      plan.ValueOrDie().Execute(exec_context(), query, options.n, eopts);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();
  return out;
}

std::vector<ScoredDoc> MmDatabase::GroundTruth(const Query& query,
                                               size_t n) const {
  return ExactTopN(file(), *model_, query, n);
}

std::vector<double> MmDatabase::GroundTruthScores(const Query& query) const {
  return AccumulateScores(file(), *model_, query);
}

Result<std::string> MmDatabase::ExplainSearch(
    const Query& query, const SearchOptions& options) const {
  PlannerOptions popts;
  popts.safe_only = options.safe_only;
  popts.force = options.force;
  Result<RetrievalPlan> plan = planner_->Plan(query, options.n, popts);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(plan.ValueOrDie());
}

}  // namespace moa
