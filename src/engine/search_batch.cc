// MmDatabase::SearchBatch: concurrent fan-out of a query workload.
//
// Each worker runs the ordinary Search path — same planner, same registry
// dispatch — against the shared read-only ExecContext; the only shared
// mutable state is the build-once SparseIndexCache. Per-query work
// accounting stays exact because CostTicker frames are thread-local.
#include <algorithm>
#include <optional>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/database.h"

namespace moa {

Result<BatchSearchResult> MmDatabase::SearchBatch(
    const std::vector<Query>& queries, const SearchOptions& options,
    size_t parallelism) const {
  BatchSearchResult out;
  out.stats.num_queries = queries.size();
  if (queries.empty()) return out;

  size_t workers =
      parallelism == 0 ? ThreadPool::DefaultParallelism() : parallelism;
  workers = std::min(workers, queries.size());
  out.stats.parallelism = workers;

  // Per-slot results keep query order independent of interleaving; the
  // pool is joined before any slot is read.
  std::vector<std::optional<SearchResult>> slots(queries.size());
  std::vector<Status> statuses(queries.size(), Status::OK());
  auto run_one = [&](size_t i) {
    Result<SearchResult> r = Search(queries[i], options);
    if (r.ok()) {
      slots[i] = std::move(r).ValueOrDie();
    } else {
      statuses[i] = r.status();
    }
  };

  // The pool is constructed outside the timed region: thread spawn/join
  // cost would otherwise bias the QPS comparison against higher
  // parallelism on small batches.
  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  WallTimer timer;
  if (pool.has_value()) {
    pool->ParallelFor(queries.size(), run_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i);
  }
  out.stats.wall_millis = timer.ElapsedMillis();

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  out.results.reserve(queries.size());
  for (std::optional<SearchResult>& slot : slots) {
    latencies.push_back(slot->wall_millis);
    out.stats.total_cost += slot->top.stats.cost;
    out.results.push_back(std::move(*slot));
  }

  out.stats.qps = static_cast<double>(queries.size()) /
                  (std::max(out.stats.wall_millis, 1e-6) / 1000.0);
  const Histogram latency_hist = Histogram::FromData(latencies, 64);
  out.stats.p50_millis = latency_hist.ValueAtQuantile(0.50);
  out.stats.p95_millis = latency_hist.ValueAtQuantile(0.95);
  out.stats.p99_millis = latency_hist.ValueAtQuantile(0.99);
  return out;
}

}  // namespace moa
