// MmDatabase::SearchBatch: concurrent fan-out of a query workload.
//
// Each worker runs the ordinary Search path — same planner, same registry
// dispatch — against the shared read-only ExecContext; the only shared
// mutable state is the build-once SparseIndexCache (and the per-snapshot
// planner caches, internally locked). Per-query work accounting stays
// exact because CostTicker frames are thread-local.
#include <algorithm>
#include <optional>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/database.h"
#include "obs/metrics.h"

namespace moa {

Result<BatchSearchResult> MmDatabase::SearchBatch(
    const std::vector<QueryRequest>& requests, size_t parallelism) const {
  BatchSearchResult out;
  out.stats.num_queries = requests.size();
  if (requests.empty()) return out;

  size_t workers =
      parallelism == 0 ? ThreadPool::DefaultParallelism() : parallelism;
  workers = std::min(workers, requests.size());
  out.stats.parallelism = workers;

  // Per-slot results keep request order independent of interleaving; the
  // pool is joined before any slot is read.
  std::vector<std::optional<SearchResult>> slots(requests.size());
  std::vector<Status> statuses(requests.size(), Status::OK());
  auto run_one = [&](size_t i) {
    Result<SearchResult> r = Search(requests[i]);
    if (r.ok()) {
      slots[i] = std::move(r).ValueOrDie();
    } else {
      statuses[i] = r.status();
    }
  };

  // Batch fan-out runs on the process-wide shared pool (no per-call
  // thread spawn/join inside the timed region, and no second pool racing
  // the shard-level ParallelFor for cores — see thread_pool.h for the
  // parallelism budget). The calling thread is one of the `workers`
  // claimants, so `workers - 1` helpers give the requested concurrency.
  WallTimer timer;
  if (workers > 1) {
    ThreadPool::Shared().ParallelFor(requests.size(), run_one,
                                     /*max_helpers=*/workers - 1);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) run_one(i);
  }
  out.stats.wall_millis = timer.ElapsedMillis();

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  std::vector<double> latencies;
  latencies.reserve(requests.size());
  out.results.reserve(requests.size());
  for (std::optional<SearchResult>& slot : slots) {
    latencies.push_back(slot->wall_millis);
    out.stats.total_cost += slot->top.stats.cost;
    out.results.push_back(std::move(*slot));
  }

  out.stats.qps = static_cast<double>(requests.size()) /
                  (std::max(out.stats.wall_millis, 1e-6) / 1000.0);
  const Histogram latency_hist = Histogram::FromData(latencies, 64);
  out.stats.p50_millis = latency_hist.ValueAtQuantile(0.50);
  out.stats.p95_millis = latency_hist.ValueAtQuantile(0.95);
  out.stats.p99_millis = latency_hist.ValueAtQuantile(0.99);
  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_batch_total")->Add();
    registry.GetCounter("moa_batch_queries_total")
        ->Add(static_cast<double>(requests.size()));
    registry.GetHistogram("moa_batch_wall_ms")->Observe(out.stats.wall_millis);
  }
  return out;
}

Result<BatchSearchResult> MmDatabase::SearchBatch(
    const std::vector<Query>& queries, const SearchOptions& options,
    size_t parallelism) const {
  // Legacy shim: every query gets the same options.
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  const QueryOptions qopts = options.ToQueryOptions();
  for (const Query& query : queries) {
    QueryRequest request;
    request.query = query;
    request.n = options.n;
    request.options = qopts;
    requests.push_back(std::move(request));
  }
  return SearchBatch(requests, parallelism);
}

}  // namespace moa
