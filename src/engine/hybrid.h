// Integrated top-N over content + alphanumeric predicates.
//
// The paper's stated research interest is "optimization of integrated top
// N queries on several content and alpha numerical types". This module
// executes  SELECT doc ORDER BY score(doc) DESC WHERE lo <= attr(doc) <= hi
// STOP AFTER n  with the two classical plan shapes, and a cost-based
// chooser:
//
//   kFilterFirst — scan the attribute column into an allow-bitmap, then
//     rank only allowed documents. Work ~ D + V. Wins when the predicate
//     is selective (few survivors share little posting volume? no — the
//     posting volume is unchanged; it wins by never ranking disallowed
//     docs and never restarting).
//   kRankFirst — rank ignoring the predicate, keep the best k*n, filter,
//     restart with doubled k on underflow (Carey–Kossmann applied to the
//     integrated query). Wins when the predicate is non-selective: the
//     top-n of the unfiltered ranking almost surely contains n qualifying
//     docs and the attribute column is only probed n*k times.
#ifndef MOA_ENGINE_HYBRID_H_
#define MOA_ENGINE_HYBRID_H_

#include <vector>

#include "ir/query_gen.h"
#include "topn/topn_result.h"

namespace moa {

/// Numeric range predicate over a per-document attribute column.
struct AttributePredicate {
  double lo = 0.0;
  double hi = 0.0;

  bool Matches(double v) const { return v >= lo && v <= hi; }
};

/// Physical plan for the integrated query.
enum class HybridPlan {
  kFilterFirst,
  kRankFirst,
  /// Pick by estimated predicate selectivity (sampled): rank-first when
  /// >= selectivity_crossover, filter-first otherwise.
  kAuto,
};

/// \brief Tuning for HybridTopN.
struct HybridOptions {
  HybridPlan plan = HybridPlan::kAuto;
  /// Initial over-fetch factor for kRankFirst.
  double overfetch = 4.0;
  /// kAuto picks kRankFirst when estimated selectivity exceeds this.
  /// Calibrated on bench_e12: rank-first starts winning near 2-5%
  /// selectivity (the restart risk fades and the saved attribute scan
  /// dominates).
  double selectivity_crossover = 0.03;
  /// Sample size for the kAuto selectivity estimate.
  size_t sample_size = 256;
  uint64_t seed = 0xFACADE;
};

/// Executes the integrated query. `attribute` holds one value per document
/// (attribute.size() == file.num_docs()). Exact under both plans (rank-
/// first restarts on underflow). `stats.restarts` counts rank-first
/// restarts; `stats.stopped_early` is set when rank-first succeeded
/// without draining the full ranking.
Result<TopNResult> HybridTopN(const InvertedFile& file,
                              const ScoringModel& model, const Query& query,
                              const std::vector<double>& attribute,
                              const AttributePredicate& predicate, size_t n,
                              const HybridOptions& options = {});

/// The plan kAuto would pick for this predicate (exposed for tests/benches).
HybridPlan ChooseHybridPlan(const std::vector<double>& attribute,
                            const AttributePredicate& predicate,
                            const HybridOptions& options);

}  // namespace moa

#endif  // MOA_ENGINE_HYBRID_H_
