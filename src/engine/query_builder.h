// Fluent builder for Moa algebra expressions.
//
// Example (the paper's Example 1):
//   ExprPtr e = QueryBuilder::List({1, 2, 3, 4, 4, 5})
//                   .ProjectToBag()
//                   .Select(2, 4)
//                   .Build();
#ifndef MOA_ENGINE_QUERY_BUILDER_H_
#define MOA_ENGINE_QUERY_BUILDER_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "algebra/expr.h"

namespace moa {

/// \brief Chainable expression builder. Each call wraps the current
/// expression in one more operator; the extension is picked from the
/// (statically tracked) current kind.
class QueryBuilder {
 public:
  /// Starts from an integer list literal.
  static QueryBuilder List(std::initializer_list<int64_t> values);
  /// Starts from a double vector.
  static QueryBuilder ListOf(std::vector<double> values);
  /// Starts from an arbitrary expression of known kind.
  static QueryBuilder From(ExprPtr expr, ValueKind kind);

  /// Range select on the current collection (LIST/BAG/SET dispatch).
  QueryBuilder Select(double lo, double hi) &&;
  /// LIST only: binary-search range select (caller asserts sortedness).
  QueryBuilder SelectSorted(double lo, double hi) &&;
  QueryBuilder Sort() &&;
  QueryBuilder TopN(int64_t n) &&;
  QueryBuilder ProjectToBag() &&;
  QueryBuilder ProjectToList() &&;
  QueryBuilder ToSet() &&;
  QueryBuilder Slice(int64_t start, int64_t len) &&;
  QueryBuilder Reverse() &&;
  QueryBuilder Count() &&;
  QueryBuilder Sum() &&;

  ExprPtr Build() && { return expr_; }
  const ExprPtr& expr() const { return expr_; }
  ValueKind kind() const { return kind_; }

 private:
  QueryBuilder(ExprPtr expr, ValueKind kind)
      : expr_(std::move(expr)), kind_(kind) {}

  /// Prefix ("LIST"/"BAG"/"SET") for the current kind.
  const char* Ext() const;

  ExprPtr expr_;
  ValueKind kind_;
};

}  // namespace moa

#endif  // MOA_ENGINE_QUERY_BUILDER_H_
