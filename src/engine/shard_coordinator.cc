#include "engine/shard_coordinator.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/cost_ticker.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/registry.h"
#include "obs/query_trace.h"
#include "optimizer/cardinality.h"
#include "topn/maxscore.h"

namespace moa {

namespace {

/// One shard in visit order: its index and aggregate query upper bound.
struct ShardOrder {
  size_t shard = 0;
  double bound = 0.0;
};

/// Shards by descending query bound; stable sort keeps equal-bound shards
/// in ascending index order, making the visit order fully deterministic.
std::vector<ShardOrder> BoundOrder(const ShardedSnapshot& snapshot,
                                   const Query& query) {
  std::vector<ShardOrder> order(snapshot.num_shards());
  for (size_t s = 0; s < order.size(); ++s) {
    order[s] = ShardOrder{s, snapshot.ShardQueryBound(s, query)};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const ShardOrder& a, const ShardOrder& b) {
                     return a.bound > b.bound;
                   });
  return order;
}

size_t EffectiveParallelism(size_t requested, size_t num_shards) {
  const size_t p =
      requested == 0 ? std::min(num_shards, ThreadPool::DefaultParallelism())
                     : requested;
  return std::max<size_t>(1, std::min(p, num_shards));
}

/// The shard's live posting volume for the query's terms — what a skipped
/// shard would have streamed; the shard_postings_skipped currency.
int64_t LocalQueryPostings(const CatalogState& state, const Query& query) {
  const std::vector<uint32_t>& df = state.stats().df;
  int64_t total = 0;
  for (TermId t : query.terms) {
    if (static_cast<size_t>(t) < df.size()) total += df[t];
  }
  return total;
}

/// Overlays the running global n-th score onto a max-score-family
/// execution as MaxScoreOptions::initial_threshold (the distributed
/// max-score seed). Strategies of any other option family run `base`
/// unchanged — the seed is a pruning hint, not a semantic change, and
/// only the max-score family consumes it. Strict engagement is forced
/// with the seed (required by the initial_threshold contract).
ExecOptions SeededOptions(const ExecOptions& base, PhysicalStrategy strategy,
                          double seed) {
  if (seed <= 0.0) return base;
  const StrategyRegistry::Entry* entry =
      StrategyRegistry::Global().Find(strategy);
  if (entry == nullptr ||
      entry->accepts_options != ExecOptionsIndexOf<MaxScoreOptions>()) {
    return base;
  }
  ExecOptions seeded = base;
  MaxScoreOptions ms;
  if (const MaxScoreOptions* existing = base.GetIf<MaxScoreOptions>()) {
    ms = *existing;
  }
  ms.initial_threshold = std::max(ms.initial_threshold, seed);
  ms.strict = true;
  seeded.strategy_options = ms;
  return seeded;
}

/// The gather core shared by the planned and forced paths: visits shards
/// in `order` in waves of `parallelism`, skipping every remaining shard
/// whose bound is strictly below the merged n-th score, and merges the
/// per-shard top-N heaps under the global (score desc, doc asc) order.
///
/// Cost accounting: an outer CostScope on the calling thread captures the
/// gather-side work (merge compares, skip bookkeeping) plus every shard
/// execution that ran inline on this thread; executions that ran on pool
/// helpers tick their own thread-local frames, so their registry-reported
/// per-execution costs are added explicitly. The sum is exactly the work
/// done on the query's behalf, with nothing double-counted.
Result<TopNResult> ScatterGatherExec(
    const std::shared_ptr<const ShardedSnapshot>& snapshot,
    const std::vector<ShardOrder>& order,
    const std::vector<PhysicalStrategy>& strategy_by_shard, const Query& query,
    size_t n, const ExecOptions& base_options, const Fragmentation* frag,
    size_t parallelism, bool bound_pruning) {
  const size_t num_shards = snapshot->num_shards();
  const std::thread::id caller_tid = std::this_thread::get_id();

  CostScope outer;
  TopNResult merged;
  CostCounters helper_cost;
  bool skipped_any = false;

  size_t next = 0;
  while (next < order.size() && n > 0) {
    // Bound-based suffix skip: shards are in descending bound order, so
    // the first shard that cannot beat the current n-th score proves the
    // same for every shard after it. Equality still visits — a tying
    // document with a lower global id would win the (score desc, doc asc)
    // tie-break.
    const double kth =
        merged.items.size() >= n ? merged.items.back().score : 0.0;
    if (bound_pruning && merged.items.size() >= n && order[next].bound < kth) {
      for (size_t i = next; i < order.size(); ++i) {
        CostTicker::TickShardSkipped();
        CostTicker::TickShardPostingsSkipped(LocalQueryPostings(
            snapshot->shard_state(order[i].shard), query));
      }
      skipped_any = true;
      break;
    }

    const size_t wave = std::min(parallelism, order.size() - next);
    const double seed =
        bound_pruning && merged.items.size() >= n ? kth : 0.0;

    std::vector<std::optional<Result<TopNResult>>> results(wave);
    std::vector<std::thread::id> ran_on(wave);
    const auto body = [&](size_t i) {
      const size_t s = order[next + i].shard;
      ran_on[i] = std::this_thread::get_id();
      ExecContext context;
      context.model = &snapshot->shard_model(s);
      context.postings = &snapshot->shard_source(s);
      context.fragmentation = frag;
      context.sparse_cache = &snapshot->shard_sparse_cache(s);
      context.postings_owner = snapshot;
      results[i] = StrategyRegistry::Global().Execute(
          strategy_by_shard[s], context, query, n,
          SeededOptions(base_options, strategy_by_shard[s], seed));
    };
    if (wave == 1) {
      body(0);
    } else {
      ThreadPool::Shared().ParallelFor(wave, body, wave - 1);
    }

    obs::TraceSpan span(obs::kStageShardGather);
    for (size_t i = 0; i < wave; ++i) {
      const size_t s = order[next + i].shard;
      Result<TopNResult>& r = *results[i];
      if (!r.ok()) return r.status();
      TopNResult shard_top = std::move(r).ValueOrDie();
      CostTicker::TickShardVisited();
      if (ran_on[i] != caller_tid) helper_cost += shard_top.stats.cost;
      merged.stats.sorted_accesses += shard_top.stats.sorted_accesses;
      merged.stats.random_accesses += shard_top.stats.random_accesses;
      merged.stats.candidates += shard_top.stats.candidates;
      merged.stats.stopped_early |= shard_top.stats.stopped_early;
      merged.stats.restarts += shard_top.stats.restarts;
      merged.stats.used_large_fragment |= shard_top.stats.used_large_fragment;
      for (ScoredDoc& sd : shard_top.items) {
        sd.doc = ShardedCatalog::GlobalOf(sd.doc, s, num_shards);
        merged.items.push_back(sd);
      }
    }
    std::sort(merged.items.begin(), merged.items.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                CostTicker::TickCompare();
                return ScoredDocLess(a, b);
              });
    if (merged.items.size() > n) merged.items.resize(n);
    next += wave;
  }

  merged.stats.stopped_early |= skipped_any;
  merged.stats.cost = outer.Snapshot() + helper_cost;
  return merged;
}

}  // namespace

Result<SearchResult> ShardCoordinator::Run(
    const std::shared_ptr<const ShardedSnapshot>& snapshot,
    const QueryRequest& request, bool explain, bool trace,
    PlanDecision* decision_out, const Options& options) {
  // Mirrors the single-catalog PlanAndRun (database.cc): when sampled, a
  // QueryTrace is installed for this thread — the scatter/gather spans
  // and any inline shard execution's stage spans attach here; executions
  // on pool helpers have no installed trace and report through their
  // result's CostCounters instead.
  std::optional<obs::QueryTrace> qtrace;
  if (trace) qtrace.emplace();

  const size_t num_shards = snapshot->num_shards();

  PlanRequest preq;
  preq.n = request.n;
  preq.quality_target = request.options.quality_target;
  preq.force = request.options.strategy;
  if (num_shards > 1) {
    // NRA reports drain-order lower-bound scores, not full sums; merging
    // such scores across shards would compare lower bounds from one shard
    // against exact scores from another, so cost-based choice never picks
    // it under sharding. Forcing it remains allowed (set-level contract).
    preq.exclude.push_back(PhysicalStrategy::kFaginNRA);
  }

  SearchResult out;
  std::vector<ShardOrder> order;
  std::vector<PhysicalStrategy> strategies(num_shards, PhysicalStrategy::kHeap);
  {
    obs::TraceSpan span(obs::kStageShardScatter);
    order = BoundOrder(*snapshot, request.query);

    // Per-shard planning: each shard is costed from its own local df and
    // storage signals, so a memtable-heavy shard can legitimately pick a
    // different strategy than a merged one. The highest-bound shard is
    // planned first and supplies the result's headline strategy (and the
    // full decision table when asked); the estimate sums every shard's
    // prediction and the predicted quality is the worst across shards.
    bool first = true;
    for (const ShardOrder& so : order) {
      const CatalogState& state = snapshot->shard_state(so.shard);
      const CardinalityEstimator estimator(
          &state.stats().df,
          static_cast<int64_t>(state.stats().num_live_docs),
          options.fragmentation);
      const StrategyPlanner planner(
          &estimator, StorageInputsFor(snapshot->shard_composition(so.shard)));
      PlanCandidate chosen;
      if (first && (explain || preq.force.has_value())) {
        Result<PlanDecision> plan = (preq.force.has_value() && !explain)
                                        ? planner.PlanForced(request.query, preq)
                                        : planner.Plan(request.query, preq);
        if (!plan.ok()) return plan.status();
        PlanDecision decision = std::move(plan).ValueOrDie();
        chosen = decision.chosen;
        out.planned = !decision.forced;
        if (decision_out != nullptr) *decision_out = std::move(decision);
      } else if (preq.force.has_value()) {
        Result<PlanDecision> plan = planner.PlanForced(request.query, preq);
        if (!plan.ok()) return plan.status();
        chosen = std::move(plan).ValueOrDie().chosen;
        out.planned = false;
      } else {
        Result<PlanCandidate> choice = planner.PlanChoice(request.query, preq);
        if (!choice.ok()) return choice.status();
        chosen = std::move(choice).ValueOrDie();
        out.planned = true;
      }
      strategies[so.shard] = chosen.strategy;
      if (first) {
        out.strategy = chosen.strategy;
        out.estimate.strategy = chosen.strategy;
      }
      out.estimate.predicted += chosen.predicted;
      out.estimate.scalar += chosen.scalar;
      out.predicted_quality =
          std::min(out.predicted_quality, chosen.predicted_quality);
      first = false;
    }
  }
  if (explain) return out;

  ExecOptions eopts;
  eopts.switch_threshold = request.options.switch_threshold;
  WallTimer timer;
  Result<TopNResult> top = ScatterGatherExec(
      snapshot, order, strategies, request.query, request.n, eopts,
      options.fragmentation,
      EffectiveParallelism(options.parallelism, num_shards),
      options.bound_pruning);
  if (!top.ok()) return top.status();
  out.wall_millis = timer.ElapsedMillis();
  out.top = std::move(top).ValueOrDie();

  if (qtrace.has_value()) {
    out.trace = qtrace->Finish();
    out.trace.strategy = StrategyName(out.strategy);
    out.trace.planned = out.planned;
    out.trace.predicted_scalar = out.estimate.scalar;
    out.trace.predicted_quality = out.predicted_quality;
    out.traced = true;
  }
  return out;
}

Result<TopNResult> ShardCoordinator::Execute(
    const std::shared_ptr<const ShardedSnapshot>& snapshot,
    PhysicalStrategy strategy, const Query& query, size_t n,
    const ExecOptions& exec_options, const Options& options) {
  const size_t num_shards = snapshot->num_shards();
  std::vector<ShardOrder> order;
  {
    obs::TraceSpan span(obs::kStageShardScatter);
    order = BoundOrder(*snapshot, query);
  }
  const std::vector<PhysicalStrategy> strategies(num_shards, strategy);
  return ScatterGatherExec(snapshot, order, strategies, query, n, exec_options,
                           options.fragmentation,
                           EffectiveParallelism(options.parallelism,
                                                num_shards),
                           options.bound_pruning);
}

}  // namespace moa
