#include "engine/query_builder.h"

#include <cassert>
#include <string>

namespace moa {

QueryBuilder QueryBuilder::List(std::initializer_list<int64_t> values) {
  ValueVec elems;
  elems.reserve(values.size());
  for (int64_t v : values) elems.push_back(Value::Int(v));
  return QueryBuilder(Expr::Const(Value::List(std::move(elems))),
                      ValueKind::kList);
}

QueryBuilder QueryBuilder::ListOf(std::vector<double> values) {
  ValueVec elems;
  elems.reserve(values.size());
  for (double v : values) elems.push_back(Value::Double(v));
  return QueryBuilder(Expr::Const(Value::List(std::move(elems))),
                      ValueKind::kList);
}

QueryBuilder QueryBuilder::From(ExprPtr expr, ValueKind kind) {
  return QueryBuilder(std::move(expr), kind);
}

const char* QueryBuilder::Ext() const {
  switch (kind_) {
    case ValueKind::kList: return "LIST";
    case ValueKind::kBag: return "BAG";
    case ValueKind::kSet: return "SET";
    default: return "LIST";
  }
}

QueryBuilder QueryBuilder::Select(double lo, double hi) && {
  ExprPtr e = Expr::Apply(std::string(Ext()) + ".select",
                          {expr_, Expr::Const(Value::Double(lo)),
                           Expr::Const(Value::Double(hi))});
  return QueryBuilder(std::move(e), kind_);
}

QueryBuilder QueryBuilder::SelectSorted(double lo, double hi) && {
  assert(kind_ == ValueKind::kList);
  ExprPtr e = Expr::Apply("LIST.select_sorted",
                          {expr_, Expr::Const(Value::Double(lo)),
                           Expr::Const(Value::Double(hi))});
  return QueryBuilder(std::move(e), ValueKind::kList);
}

QueryBuilder QueryBuilder::Sort() && {
  assert(kind_ == ValueKind::kList);
  return QueryBuilder(Expr::Apply("LIST.sort", {expr_}), ValueKind::kList);
}

QueryBuilder QueryBuilder::TopN(int64_t n) && {
  ExprPtr e = Expr::Apply(std::string(Ext()) + ".topn",
                          {expr_, Expr::Const(Value::Int(n))});
  return QueryBuilder(std::move(e), ValueKind::kList);
}

QueryBuilder QueryBuilder::ProjectToBag() && {
  assert(kind_ == ValueKind::kList);
  return QueryBuilder(Expr::Apply("LIST.projecttobag", {expr_}),
                      ValueKind::kBag);
}

QueryBuilder QueryBuilder::ProjectToList() && {
  assert(kind_ == ValueKind::kBag);
  return QueryBuilder(Expr::Apply("BAG.projecttolist", {expr_}),
                      ValueKind::kList);
}

QueryBuilder QueryBuilder::ToSet() && {
  return QueryBuilder(Expr::Apply("SET.make", {expr_}), ValueKind::kSet);
}

QueryBuilder QueryBuilder::Slice(int64_t start, int64_t len) && {
  assert(kind_ == ValueKind::kList);
  ExprPtr e = Expr::Apply("LIST.slice",
                          {expr_, Expr::Const(Value::Int(start)),
                           Expr::Const(Value::Int(len))});
  return QueryBuilder(std::move(e), ValueKind::kList);
}

QueryBuilder QueryBuilder::Reverse() && {
  assert(kind_ == ValueKind::kList);
  return QueryBuilder(Expr::Apply("LIST.reverse", {expr_}), ValueKind::kList);
}

QueryBuilder QueryBuilder::Count() && {
  ExprPtr e = Expr::Apply(std::string(Ext()) + ".count", {expr_});
  return QueryBuilder(std::move(e), ValueKind::kInt);
}

QueryBuilder QueryBuilder::Sum() && {
  ExprPtr e = Expr::Apply(std::string(Ext()) + ".sum", {expr_});
  return QueryBuilder(std::move(e), ValueKind::kDouble);
}

}  // namespace moa
