// MmDatabase: the public facade tying everything together.
//
// Owns a (synthetic) collection, its inverted file with impact orders, the
// Step-1 fragmentation, a scoring model, the Step-3 cost model/planner and
// a sparse-index cache — and executes top-N retrieval queries with any of
// the physical strategies, either forced or chosen by the optimizer.
//
// Concurrency: after Open, the database is read-only except for the
// internally synchronized sparse-index cache, so Search / Execute /
// SearchBatch are safe to call from many threads over one instance.
// SearchBatch is the built-in fan-out: it runs a whole workload across a
// ThreadPool and reports aggregate throughput (QPS, latency percentiles).
#ifndef MOA_ENGINE_DATABASE_H_
#define MOA_ENGINE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "ir/collection.h"
#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "optimizer/planner.h"
#include "storage/fragmentation.h"
#include "storage/segment/segment_reader.h"
#include "storage/sparse_index_cache.h"
#include "topn/fragment_topn.h"
#include "topn/topn_result.h"

namespace moa {

/// Scoring model choice for MmDatabase::Open.
enum class ScoringModelKind { kTfIdf, kBm25, kLanguageModel };

/// \brief Everything needed to open a database.
struct DatabaseConfig {
  CollectionConfig collection;
  FragmentationPolicy fragmentation;
  ScoringModelKind scoring = ScoringModelKind::kBm25;
};

/// \brief Per-search options.
struct SearchOptions {
  size_t n = 10;
  /// Only exact strategies may be chosen by the planner.
  bool safe_only = true;
  /// Force a specific strategy instead of cost-based choice.
  std::optional<PhysicalStrategy> force;
  /// Quality-switch threshold used by fragment strategies.
  double switch_threshold = 0.0;
};

/// \brief A search answer plus plan/bookkeeping.
struct SearchResult {
  TopNResult top;
  PhysicalStrategy strategy;
  PlanCostEstimate estimate;
  double wall_millis = 0.0;
};

/// \brief Aggregate statistics of one SearchBatch call.
struct BatchStats {
  size_t num_queries = 0;
  /// Worker threads actually used (after clamping to the batch size).
  size_t parallelism = 1;
  /// End-to-end batch wall time (not the sum of per-query times).
  double wall_millis = 0.0;
  /// num_queries / batch seconds.
  double qps = 0.0;
  /// Per-query latency percentiles, estimated from an equi-width
  /// Histogram over the individual wall times.
  double p50_millis = 0.0;
  double p95_millis = 0.0;
  double p99_millis = 0.0;
  /// Summed deterministic work counters across all queries.
  CostCounters total_cost;
};

/// \brief Per-query results plus aggregate stats of one batch.
struct BatchSearchResult {
  /// results[i] answers queries[i] (order preserved regardless of the
  /// execution interleaving).
  std::vector<SearchResult> results;
  BatchStats stats;
};

/// \brief Options for MmDatabase::AttachSegment.
struct AttachSegmentOptions {
  /// Decode and verify every payload block (SegmentReader::CheckIntegrity)
  /// before attaching. Open only validates the header and directories
  /// structurally; without this pass, payload bit rot would surface as
  /// silently truncated posting lists — wrong top-N results with no error.
  /// Skipping the scan restores O(directories) attach cost and is only
  /// safe for segments with trusted provenance (e.g. written and verified
  /// by this same process moments earlier).
  bool verify_payload = true;
};

/// \brief The in-memory MM retrieval database.
class MmDatabase {
 public:
  /// Generates the collection, builds impact orders and fragmentation.
  static Result<std::unique_ptr<MmDatabase>> Open(const DatabaseConfig& config);

  /// Plans (or obeys `force`) and executes the query. Thread-safe.
  Result<SearchResult> Search(const Query& query,
                              const SearchOptions& options) const;

  /// Fans `queries` out across a ThreadPool of `parallelism` workers
  /// (0 = ThreadPool::DefaultParallelism(), clamped to the batch size;
  /// 1 runs inline) and executes each with Search(query, options).
  /// Results keep query order and are bit-identical to sequential
  /// execution — all shared state is read-only or build-once (the sparse
  /// cache), and per-query scoring state is thread-private. Returns the
  /// first per-query error if any query fails.
  Result<BatchSearchResult> SearchBatch(const std::vector<Query>& queries,
                                        const SearchOptions& options,
                                        size_t parallelism = 0) const;

  /// Executes a specific strategy directly (shared by Search and benches).
  /// `switch_threshold` is a common hint consulted by the fragment
  /// strategies only; every other strategy ignores it by design (typed
  /// per-strategy options go through the ExecOptions overload, where the
  /// registry rejects family mismatches). Thread-safe.
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, double switch_threshold = 0.0) const;

  /// Registry execution with full per-strategy options (no default: keeps
  /// the legacy overload above unambiguous). Rejects typed options that do
  /// not belong to `strategy`'s family. Thread-safe.
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, const ExecOptions& options) const;

  /// Borrowed exec-layer view of this database's state; hand it to
  /// StrategyRegistry::Global().Execute (benches swap in their own
  /// fragmentation or sparse cache before doing so). The view is
  /// read-only apart from the internally synchronized sparse cache, so
  /// copies of it may execute concurrently.
  ExecContext exec_context() const;

  /// Exact ground truth for quality evaluation.
  std::vector<ScoredDoc> GroundTruth(const Query& query, size_t n) const;
  /// Dense exact scores for quality evaluation.
  std::vector<double> GroundTruthScores(const Query& query) const;

  /// Planner Explain without execution.
  Result<std::string> ExplainSearch(const Query& query,
                                    const SearchOptions& options) const;

  /// Writes the collection as a compressed MOAIF02 segment (atomic
  /// overwrite). Per-term/per-block max impacts are computed with this
  /// database's scoring model, so max-score pruning over the reopened
  /// segment takes bit-identical decisions to the in-memory path.
  Status SaveSegment(const std::string& path,
                     uint32_t block_size = kDefaultSegmentBlockSize) const;

  /// Memory-maps the MOAIF02 segment at `path` and routes the
  /// cursor-based strategies (baselines, max-score, stop-after) through
  /// it; everything else keeps reading the in-memory file. The segment
  /// must describe this database's collection (validated by shape), and
  /// by default its payload is fully decoded once to rule out bit rot
  /// (see AttachSegmentOptions::verify_payload).
  /// NOT thread-safe against in-flight searches: attach before serving.
  Status AttachSegment(const std::string& path,
                       const AttachSegmentOptions& options = {});

  /// Reverts to pure in-memory execution. Same caveat as AttachSegment.
  void DetachSegment() { segment_.reset(); }
  bool has_segment() const { return segment_ != nullptr; }
  const SegmentReader* segment() const { return segment_.get(); }

  const InvertedFile& file() const { return collection_->inverted_file(); }
  const Collection& collection() const { return *collection_; }
  const Fragmentation& fragmentation() const { return fragmentation_; }
  const ScoringModel& model() const { return *model_; }
  const DatabaseConfig& config() const { return config_; }

 private:
  MmDatabase() = default;

  DatabaseConfig config_;
  std::unique_ptr<Collection> collection_;
  Fragmentation fragmentation_;
  std::unique_ptr<ScoringModel> model_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<Planner> planner_;
  /// Optional mmap-backed posting storage attached by AttachSegment.
  std::unique_ptr<SegmentReader> segment_;
  /// Lazily filled by sparse-probe executions; mutable because filling the
  /// cache is not an observable mutation of the database (build-once,
  /// internally locked — the one piece of shared state Search may write).
  mutable SparseIndexCache sparse_cache_;
};

}  // namespace moa

#endif  // MOA_ENGINE_DATABASE_H_
