// MmDatabase: the public facade tying everything together.
//
// Owns a (synthetic) collection, its inverted file with impact orders, the
// Step-1 fragmentation, a scoring model, the Step-3 cost model/planner and
// a sparse-index cache — and executes top-N retrieval queries with any of
// the physical strategies, either forced or chosen by the optimizer.
#ifndef MOA_ENGINE_DATABASE_H_
#define MOA_ENGINE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "exec/executor.h"
#include "ir/collection.h"
#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "optimizer/planner.h"
#include "storage/fragmentation.h"
#include "storage/sparse_index.h"
#include "topn/fragment_topn.h"
#include "topn/topn_result.h"

namespace moa {

/// Scoring model choice for MmDatabase::Open.
enum class ScoringModelKind { kTfIdf, kBm25, kLanguageModel };

/// \brief Everything needed to open a database.
struct DatabaseConfig {
  CollectionConfig collection;
  FragmentationPolicy fragmentation;
  ScoringModelKind scoring = ScoringModelKind::kBm25;
};

/// \brief Per-search options.
struct SearchOptions {
  size_t n = 10;
  /// Only exact strategies may be chosen by the planner.
  bool safe_only = true;
  /// Force a specific strategy instead of cost-based choice.
  std::optional<PhysicalStrategy> force;
  /// Quality-switch threshold used by fragment strategies.
  double switch_threshold = 0.0;
};

/// \brief A search answer plus plan/bookkeeping.
struct SearchResult {
  TopNResult top;
  PhysicalStrategy strategy;
  PlanCostEstimate estimate;
  double wall_millis = 0.0;
};

/// \brief The in-memory MM retrieval database.
class MmDatabase {
 public:
  /// Generates the collection, builds impact orders and fragmentation.
  static Result<std::unique_ptr<MmDatabase>> Open(const DatabaseConfig& config);

  /// Plans (or obeys `force`) and executes the query.
  Result<SearchResult> Search(const Query& query, const SearchOptions& options);

  /// Executes a specific strategy directly (shared by Search and benches).
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, double switch_threshold = 0.0);

  /// Registry execution with full per-strategy options (no default: keeps
  /// the legacy overload above unambiguous).
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, const ExecOptions& options);

  /// Borrowed exec-layer view of this database's state; hand it to
  /// StrategyRegistry::Global().Execute (benches swap in their own
  /// fragmentation or sparse cache before doing so).
  ExecContext exec_context();

  /// Exact ground truth for quality evaluation.
  std::vector<ScoredDoc> GroundTruth(const Query& query, size_t n) const;
  /// Dense exact scores for quality evaluation.
  std::vector<double> GroundTruthScores(const Query& query) const;

  /// Planner Explain without execution.
  Result<std::string> ExplainSearch(const Query& query,
                                    const SearchOptions& options) const;

  const InvertedFile& file() const { return collection_->inverted_file(); }
  const Collection& collection() const { return *collection_; }
  const Fragmentation& fragmentation() const { return fragmentation_; }
  const ScoringModel& model() const { return *model_; }
  const DatabaseConfig& config() const { return config_; }

 private:
  MmDatabase() = default;

  DatabaseConfig config_;
  std::unique_ptr<Collection> collection_;
  Fragmentation fragmentation_;
  std::unique_ptr<ScoringModel> model_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<Planner> planner_;
  std::unordered_map<TermId, SparseIndex> sparse_cache_;
};

}  // namespace moa

#endif  // MOA_ENGINE_DATABASE_H_
