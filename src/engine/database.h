// MmDatabase: the public facade tying everything together.
//
// Owns a (synthetic) collection, its inverted file with impact orders, the
// Step-1 fragmentation, a scoring model and a sparse-index cache — and
// executes top-N retrieval queries with any of the physical strategies.
// Every query enters as a QueryRequest: when it names a strategy, that
// strategy is forced; otherwise the Step-3 cost-based StrategyPlanner
// chooses per query, in static *and* dynamic mode, from live statistics
// and storage signals (codec, tombstone density, component count,
// fragment-directory presence).
//
// Storage spine. The database starts *static*: queries read the in-memory
// InvertedFile (optionally swapped for an attached mmap segment on the
// cursor strategies). The first mutation (AddDocument / DeleteDocument)
// seeds an IndexCatalog (storage/catalog/) with the collection and flips
// the database to *dynamic* serving: queries snapshot the catalog per
// query, statistics track the live documents exactly, and the index
// evolves through the memtable → flush → merge lifecycle. Every
// registered strategy runs in dynamic mode: all executors are
// cursor-based, the Step-1 fragmentation is derived from the snapshot's
// live statistics (cached per snapshot version), and sparse-probe
// indexes live in a snapshot-scoped cache.
//
// Concurrency: Search / Execute / SearchBatch are safe from many threads,
// and remain safe while another thread attaches/detaches a segment or
// mutates the catalog — every query pins the storage it started with via
// a shared_ptr snapshot (ExecContext::postings_owner); mutations
// serialize internally and publish by pointer swap.
#ifndef MOA_ENGINE_DATABASE_H_
#define MOA_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "ir/collection.h"
#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "obs/query_trace.h"
#include "optimizer/explain.h"
#include "optimizer/planner.h"
#include "optimizer/strategy_planner.h"
#include "storage/catalog/background_jobs.h"
#include "storage/catalog/index_catalog.h"
#include "storage/catalog/sharded_catalog.h"
#include "storage/fragmentation.h"
#include "storage/segment/segment_reader.h"
#include "storage/sparse_index_cache.h"
#include "topn/fragment_topn.h"
#include "topn/topn_result.h"

namespace moa {

/// \brief Everything needed to open a database.
struct DatabaseConfig {
  CollectionConfig collection;
  FragmentationPolicy fragmentation;
  ScoringModelKind scoring = ScoringModelKind::kBm25;
  /// Directory for the index catalog's segments + manifest, used once the
  /// database turns dynamic. Empty = memory-only catalog: mutations work,
  /// Flush/Merge return FailedPrecondition. If the directory already
  /// holds a catalog (a MANIFEST from an earlier process), the first
  /// mutation *recovers* it instead of seeding from the generated
  /// collection — the durable surviving documents become the served
  /// corpus.
  std::string catalog_dir;
  /// Number of catalog shards once the database turns dynamic. 1 (the
  /// default) serves the single IndexCatalog exactly as before. Greater
  /// values partition the document space across that many independent
  /// shards (storage/catalog/sharded_catalog.h) and route every query
  /// through the bound-aware scatter-gather ShardCoordinator: shards are
  /// visited in descending impact-upper-bound order on the shared thread
  /// pool, shards that cannot beat the running global n-th score are
  /// skipped entirely (CostCounters::shards_skipped), and later shards'
  /// max-score executions are seeded with the running threshold. Results
  /// for safe strategies are bit-identical to num_shards = 1 (global
  /// statistics view; fagin_nra excepted — set-level only). On disk each
  /// shard keeps its own catalog under catalog_dir/shard_<s>; reopening
  /// requires the same shard count.
  size_t num_shards = 1;
  /// Write-ahead log for the dynamic catalog (directory-backed only; see
  /// IndexCatalog::Options::wal_enabled): acknowledged mutations are
  /// fsync'ed before the call returns and replayed on recovery.
  bool wal_enabled = true;
  /// Group-commit fsync batching (IndexCatalog::Options::wal_fsync_every):
  /// 1 = every commit group syncs; larger values trade the tail of
  /// acknowledged records on power loss for fewer fsyncs.
  size_t wal_fsync_every = 1;
  /// Run Flush/Merge as background jobs on the shared thread pool
  /// (storage/catalog/background_jobs.h), triggered by the knobs below.
  /// Off by default: the explicit Flush()/Merge() lifecycle stays fully
  /// caller-driven unless opted in. Under sharding each shard gets its
  /// own maintenance loop.
  bool background_maintenance = false;
  /// Background flush trigger: memtable documents (per shard).
  size_t flush_trigger_docs = 1024;
  /// Background merge trigger: segment count (per shard).
  size_t merge_trigger_segments = 8;
  /// Segments compacted per background merge (size-tiered pick).
  size_t merge_fanin = 4;
  /// Minimum milliseconds between background job starts per catalog
  /// (0 = unthrottled).
  uint64_t maintenance_min_interval_millis = 0;
  /// Write backpressure, enforced only while background maintenance is
  /// attached: adds/updates block (or soft-fail with ResourceExhausted)
  /// once the memtable exceeds this many documents (0 = unbounded).
  size_t backpressure_memtable_docs = 0;
  /// Same, for un-merged segment debt (0 = unbounded).
  size_t backpressure_max_segments = 0;
  /// Over budget: false = block writers until maintenance catches up,
  /// true = fail fast with ResourceExhausted.
  bool backpressure_soft_fail = false;
  /// Stage-span trace sampling period: one in every `trace_every`
  /// queries per worker thread records a full per-stage QueryTrace and
  /// retires it to the engine's trace ring. 1 traces every query, 0
  /// disables sampling entirely (ExplainSearch always traces). Aggregate
  /// metrics — per-strategy query counts, latency histograms, the
  /// predicted-vs-observed scalar feed — are exact and unsampled
  /// regardless; sampling only bounds the cost of span collection, which
  /// would otherwise dominate on microsecond-scale queries.
  size_t trace_every = 16;
};

/// \brief Per-query knobs of a QueryRequest.
struct QueryOptions {
  /// Forced strategy. Absent = the cost-based StrategyPlanner decides
  /// from live statistics and storage signals.
  std::optional<PhysicalStrategy> strategy;
  /// Minimum predicted overlap@n for planner-chosen strategies: 1.0
  /// (default) admits only exact (safe) strategies; lower values let the
  /// planner pick cheap unsafe ones whose predicted quality still meets
  /// the target. Ignored when `strategy` is set.
  double quality_target = 1.0;
  /// Quality-switch threshold used by fragment strategies.
  double switch_threshold = 0.0;
  /// Reserved: per-query deadline in milliseconds (0 = none). Validated —
  /// negative values are rejected with InvalidArgument — but not yet
  /// enforced (ROADMAP item 4, adaptive re-planning, will consume it);
  /// carried so the wire format is stable.
  double deadline_millis = 0.0;
};

/// \brief One retrieval query: the single entry point Search /
/// SearchBatch / Execute / ExplainSearch all consume.
struct QueryRequest {
  Query query;
  size_t n = 10;
  QueryOptions options;
};

/// \brief Per-search options (legacy surface).
/// \deprecated Use QueryRequest/QueryOptions; this maps onto them
/// (`force` -> `strategy`, `safe_only` -> quality_target 1.0 / 0.0).
struct SearchOptions {
  size_t n = 10;
  /// Only exact strategies may be chosen by the planner.
  bool safe_only = true;
  /// Force a specific strategy instead of cost-based choice.
  std::optional<PhysicalStrategy> force;
  /// Quality-switch threshold used by fragment strategies.
  double switch_threshold = 0.0;

  /// The QueryOptions this legacy bundle means.
  QueryOptions ToQueryOptions() const {
    QueryOptions q;
    q.strategy = force;
    q.quality_target = safe_only ? 1.0 : 0.0;
    q.switch_threshold = switch_threshold;
    return q;
  }
};

/// \brief A search answer plus plan/bookkeeping.
struct SearchResult {
  TopNResult top;
  PhysicalStrategy strategy;
  PlanCostEstimate estimate;
  /// True when the strategy was chosen by the cost-based planner (false
  /// = forced by the request).
  bool planned = false;
  /// The planner's predicted overlap@n for the chosen strategy (1.0 for
  /// safe strategies).
  double predicted_quality = 1.0;
  double wall_millis = 0.0;
  /// True when this query was sampled for stage tracing (see
  /// DatabaseConfig::trace_every); `trace` below is populated only then.
  bool traced = false;
  /// Per-stage trace of this execution (plan / cursor-open / accumulate /
  /// heap-merge spans, wall time + CostCounters deltas). Empty when the
  /// query was not sampled or the observability layer is compiled out
  /// (MOA_OBS=OFF).
  obs::QueryTraceData trace;
};

/// \brief Aggregate statistics of one SearchBatch call.
struct BatchStats {
  size_t num_queries = 0;
  /// Worker threads actually used (after clamping to the batch size).
  size_t parallelism = 1;
  /// End-to-end batch wall time (not the sum of per-query times).
  double wall_millis = 0.0;
  /// num_queries / batch seconds.
  double qps = 0.0;
  /// Per-query latency percentiles, estimated from an equi-width
  /// Histogram over the individual wall times.
  double p50_millis = 0.0;
  double p95_millis = 0.0;
  double p99_millis = 0.0;
  /// Summed deterministic work counters across all queries.
  CostCounters total_cost;
};

/// \brief Per-query results plus aggregate stats of one batch.
struct BatchSearchResult {
  /// results[i] answers queries[i] (order preserved regardless of the
  /// execution interleaving).
  std::vector<SearchResult> results;
  BatchStats stats;
};

/// \brief Options for MmDatabase::AttachSegment.
struct AttachSegmentOptions {
  /// Decode and verify every payload block (SegmentReader::CheckIntegrity)
  /// before attaching. Open only validates the header and directories
  /// structurally; without this pass, payload bit rot would surface as
  /// silently truncated posting lists — wrong top-N results with no error.
  /// Skipping the scan restores O(directories) attach cost and is only
  /// safe for segments with trusted provenance (e.g. written and verified
  /// by this same process moments earlier).
  bool verify_payload = true;
};

/// \brief The MM retrieval database.
class MmDatabase {
 public:
  /// Generates the collection, builds impact orders and fragmentation.
  static Result<std::unique_ptr<MmDatabase>> Open(const DatabaseConfig& config);

  /// The single query entry point: plans (or obeys request.options.
  /// strategy) and executes. With no forced strategy the cost-based
  /// StrategyPlanner chooses — in static *and* dynamic mode — the
  /// cheapest registered strategy whose predicted quality meets
  /// request.options.quality_target, from live statistics and storage
  /// signals (codec, tombstones, component count, fragment directory).
  /// Thread-safe.
  Result<SearchResult> Search(const QueryRequest& request) const;

  /// Fans `requests` out across a ThreadPool of `parallelism` workers
  /// (0 = ThreadPool::DefaultParallelism(), clamped to the batch size;
  /// 1 runs inline) and executes each with Search(request). Results keep
  /// request order and are bit-identical to sequential execution — all
  /// shared state is read-only or build-once (the sparse cache), and
  /// per-query scoring state is thread-private. Returns the first
  /// per-query error if any request fails.
  Result<BatchSearchResult> SearchBatch(
      const std::vector<QueryRequest>& requests, size_t parallelism = 0) const;

  /// Execute over the unified request: same planning as Search (forced
  /// when request.options.strategy is set, cost-based otherwise), but
  /// returns just the TopNResult. Thread-safe.
  Result<TopNResult> Execute(const QueryRequest& request) const;

  /// \deprecated Legacy shim over Search(QueryRequest); see
  /// SearchOptions::ToQueryOptions for the mapping.
  Result<SearchResult> Search(const Query& query,
                              const SearchOptions& options) const;

  /// \deprecated Legacy shim over SearchBatch(std::vector<QueryRequest>):
  /// every query gets the same options.
  Result<BatchSearchResult> SearchBatch(const std::vector<Query>& queries,
                                        const SearchOptions& options,
                                        size_t parallelism = 0) const;

  /// Executes a specific strategy directly, bypassing the planner (bench
  /// / harness path: no validation beyond the registry's own, so it can
  /// drive any strategy over any backend). `switch_threshold` is a common
  /// hint consulted by the fragment strategies only; every other strategy
  /// ignores it by design (typed per-strategy options go through the
  /// ExecOptions overload, where the registry rejects family mismatches).
  /// Thread-safe.
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, double switch_threshold = 0.0) const;

  /// Registry execution with full per-strategy options (no default: keeps
  /// the legacy overload above unambiguous). Rejects typed options that do
  /// not belong to `strategy`'s family. Thread-safe.
  Result<TopNResult> Execute(PhysicalStrategy strategy, const Query& query,
                             size_t n, const ExecOptions& options) const;

  /// Borrowed exec-layer view of this database's state; hand it to
  /// StrategyRegistry::Global().Execute (benches swap in their own
  /// fragmentation or sparse cache before doing so). In static mode this
  /// is the in-memory file (plus the attached segment snapshot, if any);
  /// in dynamic mode it is the current catalog snapshot. Under sharding
  /// no single PostingSource spans the collection, so the borrowed
  /// context covers shard 0 only (local postings under the global
  /// statistics) — whole-collection queries go through Search/Execute,
  /// which scatter-gather across every shard. Copies of the context may
  /// execute concurrently.
  ExecContext exec_context() const;

  // ---------------------------------------------------- index lifecycle
  // The first mutation seeds the catalog from the generated collection
  // (same doc ids) and flips the database to dynamic serving. Mutations
  // are thread-safe against each other and against in-flight searches.

  /// Adds a document (any order of (term, tf) pairs; terms must be below
  /// the collection's vocabulary). Returns its doc id.
  Result<DocId> AddDocument(const DocTerms& terms);
  /// Bulk ingest under consecutive ids; one snapshot publication total.
  Result<DocId> AddDocuments(const std::vector<DocTerms>& docs);
  /// Tombstones a document: it disappears from results immediately and
  /// statistics drop its exact composition; storage is reclaimed by
  /// Merge.
  Status DeleteDocument(DocId doc);
  /// Upserts a document as delete + add: tombstones `doc` and re-ingests
  /// `terms` under a fresh id (returned), following the insertion-order
  /// id contract of AddDocument. Not atomic: a concurrent query may
  /// observe the document deleted but not yet re-added.
  Result<DocId> UpdateDocument(DocId doc, const DocTerms& terms);
  /// Persists the memtable as an immutable segment (requires
  /// DatabaseConfig::catalog_dir).
  Status Flush();
  /// Compacts segments (default: all into one), dropping tombstones and
  /// compacting doc ids above the merged range. Returns segments merged.
  Result<size_t> Merge(const MergePolicy& policy = {});

  /// Blocks until background maintenance (if configured) has no job in
  /// flight and no trigger pending, then returns the first sticky
  /// background-job error (OK when none, or when maintenance is off).
  /// The "settle" point for tests and orderly shutdown; foreground
  /// writers may of course re-trigger afterwards.
  Status WaitForMaintenance();

  /// True once a mutation has occurred: queries now serve catalog
  /// snapshots.
  bool is_dynamic() const {
    return dynamic_.load(std::memory_order_acquire);
  }
  /// The catalog (nullptr while static, or when sharding is configured —
  /// see sharded_catalog()).
  const IndexCatalog* catalog() const {
    return is_dynamic() ? catalog_.get() : nullptr;
  }
  /// The sharded catalog (nullptr while static or when
  /// DatabaseConfig::num_shards == 1).
  const ShardedCatalog* sharded_catalog() const {
    return is_dynamic() ? sharded_.get() : nullptr;
  }

  /// The last completed query traces (oldest first; capacity 64). Empty
  /// when the observability layer is compiled out. Thread-safe.
  std::vector<obs::QueryTraceData> RecentTraces() const {
    return trace_ring_.Snapshot();
  }

  /// Exact ground truth for quality evaluation (catalog-aware).
  std::vector<ScoredDoc> GroundTruth(const Query& query, size_t n) const;
  /// Dense exact scores for quality evaluation, indexed by doc id
  /// (tombstoned slots score 0).
  std::vector<double> GroundTruthScores(const Query& query) const;

  /// Planner Explain, structured. The report carries the full planning
  /// decision — every candidate with predicted cost, predicted quality
  /// and a reject reason — plus what storage the plan reads (the
  /// in-memory file, an attached segment with its format/codec, or the
  /// catalog snapshot composition), the fragmentation a fragment strategy
  /// would use, and, when the chosen strategy can execute here,
  /// best-effort block counters from actually running the query
  /// (compressed blocks decoded vs skipped undecoded). Explain always
  /// runs the full candidate enumeration, forced strategies included.
  Result<ExplainReport> ExplainSearch(const QueryRequest& request) const;

  /// \deprecated Legacy shim: ExplainSearch(QueryRequest).ToString().
  Result<std::string> ExplainSearch(const Query& query,
                                    const SearchOptions& options) const;

  /// Writes the collection as a compressed segment (MOAIF03 bit-packed,
  /// the writer default; atomic overwrite).
  /// Per-term/per-block max impacts are computed with this
  /// database's scoring model, so max-score pruning over the reopened
  /// segment takes bit-identical decisions to the in-memory path.
  /// Static mode only — a dynamic database persists through Flush.
  Status SaveSegment(const std::string& path,
                     uint32_t block_size = kDefaultSegmentBlockSize) const;

  /// Memory-maps the MOAIF02 segment at `path` and routes every
  /// registered strategy through it (the Fagin and fragment families use
  /// its impact-ordered fragment directory when present). The segment
  /// must describe this database's collection (validated by shape), and
  /// by default its payload is fully decoded once to rule out bit rot
  /// (see AttachSegmentOptions::verify_payload). Safe against in-flight
  /// searches: queries already running keep the storage they started
  /// with (snapshot-per-query). Static mode only.
  Status AttachSegment(const std::string& path,
                       const AttachSegmentOptions& options = {});

  /// Reverts to pure in-memory execution. Safe against in-flight
  /// searches (same snapshot mechanism as AttachSegment).
  void DetachSegment();
  bool has_segment() const { return segment_snapshot() != nullptr; }
  /// Shared snapshot of the attached segment (nullptr when none).
  std::shared_ptr<const SegmentReader> segment() const {
    return segment_snapshot();
  }

  const InvertedFile& file() const { return collection_->inverted_file(); }
  const Collection& collection() const { return *collection_; }
  const Fragmentation& fragmentation() const { return fragmentation_; }
  const ScoringModel& model() const { return *model_; }
  const DatabaseConfig& config() const { return config_; }

 private:
  MmDatabase() = default;

  std::shared_ptr<const SegmentReader> segment_snapshot() const;
  /// Creates and seeds the catalog on first mutation (caller holds
  /// mutation_mutex_).
  Status EnsureDynamicLocked();
  /// Catalog-backed per-query context; the returned view owns model,
  /// stats view and state snapshot (also referenced by the context).
  std::shared_ptr<const CatalogReadView> catalog_view() const;
  /// `fragmentation` may be null: only the fragment strategies read
  /// ExecContext::fragmentation, so the default cursor path passes
  /// nullptr and skips the build + single-entry cache lock entirely.
  ExecContext catalog_context(
      const std::shared_ptr<const CatalogReadView>& view,
      std::shared_ptr<const Fragmentation> fragmentation) const;
  /// The static-mode context (in-memory file + optional attached
  /// segment); exec_context() dispatches here when not dynamic.
  ExecContext static_context() const;
  /// Fragmentation of one catalog snapshot, derived from its live df
  /// under this database's policy. Cached per snapshot version (a single
  /// entry — mutations invalidate by bumping the version).
  std::shared_ptr<const Fragmentation> DynamicFragmentation(
      const CatalogState& state) const;
  /// The generalized form both serving modes share: `df` is the
  /// snapshot's live document frequencies (single-catalog state or
  /// sharded global aggregate), `version` its cache key.
  std::shared_ptr<const Fragmentation> DynamicFragmentation(
      const std::vector<uint32_t>& df, uint64_t version) const;
  /// Storage signals of one catalog snapshot for the planner, digested
  /// from its composition. Cached per snapshot version (single entry,
  /// like DynamicFragmentation — Composition() walks all components).
  StrategyCostInputs DynamicStorageInputs(const CatalogState& state) const;
  /// Storage signals for static serving: neutral in-memory defaults, or
  /// the attached segment's codec / fragment-directory signals.
  StrategyCostInputs StaticStorageInputs(const SegmentReader* segment) const;
  /// The one implementation behind Search / SearchBatch / Execute /
  /// ExplainSearch: snapshots storage once, plans, and executes. A forced
  /// strategy takes the PlanForced fast path (no enumeration). With
  /// `explain` true the planner always enumerates the full candidate
  /// table into *decision_out (forced requests included) and execution is
  /// skipped — ExplainSearch reports block usage separately, best effort.
  Result<SearchResult> RunQuery(const QueryRequest& request, bool explain,
                                PlanDecision* decision_out) const;
  /// Payload of the ExplainReport `storage:` field (what the plan reads).
  std::string DescribeStorage() const;
  /// Records per-query metrics and pushes the trace into the ring.
  /// Pass-through for errors and explain-only runs.
  Result<SearchResult> FinishQuery(Result<SearchResult> result,
                                   bool explain) const;
  /// Fills the ExplainReport block/shard counters and stage trace by
  /// running the query with `strategy` (best effort; returns false when
  /// execution fails).
  bool TracedExecution(PhysicalStrategy strategy, const Query& query, size_t n,
                       double switch_threshold, ExplainReport* report) const;

  DatabaseConfig config_;
  std::unique_ptr<Collection> collection_;
  Fragmentation fragmentation_;
  std::unique_ptr<ScoringModel> model_;
  std::unique_ptr<CardinalityEstimator> estimator_;

  /// Optional mmap-backed posting storage attached by AttachSegment
  /// (static mode). Guarded by snapshot_mutex_ for pointer load/store;
  /// queries copy the shared_ptr once and keep it for their lifetime.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const SegmentReader> segment_;
  std::string segment_path_;  ///< for Explain output; guarded like segment_

  /// Index lifecycle (dynamic mode). catalog_ is created once under
  /// mutation_mutex_ and never replaced; dynamic_ flips (release) after
  /// it is fully seeded, so readers seeing true (acquire) see a complete
  /// catalog.
  std::mutex mutation_mutex_;
  std::unique_ptr<IndexCatalog> catalog_;
  /// The sharded spine when DatabaseConfig::num_shards > 1 (catalog_
  /// stays null then); created/recovered and published exactly like
  /// catalog_.
  std::unique_ptr<ShardedCatalog> sharded_;
  /// One maintenance loop per catalog (one entry single-catalog, one per
  /// shard under sharding) when DatabaseConfig::background_maintenance is
  /// on. Declared after catalog_/sharded_ so destruction detaches and
  /// drains every loop before its catalog dies.
  std::vector<std::unique_ptr<BackgroundMaintenance>> maintenance_;
  std::atomic<bool> dynamic_{false};

  /// Lazily filled by sparse-probe executions; mutable because filling the
  /// cache is not an observable mutation of the database (build-once,
  /// internally locked — the one piece of shared state Search may write).
  /// Static mode only: catalog snapshots carry their own snapshot-scoped
  /// cache (stale-proof across mutations).
  mutable SparseIndexCache sparse_cache_;

  /// Single-entry cache of DynamicFragmentation, keyed by snapshot
  /// version. shared_ptr so in-flight queries keep their fragmentation
  /// alive (bundled into ExecContext::postings_owner) while mutations
  /// replace the cache entry.
  mutable std::mutex dyn_frag_mutex_;
  mutable uint64_t dyn_frag_version_ = 0;
  mutable std::shared_ptr<const Fragmentation> dyn_frag_;

  /// Single-entry cache of DynamicStorageInputs, keyed by snapshot
  /// version (value type: storage signals are a handful of doubles,
  /// copied out under the lock).
  mutable std::mutex dyn_storage_mutex_;
  mutable uint64_t dyn_storage_version_ = 0;
  mutable bool dyn_storage_valid_ = false;
  mutable StrategyCostInputs dyn_storage_;

  /// Last K completed query traces (mutable: Search is const; the ring is
  /// engine bookkeeping, not database state). Never written when the
  /// observability layer is compiled out.
  mutable obs::TraceRing trace_ring_{64};
};

}  // namespace moa

#endif  // MOA_ENGINE_DATABASE_H_
