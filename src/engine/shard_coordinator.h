// ShardCoordinator: bound-aware scatter-gather top-N over a ShardedSnapshot.
//
// The sharded analogue of the engine's plan-and-run path. For one query it
//
//   1. computes each shard's aggregate upper bound — the sum of the query
//      terms' per-shard max impacts from the snapshot's bound cache — and
//      orders shards by descending bound (ties to the lower index);
//   2. plans per shard (each shard gets its own CardinalityEstimator over
//      the shard's *local* df and its own storage-signal inputs, so a
//      memtable-heavy shard can pick a different strategy than a merged
//      one) or applies the forced strategy;
//   3. visits shards in bound order in waves of `parallelism` on the
//      process-wide ThreadPool, merging each wave's per-shard top-N heaps
//      into the running global top-N (local ids mapped to global);
//   4. before each wave, skips every remaining shard whose bound is
//      *strictly* below the current global n-th score — such a shard
//      cannot contribute (a bound equal to the n-th could still win the
//      ascending-doc-id tie-break, so equality visits). Because shards
//      are visited in descending bound order, skipping is a suffix:
//      sequential visiting (parallelism 1) maximizes skips, wider waves
//      trade skip opportunities for latency;
//   5. seeds later shards' max-score evaluations with the running global
//      n-th score (MaxScoreOptions::initial_threshold + strict — the
//      distributed max-score refinement), so even a visited shard prunes
//      against what earlier shards already established.
//
// Work accounting: skipped shards tick CostCounters::shards_skipped and
// shard_postings_skipped (the skipped shards' local postings for the
// query terms — exactly the work a single catalog would have streamed);
// visited shards tick shards_visited. Per-shard execution costs are
// summed into the merged result's counters whether a shard ran inline or
// on a pool thread. The scatter/gather phases trace as
// kStageShardScatter / kStageShardGather on the engine thread.
//
// Exactness: for safe strategies whose reported scores are full
// deterministic sums (everything except fagin_nra's partial lower
// bounds), the merged result is bit-identical to single-catalog
// execution: per-shard scoring reads the snapshot's global statistics,
// term order follows global df, and the merge uses the library's
// (score desc, doc asc) order over mapped global ids.
#ifndef MOA_ENGINE_SHARD_COORDINATOR_H_
#define MOA_ENGINE_SHARD_COORDINATOR_H_

#include <memory>

#include "engine/database.h"
#include "storage/catalog/sharded_catalog.h"

namespace moa {

class ShardCoordinator {
 public:
  struct Options {
    /// Shards visited concurrently per wave. 0 = auto:
    /// min(num_shards, ThreadPool::DefaultParallelism()).
    size_t parallelism = 0;
    /// Fragmentation built from the snapshot's *global* df (term
    /// classification identical to a single catalog); required only when
    /// a fragment strategy can run, exactly like ExecContext.
    const Fragmentation* fragmentation = nullptr;
    /// When false, disables the bound-based shard skip and the n-th-score
    /// threshold seeding — every shard runs the full unseeded execution.
    /// The naive scatter-gather baseline for benchmarks and debugging;
    /// results are identical (the pruning is lossless), only work changes.
    bool bound_pruning = true;
  };

  /// Planner-driven scatter-gather (the sharded PlanAndRun): plans per
  /// shard, then executes bound-ordered with skipping and threshold
  /// seeding. With `explain` set, stops after planning; `decision_out`
  /// (optional) receives the full decision of the highest-bound shard.
  /// The result's estimate sums the per-shard predictions; its
  /// predicted_quality is the minimum across shards.
  static Result<SearchResult> Run(
      const std::shared_ptr<const ShardedSnapshot>& snapshot,
      const QueryRequest& request, bool explain, bool trace,
      PlanDecision* decision_out, const Options& options);

  /// Forced-strategy scatter-gather with no planner in the loop (the
  /// sharded MmDatabase::Execute): runs `strategy` on every visited
  /// shard with `exec_options` (seeded per shard where applicable).
  static Result<TopNResult> Execute(
      const std::shared_ptr<const ShardedSnapshot>& snapshot,
      PhysicalStrategy strategy, const Query& query, size_t n,
      const ExecOptions& exec_options, const Options& options);
};

}  // namespace moa

#endif  // MOA_ENGINE_SHARD_COORDINATOR_H_
