#include "engine/hybrid.h"

#include <algorithm>

#include "common/rng.h"
#include "ir/exact_eval.h"

namespace moa {
namespace {

std::vector<ScoredDoc> SelectTop(std::vector<ScoredDoc> docs, size_t n) {
  const size_t k = std::min(n, docs.size());
  std::partial_sort(docs.begin(), docs.begin() + k, docs.end(),
                    [](const ScoredDoc& a, const ScoredDoc& b) {
                      CostTicker::TickCompare();
                      return ScoredDocLess(a, b);
                    });
  docs.resize(k);
  return docs;
}

TopNResult FilterFirst(const InvertedFile& file, const ScoringModel& model,
                       const Query& query,
                       const std::vector<double>& attribute,
                       const AttributePredicate& predicate, size_t n) {
  TopNResult result;
  CostScope scope;
  // Predicate scan: one sequential read + compare per document.
  std::vector<bool> allowed(attribute.size());
  for (size_t d = 0; d < attribute.size(); ++d) {
    CostTicker::TickSeq();
    CostTicker::TickCompare();
    allowed[d] = predicate.Matches(attribute[d]);
  }
  std::vector<double> acc = AccumulateScores(file, model, query);
  std::vector<ScoredDoc> docs;
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0 && allowed[d]) docs.push_back(ScoredDoc{d, acc[d]});
  }
  result.stats.candidates = static_cast<int64_t>(docs.size());
  result.items = SelectTop(std::move(docs), n);
  result.stats.cost = scope.Snapshot();
  return result;
}

TopNResult RankFirst(const InvertedFile& file, const ScoringModel& model,
                     const Query& query,
                     const std::vector<double>& attribute,
                     const AttributePredicate& predicate, size_t n,
                     double overfetch) {
  TopNResult result;
  CostScope scope;
  std::vector<double> acc = AccumulateScores(file, model, query);
  std::vector<ScoredDoc> ranking;
  for (DocId d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0) ranking.push_back(ScoredDoc{d, acc[d]});
  }
  result.stats.candidates = static_cast<int64_t>(ranking.size());

  // Probe the attribute only for the ranked prefix; double on underflow.
  // Only the prefix is ever sorted (bounded sort-stop, not a full sort).
  size_t fetch = std::max<size_t>(1, static_cast<size_t>(
                                         overfetch * static_cast<double>(n)));
  for (;;) {
    const size_t limit = std::min(fetch, ranking.size());
    std::partial_sort(ranking.begin(), ranking.begin() + limit, ranking.end(),
                      [](const ScoredDoc& a, const ScoredDoc& b) {
                        CostTicker::TickCompare();
                        return ScoredDocLess(a, b);
                      });
    std::vector<ScoredDoc> qualifying;
    for (size_t i = 0; i < limit; ++i) {
      CostTicker::TickRandom();  // point attribute lookup
      CostTicker::TickCompare();
      if (predicate.Matches(attribute[ranking[i].doc])) {
        qualifying.push_back(ranking[i]);
        if (qualifying.size() == n) break;
      }
    }
    if (qualifying.size() >= n || limit >= ranking.size()) {
      result.stats.stopped_early = limit < ranking.size();
      result.items = std::move(qualifying);
      break;
    }
    ++result.stats.restarts;
    fetch *= 2;
  }
  result.stats.cost = scope.Snapshot();
  return result;
}

}  // namespace

HybridPlan ChooseHybridPlan(const std::vector<double>& attribute,
                            const AttributePredicate& predicate,
                            const HybridOptions& options) {
  if (options.plan != HybridPlan::kAuto) return options.plan;
  if (attribute.empty()) return HybridPlan::kFilterFirst;
  Rng rng(options.seed);
  const size_t samples = std::min(options.sample_size, attribute.size());
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    CostTicker::TickRandom();
    hits += predicate.Matches(attribute[rng.Uniform(attribute.size())]) ? 1 : 0;
  }
  const double selectivity =
      samples == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(samples);
  return selectivity >= options.selectivity_crossover ? HybridPlan::kRankFirst
                                                      : HybridPlan::kFilterFirst;
}

Result<TopNResult> HybridTopN(const InvertedFile& file,
                              const ScoringModel& model, const Query& query,
                              const std::vector<double>& attribute,
                              const AttributePredicate& predicate, size_t n,
                              const HybridOptions& options) {
  if (attribute.size() != file.num_docs()) {
    return Status::InvalidArgument(
        "attribute column length must equal num_docs");
  }
  if (predicate.hi < predicate.lo) {
    return Status::InvalidArgument("predicate hi < lo");
  }
  if (options.overfetch < 1.0) {
    return Status::InvalidArgument("overfetch must be >= 1");
  }
  const HybridPlan plan = ChooseHybridPlan(attribute, predicate, options);
  if (plan == HybridPlan::kFilterFirst) {
    return FilterFirst(file, model, query, attribute, predicate, n);
  }
  return RankFirst(file, model, query, attribute, predicate, n,
                   options.overfetch);
}

}  // namespace moa
