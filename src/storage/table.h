// Named collection of equal-length columns with a simple schema.
#ifndef MOA_STORAGE_TABLE_H_
#define MOA_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace moa {

/// \brief Schema entry: column name and physical type.
struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// \brief A set-oriented table: equal-length named columns.
///
/// Used by the engine for metadata tables and by examples that join ranked
/// retrieval output with alphanumeric attributes (the paper's "integrated
/// top N queries on several content and alpha numerical types").
class Table {
 public:
  Table() = default;

  /// Adds a column; its length must match existing columns.
  Status AddColumn(std::string name, Column column);

  size_t num_rows() const;
  size_t num_columns() const { return columns_.size(); }

  /// Index of the named column, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  const ColumnSpec& spec(size_t i) const { return specs_[i]; }

  /// Row subset (gather on every column).
  Table Take(const std::vector<uint32_t>& indices) const;

 private:
  std::vector<ColumnSpec> specs_;
  std::vector<Column> columns_;
};

}  // namespace moa

#endif  // MOA_STORAGE_TABLE_H_
