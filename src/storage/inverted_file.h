// In-memory inverted file: the core physical structure for MM/IR retrieval.
//
// Maps every term to its posting list and keeps the collection statistics
// (document frequencies, document lengths) that scoring models need. This is
// the substrate on which the paper's fragmentation (Step 1) operates.
#ifndef MOA_STORAGE_INVERTED_FILE_H_
#define MOA_STORAGE_INVERTED_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/posting.h"

namespace moa {

/// \brief Immutable inverted file over a document collection.
///
/// Build with InvertedFileBuilder. Terms and documents use dense ids.
class InvertedFile {
 public:
  size_t num_terms() const { return lists_.size(); }
  size_t num_docs() const { return doc_lengths_.size(); }
  int64_t num_postings() const { return num_postings_; }

  const PostingList& list(TermId t) const { return lists_[t]; }
  PostingList& mutable_list(TermId t) { return lists_[t]; }

  /// Number of documents containing term t.
  uint32_t DocFrequency(TermId t) const {
    return static_cast<uint32_t>(lists_[t].size());
  }

  /// Token count of document d.
  uint32_t DocLength(DocId d) const { return doc_lengths_[d]; }
  const std::vector<uint32_t>& doc_lengths() const { return doc_lengths_; }

  /// Mean document length over the collection.
  double AverageDocLength() const {
    if (doc_lengths_.empty()) return 0.0;
    return static_cast<double>(total_tokens_) /
           static_cast<double>(doc_lengths_.size());
  }
  int64_t total_tokens() const { return total_tokens_; }

  /// Materializes impact (descending weight) orderings for all terms.
  /// \param weight computes w(t, posting); typically a scoring model bound
  ///        to this file. Weights must be final — rebuilding is allowed.
  void BuildImpactOrders(
      const std::function<double(TermId, const Posting&)>& weight);

 private:
  friend class InvertedFileBuilder;

  std::vector<PostingList> lists_;
  std::vector<uint32_t> doc_lengths_;
  int64_t num_postings_ = 0;
  int64_t total_tokens_ = 0;
};

/// \brief Accumulates (doc, term, tf) triples and produces an InvertedFile.
///
/// Documents must be added in increasing DocId order; term multiplicity
/// within a document is passed as `tf`.
class InvertedFileBuilder {
 public:
  /// \param num_terms vocabulary size (dense TermIds in [0, num_terms)).
  explicit InvertedFileBuilder(size_t num_terms);

  /// Adds one document given its bag of (term, tf) pairs. Pairs may be in
  /// any order; duplicate terms are rejected.
  Status AddDocument(DocId doc, const std::vector<std::pair<TermId, uint32_t>>& terms);

  /// Finishes the build. The builder must not be reused afterwards.
  InvertedFile Build();

 private:
  InvertedFile file_;
  DocId next_doc_ = 0;
};

}  // namespace moa

#endif  // MOA_STORAGE_INVERTED_FILE_H_
