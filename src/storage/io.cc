#include "storage/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace moa {
namespace {

constexpr char kMagic[8] = {'M', 'O', 'A', 'I', 'F', '0', '1', '\0'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t size) {
  if (std::fread(data, 1, size, f) != size) {
    return Status::Internal("short read / truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

}  // namespace

Status WriteInvertedFile(const InvertedFile& file, const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open for write: " + path);

  MOA_RETURN_NOT_OK(WriteBytes(f.get(), kMagic, sizeof(kMagic)));
  MOA_RETURN_NOT_OK(WritePod<uint64_t>(f.get(), file.num_terms()));
  MOA_RETURN_NOT_OK(WritePod<uint64_t>(f.get(), file.num_docs()));
  MOA_RETURN_NOT_OK(
      WritePod<uint64_t>(f.get(), static_cast<uint64_t>(file.total_tokens())));
  if (!file.doc_lengths().empty()) {
    MOA_RETURN_NOT_OK(WriteBytes(f.get(), file.doc_lengths().data(),
                                 file.doc_lengths().size() * sizeof(uint32_t)));
  }
  for (TermId t = 0; t < file.num_terms(); ++t) {
    const PostingList& list = file.list(t);
    MOA_RETURN_NOT_OK(WritePod<uint64_t>(f.get(), list.size()));
    for (size_t i = 0; i < list.size(); ++i) {
      MOA_RETURN_NOT_OK(WritePod<uint32_t>(f.get(), list[i].doc));
      MOA_RETURN_NOT_OK(WritePod<uint32_t>(f.get(), list[i].tf));
    }
  }
  if (std::fflush(f.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<InvertedFile> ReadInvertedFile(const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);

  char magic[8];
  MOA_RETURN_NOT_OK(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a moa inverted file");
  }
  uint64_t num_terms = 0, num_docs = 0, total_tokens = 0;
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &num_terms));
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &num_docs));
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &total_tokens));
  if (num_terms > (1ULL << 32) || num_docs > (1ULL << 32)) {
    return Status::InvalidArgument("implausible header counts");
  }

  std::vector<uint32_t> doc_lengths(num_docs);
  if (num_docs > 0) {
    MOA_RETURN_NOT_OK(ReadBytes(f.get(), doc_lengths.data(),
                                num_docs * sizeof(uint32_t)));
  }

  // Rebuild through the builder so every invariant is revalidated: read the
  // term-major payload into per-doc buckets first.
  std::vector<std::vector<std::pair<TermId, uint32_t>>> per_doc(num_docs);
  uint64_t check_tokens = 0;
  for (TermId t = 0; t < num_terms; ++t) {
    uint64_t df = 0;
    MOA_RETURN_NOT_OK(ReadPod(f.get(), &df));
    if (df > num_docs) {
      return Status::InvalidArgument("df exceeds document count");
    }
    uint32_t prev_doc = 0;
    bool first = true;
    for (uint64_t i = 0; i < df; ++i) {
      uint32_t doc = 0, tf = 0;
      MOA_RETURN_NOT_OK(ReadPod(f.get(), &doc));
      MOA_RETURN_NOT_OK(ReadPod(f.get(), &tf));
      if (doc >= num_docs) return Status::InvalidArgument("doc id out of range");
      if (!first && doc <= prev_doc) {
        return Status::InvalidArgument("posting list not doc-sorted");
      }
      first = false;
      prev_doc = doc;
      per_doc[doc].emplace_back(t, tf);
      check_tokens += tf;
    }
  }
  if (check_tokens != total_tokens) {
    return Status::InvalidArgument("token count mismatch (corrupt file)");
  }

  InvertedFileBuilder builder(num_terms);
  for (DocId d = 0; d < num_docs; ++d) {
    MOA_RETURN_NOT_OK(builder.AddDocument(d, per_doc[d]));
  }
  InvertedFile rebuilt = builder.Build();
  // Cross-check doc lengths against the stored section.
  for (DocId d = 0; d < num_docs; ++d) {
    if (rebuilt.DocLength(d) != doc_lengths[d]) {
      return Status::InvalidArgument("doc length mismatch (corrupt file)");
    }
  }
  return rebuilt;
}

}  // namespace moa
