#include "storage/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "storage/atomic_file.h"

namespace moa {
namespace {

constexpr char kMagic[8] = {'M', 'O', 'A', 'I', 'F', '0', '1', '\0'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  return WriteAllBytes(f, data, size, "inverted file");
}

Status ReadBytes(std::FILE* f, void* data, size_t size) {
  if (std::fread(data, 1, size, f) != size) {
    return Status::Internal("short read / truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

Status WriteBody(const InvertedFile& file, std::FILE* f) {
  MOA_RETURN_NOT_OK(WriteBytes(f, kMagic, sizeof(kMagic)));
  MOA_RETURN_NOT_OK(WritePod<uint64_t>(f, file.num_terms()));
  MOA_RETURN_NOT_OK(WritePod<uint64_t>(f, file.num_docs()));
  MOA_RETURN_NOT_OK(
      WritePod<uint64_t>(f, static_cast<uint64_t>(file.total_tokens())));
  if (!file.doc_lengths().empty()) {
    MOA_RETURN_NOT_OK(WriteBytes(f, file.doc_lengths().data(),
                                 file.doc_lengths().size() * sizeof(uint32_t)));
  }
  for (TermId t = 0; t < file.num_terms(); ++t) {
    const PostingList& list = file.list(t);
    MOA_RETURN_NOT_OK(WritePod<uint64_t>(f, list.size()));
    for (size_t i = 0; i < list.size(); ++i) {
      MOA_RETURN_NOT_OK(WritePod<uint32_t>(f, list[i].doc));
      MOA_RETURN_NOT_OK(WritePod<uint32_t>(f, list[i].tf));
    }
  }
  return Status::OK();
}

/// Byte size of the open file via seek-to-end (restores the position).
/// ftello, not std::ftell: ftell returns long, which is 32-bit on LLP64
/// platforms and would overflow — and so mis-drive the size validation
/// in ReadInvertedFile — for files >= 2 GiB. The rest of the storage
/// layer already assumes POSIX (mmap, fsync), so ftello is always there.
Result<uint64_t> FileSize(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed");
  }
  const off_t size = ::ftello(f);
  if (size < 0) return Status::Internal("tell failed");
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::Internal("seek failed");
  }
  return static_cast<uint64_t>(size);
}

}  // namespace

Status WriteInvertedFile(const InvertedFile& file, const std::string& path) {
  return WriteFileAtomically(
      path, [&file](std::FILE* f) { return WriteBody(file, f); });
}

Result<InvertedFile> ReadInvertedFile(const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  Result<uint64_t> size = FileSize(f.get());
  MOA_RETURN_NOT_OK(size.status());
  // Bytes of payload left behind the read position. Every section size is
  // checked against this *before* allocating or reading, so a corrupt
  // header or df field fails with InvalidArgument instead of bad_alloc.
  uint64_t remaining = size.ValueOrDie();

  char magic[8];
  if (remaining < sizeof(magic) + 3 * sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated header");
  }
  MOA_RETURN_NOT_OK(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a moa inverted file");
  }
  uint64_t num_terms = 0, num_docs = 0, total_tokens = 0;
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &num_terms));
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &num_docs));
  MOA_RETURN_NOT_OK(ReadPod(f.get(), &total_tokens));
  remaining -= sizeof(magic) + 3 * sizeof(uint64_t);
  if (num_terms > (1ULL << 32) || num_docs > (1ULL << 32)) {
    return Status::InvalidArgument("implausible header counts");
  }
  // The doc-length section plus one df field per term must fit in what is
  // actually on disk.
  if (num_docs * sizeof(uint32_t) > remaining ||
      num_terms * sizeof(uint64_t) > remaining - num_docs * sizeof(uint32_t)) {
    return Status::InvalidArgument("header counts exceed file size");
  }

  std::vector<uint32_t> doc_lengths(num_docs);
  if (num_docs > 0) {
    MOA_RETURN_NOT_OK(ReadBytes(f.get(), doc_lengths.data(),
                                num_docs * sizeof(uint32_t)));
    remaining -= num_docs * sizeof(uint32_t);
  }

  // Rebuild through the builder so every invariant is revalidated: read the
  // term-major payload into per-doc buckets first.
  std::vector<std::vector<std::pair<TermId, uint32_t>>> per_doc(num_docs);
  uint64_t check_tokens = 0;
  for (TermId t = 0; t < num_terms; ++t) {
    uint64_t df = 0;
    if (remaining < sizeof(uint64_t)) {
      return Status::InvalidArgument("truncated term section");
    }
    MOA_RETURN_NOT_OK(ReadPod(f.get(), &df));
    remaining -= sizeof(uint64_t);
    if (df > num_docs) {
      return Status::InvalidArgument("df exceeds document count");
    }
    if (df * 2 * sizeof(uint32_t) > remaining) {
      return Status::InvalidArgument("df exceeds file size");
    }
    uint32_t prev_doc = 0;
    bool first = true;
    for (uint64_t i = 0; i < df; ++i) {
      uint32_t doc = 0, tf = 0;
      MOA_RETURN_NOT_OK(ReadPod(f.get(), &doc));
      MOA_RETURN_NOT_OK(ReadPod(f.get(), &tf));
      if (doc >= num_docs) return Status::InvalidArgument("doc id out of range");
      if (!first && doc <= prev_doc) {
        return Status::InvalidArgument("posting list not doc-sorted");
      }
      first = false;
      prev_doc = doc;
      per_doc[doc].emplace_back(t, tf);
      check_tokens += tf;
    }
    remaining -= df * 2 * sizeof(uint32_t);
  }
  if (check_tokens != total_tokens) {
    return Status::InvalidArgument("token count mismatch (corrupt file)");
  }

  InvertedFileBuilder builder(num_terms);
  for (DocId d = 0; d < num_docs; ++d) {
    MOA_RETURN_NOT_OK(builder.AddDocument(d, per_doc[d]));
  }
  InvertedFile rebuilt = builder.Build();
  // Cross-check doc lengths against the stored section.
  for (DocId d = 0; d < num_docs; ++d) {
    if (rebuilt.DocLength(d) != doc_lengths[d]) {
      return Status::InvalidArgument("doc length mismatch (corrupt file)");
    }
  }
  return rebuilt;
}

}  // namespace moa
