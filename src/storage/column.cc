#include "storage/column.h"

#include <algorithm>
#include <numeric>

#include "common/cost_ticker.h"

namespace moa {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
  }
  return "?";
}

Column::Column(ColumnType type) : type_(type) {
  switch (type) {
    case ColumnType::kInt64: data_ = std::vector<int64_t>{}; break;
    case ColumnType::kDouble: data_ = std::vector<double>{}; break;
    case ColumnType::kString: data_ = std::vector<std::string>{}; break;
  }
}

Column Column::FromInt64(std::vector<int64_t> values) {
  Column c(ColumnType::kInt64);
  c.data_ = std::move(values);
  return c;
}
Column Column::FromDouble(std::vector<double> values) {
  Column c(ColumnType::kDouble);
  c.data_ = std::move(values);
  return c;
}
Column Column::FromString(std::vector<std::string> values) {
  Column c(ColumnType::kString);
  c.data_ = std::move(values);
  return c;
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::AppendInt64(int64_t v) {
  std::get<std::vector<int64_t>>(data_).push_back(v);
}
void Column::AppendDouble(double v) {
  std::get<std::vector<double>>(data_).push_back(v);
}
void Column::AppendString(std::string v) {
  std::get<std::vector<std::string>>(data_).push_back(std::move(v));
}

int64_t Column::Int64At(size_t i) const {
  return std::get<std::vector<int64_t>>(data_)[i];
}
double Column::DoubleAt(size_t i) const {
  return std::get<std::vector<double>>(data_)[i];
}
const std::string& Column::StringAt(size_t i) const {
  return std::get<std::vector<std::string>>(data_)[i];
}

const std::vector<int64_t>& Column::int64_data() const {
  return std::get<std::vector<int64_t>>(data_);
}
const std::vector<double>& Column::double_data() const {
  return std::get<std::vector<double>>(data_);
}
const std::vector<std::string>& Column::string_data() const {
  return std::get<std::vector<std::string>>(data_);
}

Result<std::vector<uint32_t>> Column::SelectRange(double lo, double hi) const {
  std::vector<uint32_t> out;
  if (type_ == ColumnType::kInt64) {
    const auto& v = int64_data();
    for (uint32_t i = 0; i < v.size(); ++i) {
      CostTicker::TickSeq();
      const double x = static_cast<double>(v[i]);
      if (x >= lo && x <= hi) out.push_back(i);
    }
    return out;
  }
  if (type_ == ColumnType::kDouble) {
    const auto& v = double_data();
    for (uint32_t i = 0; i < v.size(); ++i) {
      CostTicker::TickSeq();
      if (v[i] >= lo && v[i] <= hi) out.push_back(i);
    }
    return out;
  }
  return Status::InvalidArgument("SelectRange requires a numeric column");
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  switch (type_) {
    case ColumnType::kInt64: {
      auto& dst = std::get<std::vector<int64_t>>(out.data_);
      const auto& src = int64_data();
      dst.reserve(indices.size());
      for (uint32_t i : indices) dst.push_back(src[i]);
      break;
    }
    case ColumnType::kDouble: {
      auto& dst = std::get<std::vector<double>>(out.data_);
      const auto& src = double_data();
      dst.reserve(indices.size());
      for (uint32_t i : indices) dst.push_back(src[i]);
      break;
    }
    case ColumnType::kString: {
      auto& dst = std::get<std::vector<std::string>>(out.data_);
      const auto& src = string_data();
      dst.reserve(indices.size());
      for (uint32_t i : indices) dst.push_back(src[i]);
      break;
    }
  }
  CostTicker::TickRandom(static_cast<int64_t>(indices.size()));
  return out;
}

std::vector<uint32_t> Column::SortPermutation() const {
  std::vector<uint32_t> perm(size());
  std::iota(perm.begin(), perm.end(), 0);
  auto cmp_count = [](auto cmp) {
    return [cmp](uint32_t a, uint32_t b) {
      CostTicker::TickCompare();
      return cmp(a, b);
    };
  };
  switch (type_) {
    case ColumnType::kInt64: {
      const auto& v = int64_data();
      std::stable_sort(perm.begin(), perm.end(),
                       cmp_count([&](uint32_t a, uint32_t b) {
                         return v[a] < v[b];
                       }));
      break;
    }
    case ColumnType::kDouble: {
      const auto& v = double_data();
      std::stable_sort(perm.begin(), perm.end(),
                       cmp_count([&](uint32_t a, uint32_t b) {
                         return v[a] < v[b];
                       }));
      break;
    }
    case ColumnType::kString: {
      const auto& v = string_data();
      std::stable_sort(perm.begin(), perm.end(),
                       cmp_count([&](uint32_t a, uint32_t b) {
                         return v[a] < v[b];
                       }));
      break;
    }
  }
  return perm;
}

}  // namespace moa
