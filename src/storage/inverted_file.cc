#include "storage/inverted_file.h"

#include <algorithm>

namespace moa {

void InvertedFile::BuildImpactOrders(
    const std::function<double(TermId, const Posting&)>& weight) {
  for (TermId t = 0; t < lists_.size(); ++t) {
    auto& list = lists_[t];
    std::vector<double> weights;
    weights.reserve(list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      weights.push_back(weight(t, list[i]));
    }
    list.BuildImpactOrder(weights);
  }
}

InvertedFileBuilder::InvertedFileBuilder(size_t num_terms) {
  file_.lists_.resize(num_terms);
}

Status InvertedFileBuilder::AddDocument(
    DocId doc, const std::vector<std::pair<TermId, uint32_t>>& terms) {
  if (doc != next_doc_) {
    return Status::InvalidArgument("documents must be added in DocId order");
  }
  // Sort by term id so per-term appends stay doc-ordered and duplicates are
  // adjacent.
  std::vector<std::pair<TermId, uint32_t>> sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  uint32_t doc_len = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0 && sorted[i].first == sorted[i - 1].first) {
      return Status::InvalidArgument("duplicate term in document");
    }
    const auto [term, tf] = sorted[i];
    if (term >= file_.lists_.size()) {
      return Status::OutOfRange("term id exceeds vocabulary size");
    }
    if (tf == 0) return Status::InvalidArgument("zero term frequency");
    file_.lists_[term].Append(doc, tf);
    ++file_.num_postings_;
    doc_len += tf;
  }
  file_.doc_lengths_.push_back(doc_len);
  file_.total_tokens_ += doc_len;
  ++next_doc_;
  return Status::OK();
}

InvertedFile InvertedFileBuilder::Build() {
  for (auto& list : file_.lists_) list.Seal();
  return std::move(file_);
}

}  // namespace moa
