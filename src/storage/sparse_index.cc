#include "storage/sparse_index.h"

#include <algorithm>
#include <cassert>

#include "common/cost_ticker.h"

namespace moa {

SparseIndex::SparseIndex(const PostingList* list, uint32_t block_size)
    : list_(list), block_size_(block_size) {
  assert(block_size >= 1);
  const size_t n = list_->size();
  block_starts_.reserve((n + block_size - 1) / block_size);
  for (size_t i = 0; i < n; i += block_size) {
    block_starts_.push_back((*list_)[i].doc);
  }
}

std::optional<uint32_t> SparseIndex::Probe(DocId doc) const {
  if (list_ == nullptr || block_starts_.empty()) return std::nullopt;
  // Directory lookup: one random access (the block directory is small and
  // cache-resident; we charge a single random read for the descent).
  CostTicker::TickRandom();
  auto it = std::upper_bound(block_starts_.begin(), block_starts_.end(), doc);
  if (it == block_starts_.begin()) return std::nullopt;
  const size_t block = static_cast<size_t>(it - block_starts_.begin()) - 1;
  const size_t begin = block * block_size_;
  const size_t end = std::min(begin + block_size_, list_->size());
  // Bounded in-block scan: sequential accesses.
  for (size_t i = begin; i < end; ++i) {
    CostTicker::TickSeq();
    const Posting& p = (*list_)[i];
    if (p.doc == doc) return p.tf;
    if (p.doc > doc) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace moa
