// Posting lists: the physical representation of one term's occurrences.
//
// Each list is stored twice-sorted:
//  - by document id (for merge joins, sparse-index probes, random access)
//  - by descending impact/weight (for Fagin-style sorted access)
// The impact ordering is materialized lazily as a permutation so that
// building a collection stays O(postings log postings) once.
#ifndef MOA_STORAGE_POSTING_H_
#define MOA_STORAGE_POSTING_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace moa {

/// Document identifier, dense from 0.
using DocId = uint32_t;

/// \brief One (document, term-frequency) pair inside a posting list.
struct Posting {
  DocId doc;
  uint32_t tf;

  friend bool operator==(const Posting&, const Posting&) = default;
};

/// \brief One term's postings, sorted by DocId, with an optional
/// impact-ordered view for sorted access by descending weight.
class PostingList {
 public:
  PostingList() = default;

  /// Appends a posting; docs must be appended in strictly increasing order.
  void Append(DocId doc, uint32_t tf);

  /// Finalizes the doc-ordered list (no-op today; kept for future packing).
  void Seal() {}

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }

  const Posting& operator[](size_t i) const { return postings_[i]; }
  const std::vector<Posting>& postings() const { return postings_; }

  /// Binary search by doc id. Ticks a random read on the cost ticker.
  std::optional<uint32_t> FindTf(DocId doc) const;

  /// Builds the impact ordering given per-posting weights (same length as the
  /// list). Ties broken by doc id for determinism.
  void BuildImpactOrder(const std::vector<double>& weights);

  bool has_impact_order() const { return !impact_order_.empty(); }

  /// i-th posting in descending-weight order; requires BuildImpactOrder.
  const Posting& ByImpact(size_t i) const {
    return postings_[impact_order_[i]];
  }
  /// Weight of the i-th posting in impact order.
  double ImpactWeight(size_t i) const { return impact_weights_[i]; }

  /// Maximum weight in the list (0 when empty); requires BuildImpactOrder.
  double max_weight() const {
    return impact_weights_.empty() ? 0.0 : impact_weights_.front();
  }

 private:
  std::vector<Posting> postings_;          // sorted by doc
  std::vector<uint32_t> impact_order_;     // permutation: impact rank -> index
  std::vector<double> impact_weights_;     // weight at impact rank i
};

}  // namespace moa

#endif  // MOA_STORAGE_POSTING_H_
