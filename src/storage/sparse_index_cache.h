// Thread-safe build-once / read-many cache of per-term sparse indexes.
//
// The sparse-probe strategy (topn/fragment_topn.h) builds a SparseIndex
// over each large-fragment posting list it probes. Those indexes only
// depend on the (immutable) posting list and the block size, so one cache
// can serve every concurrent query: the first query to touch a
// (term, block size) pays the build under an exclusive lock, everyone
// after reads under a shared lock. This is what makes the engine's
// lazily-filled cache safe to share across SearchBatch worker threads.
#ifndef MOA_STORAGE_SPARSE_INDEX_CACHE_H_
#define MOA_STORAGE_SPARSE_INDEX_CACHE_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "storage/dictionary.h"
#include "storage/posting.h"
#include "storage/sparse_index.h"

namespace moa {

/// \brief Shared-mutex protected map (TermId, block size) -> SparseIndex.
///
/// Locking discipline: lookups take a shared lock; a miss upgrades to an
/// exclusive lock, re-checks, and builds at most once. Returned pointers
/// stay valid for the cache's lifetime (node-based map, no erasure except
/// Clear) — callers must not hold them across Clear().
///
/// Keying by (term, block size) keeps executions deterministic regardless
/// of cache warmth: a probe with a different block size never sees an
/// index built for another configuration (block-size sweeps and the
/// engine's shared cache can coexist).
class SparseIndexCache {
 public:
  SparseIndexCache() = default;

  SparseIndexCache(const SparseIndexCache&) = delete;
  SparseIndexCache& operator=(const SparseIndexCache&) = delete;

  /// The cached index for (term, block_size), building it from `list` on
  /// first use. Thread-safe.
  const SparseIndex* GetOrBuild(TermId term, const PostingList& list,
                                uint32_t block_size);

  /// The cached index for (term, block_size), or nullptr if absent.
  /// Thread-safe.
  const SparseIndex* Find(TermId term, uint32_t block_size) const;

  size_t size() const;

  /// Drops every cached index. Not safe to call concurrently with readers
  /// still holding pointers from GetOrBuild/Find.
  void Clear();

 private:
  static uint64_t Key(TermId term, uint32_t block_size) {
    return (static_cast<uint64_t>(term) << 32) | block_size;
  }

  mutable std::shared_mutex mutex_;
  std::unordered_map<uint64_t, SparseIndex> indexes_;
};

}  // namespace moa

#endif  // MOA_STORAGE_SPARSE_INDEX_CACHE_H_
