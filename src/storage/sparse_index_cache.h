// Thread-safe build-once / read-many cache of per-term sparse indexes.
//
// The sparse-probe strategy (topn/fragment_topn.h) builds a SparseIndex
// over each large-fragment posting list it probes. Those indexes only
// depend on the (immutable) posting list and the block size, so one cache
// can serve every concurrent query: the first query to touch a
// (term, block size) pays the build under an exclusive lock, everyone
// after reads under a shared lock. This is what makes the engine's
// lazily-filled cache safe to share across SearchBatch worker threads.
#ifndef MOA_STORAGE_SPARSE_INDEX_CACHE_H_
#define MOA_STORAGE_SPARSE_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "storage/dictionary.h"
#include "storage/posting.h"
#include "storage/segment/posting_cursor.h"
#include "storage/sparse_index.h"

namespace moa {

/// \brief Shared-mutex protected map (TermId, block size) -> SparseIndex.
///
/// Locking discipline: lookups take a shared lock; a miss upgrades to an
/// exclusive lock, re-checks, and builds at most once. Returned pointers
/// stay valid for the cache's lifetime (node-based map, no erasure except
/// Clear) — callers must not hold them across Clear().
///
/// Keying by (term, block size) keeps executions deterministic regardless
/// of cache warmth: a probe with a different block size never sees an
/// index built for another configuration (block-size sweeps and the
/// engine's shared cache can coexist).
class SparseIndexCache {
 public:
  SparseIndexCache() = default;

  SparseIndexCache(const SparseIndexCache&) = delete;
  SparseIndexCache& operator=(const SparseIndexCache&) = delete;

  /// The cached index for (term, block_size), building it from `list` on
  /// first use. The index borrows `list`, which must outlive the cache
  /// entry. Thread-safe.
  const SparseIndex* GetOrBuild(TermId term, const PostingList& list,
                                uint32_t block_size);

  /// Cursor-backed variant: on first use, materializes the term's
  /// postings from `source` (one sequential decode for compressed
  /// storage) into a cache-owned list and indexes that. Later probes are
  /// pure in-memory — the cache doubles as a decode-once store for the
  /// probe-heavy terms. Thread-safe; interchangeable with the borrowing
  /// overload for the same (term, block size) as long as both describe
  /// the same postings.
  const SparseIndex* GetOrBuild(TermId term, const PostingSource& source,
                                uint32_t block_size);

  /// The cached index for (term, block_size), or nullptr if absent.
  /// Thread-safe.
  const SparseIndex* Find(TermId term, uint32_t block_size) const;

  size_t size() const;

  /// Drops every cached index. Not safe to call concurrently with readers
  /// still holding pointers from GetOrBuild/Find.
  void Clear();

 private:
  /// One cached index, optionally owning the materialized postings it
  /// indexes (cursor-built entries; borrowing entries leave `owned`
  /// null). unique_ptr keeps the list address stable across map growth —
  /// SparseIndex holds a pointer to it.
  struct Entry {
    std::unique_ptr<PostingList> owned;
    SparseIndex index;
  };

  static uint64_t Key(TermId term, uint32_t block_size) {
    return (static_cast<uint64_t>(term) << 32) | block_size;
  }

  const SparseIndex* Insert(uint64_t key, Entry entry);

  mutable std::shared_mutex mutex_;
  std::unordered_map<uint64_t, Entry> indexes_;
};

}  // namespace moa

#endif  // MOA_STORAGE_SPARSE_INDEX_CACHE_H_
