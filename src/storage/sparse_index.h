// Non-dense (sparse) index over a doc-ordered posting list (paper Step 1).
//
// "I plan to introduce a non-dense index in the system to speed up
//  processing the large fragment." — the index stores every block_size-th
// document id, so probing for a candidate document costs one random block
// lookup plus a bounded scan, instead of decompressing/scanning the whole
// (very long) frequent-term posting list.
#ifndef MOA_STORAGE_SPARSE_INDEX_H_
#define MOA_STORAGE_SPARSE_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/posting.h"

namespace moa {

/// \brief Sparse (non-dense) index over one PostingList.
///
/// Stores the first doc id of every block of `block_size` postings. A probe
/// binary-searches the block directory (random access), then scans at most
/// `block_size` postings (sequential access). Cost-ticker accounting makes
/// the saving measurable: probe cost is O(log(#blocks)) + O(block_size)
/// versus O(list length) for an unindexed scan.
class SparseIndex {
 public:
  SparseIndex() = default;

  /// Builds the block directory. `block_size` must be >= 1.
  SparseIndex(const PostingList* list, uint32_t block_size);

  /// Term frequency of `doc`, or nullopt if the document is absent.
  std::optional<uint32_t> Probe(DocId doc) const;

  uint32_t block_size() const { return block_size_; }
  size_t num_blocks() const { return block_starts_.size(); }

  /// Directory memory footprint in entries (the "non-dense" saving vs a
  /// dense per-posting index).
  size_t directory_entries() const { return block_starts_.size(); }

 private:
  const PostingList* list_ = nullptr;
  uint32_t block_size_ = 0;
  std::vector<DocId> block_starts_;  // first doc id of each block
};

}  // namespace moa

#endif  // MOA_STORAGE_SPARSE_INDEX_H_
