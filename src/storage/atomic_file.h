// Crash-safe file replacement, shared by every on-disk format writer.
//
// The bytes are produced into `path + ".tmp"`, flushed and fsync'ed, and
// renamed into place; the destination therefore either keeps its old
// content or atomically becomes the complete new file — a crash (process
// or power) mid-write never leaves a half-written file at `path`. On any
// error the temp file is removed and the destination is untouched.
#ifndef MOA_STORAGE_ATOMIC_FILE_H_
#define MOA_STORAGE_ATOMIC_FILE_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"

namespace moa {

/// Runs `body` against a fresh temp file and atomically publishes the
/// result at `path`. `body` must leave all bytes written (no need to
/// flush); it may return an error to abort, which unlinks the temp file.
Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(std::FILE*)>& body);

/// fwrite wrapper shared by the on-disk format writers: writes all
/// `size` bytes or returns an Internal error tagged with `context`
/// (e.g. "segment: short write").
Status WriteAllBytes(std::FILE* f, const void* data, size_t size,
                     const char* context);

}  // namespace moa

#endif  // MOA_STORAGE_ATOMIC_FILE_H_
