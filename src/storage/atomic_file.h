// Crash-safe file replacement, shared by every on-disk format writer.
//
// The bytes are produced into `path + ".tmp"`, flushed and fsync'ed, and
// renamed into place; the destination therefore either keeps its old
// content or atomically becomes the complete new file — a crash (process
// or power) mid-write never leaves a half-written file at `path`. On any
// error the temp file is removed and the destination is untouched.
#ifndef MOA_STORAGE_ATOMIC_FILE_H_
#define MOA_STORAGE_ATOMIC_FILE_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"

namespace moa {

/// Runs `body` against a fresh temp file and atomically publishes the
/// result at `path`.  `body` must leave all bytes written (no need to
/// flush); it may return an error to abort, which unlinks the temp file.
///
/// Persisting the *rename* needs a directory fsync.  With
/// `strict_dir_sync == false` a failed directory sync is logged and
/// counted (`moa_fsync_failure_total`) but not returned: the data-loss
/// window (rename not yet journaled) cannot expose a half-written file —
/// the old content simply survives.  Callers that promise durability to
/// *their* callers once this function returns (the WAL spine, manifest
/// publication under WAL) pass `strict_dir_sync == true` and get the
/// error back.
Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(std::FILE*)>& body,
                           bool strict_dir_sync = false);

/// fsyncs the directory `dir` so that entry creations/renames/unlinks
/// inside it are journaled.  Every failure (open or fsync) is logged via
/// LogMessage, bumps `moa_fsync_failure_total`, and is returned; callers
/// without a durability contract may ignore the status.
Status SyncDir(const std::string& dir);

/// SyncDir on the directory containing `path`.
Status SyncParentDir(const std::string& path);

/// fwrite wrapper shared by the on-disk format writers: writes all
/// `size` bytes or returns an Internal error tagged with `context`
/// (e.g. "segment: short write").
Status WriteAllBytes(std::FILE* f, const void* data, size_t size,
                     const char* context);

}  // namespace moa

#endif  // MOA_STORAGE_ATOMIC_FILE_H_
