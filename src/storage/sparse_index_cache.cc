#include "storage/sparse_index_cache.h"

#include <mutex>
#include <utility>

namespace moa {

const SparseIndex* SparseIndexCache::Insert(uint64_t key, Entry entry) {
  // Build happened outside the lock so cold-cache builds of different
  // terms run concurrently and readers of warm terms are not stalled; the
  // loser of a rare duplicate build discards its copy at the re-check.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    it = indexes_.emplace(key, std::move(entry)).first;
  }
  return &it->second.index;
}

const SparseIndex* SparseIndexCache::GetOrBuild(TermId term,
                                                const PostingList& list,
                                                uint32_t block_size) {
  const uint64_t key = Key(term, block_size);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) return &it->second.index;
  }
  Entry entry;
  entry.index = SparseIndex(&list, block_size);
  return Insert(key, std::move(entry));
}

const SparseIndex* SparseIndexCache::GetOrBuild(TermId term,
                                                const PostingSource& source,
                                                uint32_t block_size) {
  const uint64_t key = Key(term, block_size);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) return &it->second.index;
  }
  Entry entry;
  entry.owned = std::make_unique<PostingList>();
  for (auto cursor = source.OpenCursor(term); !cursor->at_end();
       cursor->next()) {
    entry.owned->Append(cursor->doc(), cursor->tf());
  }
  entry.owned->Seal();
  entry.index = SparseIndex(entry.owned.get(), block_size);
  return Insert(key, std::move(entry));
}

const SparseIndex* SparseIndexCache::Find(TermId term,
                                          uint32_t block_size) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(Key(term, block_size));
  return it == indexes_.end() ? nullptr : &it->second.index;
}

size_t SparseIndexCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return indexes_.size();
}

void SparseIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  indexes_.clear();
}

}  // namespace moa
