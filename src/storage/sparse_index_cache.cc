#include "storage/sparse_index_cache.h"

#include <mutex>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace moa {
namespace {

// Per-term-per-query events (never per posting): one registry probe plus a
// sharded counter add on the hit path, a wall-clock observation per build.
// Registry handles are process-stable, so they are resolved once — a
// warm-cache probe (the per-query hot case) costs one sharded add, not
// a string-keyed map lookup.
void RecordHit() {
  if (obs::kEnabled) {
    static obs::Counter* const hits =
        obs::MetricsRegistry::Global().GetCounter(
            "moa_sparse_cache_hits_total");
    hits->Add();
  }
}

void RecordBuild(double build_millis) {
  if (obs::kEnabled) {
    static obs::Counter* const misses =
        obs::MetricsRegistry::Global().GetCounter(
            "moa_sparse_cache_misses_total");
    static obs::HistogramMetric* const build_ms =
        obs::MetricsRegistry::Global().GetHistogram(
            "moa_sparse_cache_build_ms");
    misses->Add();
    build_ms->Observe(build_millis);
  }
}

}  // namespace

const SparseIndex* SparseIndexCache::Insert(uint64_t key, Entry entry) {
  // Build happened outside the lock so cold-cache builds of different
  // terms run concurrently and readers of warm terms are not stalled; the
  // loser of a rare duplicate build discards its copy at the re-check.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    it = indexes_.emplace(key, std::move(entry)).first;
  }
  return &it->second.index;
}

const SparseIndex* SparseIndexCache::GetOrBuild(TermId term,
                                                const PostingList& list,
                                                uint32_t block_size) {
  const uint64_t key = Key(term, block_size);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      RecordHit();
      return &it->second.index;
    }
  }
  WallTimer build_timer;
  Entry entry;
  entry.index = SparseIndex(&list, block_size);
  RecordBuild(build_timer.ElapsedMillis());
  return Insert(key, std::move(entry));
}

const SparseIndex* SparseIndexCache::GetOrBuild(TermId term,
                                                const PostingSource& source,
                                                uint32_t block_size) {
  const uint64_t key = Key(term, block_size);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) {
      RecordHit();
      return &it->second.index;
    }
  }
  WallTimer build_timer;
  Entry entry;
  entry.owned = std::make_unique<PostingList>();
  for (auto cursor = source.OpenCursor(term); !cursor->at_end();
       cursor->next()) {
    entry.owned->Append(cursor->doc(), cursor->tf());
  }
  entry.owned->Seal();
  entry.index = SparseIndex(entry.owned.get(), block_size);
  RecordBuild(build_timer.ElapsedMillis());
  return Insert(key, std::move(entry));
}

const SparseIndex* SparseIndexCache::Find(TermId term,
                                          uint32_t block_size) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(Key(term, block_size));
  return it == indexes_.end() ? nullptr : &it->second.index;
}

size_t SparseIndexCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return indexes_.size();
}

void SparseIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  indexes_.clear();
}

}  // namespace moa
