#include "storage/sparse_index_cache.h"

#include <mutex>

namespace moa {

const SparseIndex* SparseIndexCache::GetOrBuild(TermId term,
                                                const PostingList& list,
                                                uint32_t block_size) {
  const uint64_t key = Key(term, block_size);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(key);
    if (it != indexes_.end()) return &it->second;
  }
  // Build outside the lock so cold-cache builds of different terms run
  // concurrently and readers of warm terms are not stalled; the loser of
  // a rare duplicate build discards its copy at the emplace re-check.
  SparseIndex built(&list, block_size);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    it = indexes_.emplace(key, std::move(built)).first;
  }
  return &it->second;
}

const SparseIndex* SparseIndexCache::Find(TermId term,
                                          uint32_t block_size) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(Key(term, block_size));
  return it == indexes_.end() ? nullptr : &it->second;
}

size_t SparseIndexCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return indexes_.size();
}

void SparseIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  indexes_.clear();
}

}  // namespace moa
