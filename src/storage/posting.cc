#include "storage/posting.h"

#include <algorithm>
#include <cassert>

#include "common/cost_ticker.h"

namespace moa {

void PostingList::Append(DocId doc, uint32_t tf) {
  assert(postings_.empty() || postings_.back().doc < doc);
  postings_.push_back(Posting{doc, tf});
}

std::optional<uint32_t> PostingList::FindTf(DocId doc) const {
  CostTicker::TickRandom();
  auto it = std::lower_bound(
      postings_.begin(), postings_.end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it == postings_.end() || it->doc != doc) return std::nullopt;
  return it->tf;
}

void PostingList::BuildImpactOrder(const std::vector<double>& weights) {
  assert(weights.size() == postings_.size());
  impact_order_.resize(postings_.size());
  for (uint32_t i = 0; i < impact_order_.size(); ++i) impact_order_[i] = i;
  std::sort(impact_order_.begin(), impact_order_.end(),
            [&](uint32_t a, uint32_t b) {
              if (weights[a] != weights[b]) return weights[a] > weights[b];
              return postings_[a].doc < postings_[b].doc;
            });
  impact_weights_.resize(postings_.size());
  for (size_t i = 0; i < impact_order_.size(); ++i) {
    impact_weights_[i] = weights[impact_order_[i]];
  }
}

}  // namespace moa
