// Binary persistence for inverted files: save once, reopen instantly.
//
// A downstream user generating a large synthetic collection (or importing
// a real one) should not pay the generation cost per process. The format
// is a single little-endian file:
//
//   magic "MOAIF01\0" | u64 num_terms | u64 num_docs | u64 total_tokens
//   | u32 doc_length[num_docs]
//   | per term: u64 df | (u32 doc, u32 tf)[df]
//
// Impact orders are *not* stored; they are cheap to rebuild and depend on
// the scoring model anyway.
#ifndef MOA_STORAGE_IO_H_
#define MOA_STORAGE_IO_H_

#include <string>

#include "common/status.h"
#include "storage/inverted_file.h"

namespace moa {

/// Writes `file` to `path` (overwrites). The bytes go to `path + ".tmp"`
/// first and are renamed into place atomically, so a crash or I/O error
/// mid-write never leaves a half-written index at `path`. Returns an
/// error on I/O failure (and cleans the temp file up).
Status WriteInvertedFile(const InvertedFile& file, const std::string& path);

/// Reads an inverted file written by WriteInvertedFile. Validates the
/// magic, every section size against the actual file length (corrupt
/// counts fail cleanly instead of triggering huge allocations), and the
/// doc-order invariant of every list.
Result<InvertedFile> ReadInvertedFile(const std::string& path);

}  // namespace moa

#endif  // MOA_STORAGE_IO_H_
