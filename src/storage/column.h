// Typed in-memory columns: the set-oriented physical layer under the algebra.
//
// Moa flattens structured objects onto bulk binary relations (BWK98); the
// column here plays the role of MonetDB's BAT tail: a contiguous typed
// vector with bulk operators that tick the cost model.
#ifndef MOA_STORAGE_COLUMN_H_
#define MOA_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace moa {

/// Physical type of a column.
enum class ColumnType { kInt64, kDouble, kString };

const char* ColumnTypeName(ColumnType t);

/// \brief A typed, contiguous vector of values.
///
/// The value storage is a variant over the three supported physical types;
/// all bulk operations are type-checked at the API boundary and then run on
/// the concrete vector without per-element dispatch.
class Column {
 public:
  explicit Column(ColumnType type);

  static Column FromInt64(std::vector<int64_t> values);
  static Column FromDouble(std::vector<double> values);
  static Column FromString(std::vector<std::string> values);

  ColumnType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  int64_t Int64At(size_t i) const;
  double DoubleAt(size_t i) const;
  const std::string& StringAt(size_t i) const;

  const std::vector<int64_t>& int64_data() const;
  const std::vector<double>& double_data() const;
  const std::vector<std::string>& string_data() const;

  /// Bulk range select: indices i with lo <= value[i] <= hi (numeric only).
  Result<std::vector<uint32_t>> SelectRange(double lo, double hi) const;

  /// Gather: new column with rows at `indices`.
  Column Take(const std::vector<uint32_t>& indices) const;

  /// Sort permutation (ascending; stable).
  std::vector<uint32_t> SortPermutation() const;

 private:
  ColumnType type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
};

}  // namespace moa

#endif  // MOA_STORAGE_COLUMN_H_
