#include "storage/atomic_file.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <memory>

#include "common/logging.h"
#include "obs/metrics.h"

namespace moa {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAndSync(const std::string& tmp,
                    const std::function<Status(std::FILE*)>& body) {
  FileHandle f(std::fopen(tmp.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open for write: " + tmp);
  MOA_RETURN_NOT_OK(body(f.get()));
  if (std::fflush(f.get()) != 0) return Status::Internal("flush failed");
  // fflush only reaches the kernel page cache; without fsync a power
  // failure after the rename could publish a truncated file.
  if (::fsync(::fileno(f.get())) != 0) {
    return Status::Internal("fsync failed: " + tmp);
  }
  return Status::OK();
}

void CountFsyncFailure() {
  static obs::Counter* failures =
      obs::MetricsRegistry::Global().GetCounter("moa_fsync_failure_total");
  failures->Add();
}

}  // namespace

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    const int err = errno;
    CountFsyncFailure();
    MOA_LOG(Warning) << "directory open for fsync failed: " << dir << ": "
                     << std::strerror(err);
    return Status::Internal("cannot open directory for fsync: " + dir);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    CountFsyncFailure();
    MOA_LOG(Warning) << "directory fsync failed: " << dir << ": "
                     << std::strerror(err);
    return Status::Internal("directory fsync failed: " + dir);
  }
  ::close(fd);
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  return SyncDir(dir);
}

Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(std::FILE*)>& body,
                           bool strict_dir_sync) {
  const std::string tmp = path + ".tmp";
  Status status = WriteAndSync(tmp, body);  // closed before rename
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::Internal("rename failed: " + path);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  // The rename itself is journaled only once the parent directory is
  // fsync'ed.  Some filesystems reject directory fsync; without a
  // durability contract the old content surviving is acceptable, so the
  // error is logged + counted inside SyncParentDir and dropped here.
  Status sync = SyncParentDir(path);
  if (strict_dir_sync) MOA_RETURN_NOT_OK(sync);
  return Status::OK();
}

Status WriteAllBytes(std::FILE* f, const void* data, size_t size,
                     const char* context) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::Internal(std::string(context) + ": short write");
  }
  return Status::OK();
}

}  // namespace moa
