#include "storage/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <memory>

namespace moa {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAndSync(const std::string& tmp,
                    const std::function<Status(std::FILE*)>& body) {
  FileHandle f(std::fopen(tmp.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open for write: " + tmp);
  MOA_RETURN_NOT_OK(body(f.get()));
  if (std::fflush(f.get()) != 0) return Status::Internal("flush failed");
  // fflush only reaches the kernel page cache; without fsync a power
  // failure after the rename could publish a truncated file.
  if (::fsync(::fileno(f.get())) != 0) {
    return Status::Internal("fsync failed: " + tmp);
  }
  return Status::OK();
}

void BestEffortSyncParentDir(const std::string& path) {
  // Persisting the rename itself needs a directory fsync. Best-effort:
  // some filesystems reject directory fsync, and the data-loss window
  // without it (rename not yet journaled) still cannot expose a
  // half-written file — the old content simply survives instead.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(std::FILE*)>& body) {
  const std::string tmp = path + ".tmp";
  Status status = WriteAndSync(tmp, body);  // closed before rename
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::Internal("rename failed: " + path);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  BestEffortSyncParentDir(path);
  return Status::OK();
}

Status WriteAllBytes(std::FILE* f, const void* data, size_t size,
                     const char* context) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::Internal(std::string(context) + ": short write");
  }
  return Status::OK();
}

}  // namespace moa
