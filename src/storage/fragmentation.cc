#include "storage/fragmentation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace moa {

Fragmentation Fragmentation::Build(const InvertedFile& file,
                                   const FragmentationPolicy& policy) {
  Fragmentation frag;
  frag.policy_ = policy;
  const size_t num_terms = file.num_terms();
  frag.assignment_.assign(num_terms, FragmentId::kLarge);

  // Rank terms by ascending document frequency: rarest (most interesting)
  // first. Ties broken by term id for determinism.
  std::vector<TermId> by_df(num_terms);
  std::iota(by_df.begin(), by_df.end(), 0);
  std::sort(by_df.begin(), by_df.end(), [&](TermId a, TermId b) {
    const uint32_t da = file.DocFrequency(a);
    const uint32_t db = file.DocFrequency(b);
    if (da != db) return da < db;
    return a < b;
  });

  const int64_t total = file.num_postings();
  const int64_t budget = static_cast<int64_t>(
      policy.small_volume_fraction * static_cast<double>(total));

  int64_t used = 0;
  for (TermId t : by_df) {
    const int64_t df = file.DocFrequency(t);
    const bool over_ceiling =
        policy.df_ceiling > 0 && df > static_cast<int64_t>(policy.df_ceiling);
    if (!over_ceiling && used + df <= budget) {
      frag.assignment_[t] = FragmentId::kSmall;
      used += df;
      ++frag.small_terms_;
      frag.small_postings_ += df;
    } else {
      ++frag.large_terms_;
      frag.large_postings_ += df;
    }
  }
  return frag;
}

std::string Fragmentation::ToString() const {
  std::ostringstream os;
  os << "Fragmentation{small: " << small_terms_ << " terms / "
     << small_postings_ << " postings (" << small_volume_fraction() * 100.0
     << "% volume, " << small_term_fraction() * 100.0
     << "% of terms); large: " << large_terms_ << " terms / "
     << large_postings_ << " postings}";
  return os.str();
}

}  // namespace moa
