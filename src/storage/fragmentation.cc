#include "storage/fragmentation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace moa {

Fragmentation Fragmentation::Build(const InvertedFile& file,
                                   const FragmentationPolicy& policy) {
  std::vector<uint32_t> df(file.num_terms());
  for (TermId t = 0; t < file.num_terms(); ++t) df[t] = file.DocFrequency(t);
  return Build(df, policy);
}

Fragmentation Fragmentation::Build(const std::vector<uint32_t>& term_df,
                                   const FragmentationPolicy& policy) {
  Fragmentation frag;
  frag.policy_ = policy;
  const size_t num_terms = term_df.size();
  frag.assignment_.assign(num_terms, FragmentId::kLarge);

  // Rank terms by ascending document frequency: rarest (most interesting)
  // first. Ties broken by term id for determinism.
  std::vector<TermId> by_df(num_terms);
  std::iota(by_df.begin(), by_df.end(), 0);
  std::sort(by_df.begin(), by_df.end(), [&](TermId a, TermId b) {
    if (term_df[a] != term_df[b]) return term_df[a] < term_df[b];
    return a < b;
  });

  const int64_t total =
      std::accumulate(term_df.begin(), term_df.end(), int64_t{0});
  const int64_t budget = static_cast<int64_t>(
      policy.small_volume_fraction * static_cast<double>(total));

  int64_t used = 0;
  for (TermId t : by_df) {
    const int64_t df = term_df[t];
    const bool over_ceiling =
        policy.df_ceiling > 0 && df > static_cast<int64_t>(policy.df_ceiling);
    if (!over_ceiling && used + df <= budget) {
      frag.assignment_[t] = FragmentId::kSmall;
      used += df;
      ++frag.small_terms_;
      frag.small_postings_ += df;
    } else {
      ++frag.large_terms_;
      frag.large_postings_ += df;
    }
  }
  return frag;
}

std::string Fragmentation::ToString() const {
  std::ostringstream os;
  os << "Fragmentation{small: " << small_terms_ << " terms / "
     << small_postings_ << " postings (" << small_volume_fraction() * 100.0
     << "% volume, " << small_term_fraction() * 100.0
     << "% of terms); large: " << large_terms_ << " terms / "
     << large_postings_ << " postings}";
  return os.str();
}

}  // namespace moa
