#include "storage/segment/posting_cursor.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/cost_ticker.h"
#include "ir/scoring.h"

namespace moa {
namespace {

/// Cursor over a doc-sorted std::vector<Posting>. advance_to binary
/// searches the remaining suffix, matching the O(log n) probe cost of
/// PostingList::FindTf.
class InMemoryPostingCursor final : public PostingCursor {
 public:
  explicit InMemoryPostingCursor(const PostingList* list) : list_(list) {}

  DocId doc() const override {
    return pos_ < list_->size() ? (*list_)[pos_].doc : kEndDoc;
  }
  uint32_t tf() const override {
    return pos_ < list_->size() ? (*list_)[pos_].tf : 0;
  }
  void next() override {
    if (pos_ < list_->size()) ++pos_;
  }
  void advance_to(DocId target) override {
    if (doc() >= target) return;
    const auto& postings = list_->postings();
    auto it = std::lower_bound(
        postings.begin() + static_cast<ptrdiff_t>(pos_), postings.end(),
        target, [](const Posting& p, DocId d) { return p.doc < d; });
    pos_ = static_cast<size_t>(it - postings.begin());
  }
  size_t size() const override { return list_->size(); }
  double block_max_impact() const override { return max_impact(); }
  double max_impact() const override { return list_->max_weight(); }
  /// One uncompressed block spanning the whole list: its skip key is the
  /// list's final doc id (exact, unlike the base-class conservative
  /// default), so a pruning loop that rules out max_impact() skips the
  /// entire remaining list in one shallow step.
  DocId block_last_doc() const override {
    return pos_ < list_->size() ? list_->postings().back().doc : kEndDoc;
  }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
};

/// Impact cursor over a list's materialized impact order (ByImpact /
/// ImpactWeight) — zero extra work, exactly the legacy sorted access.
class MaterializedImpactCursor final : public ImpactCursor {
 public:
  explicit MaterializedImpactCursor(const PostingList* list) : list_(list) {}

  DocId doc() const override {
    return pos_ < list_->size() ? list_->ByImpact(pos_).doc : kEndDoc;
  }
  uint32_t tf() const override {
    return pos_ < list_->size() ? list_->ByImpact(pos_).tf : 0;
  }
  double weight() const override {
    return pos_ < list_->size() ? list_->ImpactWeight(pos_) : 0.0;
  }
  void next() override {
    if (pos_ < list_->size()) ++pos_;
  }
  size_t size() const override { return list_->size(); }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
};

/// The maximally coarse fragment directory: the whole list as one
/// doc-sorted fragment bounded by the term's max impact.
class SingleFragmentCursor final : public FragmentCursor {
 public:
  SingleFragmentCursor(const PostingSource* source, TermId term,
                       size_t postings, double max_impact)
      : source_(source),
        term_(term),
        postings_(postings),
        max_impact_(max_impact) {}

  size_t num_fragments() const override { return postings_ > 0 ? 1 : 0; }
  double max_impact(size_t) const override { return max_impact_; }
  size_t size(size_t) const override { return postings_; }
  std::unique_ptr<PostingCursor> OpenFragment(size_t) const override {
    return source_->OpenCursor(term_);
  }

 private:
  const PostingSource* source_;
  TermId term_;
  size_t postings_;
  double max_impact_;
};

/// Exact impact-ordered access over a fragment directory, decoding
/// fragments lazily: a posting is only emitted once its weight strictly
/// exceeds every undecoded fragment's bound (an equal bound forces the
/// next decode, so equal-weight ties still come out in ascending doc
/// order — the exact order InvertedFile::BuildImpactOrders produces).
class LazyFragmentImpactCursor final : public ImpactCursor {
 public:
  LazyFragmentImpactCursor(std::unique_ptr<FragmentCursor> fragments,
                           TermId term, const ScoringModel* model)
      : fragments_(std::move(fragments)), term_(term), model_(model) {
    for (size_t f = 0; f < fragments_->num_fragments(); ++f) {
      size_ += fragments_->size(f);
    }
    Refill();
  }

  DocId doc() const override { return pool_.empty() ? kEndDoc : Top().doc; }
  uint32_t tf() const override { return pool_.empty() ? 0 : Top().tf; }
  double weight() const override {
    return pool_.empty() ? 0.0 : Top().weight;
  }
  void next() override {
    if (pool_.empty()) return;
    pool_.pop();
    Refill();
  }
  size_t size() const override { return size_; }

 private:
  struct Pending {
    double weight;
    DocId doc;
    uint32_t tf;
  };
  /// Heap ordering: a sorts below b when it is weaker under
  /// (weight desc, doc asc), leaving the strongest posting on top.
  struct Weaker {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.weight != b.weight) return a.weight < b.weight;
      return a.doc > b.doc;
    }
  };

  const Pending& Top() const { return pool_.top(); }

  /// Decodes fragments until the best pending posting provably dominates
  /// everything still encoded (or nothing is left to decode).
  void Refill() {
    while (next_fragment_ < fragments_->num_fragments() &&
           (pool_.empty() ||
            pool_.top().weight <= fragments_->max_impact(next_fragment_))) {
      for (auto cursor = fragments_->OpenFragment(next_fragment_);
           !cursor->at_end(); cursor->next()) {
        const Posting p{cursor->doc(), cursor->tf()};
        pool_.push(Pending{model_->Weight(term_, p), p.doc, p.tf});
      }
      ++next_fragment_;
    }
  }

  std::unique_ptr<FragmentCursor> fragments_;
  TermId term_;
  const ScoringModel* model_;
  size_t size_ = 0;
  size_t next_fragment_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, Weaker> pool_;
};

}  // namespace

std::optional<uint32_t> PostingSource::FindTf(TermId t, DocId doc) const {
  CostTicker::TickRandom();
  const std::unique_ptr<PostingCursor> cursor = OpenCursor(t);
  cursor->advance_to(doc);
  if (cursor->at_end() || cursor->doc() != doc) return std::nullopt;
  return cursor->tf();
}

std::unique_ptr<FragmentCursor> PostingSource::OpenFragmentCursor(
    TermId t) const {
  return std::make_unique<SingleFragmentCursor>(
      this, t, DocFrequency(t), HasImpacts(t) ? MaxImpact(t) : 0.0);
}

std::unique_ptr<ImpactCursor> PostingSource::OpenImpactCursor(
    TermId t, const ScoringModel& model) const {
  return std::make_unique<LazyFragmentImpactCursor>(OpenFragmentCursor(t), t,
                                                    &model);
}

std::unique_ptr<PostingCursor> InMemoryPostingSource::OpenCursor(
    TermId t) const {
  return std::make_unique<InMemoryPostingCursor>(&file_->list(t));
}

std::optional<uint32_t> InMemoryPostingSource::FindTf(TermId t,
                                                      DocId doc) const {
  return file_->list(t).FindTf(doc);
}

std::unique_ptr<ImpactCursor> InMemoryPostingSource::OpenImpactCursor(
    TermId t, const ScoringModel& /*model*/) const {
  return std::make_unique<MaterializedImpactCursor>(&file_->list(t));
}

}  // namespace moa
