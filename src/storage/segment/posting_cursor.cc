#include "storage/segment/posting_cursor.h"

#include <algorithm>

namespace moa {
namespace {

/// Cursor over a doc-sorted std::vector<Posting>. advance_to binary
/// searches the remaining suffix, matching the O(log n) probe cost of
/// PostingList::FindTf.
class InMemoryPostingCursor final : public PostingCursor {
 public:
  explicit InMemoryPostingCursor(const PostingList* list) : list_(list) {}

  DocId doc() const override {
    return pos_ < list_->size() ? (*list_)[pos_].doc : kEndDoc;
  }
  uint32_t tf() const override {
    return pos_ < list_->size() ? (*list_)[pos_].tf : 0;
  }
  void next() override {
    if (pos_ < list_->size()) ++pos_;
  }
  void advance_to(DocId target) override {
    if (doc() >= target) return;
    const auto& postings = list_->postings();
    auto it = std::lower_bound(
        postings.begin() + static_cast<ptrdiff_t>(pos_), postings.end(),
        target, [](const Posting& p, DocId d) { return p.doc < d; });
    pos_ = static_cast<size_t>(it - postings.begin());
  }
  size_t size() const override { return list_->size(); }
  double block_max_impact() const override { return max_impact(); }
  double max_impact() const override { return list_->max_weight(); }

 private:
  const PostingList* list_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<PostingCursor> InMemoryPostingSource::OpenCursor(
    TermId t) const {
  return std::make_unique<InMemoryPostingCursor>(&file_->list(t));
}

}  // namespace moa
