// Mmap-backed MOAIF02/MOAIF03 segment reader: a PostingSource whose
// posting lists stay compressed on disk until a cursor touches them. The
// payload codec (varbyte vs bit-packed) is negotiated from the file magic
// at Open; everything above the block payload is format-identical.
//
// Open() memory-maps the file read-only and fully validates the header
// and both directories (bounds, monotonicity, block-count arithmetic,
// doc-length/token-count cross-check) in O(terms + blocks) — without
// decoding any payload. Cursors then decode one block at a time, lazily,
// straight out of the mapping: cold-start cost is a page-table setup, not
// an index rebuild, and queries only ever fault in the blocks they scan
// or skip to.
//
// Thread-safety: the reader is immutable after Open and safe for
// concurrent OpenCursor calls; each cursor is single-threaded.
#ifndef MOA_STORAGE_SEGMENT_SEGMENT_READER_H_
#define MOA_STORAGE_SEGMENT_SEGMENT_READER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/inverted_file.h"
#include "storage/segment/fragment_directory.h"
#include "storage/segment/posting_cursor.h"
#include "storage/segment/segment_format.h"

namespace moa {

class SegmentReader final : public PostingSource {
 public:
  /// Maps and validates the segment at `path`. When a MOAFRG01 sidecar
  /// sits next to it (`path + ".frg"`), the sidecar is read and fully
  /// cross-validated against the segment (model stamp, block ranges,
  /// impact-order and bound invariants); a sidecar that disagrees fails
  /// the Open, a missing sidecar merely disables lazy impact order.
  ///
  /// Records moa_segment_open_total / moa_segment_open_ms /
  /// moa_segment_open_failures_total (the wrapper is the only metrics
  /// touchpoint; validation itself stays metrics-free).
  static Result<std::unique_ptr<SegmentReader>> Open(const std::string& path);

  ~SegmentReader() override;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  // PostingSource:
  size_t num_terms() const override { return header_.num_terms; }
  size_t num_docs() const override { return header_.num_docs; }
  uint32_t DocFrequency(TermId t) const override;
  bool HasImpacts(TermId /*t*/) const override {
    // Impact metadata is all-or-nothing per segment.
    return (header_.flags & kFlagHasImpacts) != 0;
  }
  double MaxImpact(TermId t) const override;
  std::unique_ptr<PostingCursor> OpenCursor(TermId t) const override;
  /// Impact-ordered fragments from the MOAFRG01 sidecar: each fragment is
  /// a run of the term's blocks decoded through the ordinary lazy block
  /// cursor. Falls back to the single-fragment default when the segment
  /// has no sidecar.
  std::unique_ptr<FragmentCursor> OpenFragmentCursor(TermId t) const override;

  uint64_t total_tokens() const { return header_.total_tokens; }
  uint32_t block_size() const { return header_.block_size; }
  /// Payload codec, negotiated from the file magic at Open (MOAIF02 =
  /// varbyte, MOAIF03 = bit-packed).
  SegmentCodec codec() const { return codec_; }
  /// Format name for human-facing output ("MOAIF02"/"MOAIF03").
  const char* format_name() const { return SegmentFormatName(codec_); }
  bool has_impacts() const { return (header_.flags & kFlagHasImpacts) != 0; }
  /// Name of the scoring model the stored impact bounds were computed
  /// with (empty when the segment carries no impacts). Consumers must
  /// match this against their serving model before pruning on the
  /// bounds — they are meaningless under a different model.
  std::string impact_model() const {
    const size_t len = ::strnlen(header_.impact_model, kImpactModelBytes);
    return std::string(header_.impact_model, len);
  }
  uint64_t file_size() const { return size_; }
  /// Token count of document d (served from the mapped section).
  uint32_t DocLength(DocId d) const;

  /// True when a validated MOAFRG01 sidecar backs OpenFragmentCursor.
  bool has_fragment_directory() const { return has_fragments_; }
  /// The validated sidecar contents (meaningful only when
  /// has_fragment_directory()).
  const FragmentDirectory& fragment_directory() const { return frag_dir_; }

  /// Decodes every block and re-validates cross-block invariants plus the
  /// global token count — catches payload corruption that the structural
  /// checks at Open cannot see (e.g. a flipped tf byte).
  Status CheckIntegrity() const;

  /// Full decode into an in-memory InvertedFile (re-validated through the
  /// builder). This is the expensive compatibility path; query execution
  /// should use cursors instead.
  Result<InvertedFile> ToInvertedFile() const;

 private:
  friend class SegmentFragmentCursor;

  SegmentReader() = default;

  /// The actual map-and-validate; Open is a thin metrics wrapper.
  static Result<std::unique_ptr<SegmentReader>> OpenInternal(
      const std::string& path);

  /// Also negotiates `codec_` from the file magic.
  Status Validate();
  /// Cross-validates a structurally valid sidecar against the mapped
  /// directories; on success installs it as the fragment directory.
  Status AttachFragmentDirectory(const FragmentFileHeader& header,
                                 FragmentDirectory directory);
  TermDirEntry term_entry(TermId t) const;
  /// Payload bytes owned by term t (derived from the next term's offset).
  uint64_t term_payload_bytes(const TermDirEntry& entry, TermId t) const;

  const uint8_t* data_ = nullptr;  // whole mapping
  uint64_t size_ = 0;
  SegmentHeader header_{};
  SegmentCodec codec_ = SegmentCodec::kVarbyte;
  // Section base pointers into the mapping (set after header validation).
  const uint8_t* doc_lengths_ = nullptr;
  const uint8_t* term_dir_ = nullptr;
  const uint8_t* block_dir_ = nullptr;
  const uint8_t* payload_ = nullptr;
  // Validated MOAFRG01 sidecar (empty when the segment has none).
  bool has_fragments_ = false;
  FragmentDirectory frag_dir_;
};

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_SEGMENT_READER_H_
