#include "storage/segment/fragment_directory.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "storage/atomic_file.h"

namespace moa {
namespace {

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  return WriteAllBytes(f, data, size, "fragment directory");
}

}  // namespace

FragmentDirectory BuildFragmentDirectory(
    const std::vector<TermDirEntry>& term_dir,
    const std::vector<BlockDirEntry>& block_dir, uint32_t fragment_blocks) {
  FragmentDirectory directory;
  directory.fragment_blocks = fragment_blocks;
  directory.terms.reserve(term_dir.size());
  for (const TermDirEntry& term : term_dir) {
    TermFragEntry entry{};
    entry.frag_begin = directory.fragments.size();
    entry.df = term.df;

    std::vector<FragDirEntry> frags;
    for (uint32_t begin = 0; begin < term.block_count;
         begin += fragment_blocks) {
      FragDirEntry frag{};
      frag.block_begin = begin;
      frag.block_count = std::min(fragment_blocks, term.block_count - begin);
      frag.max_impact = 0.0;
      for (uint32_t b = 0; b < frag.block_count; ++b) {
        frag.max_impact =
            std::max(frag.max_impact,
                     block_dir[term.block_begin + begin + b].max_impact);
      }
      frags.push_back(frag);
    }
    std::sort(frags.begin(), frags.end(),
              [](const FragDirEntry& a, const FragDirEntry& b) {
                if (a.max_impact != b.max_impact) {
                  return a.max_impact > b.max_impact;
                }
                return a.block_begin < b.block_begin;
              });
    entry.frag_count = static_cast<uint32_t>(frags.size());
    directory.terms.push_back(entry);
    directory.fragments.insert(directory.fragments.end(), frags.begin(),
                               frags.end());
  }
  return directory;
}

Status WriteFragmentDirectory(const std::string& path,
                              const FragmentDirectory& directory,
                              const std::string& impact_model) {
  if (directory.fragment_blocks == 0) {
    return Status::InvalidArgument(
        "fragment directory: fragment_blocks must be >= 1");
  }
  return WriteFileAtomically(path, [&](std::FILE* out) {
    FragmentFileHeader header{};
    std::memcpy(header.magic, kFragmentMagic, sizeof(header.magic));
    header.fragment_blocks = directory.fragment_blocks;
    header.flags = 0;
    impact_model.copy(header.impact_model, sizeof(header.impact_model) - 1);
    header.num_terms = directory.terms.size();
    header.num_fragments = directory.fragments.size();
    MOA_RETURN_NOT_OK(WriteBytes(out, &header, sizeof(header)));
    MOA_RETURN_NOT_OK(WriteBytes(out, directory.terms.data(),
                                 directory.terms.size() *
                                     sizeof(TermFragEntry)));
    return WriteBytes(out, directory.fragments.data(),
                      directory.fragments.size() * sizeof(FragDirEntry));
  });
}

Result<std::pair<FragmentFileHeader, FragmentDirectory>>
ReadFragmentDirectory(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("fragment directory: cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  // ftello, not std::ftell: ftell returns long (32-bit on LLP64), which
  // would mis-size a >= 2 GiB sidecar — same fix as storage/io.cc.
  const off_t end = ::ftello(f);
  std::rewind(f);
  if (end < 0 || static_cast<uint64_t>(end) < sizeof(FragmentFileHeader)) {
    std::fclose(f);
    return Status::InvalidArgument(
        "fragment directory: file shorter than header");
  }
  const uint64_t size = static_cast<uint64_t>(end);

  FragmentFileHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::Internal("fragment directory: header read failed");
  }
  if (std::memcmp(header.magic, kFragmentMagic, sizeof(header.magic)) != 0) {
    std::fclose(f);
    return Status::InvalidArgument(
        "fragment directory: bad magic (not MOAFRG01)");
  }
  if (header.fragment_blocks == 0 || header.num_terms > (1ull << 32) ||
      header.num_fragments > (1ull << 32)) {
    std::fclose(f);
    return Status::InvalidArgument(
        "fragment directory: implausible header counts");
  }
  const uint64_t expected = sizeof(FragmentFileHeader) +
                            header.num_terms * sizeof(TermFragEntry) +
                            header.num_fragments * sizeof(FragDirEntry);
  if (expected != size) {
    return (std::fclose(f),
            Status::InvalidArgument("fragment directory: file size does not "
                                    "match header (truncated or corrupt)"));
  }

  FragmentDirectory directory;
  directory.fragment_blocks = header.fragment_blocks;
  directory.terms.resize(header.num_terms);
  directory.fragments.resize(header.num_fragments);
  if ((header.num_terms > 0 &&
       std::fread(directory.terms.data(), sizeof(TermFragEntry),
                  header.num_terms, f) != header.num_terms) ||
      (header.num_fragments > 0 &&
       std::fread(directory.fragments.data(), sizeof(FragDirEntry),
                  header.num_fragments, f) != header.num_fragments)) {
    std::fclose(f);
    return Status::Internal("fragment directory: body read failed");
  }
  std::fclose(f);

  // Structural validation that needs no segment context: the term
  // directory must tile the fragment directory, and every term's
  // fragments must come in descending max-impact order with sane bounds.
  // Block-range and bound cross-checks against the segment happen at
  // SegmentReader::Open.
  uint64_t next_fragment = 0;
  for (const TermFragEntry& term : directory.terms) {
    if (term.frag_begin != next_fragment ||
        term.frag_count > header.num_fragments - next_fragment) {
      return Status::InvalidArgument(
          "fragment directory: term directory inconsistent");
    }
    double prev = std::numeric_limits<double>::infinity();
    uint32_t prev_begin = 0;
    for (uint32_t i = 0; i < term.frag_count; ++i) {
      const FragDirEntry& frag = directory.fragments[term.frag_begin + i];
      if (frag.block_count == 0) {
        return Status::InvalidArgument("fragment directory: empty fragment");
      }
      if (!std::isfinite(frag.max_impact) || frag.max_impact < 0.0) {
        return Status::InvalidArgument(
            "fragment directory: implausible fragment impact");
      }
      if (frag.max_impact > prev ||
          (frag.max_impact == prev && i > 0 &&
           frag.block_begin <= prev_begin)) {
        return Status::InvalidArgument(
            "fragment directory: fragments not in impact order");
      }
      prev = frag.max_impact;
      prev_begin = frag.block_begin;
    }
    next_fragment += term.frag_count;
  }
  if (next_fragment != header.num_fragments) {
    return Status::InvalidArgument(
        "fragment directory: orphaned fragment entries");
  }
  return std::make_pair(header, std::move(directory));
}

}  // namespace moa
