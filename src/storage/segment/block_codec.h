// Encode/decode of one posting block, in either segment codec
// (segment_format.h).
//
// MOAIF02 (varbyte) block payload: varbyte(first_doc) then, per remaining
// posting, varbyte(doc gap >= 1); after all docs, varbyte(tf) per posting
// in the same order. Grouping the doc stream before the tf stream keeps
// the doc-id bytes dense for skip-heavy access patterns while staying a
// strictly sequential decode.
//
// MOAIF03 (bit-packed) block payload:
//
//   u32 first_doc     absolute doc id of the first posting
//   u8  gap_bits      bit width of each packed (gap - 1) value, <= 32
//   u8  tf_bits       bit width of each packed tf value, <= 32
//   u16 reserved      must be 0
//   u32 gap_words[ceil((count-1) * gap_bits / 32)]
//   u32 tf_words[ceil(count * tf_bits / 32)]
//
// Values are packed LSB-first into little-endian u32 words; each section
// starts word-aligned. The widths are minimal (exactly the bit width of
// the largest value, 0 when every value is 0), which makes the encoding
// canonical — any flipped width byte changes the expected byte count or
// the minimality check and fails the decode. Fixed widths are what buy
// the speed: the whole block decodes in two constant-shift loops instead
// of one byte-at-a-time varbyte state machine per integer.
#ifndef MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_
#define MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/posting.h"
#include "storage/segment/segment_format.h"

namespace moa {

/// Appends the `codec` encoding of postings[0..count) (doc-sorted) to
/// `out`. Bulk interface on purpose: one call per block, so the packed
/// codec can compute its per-block widths over the whole block.
void EncodePostingBlock(SegmentCodec codec, const Posting* postings,
                        size_t count, std::vector<uint8_t>& out);

/// Decodes exactly `count` postings from [data, data + bytes) into
/// docs/tfs (each sized >= count by the caller). Validates: bounds, strict
/// doc ordering, full consumption of the span, and that the final doc id
/// equals `expected_last_doc` — so a corrupt block fails cleanly instead
/// of yielding garbage postings.
Status DecodePostingBlock(SegmentCodec codec, const uint8_t* data,
                          size_t bytes, size_t count, DocId expected_last_doc,
                          DocId* docs, uint32_t* tfs);

/// Legacy varbyte entry points (equivalent to passing
/// SegmentCodec::kVarbyte above); kept for callers that predate the codec
/// dispatch.
void EncodePostingBlock(const Posting* postings, size_t count,
                        std::vector<uint8_t>& out);
Status DecodePostingBlock(const uint8_t* data, size_t bytes, size_t count,
                          DocId expected_last_doc, DocId* docs, uint32_t* tfs);

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_
