// Encode/decode of one MOAIF02 posting block (segment_format.h).
//
// Block payload: varbyte(first_doc) then, per remaining posting,
// varbyte(doc gap >= 1); after all docs, varbyte(tf) per posting in the
// same order. Grouping the doc stream before the tf stream keeps the
// doc-id bytes dense for skip-heavy access patterns while staying a
// strictly sequential decode.
#ifndef MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_
#define MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/posting.h"

namespace moa {

/// Appends the encoding of postings[0..count) (doc-sorted) to `out`.
void EncodePostingBlock(const Posting* postings, size_t count,
                        std::vector<uint8_t>& out);

/// Decodes exactly `count` postings from [data, data + bytes) into
/// docs/tfs (each sized >= count by the caller). Validates: bounds, strict
/// doc ordering, full consumption of the span, and that the final doc id
/// equals `expected_last_doc` — so a corrupt block fails cleanly instead
/// of yielding garbage postings.
Status DecodePostingBlock(const uint8_t* data, size_t bytes, size_t count,
                          DocId expected_last_doc, DocId* docs, uint32_t* tfs);

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_BLOCK_CODEC_H_
