// PostingCursor / PostingSource: the representation-agnostic read API over
// posting storage.
//
// Executors that only need doc-ordered (doc, tf) streams — the baselines,
// term-at-a-time max-score and STOP AFTER — talk to this interface instead
// of touching std::vector<Posting> directly, so the same algorithm runs
// unchanged over the in-memory InvertedFile and over a compressed
// mmap-backed MOAIF02 segment (storage/segment/segment_reader.h).
//
// Contract (shared by every implementation, enforced by the conformance
// suite in tests/posting_cursor_test.cc):
//  - A fresh cursor is positioned on the first posting (or at end when the
//    list is empty). doc() returns kEndDoc once exhausted; tf() is
//    meaningless there.
//  - next() moves forward one posting; calling it at end stays at end.
//  - advance_to(target) moves to the first posting with doc >= target and
//    is a no-op when doc() >= target already (cursors never move
//    backwards). advance_to(kEndDoc) exhausts the cursor unless a posting
//    for the largest representable doc exists.
//  - Impact metadata (max_impact / block_max_impact) is an upper bound on
//    the scoring weight of any posting in the term / in the current block.
//    It is only meaningful when the source HasImpacts for the term; the
//    in-memory implementation treats the whole list as one block.
//
// Cost accounting stays in the algorithms (CostTicker ticks per posting
// touched), not in the cursors, so switching representations does not
// change the deterministic work counters.
#ifndef MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_
#define MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_

#include <cstdint>
#include <limits>
#include <memory>

#include "storage/inverted_file.h"
#include "storage/posting.h"

namespace moa {

/// Sentinel returned by PostingCursor::doc() when the cursor is exhausted.
inline constexpr DocId kEndDoc = std::numeric_limits<DocId>::max();

/// \brief Forward, skippable iterator over one term's doc-ordered postings.
class PostingCursor {
 public:
  virtual ~PostingCursor() = default;

  /// Current document id, kEndDoc when exhausted.
  virtual DocId doc() const = 0;
  /// Term frequency of the current posting; undefined at end.
  virtual uint32_t tf() const = 0;
  /// Moves to the next posting (stays at end once exhausted).
  virtual void next() = 0;
  /// Moves to the first posting with doc >= target; no-op if already there.
  virtual void advance_to(DocId target) = 0;
  /// Total number of postings (the term's document frequency).
  virtual size_t size() const = 0;
  /// Upper bound on the weight of any posting in the current block.
  virtual double block_max_impact() const = 0;
  /// Upper bound on the weight of any posting of the term.
  virtual double max_impact() const = 0;

  bool at_end() const { return doc() == kEndDoc; }
};

/// \brief A collection of posting lists addressable by TermId.
///
/// Implementations: InMemoryPostingSource (below) over an InvertedFile and
/// SegmentReader (segment_reader.h) over a compressed mmap-backed segment.
/// Sources are immutable after construction and safe for concurrent reads;
/// each OpenCursor call returns an independent cursor.
class PostingSource {
 public:
  virtual ~PostingSource() = default;

  virtual size_t num_terms() const = 0;
  virtual size_t num_docs() const = 0;
  /// Number of documents containing term t.
  virtual uint32_t DocFrequency(TermId t) const = 0;
  /// True if MaxImpact/impact bounds are available for term t.
  virtual bool HasImpacts(TermId t) const = 0;
  /// Upper bound on the weight of any posting of t; requires HasImpacts.
  virtual double MaxImpact(TermId t) const = 0;
  /// A fresh cursor positioned on t's first posting.
  virtual std::unique_ptr<PostingCursor> OpenCursor(TermId t) const = 0;
};

/// \brief Zero-copy PostingSource view over an in-memory InvertedFile.
///
/// Cheap to construct (one pointer), so callers holding only an
/// InvertedFile can adapt it on the stack. Impact bounds come from the
/// list's materialized impact order (InvertedFile::BuildImpactOrders); the
/// whole list counts as a single block.
class InMemoryPostingSource final : public PostingSource {
 public:
  explicit InMemoryPostingSource(const InvertedFile* file) : file_(file) {}

  size_t num_terms() const override { return file_->num_terms(); }
  size_t num_docs() const override { return file_->num_docs(); }
  uint32_t DocFrequency(TermId t) const override {
    return file_->DocFrequency(t);
  }
  bool HasImpacts(TermId t) const override {
    return file_->list(t).has_impact_order();
  }
  double MaxImpact(TermId t) const override {
    return file_->list(t).max_weight();
  }
  std::unique_ptr<PostingCursor> OpenCursor(TermId t) const override;

 private:
  const InvertedFile* file_;
};

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_
