// PostingCursor / PostingSource: the representation-agnostic read API over
// posting storage.
//
// Executors that only need doc-ordered (doc, tf) streams — the baselines,
// term-at-a-time max-score and STOP AFTER — talk to this interface instead
// of touching std::vector<Posting> directly, so the same algorithm runs
// unchanged over the in-memory InvertedFile and over a compressed
// mmap-backed MOAIF02 segment (storage/segment/segment_reader.h).
//
// Contract (shared by every implementation, enforced by the conformance
// suite in tests/posting_cursor_test.cc):
//  - A fresh cursor is positioned on the first posting (or at end when the
//    list is empty). doc() returns kEndDoc once exhausted; tf() is
//    meaningless there.
//  - next() moves forward one posting; calling it at end stays at end.
//  - advance_to(target) moves to the first posting with doc >= target and
//    is a no-op when doc() >= target already (cursors never move
//    backwards). advance_to(kEndDoc) exhausts the cursor unless a posting
//    for the largest representable doc exists.
//  - Impact metadata (max_impact / block_max_impact) is an upper bound on
//    the scoring weight of any posting in the term / in the current block.
//    It is only meaningful when the source HasImpacts for the term; the
//    in-memory implementation treats the whole list as one block.
//  - shallow_advance(target) moves only the *block* position: afterwards
//    the current block is the first one whose block_last_doc() >= target
//    (or the cursor is block-exhausted, block_last_doc() == kEndDoc) and
//    no payload has been decoded. In the shallow state only
//    block_max_impact(), block_last_doc(), shallow_advance() and
//    advance_to() are meaningful; doc()/tf()/next() require a deep
//    advance_to first. Block-max pruning loops live on this: bound-check
//    a block via block_max_impact(), then either decode it (advance_to)
//    or skip it wholesale (shallow_advance(block_last_doc() + 1)).
//    Implementations without block structure default shallow_advance to
//    advance_to — always correct, just never cheaper.
//
// Cost accounting stays in the algorithms (CostTicker ticks per posting
// touched), not in the cursors, so switching representations does not
// change the deterministic work counters. The single exception is the
// blocks_decoded/blocks_skipped pair: those are ticked by block-structured
// cursors themselves, because they exist precisely to observe
// representation-level behaviour (and stay outside CostCounters::Scalar).
#ifndef MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_
#define MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "storage/inverted_file.h"
#include "storage/posting.h"

namespace moa {

class ScoringModel;

/// Sentinel returned by PostingCursor::doc() when the cursor is exhausted.
inline constexpr DocId kEndDoc = std::numeric_limits<DocId>::max();

/// \brief Forward, skippable iterator over one term's doc-ordered postings.
class PostingCursor {
 public:
  virtual ~PostingCursor() = default;

  /// Current document id, kEndDoc when exhausted.
  virtual DocId doc() const = 0;
  /// Term frequency of the current posting; undefined at end.
  virtual uint32_t tf() const = 0;
  /// Moves to the next posting (stays at end once exhausted).
  virtual void next() = 0;
  /// Moves to the first posting with doc >= target; no-op if already there.
  virtual void advance_to(DocId target) = 0;
  /// Moves the *block* position to the first block that could contain a
  /// posting with doc >= target, without decoding any payload (see the
  /// contract in the file comment). The default deep-advances — correct
  /// for blockless cursors, which serve the whole list as one block.
  virtual void shallow_advance(DocId target) { advance_to(target); }
  /// Total number of postings (the term's document frequency).
  virtual size_t size() const = 0;
  /// Upper bound on the weight of any posting in the current block.
  virtual double block_max_impact() const = 0;
  /// Upper bound on the weight of any posting of the term.
  virtual double max_impact() const = 0;
  /// Largest doc id in the current block — the block's skip key: no
  /// posting with doc > block_last_doc() exists in the current block, and
  /// shallow_advance(block_last_doc() + 1) skips it without decoding.
  /// kEndDoc iff the cursor is exhausted at block level. The conservative
  /// default (kEndDoc - 1 while postings remain) is correct for blockless
  /// cursors whose block_max_impact spans the rest of the list.
  virtual DocId block_last_doc() const {
    return at_end() ? kEndDoc : kEndDoc - 1;
  }

  /// Bulk read: exposes the remaining postings of the current block as
  /// directly addressable arrays (*docs)[0..n) / (*tfs)[0..n), decoding
  /// the block if necessary. Returns 0 when exhausted or when the
  /// implementation has no contiguous columnar block representation (the
  /// default; callers then fall back to doc()/tf()/next()). The pointers
  /// stay valid until the cursor moves. Consume the batch, then step with
  /// shallow_advance(block_last_doc() + 1): one virtual call per block
  /// instead of four per posting — the segment scan hot path.
  virtual size_t block_postings(const DocId** docs,
                                const uint32_t** tfs) const {
    (void)docs;
    (void)tfs;
    return 0;
  }

  bool at_end() const { return doc() == kEndDoc; }
};

/// \brief Forward iterator over one term's postings in *descending weight*
/// order — the sorted access the Fagin family and impact-order champions
/// consume.
///
/// Contract (the exact order InvertedFile::BuildImpactOrders materializes):
/// postings are emitted by descending weight, ties broken by ascending doc
/// id. weight() at the current position is also the sorted-access
/// threshold: no later posting of the term weighs more. doc() returns
/// kEndDoc once exhausted; weight()/tf() are meaningless there.
class ImpactCursor {
 public:
  virtual ~ImpactCursor() = default;

  /// Current document id, kEndDoc when exhausted.
  virtual DocId doc() const = 0;
  /// Term frequency of the current posting; undefined at end.
  virtual uint32_t tf() const = 0;
  /// Scoring weight of the current posting; undefined at end.
  virtual double weight() const = 0;
  /// Moves to the next posting in impact order (stays at end).
  virtual void next() = 0;
  /// Total number of postings (the term's document frequency).
  virtual size_t size() const = 0;

  bool at_end() const { return doc() == kEndDoc; }
};

/// \brief One term's postings grouped into impact-ordered *fragments*.
///
/// A fragment is a doc-sorted sub-range of the term's postings together
/// with an upper bound on the weight of any posting inside it. Fragments
/// are disjoint, cover the whole list, and are enumerated by descending
/// max impact: max_impact(f) >= max_impact(f + 1). This is the paper's
/// quality/speed fragmentation applied *within* a posting list — a
/// consumer that processes fragments in directory order can stop (or
/// lazily defer decoding) as soon as the remaining fragments' bounds
/// cannot matter, while each fragment still streams in doc order.
///
/// Sources without a materialized fragment directory serve the whole list
/// as one fragment (still a valid, if maximally coarse, directory).
class FragmentCursor {
 public:
  virtual ~FragmentCursor() = default;

  /// Number of fragments (0 for an empty list).
  virtual size_t num_fragments() const = 0;
  /// Upper bound on the weight of any posting in fragment f; descending
  /// in f. Only meaningful when the source HasImpacts for the term.
  virtual double max_impact(size_t f) const = 0;
  /// Number of postings in fragment f (>= 1).
  virtual size_t size(size_t f) const = 0;
  /// Fresh doc-ordered cursor over fragment f's postings only.
  virtual std::unique_ptr<PostingCursor> OpenFragment(size_t f) const = 0;
};

/// \brief A collection of posting lists addressable by TermId.
///
/// Implementations: InMemoryPostingSource (below) over an InvertedFile,
/// SegmentReader (segment_reader.h) over a compressed mmap-backed segment
/// and CatalogReadView (storage/catalog) over a multi-segment snapshot.
/// Sources are immutable after construction and safe for concurrent reads;
/// each OpenCursor/OpenImpactCursor/OpenFragmentCursor call returns an
/// independent cursor.
class PostingSource {
 public:
  virtual ~PostingSource() = default;

  virtual size_t num_terms() const = 0;
  virtual size_t num_docs() const = 0;
  /// Number of documents containing term t.
  virtual uint32_t DocFrequency(TermId t) const = 0;
  /// True if MaxImpact/impact bounds are available for term t.
  virtual bool HasImpacts(TermId t) const = 0;
  /// Upper bound on the weight of any posting of t; requires HasImpacts.
  virtual double MaxImpact(TermId t) const = 0;
  /// A fresh cursor positioned on t's first posting.
  virtual std::unique_ptr<PostingCursor> OpenCursor(TermId t) const = 0;

  /// Random access: term frequency of `doc` in t's list (nullopt when the
  /// document does not contain the term). Ticks one random read. The
  /// default opens a fresh cursor and skips to the target; implementations
  /// with a cheaper path (in-memory binary search) override.
  virtual std::optional<uint32_t> FindTf(TermId t, DocId doc) const;

  /// t's impact-ordered fragment directory. The default serves the whole
  /// list as a single fragment bounded by MaxImpact (0 without impacts);
  /// SegmentReader overrides with its stored MOAFRG01 directory.
  virtual std::unique_ptr<FragmentCursor> OpenFragmentCursor(TermId t) const;

  /// Postings of t by descending `model` weight, ties by ascending doc —
  /// exact sorted access over any storage. Requires HasImpacts(t) and a
  /// model whose arithmetic matches the source's impact bounds (the same
  /// precondition impact orders always had). The default decodes
  /// fragments lazily through OpenFragmentCursor: a fragment is only
  /// decoded once an undecoded fragment's bound could still beat the best
  /// pending posting, so fragmented sources pay for the prefix actually
  /// consumed. InMemoryPostingSource overrides with the materialized
  /// impact order.
  virtual std::unique_ptr<ImpactCursor> OpenImpactCursor(
      TermId t, const ScoringModel& model) const;
};

/// \brief Zero-copy PostingSource view over an in-memory InvertedFile.
///
/// Cheap to construct (one pointer), so callers holding only an
/// InvertedFile can adapt it on the stack. Impact bounds come from the
/// list's materialized impact order (InvertedFile::BuildImpactOrders); the
/// whole list counts as a single block.
class InMemoryPostingSource final : public PostingSource {
 public:
  explicit InMemoryPostingSource(const InvertedFile* file) : file_(file) {}

  size_t num_terms() const override { return file_->num_terms(); }
  size_t num_docs() const override { return file_->num_docs(); }
  uint32_t DocFrequency(TermId t) const override {
    return file_->DocFrequency(t);
  }
  bool HasImpacts(TermId t) const override {
    return file_->list(t).has_impact_order();
  }
  double MaxImpact(TermId t) const override {
    return file_->list(t).max_weight();
  }
  std::unique_ptr<PostingCursor> OpenCursor(TermId t) const override;
  /// Binary search on the doc-ordered list (PostingList::FindTf).
  std::optional<uint32_t> FindTf(TermId t, DocId doc) const override;
  /// Serves the list's materialized impact order directly (requires
  /// InvertedFile::BuildImpactOrders, which must have used arithmetic
  /// equal to `model` — the long-standing impact-order precondition);
  /// `model` itself is not consulted.
  std::unique_ptr<ImpactCursor> OpenImpactCursor(
      TermId t, const ScoringModel& model) const override;

  /// The adapted file — lets consumers that can exploit in-memory lists
  /// directly (e.g. zero-copy sparse-index builds) recover them from a
  /// PostingSource&.
  const InvertedFile* file() const { return file_; }

 private:
  const InvertedFile* file_;
};

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_POSTING_CURSOR_H_
