// Segment writer: compresses an InvertedFile into the block-structured
// on-disk format of segment_format.h (MOAIF03 bit-packed by default,
// MOAIF02 varbyte via SegmentWriterOptions::codec).
//
// Writes go to `path + ".tmp"` and are atomically renamed into place, so
// a crash mid-write never leaves a half-written segment at `path`.
#ifndef MOA_STORAGE_SEGMENT_SEGMENT_WRITER_H_
#define MOA_STORAGE_SEGMENT_SEGMENT_WRITER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/inverted_file.h"
#include "storage/segment/segment_format.h"

namespace moa {

/// \brief Tuning for WriteSegment.
struct SegmentWriterOptions {
  /// Max postings per block. Smaller blocks skip better, larger blocks
  /// compress better; 128 is the production-IR sweet spot.
  uint32_t block_size = kDefaultSegmentBlockSize;
  /// Payload codec (and thereby the file magic: MOAIF02 for varbyte,
  /// MOAIF03 for bit-packed). Bit-packed is the default — it decodes a
  /// whole block in two constant-width loops instead of one varbyte state
  /// machine per integer; varbyte stays available for compatibility and
  /// for the codec benchmarks.
  SegmentCodec codec = SegmentCodec::kBitPacked;
  /// Optional scoring weight w(t, posting). When set, per-term and
  /// per-block max impacts are stored (kFlagHasImpacts) and max-score
  /// pruning works directly over the segment. Must be the same arithmetic
  /// the serving scoring model uses, or pruning bounds lose bit-parity
  /// with the in-memory path.
  std::function<double(TermId, const Posting&)> impact_fn;
  /// Identifier of the model behind impact_fn (e.g. ScoringModel::name()),
  /// stamped into the header so readers can refuse to prune with bounds
  /// computed under a different model. Truncated to kImpactModelBytes - 1.
  std::string impact_model;
  /// Consecutive blocks grouped into one impact-ordered fragment of the
  /// MOAFRG01 sidecar (`<path>.frg`), written whenever impact_fn is set.
  /// 0 disables the sidecar (the segment then serves impact order through
  /// a single whole-list fragment).
  uint32_t fragment_blocks = 8;
};

/// Writes `file` as a MOAIF02 segment at `path` (atomic overwrite), plus
/// the MOAFRG01 fragment-directory sidecar at `path + ".frg"` when
/// impacts are stored. A stale sidecar from an earlier write is removed
/// before the new segment publishes, so no crash point leaves a segment
/// next to a sidecar that does not describe it.
Status WriteSegment(const InvertedFile& file, const std::string& path,
                    const SegmentWriterOptions& options = {});

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_SEGMENT_WRITER_H_
