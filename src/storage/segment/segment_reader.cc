#include "storage/segment/segment_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/cost_ticker.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "storage/segment/block_codec.h"

namespace moa {
namespace {

// All directory accesses go through memcpy into a local struct: the
// mapping is 8-aligned by construction, but memcpy keeps the reads free
// of aliasing/alignment assumptions (and UBSan-clean on any input).
template <typename T>
T LoadPod(const uint8_t* base, uint64_t index) {
  T value;
  std::memcpy(&value, base + index * sizeof(T), sizeof(T));
  return value;
}

/// Cursor over one term's compressed blocks. The block *position* (which
/// directory entry is current) and the block *payload* (the decoded
/// docs/tfs arrays) are tracked separately: moving the position is a
/// directory read, decoding is deferred until doc()/tf() actually need
/// postings. That split is what makes shallow_advance free — block-max
/// pruning moves the position across the directory, inspects
/// block_max_impact()/block_last_doc(), and only pays DecodePostingBlock
/// for blocks that survive the bound check. advance_to gallops over the
/// block directory (exponential probe + binary search), so short hops —
/// the common case in ordered probing — cost O(1) directory reads while
/// long skips stay O(log distance).
class BlockPostingCursor final : public PostingCursor {
 public:
  BlockPostingCursor(SegmentCodec codec, const uint8_t* blocks,
                     uint32_t num_blocks, const uint8_t* payload,
                     uint64_t payload_bytes, uint32_t df, double max_impact)
      : codec_(codec),
        blocks_(blocks),
        num_blocks_(num_blocks),
        payload_(payload),
        payload_bytes_(payload_bytes),
        df_(df),
        max_impact_(max_impact) {
    if (num_blocks_ > 0) SetBlock(0);
  }

  DocId doc() const override {
    if (block_idx_ >= num_blocks_) return kEndDoc;
    EnsureDecoded();
    return block_idx_ < num_blocks_ ? docs_[pos_] : kEndDoc;
  }
  uint32_t tf() const override {
    if (block_idx_ >= num_blocks_) return 0;
    EnsureDecoded();
    return block_idx_ < num_blocks_ ? tfs_[pos_] : 0;
  }
  size_t size() const override { return df_; }
  double block_max_impact() const override {
    return block_idx_ < num_blocks_ ? current_.max_impact : 0.0;
  }
  double max_impact() const override { return max_impact_; }
  DocId block_last_doc() const override {
    return block_idx_ < num_blocks_ ? current_.last_doc : kEndDoc;
  }

  void next() override {
    if (block_idx_ >= num_blocks_) return;
    EnsureDecoded();
    if (block_idx_ >= num_blocks_) return;  // decode failed, now exhausted
    if (++pos_ < current_.count) return;
    if (block_idx_ + 1 < num_blocks_) {
      SetBlock(block_idx_ + 1);
    } else {
      block_idx_ = num_blocks_;
    }
  }

  void advance_to(DocId target) override {
    if (block_idx_ >= num_blocks_) return;
    // Only consult the decoded position when it exists — checking doc()
    // here would defeat the lazy decode after a shallow_advance.
    if (decoded_ && docs_[pos_] >= target) return;
    if (target > current_.last_doc && !GallopToBlock(target)) return;
    EnsureDecoded();
    if (block_idx_ >= num_blocks_) return;  // decode failed, now exhausted
    pos_ = static_cast<uint32_t>(
        std::lower_bound(docs_.begin() + pos_, docs_.begin() + current_.count,
                         target) -
        docs_.begin());
    // target <= current block's last_doc, so pos_ < count here.
  }

  void shallow_advance(DocId target) override {
    if (block_idx_ >= num_blocks_) return;
    if (current_.last_doc >= target) return;  // block already spans target
    GallopToBlock(target);
  }

  size_t block_postings(const DocId** docs,
                        const uint32_t** tfs) const override {
    if (block_idx_ >= num_blocks_) return 0;
    EnsureDecoded();
    if (block_idx_ >= num_blocks_) return 0;  // decode failed
    *docs = docs_.data() + pos_;
    *tfs = tfs_.data() + pos_;
    return current_.count - pos_;
  }

 private:
  BlockDirEntry Entry(uint32_t i) const {
    return LoadPod<BlockDirEntry>(blocks_, i);
  }

  /// Moves the block position to directory entry i without decoding.
  void SetBlock(uint32_t i) {
    block_idx_ = i;
    current_ = Entry(i);
    decoded_ = false;
    pos_ = 0;
  }

  /// Decodes the current block's payload on first touch. const because
  /// doc()/tf() trigger it; the decoded arrays are caching state, not
  /// logical position.
  void EnsureDecoded() const {
    if (decoded_ || block_idx_ >= num_blocks_) return;
    const uint64_t end = (block_idx_ + 1 < num_blocks_)
                             ? Entry(block_idx_ + 1).offset
                             : payload_bytes_;
    docs_.resize(current_.count);
    tfs_.resize(current_.count);
    Status status = DecodePostingBlock(
        codec_, payload_ + current_.offset, end - current_.offset,
        current_.count, current_.last_doc, docs_.data(), tfs_.data());
    if (!status.ok()) {
      // Unreachable on verified segments: Open validates the directories
      // and AttachSegment runs CheckIntegrity over the payload by default,
      // so only post-attach corruption (or an explicit verify opt-out)
      // lands here. The cursor API has no error channel; fail closed and
      // behave as exhausted instead of serving garbage.
      block_idx_ = num_blocks_;
      return;
    }
    decoded_ = true;
    CostTicker::TickBlockDecoded();
  }

  /// Moves the block position to the first block with last_doc >= target
  /// via galloping search over the directory; requires
  /// target > current_.last_doc. Returns false (and exhausts the cursor)
  /// when no such block exists. Ticks one skipped block per block passed
  /// over undecoded — including the departed block if its payload was
  /// never materialized.
  bool GallopToBlock(DocId target) {
    const uint32_t from = block_idx_;
    const int64_t undecoded_from = decoded_ ? 0 : 1;
    // Exponential probe: bracket the answer in (lo - 1, probe].
    uint32_t lo = from + 1;
    uint32_t probe = lo;
    uint64_t step = 1;
    while (probe < num_blocks_ && Entry(probe).last_doc < target) {
      lo = probe + 1;
      const uint64_t next = static_cast<uint64_t>(from) + (step *= 2);
      probe = next < num_blocks_ ? static_cast<uint32_t>(next) : num_blocks_;
    }
    uint32_t hi = probe;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (Entry(mid).last_doc < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= num_blocks_) {
      CostTicker::TickBlockSkipped((num_blocks_ - from - 1) + undecoded_from);
      block_idx_ = num_blocks_;
      return false;
    }
    CostTicker::TickBlockSkipped((lo - from - 1) + undecoded_from);
    SetBlock(lo);
    return true;
  }

  SegmentCodec codec_;
  const uint8_t* blocks_;
  uint32_t num_blocks_;
  const uint8_t* payload_;
  uint64_t payload_bytes_;
  uint32_t df_;
  double max_impact_;

  // block_idx_ and the decode cache are mutable: EnsureDecoded runs from
  // const accessors and must be able to fail closed.
  mutable uint32_t block_idx_ = 0;
  uint32_t pos_ = 0;
  BlockDirEntry current_{};
  mutable bool decoded_ = false;
  mutable std::vector<DocId> docs_;
  mutable std::vector<uint32_t> tfs_;
};

}  // namespace

SegmentReader::~SegmentReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), static_cast<size_t>(size_));
  }
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path) {
  WallTimer timer;
  Result<std::unique_ptr<SegmentReader>> result = OpenInternal(path);
  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_segment_open_total")->Add();
    registry.GetHistogram("moa_segment_open_ms")
        ->Observe(timer.ElapsedMillis());
    if (!result.ok()) {
      registry.GetCounter("moa_segment_open_failures_total")->Add();
    }
  }
  return result;
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::OpenInternal(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("segment: cannot open: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("segment: fstat failed: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < sizeof(SegmentHeader)) {
    ::close(fd);
    return Status::InvalidArgument("segment: file shorter than header");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::Internal("segment: mmap failed: " + path);
  }

  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->data_ = static_cast<const uint8_t*>(map);
  reader->size_ = size;
  std::memcpy(&reader->header_, reader->data_, sizeof(SegmentHeader));
  MOA_RETURN_NOT_OK(reader->Validate());

  const SegmentLayout layout(reader->header_);
  reader->doc_lengths_ = reader->data_ + layout.doc_lengths;
  reader->term_dir_ = reader->data_ + layout.term_dir;
  reader->block_dir_ = reader->data_ + layout.block_dir;
  reader->payload_ = reader->data_ + layout.payload;

#ifdef MADV_RANDOM
  // Paging hints, purely advisory and ignored on failure (and compiled out
  // entirely where madvise is unavailable). The header and directories are
  // scanned up-front by Validate and re-read by every skip, so ask the
  // kernel to fault them in eagerly; the payload is touched in
  // query-driven order — block-max pruning makes it genuinely random — so
  // turn off readahead there instead of letting sequential heuristics
  // drag in blocks the pruning loop just decided to skip.
  {
    uint8_t* base = const_cast<uint8_t*>(reader->data_);
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page > 0 && layout.payload > 0) {
      ::madvise(base, static_cast<size_t>(layout.payload), MADV_WILLNEED);
      const uint64_t payload_page =
          layout.payload & ~(static_cast<uint64_t>(page) - 1);
      if (payload_page < size) {
        ::madvise(base + payload_page,
                  static_cast<size_t>(size - payload_page), MADV_RANDOM);
      }
    }
  }
#endif

  // Optional MOAFRG01 sidecar: absent is fine (no lazy impact order), but
  // a sidecar that exists and disagrees with the segment must fail the
  // open — understated fragment bounds would silently corrupt the exact
  // impact order every sorted-access strategy relies on.
  Result<std::pair<FragmentFileHeader, FragmentDirectory>> sidecar =
      ReadFragmentDirectory(FragmentSidecarPath(path));
  if (sidecar.ok()) {
    auto [frag_header, directory] = std::move(sidecar).ValueOrDie();
    MOA_RETURN_NOT_OK(reader->AttachFragmentDirectory(frag_header,
                                                      std::move(directory)));
  } else if (sidecar.status().code() != StatusCode::kNotFound) {
    return sidecar.status();
  }
  return reader;
}

Status SegmentReader::AttachFragmentDirectory(
    const FragmentFileHeader& frag_header, FragmentDirectory directory) {
  if (!has_impacts()) {
    return Status::InvalidArgument(
        "fragment directory: segment stores no impact bounds");
  }
  if (frag_header.num_terms != header_.num_terms) {
    return Status::InvalidArgument(
        "fragment directory: vocabulary disagrees with segment");
  }
  // The fragment bounds are only upper bounds under the model that
  // produced the block bounds they were derived from — the stamps must
  // agree byte-for-byte.
  if (std::memcmp(frag_header.impact_model, header_.impact_model,
                  kImpactModelBytes) != 0) {
    return Status::InvalidArgument(
        "fragment directory: impact model disagrees with segment");
  }

  for (TermId t = 0; t < header_.num_terms; ++t) {
    const TermDirEntry term = term_entry(t);
    const TermFragEntry& entry = directory.terms[t];
    if (entry.df != term.df) {
      return Status::InvalidArgument(
          "fragment directory: document frequency disagrees with segment");
    }
    // The fragments' block ranges must partition [0, block_count) —
    // anything else would drop or double-decode postings.
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    uint64_t covered = 0;
    double max_bound = 0.0;
    for (uint32_t f = 0; f < entry.frag_count; ++f) {
      const FragDirEntry& frag =
          directory.fragments[entry.frag_begin + f];
      if (frag.block_begin >= term.block_count ||
          frag.block_count > term.block_count - frag.block_begin) {
        return Status::InvalidArgument(
            "fragment directory: fragment range exceeds term blocks");
      }
      ranges.emplace_back(frag.block_begin, frag.block_count);
      covered += frag.block_count;
      // The stored bound must be exactly the max over the covered
      // blocks' bounds (how the writer produces it); inequality means a
      // corrupted bound — in either direction it breaks the impact-order
      // contract.
      double expected = 0.0;
      for (uint32_t b = 0; b < frag.block_count; ++b) {
        expected = std::max(
            expected, LoadPod<BlockDirEntry>(
                          block_dir_,
                          term.block_begin + frag.block_begin + b)
                          .max_impact);
      }
      if (frag.max_impact != expected) {
        return Status::InvalidArgument(
            "fragment directory: fragment/block impact mismatch");
      }
      max_bound = std::max(max_bound, frag.max_impact);
    }
    if (covered != term.block_count) {
      return Status::InvalidArgument(
          "fragment directory: fragments do not cover the term's blocks");
    }
    std::sort(ranges.begin(), ranges.end());
    uint32_t next = 0;
    for (const auto& [begin, count] : ranges) {
      if (begin != next) {
        return Status::InvalidArgument(
            "fragment directory: fragment ranges overlap or leave gaps");
      }
      next = begin + count;
    }
    if (entry.frag_count > 0 && max_bound != term.max_impact) {
      return Status::InvalidArgument(
          "fragment directory: term impact bound mismatch");
    }
  }

  frag_dir_ = std::move(directory);
  has_fragments_ = true;
  return Status::OK();
}

Status SegmentReader::Validate() {
  const SegmentHeader& h = header_;
  // The magic doubles as the format version: MOAIF02 carries varbyte
  // payload, MOAIF03 the bit-packed codec. Directories and header layout
  // are identical, so the codec is the only thing negotiated here.
  if (std::memcmp(h.magic, kSegmentMagic, sizeof(h.magic)) == 0) {
    codec_ = SegmentCodec::kVarbyte;
  } else if (std::memcmp(h.magic, kSegmentMagicV3, sizeof(h.magic)) == 0) {
    codec_ = SegmentCodec::kBitPacked;
  } else {
    return Status::InvalidArgument(
        "segment: bad magic (not MOAIF02/MOAIF03)");
  }
  if (h.block_size == 0 || h.block_size > (1u << 20)) {
    return Status::InvalidArgument("segment: implausible block size");
  }
  // Cap the counts before touching the layout arithmetic: with every
  // count < 2^32 and entry sizes <= 32, the section offsets stay far from
  // u64 overflow, so the exact-size check below is trustworthy.
  if (h.num_terms > (1ull << 32) || h.num_docs > (1ull << 32) ||
      h.num_blocks > (1ull << 32)) {
    return Status::InvalidArgument("segment: implausible header counts");
  }
  // payload_bytes is the one u64 the count caps above do not bound: a
  // crafted value can wrap SegmentLayout::file_size around u64 back onto
  // the real file size, defeating the exact-size check while the section
  // loops below read far past the mapping. No valid payload can exceed
  // the file it lives in.
  if (h.payload_bytes > size_) {
    return Status::InvalidArgument("segment: payload size exceeds file");
  }
  const SegmentLayout layout(h);
  if (layout.file_size != size_) {
    return Status::InvalidArgument(
        "segment: file size does not match header (truncated or corrupt)");
  }

  const uint8_t* doc_lengths = data_ + layout.doc_lengths;
  const uint8_t* term_dir = data_ + layout.term_dir;
  const uint8_t* block_dir = data_ + layout.block_dir;

  // Doc lengths must add up to the token count.
  uint64_t length_sum = 0;
  for (uint64_t d = 0; d < h.num_docs; ++d) {
    length_sum += LoadPod<uint32_t>(doc_lengths, d);
  }
  if (length_sum != h.total_tokens) {
    return Status::InvalidArgument("segment: doc-length/token sum mismatch");
  }

  // Term directory: contiguity and block-count arithmetic. Every block and
  // payload byte must be owned by exactly one term, in order.
  uint64_t next_block = 0;
  uint64_t next_payload = 0;
  for (uint64_t t = 0; t < h.num_terms; ++t) {
    const TermDirEntry e = LoadPod<TermDirEntry>(term_dir, t);
    if (e.df > h.num_docs) {
      return Status::InvalidArgument("segment: df exceeds document count");
    }
    const uint64_t expected_blocks =
        (static_cast<uint64_t>(e.df) + h.block_size - 1) / h.block_size;
    if (e.block_begin != next_block || e.block_count != expected_blocks ||
        e.payload_offset != next_payload) {
      return Status::InvalidArgument("segment: term directory inconsistent");
    }
    // Bound the claimed block range against the directory that actually
    // exists *before* reading any entry — a bogus df must not drive the
    // entry loads below past the end of the mapping.
    if (e.block_count > h.num_blocks - next_block) {
      return Status::InvalidArgument("segment: term blocks exceed directory");
    }
    next_block += e.block_count;
    // Blocks of this term: counts, skip keys, payload extents, impact
    // bounds.
    double term_max_impact = 0.0;
    uint32_t prev_last = 0;
    uint64_t prev_offset = 0;
    for (uint64_t b = 0; b < e.block_count; ++b) {
      const BlockDirEntry be =
          LoadPod<BlockDirEntry>(block_dir, e.block_begin + b);
      const uint32_t expected_count =
          (b + 1 < e.block_count)
              ? h.block_size
              : e.df - static_cast<uint32_t>(b) * h.block_size;
      if (be.count != expected_count) {
        return Status::InvalidArgument("segment: block count inconsistent");
      }
      if (b == 0 ? be.offset != 0 : be.offset <= prev_offset) {
        return Status::InvalidArgument("segment: block offsets not monotone");
      }
      if (b > 0 && be.last_doc <= prev_last) {
        return Status::InvalidArgument("segment: block skip keys not sorted");
      }
      if (be.last_doc >= h.num_docs) {
        return Status::InvalidArgument("segment: block doc id out of range");
      }
      prev_last = be.last_doc;
      prev_offset = be.offset;
      if (e.payload_offset + be.offset > h.payload_bytes) {
        return Status::InvalidArgument("segment: block payload out of range");
      }
      // Impact bounds feed max-score pruning: a corrupted (NaN, negative
      // or understated) bound would silently drop true top-N documents,
      // so reject what the cheap structural invariants can see.
      const bool has_impacts = (h.flags & kFlagHasImpacts) != 0;
      if (!std::isfinite(be.max_impact) || be.max_impact < 0.0 ||
          (!has_impacts && be.max_impact != 0.0)) {
        return Status::InvalidArgument("segment: implausible block impact");
      }
      term_max_impact = std::max(term_max_impact, be.max_impact);
    }
    // The term bound must be exactly the max over its blocks (how the
    // writer produces it); inequality means either field was corrupted.
    if (e.max_impact != term_max_impact || !std::isfinite(e.max_impact)) {
      return Status::InvalidArgument("segment: term/block impact mismatch");
    }
    next_payload = (t + 1 < h.num_terms)
                       ? LoadPod<TermDirEntry>(term_dir, t + 1).payload_offset
                       : h.payload_bytes;
    if (next_payload < e.payload_offset || next_payload > h.payload_bytes) {
      return Status::InvalidArgument("segment: term payload out of range");
    }
    if (e.block_count > 0) {
      const uint64_t term_bytes = next_payload - e.payload_offset;
      if (prev_offset >= term_bytes) {
        return Status::InvalidArgument("segment: block payload out of range");
      }
    } else if (next_payload != e.payload_offset) {
      return Status::InvalidArgument("segment: empty term owns payload");
    }
  }
  if (next_block != h.num_blocks) {
    return Status::InvalidArgument("segment: orphaned block entries");
  }
  if (h.num_terms == 0 && (h.num_blocks != 0 || h.payload_bytes != 0)) {
    return Status::InvalidArgument("segment: payload without terms");
  }
  return Status::OK();
}

TermDirEntry SegmentReader::term_entry(TermId t) const {
  return LoadPod<TermDirEntry>(term_dir_, t);
}

uint64_t SegmentReader::term_payload_bytes(const TermDirEntry& entry,
                                           TermId t) const {
  const uint64_t end =
      (static_cast<uint64_t>(t) + 1 < header_.num_terms)
          ? LoadPod<TermDirEntry>(term_dir_, t + 1).payload_offset
          : header_.payload_bytes;
  return end - entry.payload_offset;
}

uint32_t SegmentReader::DocFrequency(TermId t) const {
  return term_entry(t).df;
}

double SegmentReader::MaxImpact(TermId t) const {
  return term_entry(t).max_impact;
}

uint32_t SegmentReader::DocLength(DocId d) const {
  return LoadPod<uint32_t>(doc_lengths_, d);
}

std::unique_ptr<PostingCursor> SegmentReader::OpenCursor(TermId t) const {
  const TermDirEntry entry = term_entry(t);
  return std::make_unique<BlockPostingCursor>(
      codec_, block_dir_ + entry.block_begin * sizeof(BlockDirEntry),
      entry.block_count, payload_ + entry.payload_offset,
      term_payload_bytes(entry, t), entry.df, entry.max_impact);
}

/// FragmentCursor over one term's validated MOAFRG01 entries: every
/// fragment is served by the ordinary lazy block cursor restricted to the
/// fragment's block run, so decoding one fragment never touches its
/// neighbours' payload.
class SegmentFragmentCursor final : public FragmentCursor {
 public:
  SegmentFragmentCursor(const SegmentReader* reader, TermId term)
      : reader_(reader),
        term_(reader->term_entry(term)),
        entry_(reader->frag_dir_.terms[term]),
        term_payload_bytes_(
            reader->term_payload_bytes(term_, term)) {}

  size_t num_fragments() const override { return entry_.frag_count; }
  double max_impact(size_t f) const override { return frag(f).max_impact; }
  size_t size(size_t f) const override {
    const FragDirEntry& fr = frag(f);
    size_t postings = 0;
    for (uint32_t b = 0; b < fr.block_count; ++b) {
      postings += BlockEntry(fr.block_begin + b).count;
    }
    return postings;
  }
  std::unique_ptr<PostingCursor> OpenFragment(size_t f) const override {
    const FragDirEntry& fr = frag(f);
    // Byte extent of the run: up to the block after it (or the term end).
    const uint32_t end_block = fr.block_begin + fr.block_count;
    const uint64_t end_bytes = end_block < term_.block_count
                                   ? BlockEntry(end_block).offset
                                   : term_payload_bytes_;
    return std::make_unique<BlockPostingCursor>(
        reader_->codec(),
        reader_->block_dir_ + (term_.block_begin + fr.block_begin) *
                                  sizeof(BlockDirEntry),
        fr.block_count, reader_->payload_ + term_.payload_offset, end_bytes,
        static_cast<uint32_t>(size(f)), fr.max_impact);
  }

 private:
  const FragDirEntry& frag(size_t f) const {
    return reader_->frag_dir_.fragments[entry_.frag_begin + f];
  }
  BlockDirEntry BlockEntry(uint32_t term_relative) const {
    return LoadPod<BlockDirEntry>(reader_->block_dir_,
                                  term_.block_begin + term_relative);
  }

  const SegmentReader* reader_;
  TermDirEntry term_;
  TermFragEntry entry_;
  uint64_t term_payload_bytes_;
};

std::unique_ptr<FragmentCursor> SegmentReader::OpenFragmentCursor(
    TermId t) const {
  if (!has_fragments_) return PostingSource::OpenFragmentCursor(t);
  return std::make_unique<SegmentFragmentCursor>(this, t);
}

Status SegmentReader::CheckIntegrity() const {
  uint64_t token_sum = 0;
  std::vector<DocId> docs;
  std::vector<uint32_t> tfs;
  for (TermId t = 0; t < header_.num_terms; ++t) {
    const TermDirEntry entry = term_entry(t);
    const uint8_t* blocks =
        block_dir_ + entry.block_begin * sizeof(BlockDirEntry);
    const uint8_t* payload = payload_ + entry.payload_offset;
    const uint64_t payload_bytes = term_payload_bytes(entry, t);
    uint64_t decoded = 0;
    DocId prev_last = 0;
    for (uint32_t b = 0; b < entry.block_count; ++b) {
      const BlockDirEntry be = LoadPod<BlockDirEntry>(blocks, b);
      const uint64_t end =
          (b + 1 < entry.block_count)
              ? LoadPod<BlockDirEntry>(blocks, b + 1).offset
              : payload_bytes;
      docs.resize(be.count);
      tfs.resize(be.count);
      MOA_RETURN_NOT_OK(DecodePostingBlock(codec_, payload + be.offset,
                                           end - be.offset, be.count,
                                           be.last_doc, docs.data(),
                                           tfs.data()));
      if (b > 0 && docs.front() <= prev_last) {
        return Status::InvalidArgument("segment: blocks overlap in doc ids");
      }
      prev_last = be.last_doc;
      uint32_t max_tf = 0;
      for (uint32_t i = 0; i < be.count; ++i) {
        token_sum += tfs[i];
        max_tf = std::max(max_tf, tfs[i]);
      }
      if (max_tf != be.max_tf) {
        return Status::InvalidArgument("segment: block max_tf mismatch");
      }
      decoded += be.count;
    }
    if (decoded != entry.df) {
      return Status::InvalidArgument("segment: df/block count mismatch");
    }
  }
  if (token_sum != header_.total_tokens) {
    return Status::InvalidArgument("segment: token count mismatch");
  }
  return Status::OK();
}

Result<InvertedFile> SegmentReader::ToInvertedFile() const {
  MOA_RETURN_NOT_OK(CheckIntegrity());
  // Transpose term-major postings into per-doc buckets and rebuild through
  // the builder so every in-memory invariant is revalidated.
  const size_t num_docs = header_.num_docs;
  std::vector<std::vector<std::pair<TermId, uint32_t>>> per_doc(num_docs);
  for (TermId t = 0; t < header_.num_terms; ++t) {
    for (auto cursor = OpenCursor(t); !cursor->at_end(); cursor->next()) {
      per_doc[cursor->doc()].emplace_back(t, cursor->tf());
    }
  }
  InvertedFileBuilder builder(header_.num_terms);
  for (DocId d = 0; d < num_docs; ++d) {
    MOA_RETURN_NOT_OK(builder.AddDocument(d, per_doc[d]));
  }
  InvertedFile rebuilt = builder.Build();
  for (DocId d = 0; d < num_docs; ++d) {
    if (rebuilt.DocLength(d) != DocLength(d)) {
      return Status::InvalidArgument("segment: doc length mismatch");
    }
  }
  return rebuilt;
}

}  // namespace moa
