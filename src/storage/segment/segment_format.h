// MOAIF02/MOAIF03 on-disk segment layout, shared by the writer and the
// reader.
//
// A segment is one little-endian file of four 8-byte-aligned sections
// behind a fixed header:
//
//   header         SegmentHeader (magic "MOAIF0x\0", counts, block size)
//   doc_lengths    u32[num_docs], zero-padded to 8 bytes
//   term dir       TermDirEntry[num_terms]
//   block dir      BlockDirEntry[num_blocks]
//   payload        compressed block payload, u8[payload_bytes]
//
// The two format versions share every structure above and differ only in
// the per-block payload codec (the magic *is* the version negotiation):
//
//   MOAIF02  varbyte — first doc absolute, then doc gaps, then tfs, each
//            LEB128-style one integer at a time.
//   MOAIF03  bit-packed — a fixed 8-byte block header (absolute first
//            doc, per-block bit widths) followed by word-aligned arrays
//            of fixed-width values (doc gaps - 1, then raw tfs). The
//            constant per-block width turns decode into branch-free
//            shift/mask loops the compiler auto-vectorizes, and whole
//            blocks (up to block_size postings) materialize per call.
//
// Every term owns a contiguous run of block-directory entries and a
// contiguous payload range; block/byte extents are derived from the next
// entry's start (no redundant length fields to keep consistent). Each
// block encodes up to `block_size` postings independently of its
// neighbours, so a reader can decode any single block without touching
// the rest of the list; that is what makes lazy per-block decode and
// skip-driven advance_to cheap over mmap.
//
// Impact metadata (per-term and per-block max scoring weight) is optional:
// kFlagHasImpacts says whether the writer was given a weight function.
// The bounds are stored as f64 computed with the exact same arithmetic as
// InvertedFile::BuildImpactOrders so that max-score pruning over a segment
// takes bit-identical decisions to the in-memory path.
#ifndef MOA_STORAGE_SEGMENT_SEGMENT_FORMAT_H_
#define MOA_STORAGE_SEGMENT_SEGMENT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace moa {

inline constexpr char kSegmentMagic[8] = {'M', 'O', 'A', 'I', 'F', '0', '2',
                                          '\0'};
inline constexpr char kSegmentMagicV3[8] = {'M', 'O', 'A', 'I', 'F', '0', '3',
                                            '\0'};
inline constexpr uint32_t kFlagHasImpacts = 1u << 0;
inline constexpr uint32_t kDefaultSegmentBlockSize = 128;

/// Which per-block payload codec a segment uses; selected by the writer
/// (SegmentWriterOptions::codec) and negotiated by the reader from the
/// file magic. The directories and every impact bound are identical
/// across codecs, so the choice is purely a speed/size trade on the
/// payload bytes.
enum class SegmentCodec : uint32_t {
  kVarbyte = 2,    ///< MOAIF02: LEB128-style, one integer at a time
  kBitPacked = 3,  ///< MOAIF03: per-block fixed-width, bulk word decode
};

inline const char* SegmentCodecName(SegmentCodec codec) {
  return codec == SegmentCodec::kBitPacked ? "bit-packed" : "varbyte";
}

/// File magic a segment with this codec carries ("MOAIF02\0"/"MOAIF03\0").
inline const char* SegmentMagicFor(SegmentCodec codec) {
  return codec == SegmentCodec::kBitPacked ? kSegmentMagicV3 : kSegmentMagic;
}

/// Format name for human-facing output ("MOAIF02"/"MOAIF03").
inline const char* SegmentFormatName(SegmentCodec codec) {
  return codec == SegmentCodec::kBitPacked ? "MOAIF03" : "MOAIF02";
}

/// Max bytes (including NUL padding) of the impact-model identifier.
inline constexpr size_t kImpactModelBytes = 32;

/// Fixed-size file header. All fields little-endian.
struct SegmentHeader {
  char magic[8];
  uint32_t block_size;    ///< max postings per block, >= 1
  uint32_t flags;         ///< kFlag* bits
  /// NUL-padded name of the scoring model whose Weight produced the
  /// max_impact metadata (empty without kFlagHasImpacts). Impact bounds
  /// are only upper bounds under the *same* model — consumers must match
  /// this against their serving model before trusting them for pruning.
  char impact_model[kImpactModelBytes];
  uint64_t num_terms;
  uint64_t num_docs;
  uint64_t total_tokens;  ///< sum of all tf values (integrity anchor)
  uint64_t num_blocks;    ///< total entries in the block directory
  uint64_t payload_bytes; ///< size of the payload section
};
static_assert(sizeof(SegmentHeader) == 88);
static_assert(std::is_trivially_copyable_v<SegmentHeader>);

/// One term's entry in the term directory.
struct TermDirEntry {
  uint64_t block_begin;     ///< first block-directory index of the term
  uint64_t payload_offset;  ///< byte offset of the term's payload within
                            ///< the payload section
  uint32_t block_count;     ///< number of blocks (ceil(df / block_size))
  uint32_t df;              ///< document frequency
  double max_impact;        ///< max weight over the term (0 w/o impacts)
};
static_assert(sizeof(TermDirEntry) == 32);
static_assert(std::is_trivially_copyable_v<TermDirEntry>);

/// One block's entry in the block directory.
struct BlockDirEntry {
  uint32_t offset;      ///< byte offset within the owning term's payload
  uint32_t last_doc;    ///< doc id of the block's final posting (skip key)
  uint32_t count;       ///< postings in the block, in [1, block_size]
  uint32_t max_tf;      ///< max term frequency in the block
  double max_impact;    ///< max weight in the block (0 w/o impacts)
};
static_assert(sizeof(BlockDirEntry) == 24);
static_assert(std::is_trivially_copyable_v<BlockDirEntry>);

/// Size of `bytes` rounded up to the section alignment.
inline uint64_t SegmentAlign(uint64_t bytes) { return (bytes + 7) & ~7ull; }

/// Byte offsets of each section for the given header, in file order.
struct SegmentLayout {
  uint64_t doc_lengths = 0;
  uint64_t term_dir = 0;
  uint64_t block_dir = 0;
  uint64_t payload = 0;
  uint64_t file_size = 0;

  explicit SegmentLayout(const SegmentHeader& h) {
    doc_lengths = sizeof(SegmentHeader);
    term_dir = doc_lengths + SegmentAlign(h.num_docs * sizeof(uint32_t));
    block_dir = term_dir + h.num_terms * sizeof(TermDirEntry);
    payload = block_dir + h.num_blocks * sizeof(BlockDirEntry);
    file_size = payload + h.payload_bytes;
  }
};

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_SEGMENT_FORMAT_H_
