#include "storage/segment/segment_writer.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/atomic_file.h"
#include "storage/segment/block_codec.h"
#include "storage/segment/fragment_directory.h"

namespace moa {
namespace {

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  return WriteAllBytes(f, data, size, "segment");
}

template <typename T>
Status WritePodVector(std::FILE* f, const std::vector<T>& v) {
  return WriteBytes(f, v.data(), v.size() * sizeof(T));
}

/// Fully built segment sections, shared by the segment body writer and
/// the fragment-directory sidecar.
struct SegmentImage {
  std::vector<TermDirEntry> term_dir;
  std::vector<BlockDirEntry> block_dir;
  std::vector<uint8_t> payload;
};

Status BuildImage(const InvertedFile& file,
                  const SegmentWriterOptions& options, SegmentImage* image) {
  const uint32_t block_size = options.block_size;

  // Build the directories and the payload in memory. Payload size is a
  // few bytes per posting — for collections where that does not fit,
  // this is the place to stream per-term instead.
  std::vector<TermDirEntry>& term_dir = image->term_dir;
  std::vector<BlockDirEntry>& block_dir = image->block_dir;
  std::vector<uint8_t>& payload = image->payload;
  term_dir.resize(file.num_terms());
  payload.reserve(static_cast<size_t>(file.num_postings()) * 2);

  for (TermId t = 0; t < file.num_terms(); ++t) {
    const PostingList& list = file.list(t);
    TermDirEntry& entry = term_dir[t];
    entry.block_begin = block_dir.size();
    entry.payload_offset = payload.size();
    entry.df = static_cast<uint32_t>(list.size());
    entry.max_impact = 0.0;

    const std::vector<Posting>& postings = list.postings();
    for (size_t begin = 0; begin < postings.size(); begin += block_size) {
      const size_t count =
          std::min<size_t>(block_size, postings.size() - begin);
      // BlockDirEntry::offset is relative to the term's payload and only
      // 32 bits wide; truncating here would write a segment that passes
      // WriteSegment but fails (or misreads) at Open.
      const uint64_t block_offset = payload.size() - entry.payload_offset;
      if (block_offset > UINT32_MAX) {
        return Status::InvalidArgument(
            "segment: term payload exceeds 4 GiB (block offset overflow)");
      }
      BlockDirEntry block;
      block.offset = static_cast<uint32_t>(block_offset);
      block.last_doc = postings[begin + count - 1].doc;
      block.count = static_cast<uint32_t>(count);
      block.max_tf = 0;
      block.max_impact = 0.0;
      for (size_t i = begin; i < begin + count; ++i) {
        block.max_tf = std::max(block.max_tf, postings[i].tf);
        if (options.impact_fn) {
          block.max_impact =
              std::max(block.max_impact, options.impact_fn(t, postings[i]));
        }
      }
      entry.max_impact = std::max(entry.max_impact, block.max_impact);
      EncodePostingBlock(options.codec, postings.data() + begin, count,
                         payload);
      block_dir.push_back(block);
    }
    entry.block_count =
        static_cast<uint32_t>(block_dir.size() - entry.block_begin);
  }
  return Status::OK();
}

Status WriteBody(const InvertedFile& file, const SegmentWriterOptions& options,
                 const SegmentImage& image, std::FILE* out) {
  const std::vector<TermDirEntry>& term_dir = image.term_dir;
  const std::vector<BlockDirEntry>& block_dir = image.block_dir;
  const std::vector<uint8_t>& payload = image.payload;

  SegmentHeader header{};
  std::memcpy(header.magic, SegmentMagicFor(options.codec),
              sizeof(header.magic));
  header.block_size = options.block_size;
  header.flags = options.impact_fn ? kFlagHasImpacts : 0;
  if (options.impact_fn) {
    options.impact_model.copy(header.impact_model,
                              sizeof(header.impact_model) - 1);
  }
  header.num_terms = file.num_terms();
  header.num_docs = file.num_docs();
  header.total_tokens = static_cast<uint64_t>(file.total_tokens());
  header.num_blocks = block_dir.size();
  header.payload_bytes = payload.size();

  MOA_RETURN_NOT_OK(WriteBytes(out, &header, sizeof(header)));
  MOA_RETURN_NOT_OK(WritePodVector(out, file.doc_lengths()));
  const uint64_t doc_bytes = file.num_docs() * sizeof(uint32_t);
  const uint64_t pad = SegmentAlign(doc_bytes) - doc_bytes;
  const char zeros[8] = {};
  MOA_RETURN_NOT_OK(WriteBytes(out, zeros, pad));
  MOA_RETURN_NOT_OK(WritePodVector(out, term_dir));
  MOA_RETURN_NOT_OK(WritePodVector(out, block_dir));
  MOA_RETURN_NOT_OK(WritePodVector(out, payload));
  return Status::OK();
}

}  // namespace

Status WriteSegment(const InvertedFile& file, const std::string& path,
                    const SegmentWriterOptions& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("segment: block_size must be >= 1");
  }
  SegmentImage image;
  MOA_RETURN_NOT_OK(BuildImage(file, options, &image));

  // A sidecar left over from an earlier write at this path describes the
  // *old* segment; drop it before the new segment publishes so no crash
  // point leaves a mismatched pair (segment-without-sidecar is valid and
  // merely loses laziness).
  const std::string sidecar = FragmentSidecarPath(path);
  std::remove(sidecar.c_str());

  MOA_RETURN_NOT_OK(WriteFileAtomically(path, [&](std::FILE* out) {
    return WriteBody(file, options, image, out);
  }));

  if (options.impact_fn && options.fragment_blocks > 0) {
    const FragmentDirectory directory = BuildFragmentDirectory(
        image.term_dir, image.block_dir, options.fragment_blocks);
    return WriteFragmentDirectory(
        sidecar, directory,
        options.impact_model.substr(0, kImpactModelBytes - 1));
  }
  return Status::OK();
}

}  // namespace moa
