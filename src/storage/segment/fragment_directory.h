// MOAFRG01 on-disk fragment directory — the impact-ordered fragment
// sidecar of a MOAIF02 segment.
//
// The sidecar lives next to its segment (`<segment path>.frg`) and groups
// every term's blocks into *fragments*: disjoint runs of consecutive
// blocks, each bounded by the max scoring weight of any posting inside it,
// listed per term in descending max-impact order. This is what gives a
// compressed doc-ordered segment cheap impact-ordered (sorted) access:
// a consumer decodes fragments in directory order and can stop — or defer
// decoding — as soon as the remaining fragments' bounds cannot matter,
// while every fragment still streams in doc order through the ordinary
// block cursor (see PostingSource::OpenImpactCursor).
//
// One little-endian file of three sections, all fixed-size records:
//
//   header      FragmentFileHeader (magic "MOAFRG01", counts, model stamp)
//   term dir    TermFragEntry[num_terms]
//   frag dir    FragDirEntry[num_fragments]
//
// Fragment bounds are only upper bounds under the same scoring model as
// the segment's block impacts, so the header repeats the segment's
// impact-model stamp; SegmentReader::Open rejects a sidecar whose stamp
// (or any structural invariant) disagrees with the segment it sits next
// to. The sidecar is optional and advisory for correctness: a segment
// without one still serves exact impact order, just without laziness
// (the whole list counts as a single fragment).
//
// Crash safety: the writer removes a stale sidecar before publishing a
// new segment and writes the new sidecar via atomic_file afterwards, so
// a crash at any point leaves either a matching pair or a segment with
// no sidecar — never a mismatched pair.
#ifndef MOA_STORAGE_SEGMENT_FRAGMENT_DIRECTORY_H_
#define MOA_STORAGE_SEGMENT_FRAGMENT_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/segment/segment_format.h"

namespace moa {

inline constexpr char kFragmentMagic[8] = {'M', 'O', 'A', 'F', 'R', 'G',
                                           '0', '1'};

/// Default number of consecutive blocks grouped into one fragment.
inline constexpr uint32_t kDefaultFragmentBlocks = 8;

/// Sidecar path of a segment: `<segment path>.frg`.
inline std::string FragmentSidecarPath(const std::string& segment_path) {
  return segment_path + ".frg";
}

/// Fixed-size file header. All fields little-endian.
struct FragmentFileHeader {
  char magic[8];
  uint32_t fragment_blocks;  ///< writer's grouping knob (informational)
  uint32_t flags;            ///< reserved, 0
  /// NUL-padded scoring-model stamp; must equal the segment header's
  /// impact_model byte-for-byte.
  char impact_model[kImpactModelBytes];
  uint64_t num_terms;
  uint64_t num_fragments;  ///< total entries in the fragment directory
};
static_assert(sizeof(FragmentFileHeader) == 64);
static_assert(std::is_trivially_copyable_v<FragmentFileHeader>);

/// One term's entry in the sidecar term directory.
struct TermFragEntry {
  uint64_t frag_begin;  ///< first fragment-directory index of the term
  uint32_t frag_count;  ///< fragments of the term (0 for empty lists)
  uint32_t df;          ///< document frequency (segment cross-check)
};
static_assert(sizeof(TermFragEntry) == 16);
static_assert(std::is_trivially_copyable_v<TermFragEntry>);

/// One fragment: a run of consecutive blocks of the owning term.
/// Per term, entries are ordered by descending max_impact (ties by
/// ascending block_begin); their block ranges partition the term's blocks.
struct FragDirEntry {
  uint32_t block_begin;  ///< first block, relative to the term's blocks
  uint32_t block_count;  ///< blocks in the fragment, >= 1
  double max_impact;     ///< max weight over the fragment's postings
};
static_assert(sizeof(FragDirEntry) == 16);
static_assert(std::is_trivially_copyable_v<FragDirEntry>);

/// \brief Decoded (or to-be-written) fragment directory.
struct FragmentDirectory {
  uint32_t fragment_blocks = kDefaultFragmentBlocks;
  std::vector<TermFragEntry> terms;
  std::vector<FragDirEntry> fragments;
};

/// Builds the directory from a segment's in-memory term/block directories:
/// runs of `fragment_blocks` consecutive blocks, sorted per term by
/// descending max impact (max over the run's block bounds).
FragmentDirectory BuildFragmentDirectory(
    const std::vector<TermDirEntry>& term_dir,
    const std::vector<BlockDirEntry>& block_dir, uint32_t fragment_blocks);

/// Writes the sidecar at `path` (atomic overwrite). `impact_model` is the
/// segment's stamp, truncated to kImpactModelBytes - 1 the same way.
Status WriteFragmentDirectory(const std::string& path,
                              const FragmentDirectory& directory,
                              const std::string& impact_model);

/// Reads and *structurally* validates the sidecar at `path`: magic, exact
/// file size, term-directory contiguity and per-entry sanity. Returns the
/// raw header too so the caller can cross-validate the model stamp and
/// the per-term block ranges against the segment it belongs to
/// (SegmentReader::Open does; the block-level bounds live there).
Result<std::pair<FragmentFileHeader, FragmentDirectory>>
ReadFragmentDirectory(const std::string& path);

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_FRAGMENT_DIRECTORY_H_
