// Variable-byte (LEB128-style) codec for u32 values: 7 payload bits per
// byte, high bit = continuation. Doc-id gaps and term frequencies are
// small on real collections, so most values take one byte — this is the
// workhorse behind the MOAIF02 block payload.
//
// The decoder is hard-bounds-checked: it never reads past `end` and
// rejects overlong / overflowing encodings, so a corrupt or truncated
// segment can at worst produce a clean decode error, never an over-read.
#ifndef MOA_STORAGE_SEGMENT_VARBYTE_H_
#define MOA_STORAGE_SEGMENT_VARBYTE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace moa {

/// Appends the varbyte encoding of `value` (1..5 bytes) to `out`.
inline void VarbyteAppend(std::vector<uint8_t>& out, uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

/// Encoded size of `value` in bytes without materializing it.
inline size_t VarbyteSize(uint32_t value) {
  size_t n = 1;
  while (value >= 0x80u) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Decodes one varbyte value from [p, end). Returns the number of bytes
/// consumed, or 0 if the input is truncated, overlong or overflows u32.
inline size_t VarbyteDecode(const uint8_t* p, const uint8_t* end,
                            uint32_t* value) {
  uint32_t v = 0;
  size_t shift = 0;
  for (size_t i = 0; i < 5; ++i) {
    if (p + i >= end) return 0;  // truncated
    const uint8_t byte = p[i];
    const uint32_t payload = byte & 0x7Fu;
    // Byte 5 may only carry the top 4 bits of a u32.
    if (i == 4 && payload > 0x0Fu) return 0;  // overflow
    v |= payload << shift;
    if ((byte & 0x80u) == 0) {
      *value = v;
      return i + 1;
    }
    shift += 7;
  }
  return 0;  // continuation bit set on the 5th byte
}

}  // namespace moa

#endif  // MOA_STORAGE_SEGMENT_VARBYTE_H_
