#include "storage/segment/block_codec.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "storage/segment/posting_cursor.h"
#include "storage/segment/varbyte.h"

namespace moa {
namespace {

// ------------------------------------------------------------- varbyte

void EncodeVarbyte(const Posting* postings, size_t count,
                   std::vector<uint8_t>& out) {
  DocId prev = 0;
  for (size_t i = 0; i < count; ++i) {
    VarbyteAppend(out, i == 0 ? postings[0].doc : postings[i].doc - prev);
    prev = postings[i].doc;
  }
  for (size_t i = 0; i < count; ++i) {
    VarbyteAppend(out, postings[i].tf);
  }
}

Status DecodeVarbyte(const uint8_t* data, size_t bytes, size_t count,
                     DocId expected_last_doc, DocId* docs, uint32_t* tfs) {
  const uint8_t* p = data;
  const uint8_t* end = data + bytes;
  DocId prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    const size_t used = VarbyteDecode(p, end, &v);
    if (used == 0) return Status::InvalidArgument("segment block: bad doc");
    p += used;
    if (i == 0) {
      prev = v;
    } else {
      // Gaps are >= 1 by construction; 0 would break strict ordering and
      // an overflow past kEndDoc would wrap.
      if (v == 0 || v > kEndDoc - prev) {
        return Status::InvalidArgument("segment block: doc order violated");
      }
      prev += v;
    }
    docs[i] = prev;
  }
  if (count > 0 && prev != expected_last_doc) {
    return Status::InvalidArgument("segment block: last doc mismatch");
  }
  for (size_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    const size_t used = VarbyteDecode(p, end, &v);
    if (used == 0) return Status::InvalidArgument("segment block: bad tf");
    p += used;
    tfs[i] = v;
  }
  if (p != end) {
    return Status::InvalidArgument("segment block: trailing bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------- bit-packed

inline uint32_t BitWidth(uint32_t v) {
  uint32_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

inline uint64_t WordsFor(uint64_t values, uint32_t width) {
  return (values * width + 31) / 32;
}

/// Packs `n` values of `width` bits each (LSB-first) onto `out` as
/// little-endian u32 words, starting word-aligned.
void PackBits(const uint32_t* values, size_t n, uint32_t width,
              std::vector<uint8_t>& out) {
  const size_t words = static_cast<size_t>(WordsFor(n, width));
  const size_t base = out.size();
  out.resize(base + words * sizeof(uint32_t), 0);
  if (width == 0) return;
  uint8_t* dst = out.data() + base;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = static_cast<uint64_t>(i) * width;
    const size_t word = static_cast<size_t>(bit >> 5);
    const uint32_t shift = static_cast<uint32_t>(bit & 31);
    uint64_t chunk;
    std::memcpy(&chunk, dst + word * 4,
                (word + 1 < words) ? 8 : 4);  // last word has no neighbour
    chunk |= static_cast<uint64_t>(values[i]) << shift;
    std::memcpy(dst + word * 4, &chunk, (word + 1 < words) ? 8 : 4);
  }
}

inline uint32_t LoadWord(const uint8_t* src, size_t word) {
  uint32_t w;
  std::memcpy(&w, src + word * sizeof(uint32_t), sizeof(uint32_t));
  return w;
}

/// Fixed-width unpack: with W a compile-time constant the shift amounts
/// and mask fold to constants and the loop body has no data-dependent
/// control flow beyond the last-word guard, so the compiler unrolls and
/// vectorizes it — this is the MOAIF03 hot path. Never reads past the
/// section's own ceil(n*W/32) words.
template <uint32_t W>
void UnpackBits(const uint8_t* src, size_t n, uint32_t* out) {
  if constexpr (W == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
  } else if constexpr (W == 32) {
    std::memcpy(out, src, n * sizeof(uint32_t));
  } else {
    constexpr uint64_t kMask = (uint64_t{1} << W) - 1;
    const size_t words = (n * W + 31) / 32;
    // Values ending within the first words - 1 words can splice two
    // unconditional word loads; only values touching the last word need
    // the bounds guard. i < bulk implies (i + 1) * W <= (words - 1) * 32.
    const size_t bulk = words >= 2 ? std::min(n, ((words - 1) * 32) / W) : 0;
    size_t i = 0;
    for (; i < bulk; ++i) {
      const uint64_t bit = static_cast<uint64_t>(i) * W;
      const size_t word = static_cast<size_t>(bit >> 5);
      const uint64_t two = static_cast<uint64_t>(LoadWord(src, word)) |
                           (static_cast<uint64_t>(LoadWord(src, word + 1))
                            << 32);
      out[i] = static_cast<uint32_t>((two >> (bit & 31)) & kMask);
    }
    for (; i < n; ++i) {
      const uint64_t bit = static_cast<uint64_t>(i) * W;
      const size_t word = static_cast<size_t>(bit >> 5);
      uint64_t two = LoadWord(src, word);
      if (word + 1 < words) {
        two |= static_cast<uint64_t>(LoadWord(src, word + 1)) << 32;
      }
      out[i] = static_cast<uint32_t>((two >> (bit & 31)) & kMask);
    }
  }
}

using UnpackFn = void (*)(const uint8_t*, size_t, uint32_t*);

template <size_t... Ws>
constexpr std::array<UnpackFn, sizeof...(Ws)> MakeUnpackTable(
    std::index_sequence<Ws...>) {
  return {&UnpackBits<static_cast<uint32_t>(Ws)>...};
}

/// Dispatch table over the 33 possible widths; each entry is a fully
/// specialized constant-shift loop.
void Unpack(const uint8_t* src, size_t n, uint32_t width, uint32_t* out) {
  static constexpr auto kTable =
      MakeUnpackTable(std::make_index_sequence<33>{});
  kTable[width](src, n, out);
}

/// The fixed MOAIF03 per-block header (see block_codec.h).
struct PackedBlockHeader {
  uint32_t first_doc;
  uint8_t gap_bits;
  uint8_t tf_bits;
  uint16_t reserved;
};
static_assert(sizeof(PackedBlockHeader) == 8);

void EncodePacked(const Posting* postings, size_t count,
                  std::vector<uint8_t>& out) {
  // Materialize the value streams, then measure the minimal widths.
  std::vector<uint32_t> gaps(count > 0 ? count - 1 : 0);
  std::vector<uint32_t> tfs(count);
  uint32_t max_gap = 0, max_tf = 0;
  for (size_t i = 1; i < count; ++i) {
    gaps[i - 1] = postings[i].doc - postings[i - 1].doc - 1;
    max_gap = std::max(max_gap, gaps[i - 1]);
  }
  for (size_t i = 0; i < count; ++i) {
    tfs[i] = postings[i].tf;
    max_tf = std::max(max_tf, tfs[i]);
  }

  PackedBlockHeader header{};
  header.first_doc = count > 0 ? postings[0].doc : 0;
  header.gap_bits = static_cast<uint8_t>(BitWidth(max_gap));
  header.tf_bits = static_cast<uint8_t>(BitWidth(max_tf));
  header.reserved = 0;
  const size_t base = out.size();
  out.resize(base + sizeof(header));
  std::memcpy(out.data() + base, &header, sizeof(header));

  PackBits(gaps.data(), gaps.size(), header.gap_bits, out);
  PackBits(tfs.data(), tfs.size(), header.tf_bits, out);
}

/// True iff the unused high bits of a packed section's last word are all
/// zero. PackBits zero-fills them, so any set bit there is corruption that
/// the value streams alone could never reveal.
bool PaddingClear(const uint8_t* base, size_t n, uint32_t width) {
  const uint64_t bits = static_cast<uint64_t>(n) * width;
  const uint64_t words = (bits + 31) / 32;
  if (words == 0) return true;
  const uint32_t used = static_cast<uint32_t>(bits - (words - 1) * 32);
  if (used == 32) return true;
  const uint32_t last = LoadWord(base, static_cast<size_t>(words - 1));
  return (last >> used) == 0;
}

Status DecodePacked(const uint8_t* data, size_t bytes, size_t count,
                    DocId expected_last_doc, DocId* docs, uint32_t* tfs) {
  if (count == 0) {
    return bytes == 0 ? Status::OK()
                      : Status::InvalidArgument(
                            "segment block: trailing bytes");
  }
  if (bytes < sizeof(PackedBlockHeader)) {
    return Status::InvalidArgument("segment block: truncated header");
  }
  PackedBlockHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.gap_bits > 32 || header.tf_bits > 32) {
    return Status::InvalidArgument("segment block: bit width out of range");
  }
  if (header.reserved != 0) {
    return Status::InvalidArgument("segment block: reserved bits set");
  }
  const uint64_t gap_words = WordsFor(count - 1, header.gap_bits);
  const uint64_t tf_words = WordsFor(count, header.tf_bits);
  const uint64_t expected_bytes =
      sizeof(PackedBlockHeader) + (gap_words + tf_words) * sizeof(uint32_t);
  if (bytes != expected_bytes) {
    return Status::InvalidArgument("segment block: size mismatch");
  }
  const uint8_t* gap_base = data + sizeof(PackedBlockHeader);
  const uint8_t* tf_base = gap_base + gap_words * sizeof(uint32_t);
  if (!PaddingClear(gap_base, count - 1, header.gap_bits) ||
      !PaddingClear(tf_base, count, header.tf_bits)) {
    return Status::InvalidArgument("segment block: padding bits set");
  }

  // Bulk-unpack the gap stream straight into docs[1..count), then turn it
  // into absolute ids with one running sum. The u64 accumulator cannot
  // wrap, so `sum == expected_last_doc` proves every intermediate id fits
  // u32 and strictly increases (each stored gap is `gap - 1`, so real
  // gaps are >= 1 by construction).
  Unpack(gap_base, count - 1, header.gap_bits, docs + 1);
  uint64_t doc = header.first_doc;
  uint32_t max_gap = 0;
  docs[0] = header.first_doc;
  for (size_t i = 1; i < count; ++i) {
    max_gap = std::max(max_gap, docs[i]);
    doc += static_cast<uint64_t>(docs[i]) + 1;
    docs[i] = static_cast<uint32_t>(doc);
  }
  if (doc != expected_last_doc) {
    return Status::InvalidArgument("segment block: last doc mismatch");
  }
  Unpack(tf_base, count, header.tf_bits, tfs);
  uint32_t max_tf = 0;
  for (size_t i = 0; i < count; ++i) max_tf = std::max(max_tf, tfs[i]);
  // Widths are canonical-minimal; a non-minimal width means a corrupted
  // width byte that happened to keep the section sizes consistent.
  if (count > 1 && BitWidth(max_gap) != header.gap_bits) {
    return Status::InvalidArgument("segment block: non-minimal gap width");
  }
  if (count == 1 && header.gap_bits != 0) {
    return Status::InvalidArgument("segment block: gap width without gaps");
  }
  if (BitWidth(max_tf) != header.tf_bits) {
    return Status::InvalidArgument("segment block: non-minimal tf width");
  }
  return Status::OK();
}

}  // namespace

void EncodePostingBlock(SegmentCodec codec, const Posting* postings,
                        size_t count, std::vector<uint8_t>& out) {
  if (codec == SegmentCodec::kBitPacked) {
    EncodePacked(postings, count, out);
  } else {
    EncodeVarbyte(postings, count, out);
  }
}

Status DecodePostingBlock(SegmentCodec codec, const uint8_t* data,
                          size_t bytes, size_t count, DocId expected_last_doc,
                          DocId* docs, uint32_t* tfs) {
  if (codec == SegmentCodec::kBitPacked) {
    return DecodePacked(data, bytes, count, expected_last_doc, docs, tfs);
  }
  return DecodeVarbyte(data, bytes, count, expected_last_doc, docs, tfs);
}

void EncodePostingBlock(const Posting* postings, size_t count,
                        std::vector<uint8_t>& out) {
  EncodeVarbyte(postings, count, out);
}

Status DecodePostingBlock(const uint8_t* data, size_t bytes, size_t count,
                          DocId expected_last_doc, DocId* docs,
                          uint32_t* tfs) {
  return DecodeVarbyte(data, bytes, count, expected_last_doc, docs, tfs);
}

}  // namespace moa
