#include "storage/segment/block_codec.h"

#include "storage/segment/posting_cursor.h"
#include "storage/segment/varbyte.h"

namespace moa {

void EncodePostingBlock(const Posting* postings, size_t count,
                        std::vector<uint8_t>& out) {
  DocId prev = 0;
  for (size_t i = 0; i < count; ++i) {
    VarbyteAppend(out, i == 0 ? postings[0].doc : postings[i].doc - prev);
    prev = postings[i].doc;
  }
  for (size_t i = 0; i < count; ++i) {
    VarbyteAppend(out, postings[i].tf);
  }
}

Status DecodePostingBlock(const uint8_t* data, size_t bytes, size_t count,
                          DocId expected_last_doc, DocId* docs,
                          uint32_t* tfs) {
  const uint8_t* p = data;
  const uint8_t* end = data + bytes;
  DocId prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    const size_t used = VarbyteDecode(p, end, &v);
    if (used == 0) return Status::InvalidArgument("segment block: bad doc");
    p += used;
    if (i == 0) {
      prev = v;
    } else {
      // Gaps are >= 1 by construction; 0 would break strict ordering and
      // an overflow past kEndDoc would wrap.
      if (v == 0 || v > kEndDoc - prev) {
        return Status::InvalidArgument("segment block: doc order violated");
      }
      prev += v;
    }
    docs[i] = prev;
  }
  if (count > 0 && prev != expected_last_doc) {
    return Status::InvalidArgument("segment block: last doc mismatch");
  }
  for (size_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    const size_t used = VarbyteDecode(p, end, &v);
    if (used == 0) return Status::InvalidArgument("segment block: bad tf");
    p += used;
    tfs[i] = v;
  }
  if (p != end) {
    return Status::InvalidArgument("segment block: trailing bytes");
  }
  return Status::OK();
}

}  // namespace moa
