#include "storage/table.h"

namespace moa {

Status Table::AddColumn(std::string name, Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("column length mismatch: " + name);
  }
  for (const auto& s : specs_) {
    if (s.name == name) {
      return Status::InvalidArgument("duplicate column name: " + name);
    }
  }
  specs_.push_back(ColumnSpec{name, column.type()});
  columns_.push_back(std::move(column));
  return Status::OK();
}

size_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

Table Table::Take(const std::vector<uint32_t>& indices) const {
  Table out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    // AddColumn cannot fail here: lengths are uniform by construction.
    (void)out.AddColumn(specs_[i].name, columns_[i].Take(indices));
  }
  return out;
}

}  // namespace moa
