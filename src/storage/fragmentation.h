// Horizontal fragmentation of the inverted file (paper Step 1).
//
// Terms in natural language are Zipf distributed: the most frequent terms
// are the least interesting for ranking but occupy most of the postings
// volume. The fragmentation assigns every term to one of two fragments:
//
//   kSmall  — the rare, "interesting" terms: most of the *distinct* terms
//             but only a small fraction (typically ~5%) of the postings.
//   kLarge  — the few frequent terms holding the bulk of the volume.
//
// Processing a query against the small fragment alone is the paper's unsafe
// technique (fast, quality loss); adding a quality check that switches to
// the large fragment in time is the safe variant (see src/topn).
#ifndef MOA_STORAGE_FRAGMENTATION_H_
#define MOA_STORAGE_FRAGMENTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/inverted_file.h"

namespace moa {

/// Fragment identifier.
enum class FragmentId : uint8_t { kSmall = 0, kLarge = 1 };

/// \brief How to split the term space into fragments.
struct FragmentationPolicy {
  /// Maximum fraction of the total postings volume allowed in the small
  /// fragment. The paper reports ~0.05 (5% of data, 95% of distinct terms).
  double small_volume_fraction = 0.05;

  /// Terms with document frequency above this are forced into the large
  /// fragment even if volume would still allow them (guards degenerate
  /// collections). 0 disables the guard.
  uint32_t df_ceiling = 0;
};

/// \brief Assignment of every term to a fragment, plus per-fragment stats.
///
/// The fragmentation is a *view* over the inverted file: posting data is not
/// copied, so the partition invariant (every term in exactly one fragment)
/// holds by construction.
class Fragmentation {
 public:
  /// Computes the assignment: terms sorted by ascending document frequency
  /// are assigned to the small fragment until its postings volume would
  /// exceed `policy.small_volume_fraction` of the total.
  static Fragmentation Build(const InvertedFile& file,
                             const FragmentationPolicy& policy);

  /// Statistics-only overload: the assignment depends on nothing but the
  /// per-term document frequencies (`df`, the per-term postings volume),
  /// so a catalog snapshot — which has live df but no materialized
  /// InvertedFile — fragments exactly like a fresh index of the same
  /// documents. The InvertedFile overload delegates here.
  static Fragmentation Build(const std::vector<uint32_t>& df,
                             const FragmentationPolicy& policy);

  FragmentId fragment_of(TermId t) const { return assignment_[t]; }
  bool in_small(TermId t) const {
    return assignment_[t] == FragmentId::kSmall;
  }

  /// Number of terms in fragment f.
  size_t term_count(FragmentId f) const {
    return f == FragmentId::kSmall ? small_terms_ : large_terms_;
  }
  /// Postings volume (number of postings) in fragment f.
  int64_t postings_volume(FragmentId f) const {
    return f == FragmentId::kSmall ? small_postings_ : large_postings_;
  }
  /// Fraction of total postings volume held by the small fragment.
  double small_volume_fraction() const {
    const int64_t total = small_postings_ + large_postings_;
    return total == 0 ? 0.0
                      : static_cast<double>(small_postings_) /
                            static_cast<double>(total);
  }
  /// Fraction of distinct terms held by the small fragment.
  double small_term_fraction() const {
    const size_t total = small_terms_ + large_terms_;
    return total == 0 ? 0.0
                      : static_cast<double>(small_terms_) /
                            static_cast<double>(total);
  }

  const FragmentationPolicy& policy() const { return policy_; }

  std::string ToString() const;

 private:
  FragmentationPolicy policy_;
  std::vector<FragmentId> assignment_;
  size_t small_terms_ = 0;
  size_t large_terms_ = 0;
  int64_t small_postings_ = 0;
  int64_t large_postings_ = 0;
};

}  // namespace moa

#endif  // MOA_STORAGE_FRAGMENTATION_H_
