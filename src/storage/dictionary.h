// String dictionary: bidirectional term <-> dense-id mapping.
#ifndef MOA_STORAGE_DICTIONARY_H_
#define MOA_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace moa {

/// Dense identifier of a dictionary entry (term id). Ids are assigned
/// contiguously from 0 in insertion order.
using TermId = uint32_t;

/// \brief Append-only string dictionary with O(1) id<->string lookup.
///
/// All higher layers work on TermId; strings exist only at the API boundary.
class Dictionary {
 public:
  /// Returns the id of `term`, inserting it if absent.
  TermId GetOrInsert(std::string_view term);

  /// Returns the id of `term` if present.
  std::optional<TermId> Lookup(std::string_view term) const;

  /// Returns the string for `id`; id must be valid.
  const std::string& GetString(TermId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> strings_;
};

}  // namespace moa

#endif  // MOA_STORAGE_DICTIONARY_H_
