#include "storage/dictionary.h"

namespace moa {

TermId Dictionary::GetOrInsert(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(strings_.size());
  strings_.emplace_back(term);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace moa
