#include "storage/catalog/catalog_state.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/cost_ticker.h"

namespace moa {
namespace {

/// Doc-ordered cursor over a borrowed std::vector<Posting> (the memtable's
/// per-term lists). Local ids; the chained cursor adds the base offset.
class VectorPostingCursor final : public PostingCursor {
 public:
  explicit VectorPostingCursor(const std::vector<Posting>* postings)
      : postings_(postings) {}

  DocId doc() const override {
    return pos_ < postings_->size() ? (*postings_)[pos_].doc : kEndDoc;
  }
  uint32_t tf() const override {
    return pos_ < postings_->size() ? (*postings_)[pos_].tf : 0;
  }
  void next() override {
    if (pos_ < postings_->size()) ++pos_;
  }
  void advance_to(DocId target) override {
    if (doc() >= target) return;
    const auto begin = postings_->begin() + static_cast<ptrdiff_t>(pos_);
    const auto it = std::lower_bound(
        begin, postings_->end(), target,
        [](const Posting& p, DocId d) { return p.doc < d; });
    pos_ = static_cast<size_t>(it - postings_->begin());
  }
  size_t size() const override { return postings_->size(); }
  // The memtable has no precomputed impact metadata; the chained cursor
  // never consults its components' bounds (it serves the snapshot-exact
  // bound itself).
  double block_max_impact() const override { return 0.0; }
  double max_impact() const override { return 0.0; }
  // One uncompressed block spanning the whole list — the exact skip key
  // lets the chained cursor's shallow_advance treat the memtable component
  // like any block-structured one.
  DocId block_last_doc() const override {
    return pos_ < postings_->size() ? postings_->back().doc : kEndDoc;
  }

 private:
  const std::vector<Posting>* postings_;
  size_t pos_ = 0;
};

/// One component of the chained (merged) cursor: a contiguous global-id
/// range served by a segment or by the memtable.
struct Component {
  uint64_t base = 0;
  uint64_t end = 0;  ///< base + local doc count
  const SegmentReader* reader = nullptr;     // null => memtable component
  const std::vector<Posting>* memtable_list = nullptr;
  const std::vector<uint8_t>* deleted = nullptr;  // may be null (no dead)
};

/// Concatenation of per-component cursors with id offsetting and
/// tombstone filtering. Invariant between calls: either exhausted
/// (component index past the end) or the inner cursor sits on a live
/// posting. Component cursors are opened lazily so advance_to across
/// whole segments never decodes their blocks.
class ChainedPostingCursor final : public PostingCursor {
 public:
  ChainedPostingCursor(std::vector<Component> comps, TermId term,
                       uint32_t live_df, double max_impact)
      : comps_(std::move(comps)),
        term_(term),
        live_df_(live_df),
        max_impact_(max_impact) {
    Enter(0);
    SettleOnLive();
  }

  DocId doc() const override {
    if (comp_ >= comps_.size()) return kEndDoc;
    return static_cast<DocId>(comps_[comp_].base + inner_->doc());
  }
  uint32_t tf() const override {
    return comp_ < comps_.size() ? inner_->tf() : 0;
  }
  void next() override {
    if (comp_ >= comps_.size()) return;
    inner_->next();
    SettleOnLive();
  }
  void advance_to(DocId target) override {
    // In the shallow state doc() would force a payload decode just to
    // test the early exit — and the logical position is the start of the
    // current block anyway, so the inner advance below is the real test.
    if (!shallow_ && doc() >= target) return;  // also covers exhaustion
    if (comp_ >= comps_.size()) return;
    shallow_ = false;
    // Skip whole components without opening their cursors.
    size_t i = comp_;
    while (i < comps_.size() && target >= comps_[i].end) ++i;
    if (i != comp_) Enter(i);
    if (comp_ >= comps_.size()) return;
    const uint64_t base = comps_[comp_].base;
    inner_->advance_to(
        target > base ? static_cast<DocId>(target - base) : 0);
    SettleOnLive();
  }
  void shallow_advance(DocId target) override {
    if (comp_ >= comps_.size()) return;
    if (shallow_) {
      if (block_last_doc() >= target) return;  // block already spans it
    } else {
      if (doc() >= target) return;  // deep position already past target
      shallow_ = true;
    }
    size_t i = comp_;
    while (i < comps_.size() && target >= comps_[i].end) ++i;
    if (i != comp_) Enter(i);
    // Shallow-advance within the component; a block-exhausted component
    // (every remaining block ends before the local target) hands over to
    // the next one, whose first block trivially satisfies a target of 0.
    while (comp_ < comps_.size()) {
      const Component& c = comps_[comp_];
      inner_->shallow_advance(
          target > c.base ? static_cast<DocId>(target - c.base) : 0);
      if (inner_->block_last_doc() != kEndDoc) return;
      Enter(comp_ + 1);
    }
  }
  size_t size() const override { return live_df_; }
  /// The snapshot-exact term bound is the only impact metadata the merged
  /// view serves; it upper-bounds every block trivially. Stored per-block
  /// bounds would be tighter but are stale under moved live statistics
  /// (BM25/LM weights do not factorize), so the merged cursor's win from
  /// shallow_advance is decode skipping, not tighter bounds.
  double block_max_impact() const override { return max_impact_; }
  double max_impact() const override { return max_impact_; }
  /// Inner skip key lifted into the global id space. Safe: every inner
  /// implementation returns a real local doc id (< its component's doc
  /// count) or kEndDoc, never the blockless kEndDoc - 1 default.
  DocId block_last_doc() const override {
    if (comp_ >= comps_.size()) return kEndDoc;
    const DocId inner_last = inner_->block_last_doc();
    if (inner_last == kEndDoc) return kEndDoc;
    return static_cast<DocId>(comps_[comp_].base + inner_last);
  }

 private:
  void Enter(size_t i) {
    comp_ = i;
    if (comp_ >= comps_.size()) {
      inner_.reset();
      return;
    }
    const Component& c = comps_[comp_];
    if (c.reader != nullptr) {
      inner_ = c.reader->OpenCursor(term_);
    } else {
      inner_ = std::make_unique<VectorPostingCursor>(c.memtable_list);
    }
  }

  /// Restores the invariant: skip tombstoned postings and exhausted
  /// components until a live posting (or the end) is reached.
  void SettleOnLive() {
    while (comp_ < comps_.size()) {
      if (inner_->at_end()) {
        Enter(comp_ + 1);
        continue;
      }
      const std::vector<uint8_t>* dead = comps_[comp_].deleted;
      if (dead != nullptr && (*dead)[inner_->doc()] != 0) {
        inner_->next();
        continue;
      }
      return;
    }
  }

  std::vector<Component> comps_;
  TermId term_;
  uint32_t live_df_;
  double max_impact_;
  size_t comp_ = 0;
  // True after a shallow_advance: the inner cursor is block-positioned but
  // not settled on a live posting; doc()/next() need a deep advance first
  // (the PostingCursor contract for the shallow state).
  bool shallow_ = false;
  std::unique_ptr<PostingCursor> inner_;
};

}  // namespace

void CatalogStats::Apply(const DocTerms& terms, int direction) {
  int64_t tokens = 0;
  for (const auto& [t, tf] : terms) {
    df[t] += static_cast<uint32_t>(direction);
    cf[t] += direction * static_cast<int64_t>(tf);
    tokens += tf;
  }
  total_live_tokens += direction * tokens;
  num_live_docs += static_cast<uint64_t>(direction);
}

CatalogState::CatalogState(
    std::vector<std::shared_ptr<const CatalogSegment>> segments,
    std::shared_ptr<const Memtable> memtable,
    std::vector<uint8_t> memtable_deleted, CatalogStats stats,
    uint64_t version)
    : segments_(std::move(segments)),
      memtable_(std::move(memtable)),
      memtable_deleted_(std::move(memtable_deleted)),
      stats_(std::move(stats)),
      version_(version) {
  assert(memtable_ != nullptr);
  assert(memtable_deleted_.size() == memtable_->num_docs());
  for (uint8_t d : memtable_deleted_) memtable_has_dead_ |= (d != 0);
  base_.reserve(segments_.size() + 1);
  uint64_t base = 0;
  for (const auto& seg : segments_) {
    base_.push_back(base);
    base += seg->num_docs();
  }
  base_.push_back(base);  // memtable base
}

std::pair<size_t, DocId> CatalogState::Locate(DocId g) const {
  assert(g < doc_space());
  // Last component whose base is <= g.
  const auto it = std::upper_bound(base_.begin(), base_.end(),
                                   static_cast<uint64_t>(g));
  const size_t comp = static_cast<size_t>(it - base_.begin()) - 1;
  return {comp, static_cast<DocId>(g - base_[comp])};
}

uint32_t CatalogState::DocLength(DocId g) const {
  const auto [comp, local] = Locate(g);
  if (comp == segments_.size()) return memtable_->DocLength(local);
  return segments_[comp]->reader->DocLength(local);
}

bool CatalogState::IsDeleted(DocId g) const {
  const auto [comp, local] = Locate(g);
  if (comp == segments_.size()) return memtable_deleted_[local] != 0;
  const auto& dead = segments_[comp]->deleted;
  return !dead.empty() && dead[local] != 0;
}

const DocTerms& CatalogState::TermsOf(DocId g) const {
  const auto [comp, local] = Locate(g);
  if (comp == segments_.size()) return memtable_->doc_terms(local);
  return segments_[comp]->fwd->doc(local);
}

std::vector<DocId> CatalogState::LiveDocIds() const {
  std::vector<DocId> live;
  live.reserve(static_cast<size_t>(stats_.num_live_docs));
  const uint64_t space = doc_space();
  for (uint64_t g = 0; g < space; ++g) {
    if (!IsDeleted(static_cast<DocId>(g))) {
      live.push_back(static_cast<DocId>(g));
    }
  }
  return live;
}

std::unique_ptr<PostingCursor> CatalogState::OpenMergedCursor(
    TermId t, double max_impact) const {
  std::vector<Component> comps;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const CatalogSegment& seg = *segments_[i];
    if (seg.reader->DocFrequency(t) == 0) continue;
    Component c;
    c.base = base_[i];
    c.end = base_[i] + seg.num_docs();
    c.reader = seg.reader.get();
    c.deleted = seg.num_deleted > 0 ? &seg.deleted : nullptr;
    comps.push_back(c);
  }
  if (!memtable_->postings(t).empty()) {
    Component c;
    c.base = base_.back();
    c.end = base_.back() + memtable_->num_docs();
    c.memtable_list = &memtable_->postings(t);
    c.deleted = memtable_has_dead_ ? &memtable_deleted_ : nullptr;
    comps.push_back(c);
  }
  return std::make_unique<ChainedPostingCursor>(std::move(comps), t,
                                                stats_.df[t], max_impact);
}

std::optional<uint32_t> CatalogState::FindTf(TermId t, DocId g) const {
  CostTicker::TickRandom();
  if (g >= doc_space()) return std::nullopt;
  const auto [comp, local] = Locate(g);
  if (comp == segments_.size()) {
    if (!memtable_deleted_.empty() && memtable_deleted_[local] != 0) {
      return std::nullopt;
    }
    const std::vector<Posting>& postings = memtable_->postings(t);
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), local,
        [](const Posting& p, DocId d) { return p.doc < d; });
    if (it == postings.end() || it->doc != local) return std::nullopt;
    return it->tf;
  }
  const CatalogSegment& seg = *segments_[comp];
  if (!seg.deleted.empty() && seg.deleted[local] != 0) return std::nullopt;
  if (seg.reader->DocFrequency(t) == 0) return std::nullopt;
  const auto cursor = seg.reader->OpenCursor(t);
  cursor->advance_to(local);
  if (cursor->at_end() || cursor->doc() != local) return std::nullopt;
  return cursor->tf();
}

double CatalogState::TermBound(const ScoringModel& model, TermId t) const {
  {
    std::lock_guard<std::mutex> lock(bounds_mutex_);
    if (bound_ready_.empty()) {
      bound_.assign(num_terms(), 0.0);
      bound_ready_.assign(num_terms(), 0);
    }
    if (bound_ready_[t] != 0) return bound_[t];
  }
  // Exact bound under this snapshot's statistics: max current weight over
  // the live postings. Computed outside the lock (idempotent — concurrent
  // first users store the same value), cached for every later query on
  // this state.
  double bound = 0.0;
  for (auto cursor = OpenMergedCursor(t, 0.0); !cursor->at_end();
       cursor->next()) {
    bound = std::max(bound,
                     model.Weight(t, Posting{cursor->doc(), cursor->tf()}));
  }
  std::lock_guard<std::mutex> lock(bounds_mutex_);
  bound_[t] = bound;
  bound_ready_[t] = 1;
  return bound;
}

std::string CatalogState::Describe() const {
  std::ostringstream os;
  os << "catalog v" << version_ << ": memtable(" << memtable_->num_docs()
     << " docs";
  uint32_t mt_dead = 0;
  for (uint8_t d : memtable_deleted_) mt_dead += (d != 0) ? 1 : 0;
  if (mt_dead > 0) os << ", " << mt_dead << " tombstoned";
  os << ")";
  if (!segments_.empty()) {
    os << " + segments[";
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (i > 0) os << ", ";
      os << "seg " << segments_[i]->id << ": " << segments_[i]->num_docs()
         << " docs " << segments_[i]->reader->format_name();
      if (segments_[i]->num_deleted > 0) {
        os << " (" << segments_[i]->num_deleted << " tombstoned)";
      }
    }
    os << "]";
  }
  os << " — " << stats_.num_live_docs << " live docs, merged cursor over "
     << (segments_.size() + (memtable_->num_docs() > 0 ? 1 : 0))
     << " component(s)";
  return os.str();
}

CatalogComposition CatalogState::Composition() const {
  CatalogComposition c;
  c.num_segments = segments_.size();
  c.memtable_slots = memtable_->num_docs();
  for (const auto& seg : segments_) {
    const uint64_t slots = seg->num_docs();
    c.segment_slots += slots;
    c.dead_slots += seg->num_deleted;
    if (seg->reader->codec() == SegmentCodec::kBitPacked) {
      c.bitpacked_slots += slots;
    } else {
      c.varbyte_slots += slots;
    }
    if (seg->reader->has_fragment_directory()) c.directory_slots += slots;
  }
  for (uint8_t d : memtable_deleted_) c.dead_slots += (d != 0) ? 1 : 0;
  return c;
}

CatalogReadView::CatalogReadView(std::shared_ptr<const CatalogState> state,
                                 ScoringModelKind scoring)
    : state_(std::move(state)),
      stats_view_(state_),
      model_(MakeScoringModel(scoring, &stats_view_)) {}

}  // namespace moa
