// ShardedCatalog: the document space partitioned across N independent
// IndexCatalog shards, plus the consistent multi-shard snapshot queries
// run against.
//
// Partitioning. Each shard is a complete IndexCatalog (memtable, segments,
// manifest) over its own dense *local* id space; the global id of local
// document l in shard s is  g = l * N + s  (so s = g % N, l = g / N —
// interleaved, which keeps both directions O(1) and shard-stable across
// per-shard merges: a merge compacts a shard's local ids, and the mapped
// global ids stay disjoint from every other shard's). New documents are
// routed to the least-loaded shard (smallest doc space, ties to the lowest
// shard index), which from an empty catalog degenerates to round-robin —
// a batch seeded into a pristine sharded catalog gets the *identity* ids
// 0..k-1, exactly like a single catalog.
//
// Snapshots. Snapshot() returns one ShardedSnapshot holding a consistent
// vector of per-shard CatalogStates (taken under the catalog's mutation
// lock, so no mutation interleaves the vector) plus the *global* live
// statistics aggregated across shards. Per-shard read views report the
// global statistics (df, N, avgdl, cf) while routing per-document lookups
// (DocLength) to the shard's own state — a scoring model bound to a shard
// view therefore computes bit-identical weights to a single catalog of
// the whole collection, and df-ordered strategies (max-score) process
// terms in the identical order on every shard. This is what makes the
// scatter-gather top-N merge bit-identical to single-catalog execution
// for every strategy whose reported scores are full deterministic sums.
//
// Impact bounds. A shard's CatalogState keeps its own build-once bound
// cache, but those bounds are computed under *that catalog's* statistics;
// under sharding the weights depend on the global statistics, which move
// whenever any other shard mutates — while the unchanged shard's state
// object (and its cache) persists. The ShardedSnapshot therefore owns the
// per-(shard, term) bound caches itself: exact max current weight under
// the snapshot's global statistics, computed on first use and shared by
// every query on this snapshot. The per-shard *query* bound — the sum of
// a query's term bounds, the shard-skipping currency of the coordinator —
// comes from the same cache.
//
// Thread-safety: mutations are serialized internally; Snapshot() may race
// mutations freely (readers keep serving the snapshot they hold, exactly
// like IndexCatalog).
#ifndef MOA_STORAGE_CATALOG_SHARDED_CATALOG_H_
#define MOA_STORAGE_CATALOG_SHARDED_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/query_gen.h"
#include "storage/catalog/index_catalog.h"

namespace moa {

class ShardedSnapshot;

/// \brief N independent IndexCatalog shards behind one global id space.
class ShardedCatalog {
 public:
  struct Options {
    /// Number of shards (>= 1). Fixed at creation; Open must be called
    /// with the same count the catalog was created with.
    size_t num_shards = 1;
    /// Per-shard catalog options. `shard.dir` is the *root* directory:
    /// shard s lives in <root>/shard_<s>. Empty = memory-only shards.
    IndexCatalog::Options shard;
  };

  /// Fresh empty sharded catalog (creates <root>/shard_<s> directories).
  static Result<std::unique_ptr<ShardedCatalog>> Create(const Options& options);
  /// Recovers every shard from its <root>/shard_<s>/MANIFEST.
  static Result<std::unique_ptr<ShardedCatalog>> Open(const Options& options);

  /// Adds one document to the least-loaded shard; returns its global id.
  Result<DocId> AddDocument(const DocTerms& terms);
  /// Adds a batch, routing greedily document-by-document (one per-shard
  /// AddDocuments call per touched shard); returns the global ids in
  /// input order.
  Result<std::vector<DocId>> AddDocuments(const std::vector<DocTerms>& docs);

  /// Tombstones the document at global id `global` in its owning shard.
  Status DeleteDocument(DocId global);

  /// Upsert as delete + add: tombstones `global`, re-ingests `terms` under
  /// a fresh id (insertion-order id contract, same as a single catalog's
  /// delete+add), returns the new global id. Two state publications — a
  /// concurrent snapshot may observe the document deleted but not yet
  /// re-added.
  Result<DocId> UpdateDocument(DocId global, const DocTerms& terms);

  /// Per-shard lifecycle, plus the all-shards conveniences the engine
  /// maps its Flush()/Merge() onto.
  Status Flush(size_t shard);
  Status FlushAll();
  Result<size_t> Merge(size_t shard, const MergePolicy& policy = {});
  /// Applies `policy` to every shard; returns total segments merged.
  Result<size_t> MergeAll(const MergePolicy& policy = {});

  /// The current consistent multi-shard snapshot (cached; rebuilt after a
  /// mutation on first use).
  std::shared_ptr<const ShardedSnapshot> Snapshot() const;

  /// Drops the cached snapshot so the next Snapshot() rebuilds from the
  /// shards' current states. Mutations through this class invalidate
  /// automatically; background maintenance publishing *directly* into a
  /// shard (via shard(s)) must call this from its on_state_change hook —
  /// a merge compacts the shard's local ids, so a stale cached snapshot
  /// would map global ids wrongly.
  void InvalidateSnapshotCache() const {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_.reset();
  }

  size_t num_shards() const { return shards_.size(); }
  IndexCatalog& shard(size_t s) { return *shards_[s]; }
  const IndexCatalog& shard(size_t s) const { return *shards_[s]; }
  const Options& options() const { return options_; }

  // Global <-> (shard, local) id mapping.
  static size_t ShardOf(DocId global, size_t num_shards) {
    return static_cast<size_t>(global % num_shards);
  }
  static DocId LocalOf(DocId global, size_t num_shards) {
    return global / static_cast<DocId>(num_shards);
  }
  static DocId GlobalOf(DocId local, size_t shard, size_t num_shards) {
    return local * static_cast<DocId>(num_shards) + static_cast<DocId>(shard);
  }

 private:
  explicit ShardedCatalog(Options options) : options_(std::move(options)) {}

  static Result<std::unique_ptr<ShardedCatalog>> Build(
      const Options& options,
      Result<std::unique_ptr<IndexCatalog>> (*open_one)(
          const IndexCatalog::Options&));

  /// Shard with the smallest doc space (ties to the lowest index), based
  /// on the given per-shard doc-space vector. Callers mutate the vector
  /// as they route so a batch distributes evenly.
  static size_t LeastLoaded(const std::vector<uint64_t>& doc_space);
  std::vector<uint64_t> DocSpaces() const;  // requires mutex_ held

  Options options_;
  std::vector<std::unique_ptr<IndexCatalog>> shards_;

  /// Serializes mutations and guards the snapshot cache. Per-shard
  /// catalogs serialize internally too; this lock is what makes the
  /// multi-shard routing decision + mutation atomic and the snapshot
  /// vector consistent.
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const ShardedSnapshot> cached_;  // null = stale
};

/// \brief Per-shard CollectionStatsView: global aggregates, local lengths.
///
/// Strategies running on a shard pass *local* doc ids to the model, so
/// DocLength routes to the shard's state; everything else (df, N, avgdl,
/// cf, token totals) is the cross-shard aggregate, keeping the weight
/// arithmetic — and the df-based term ordering — identical to a single
/// catalog of the whole collection.
class ShardStatsView final : public CollectionStatsView {
 public:
  ShardStatsView(const CatalogStats* global, const CatalogState* state)
      : global_(global), state_(state) {}

  size_t num_terms() const override { return global_->df.size(); }
  size_t num_docs() const override {
    return static_cast<size_t>(global_->num_live_docs);
  }
  uint32_t DocFrequency(TermId t) const override { return global_->df[t]; }
  uint32_t DocLength(DocId local) const override {
    return state_->DocLength(local);
  }
  double AverageDocLength() const override {
    if (global_->num_live_docs == 0) return 0.0;
    return static_cast<double>(global_->total_live_tokens) /
           static_cast<double>(global_->num_live_docs);
  }
  int64_t total_tokens() const override { return global_->total_live_tokens; }
  int64_t CollectionFrequency(TermId t) const override {
    return global_->cf[t];
  }

 private:
  const CatalogStats* global_;
  const CatalogState* state_;
};

/// \brief PostingSource over one shard under global statistics.
///
/// DocFrequency reports the *global* df — strategies that order or gate
/// work by df (max-score's term order, Fagin's accessor construction)
/// must behave identically on every shard; the shard's actual list can be
/// shorter or empty, which cursors handle naturally. MaxImpact serves the
/// snapshot-owned per-shard bound (see file comment). Cursors and random
/// access speak shard-local doc ids.
class ShardReadView final : public PostingSource {
 public:
  ShardReadView(const ShardedSnapshot* snapshot, size_t shard,
                const CatalogState* state)
      : snapshot_(snapshot), shard_(shard), state_(state) {}

  size_t num_terms() const override;
  size_t num_docs() const override {
    return static_cast<size_t>(state_->doc_space());
  }
  uint32_t DocFrequency(TermId t) const override;
  bool HasImpacts(TermId /*t*/) const override { return true; }
  double MaxImpact(TermId t) const override;
  std::unique_ptr<PostingCursor> OpenCursor(TermId t) const override;
  std::optional<uint32_t> FindTf(TermId t, DocId doc) const override {
    return state_->FindTf(t, doc);
  }

 private:
  const ShardedSnapshot* snapshot_;
  size_t shard_;
  const CatalogState* state_;
};

/// \brief One consistent snapshot across all shards.
///
/// Owns the per-shard serving bundles (stats view + scoring model + read
/// view + bound cache) and the aggregated global statistics. Immutable
/// except for the internally synchronized bound caches; shared by
/// shared_ptr like CatalogState.
class ShardedSnapshot {
 public:
  ShardedSnapshot(std::vector<std::shared_ptr<const CatalogState>> states,
                  ScoringModelKind scoring);
  ~ShardedSnapshot();

  size_t num_shards() const { return entries_.size(); }
  /// Strictly monotone across mutations (sum of per-shard versions).
  uint64_t version() const { return version_; }
  /// Aggregated live statistics (the "global-stats view" every shard
  /// scores under).
  const CatalogStats& stats() const { return global_; }
  /// Global doc-id space bound: every mapped global id is < doc_space().
  uint64_t doc_space() const;

  const CatalogState& shard_state(size_t s) const;
  /// The shard's PostingSource (local ids, global df, snapshot bounds).
  const PostingSource& shard_source(size_t s) const;
  /// The shard's scoring model, bound to the global stats view.
  const ScoringModel& shard_model(size_t s) const;
  /// The shard's snapshot-scoped sparse cache (postings only — safe to
  /// reuse the state's own cache across global-stat changes).
  SparseIndexCache& shard_sparse_cache(size_t s) const;
  /// Raw composition of shard s, for per-shard planner storage inputs.
  const CatalogComposition& shard_composition(size_t s) const;

  /// Exact max current weight of term t's live postings in shard s under
  /// the snapshot's global statistics. Build-once per (shard, term).
  double ShardTermBound(size_t s, TermId t) const;
  /// Upper bound on any single document's score for `query` in shard s:
  /// the sum of the query terms' shard bounds. This is the coordinator's
  /// shard-skipping currency.
  double ShardQueryBound(size_t s, const Query& query) const;

  // Global-id document access (routes to the owning shard).
  uint32_t DocLength(DocId global) const;
  bool IsDeleted(DocId global) const;
  const DocTerms& TermsOf(DocId global) const;
  std::optional<uint32_t> FindTf(TermId t, DocId global) const;
  /// Live global ids, ascending.
  std::vector<DocId> LiveDocIds() const;

  /// Human-readable per-shard composition, e.g.
  /// "sharded(2): [shard 0: catalog v3: ...; shard 1: catalog v2: ...]".
  std::string Describe() const;

 private:
  struct ShardEntry;

  std::vector<std::unique_ptr<ShardEntry>> entries_;
  CatalogStats global_;
  uint64_t version_ = 0;
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_SHARDED_CATALOG_H_
