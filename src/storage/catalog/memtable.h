// Memtable: the catalog's mutable in-memory write buffer.
//
// Documents are appended with dense *local* ids (0..num_docs); the catalog
// places the memtable after every segment in the global doc-id order, so a
// memtable document's global id is `memtable_base + local`. Storing local
// ids keeps the memtable untouched when an earlier merge compacts the id
// space — only the computed base shifts.
//
// The memtable keeps both orientations of the same data:
//   - per-term posting vectors (doc-ordered, local ids) for query cursors,
//   - the forward index (doc -> (term, tf)) for flushes, deletes and
//     statistics maintenance.
//
// Concurrency: a Memtable snapshot is immutable once published inside a
// CatalogState; the IndexCatalog mutates a private copy and swaps
// (copy-on-write). Deep-copying is O(contents), which is why the batch
// mutation APIs exist — one copy per batch, not per document.
#ifndef MOA_STORAGE_CATALOG_MEMTABLE_H_
#define MOA_STORAGE_CATALOG_MEMTABLE_H_

#include <vector>

#include "common/status.h"
#include "storage/catalog/forward_index.h"
#include "storage/inverted_file.h"

namespace moa {

/// \brief Mutable in-memory posting store with dense local doc ids.
class Memtable {
 public:
  /// \param num_terms vocabulary size; term ids must stay below it.
  explicit Memtable(size_t num_terms) : lists_(num_terms) {}

  size_t num_terms() const { return lists_.size(); }
  size_t num_docs() const { return doc_lengths_.size(); }
  bool empty() const { return doc_lengths_.empty(); }

  /// Adds one document under the next local id. `terms` may arrive in any
  /// order; they are sorted, and duplicates, zero tfs or out-of-vocabulary
  /// ids are rejected (the document is not added on error). Returns the
  /// local id.
  Result<DocId> AddDocument(const DocTerms& terms);

  /// Doc-ordered postings of term t (local doc ids).
  const std::vector<Posting>& postings(TermId t) const { return lists_[t]; }
  uint32_t DocLength(DocId local) const { return doc_lengths_[local]; }
  /// Composition of a document (ascending terms) — the delete/flush view.
  const DocTerms& doc_terms(DocId local) const { return fwd_.doc(local); }
  const ForwardIndex& forward_index() const { return fwd_; }

  /// Materializes the buffered documents as an InvertedFile with the same
  /// local ids (the flush path; re-validated through the builder).
  Result<InvertedFile> ToInvertedFile() const;

 private:
  std::vector<std::vector<Posting>> lists_;
  std::vector<uint32_t> doc_lengths_;
  ForwardIndex fwd_;
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_MEMTABLE_H_
