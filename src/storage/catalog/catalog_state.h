// CatalogState: one immutable snapshot of the multi-segment index, plus
// the merged posting source that serves queries from it.
//
// Global doc-id space. Segments are ordered; segment i owns the global id
// range [base[i], base[i] + num_docs_i) — including tombstoned documents,
// which keep their slot (and id) until a merge physically drops them. The
// memtable sits after the last segment. Because the ranges are disjoint
// and ascending, the "merged" cursor over a term is a concatenation of
// per-component cursors with an id offset — no heap, and advance_to stays
// a binary search over components plus the component's own skip logic.
//
// Tombstones are per-component bitmaps over local ids; cursors skip dead
// postings, so a deleted document is invisible to every strategy the
// moment the snapshot containing its tombstone is published.
//
// Statistics (CatalogStats) are maintained incrementally by the
// IndexCatalog and describe exactly the *live* documents: df, cf, token
// count. A scoring model bound to a snapshot's stats view therefore
// computes bit-identical weights to one bound to a fresh InvertedFile of
// the surviving documents.
//
// Impact bounds: per-segment stored max_impacts go stale the moment the
// collection statistics move (they were computed under flush-time df/
// avgdl/N), so the snapshot does not trust them. Instead each state keeps
// a build-once bound cache: MaxImpact(t) is the exact maximum current
// weight over the term's live postings, computed on first use under this
// snapshot's statistics (O(live postings of t)) and shared by later
// queries. Exact bounds keep max-score pruning decisions bit-identical to
// a fresh index of the survivors.
//
// Thread-safety: a published CatalogState is immutable except for the
// internally synchronized bound cache (the SparseIndexCache pattern);
// snapshots are shared by shared_ptr and may serve many queries while the
// catalog publishes successor states.
#ifndef MOA_STORAGE_CATALOG_CATALOG_STATE_H_
#define MOA_STORAGE_CATALOG_CATALOG_STATE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/collection_stats.h"
#include "ir/scoring.h"
#include "storage/catalog/forward_index.h"
#include "storage/catalog/memtable.h"
#include "storage/segment/posting_cursor.h"
#include "storage/segment/segment_reader.h"
#include "storage/sparse_index_cache.h"

namespace moa {

/// \brief Live-document statistics, maintained incrementally and exactly.
struct CatalogStats {
  std::vector<uint32_t> df;   ///< live document frequency per term
  std::vector<int64_t> cf;    ///< live collection frequency per term
  uint64_t num_live_docs = 0;
  int64_t total_live_tokens = 0;

  explicit CatalogStats(size_t num_terms) : df(num_terms, 0),
                                            cf(num_terms, 0) {}

  /// Applies one document's composition (+1 add, -1 delete).
  void Apply(const DocTerms& terms, int direction);
};

/// \brief One immutable segment inside the catalog: the mmap-backed
/// reader, its forward-index sidecar and the tombstone bitmap over local
/// ids.
struct CatalogSegment {
  uint64_t id = 0;            ///< file id (seg_<id>.moa / seg_<id>.fwd)
  std::string segment_path;
  std::shared_ptr<const SegmentReader> reader;
  std::shared_ptr<const ForwardIndex> fwd;
  std::vector<uint8_t> deleted;  ///< one flag per local doc
  uint32_t num_deleted = 0;

  uint32_t num_docs() const {
    return static_cast<uint32_t>(reader->num_docs());
  }
};

/// \brief Raw storage composition of one snapshot.
///
/// The counts the cost-based planner digests into storage signals (decode
/// cost, tombstone overhead, access-path factors). "Slots" are doc-id
/// slots including tombstoned ones — tombstones keep their slot (and its
/// postings, streamed-and-skipped by cursors) until a merge drops them.
struct CatalogComposition {
  size_t num_segments = 0;
  uint64_t segment_slots = 0;    ///< slots across all segments
  uint64_t memtable_slots = 0;
  uint64_t dead_slots = 0;       ///< tombstoned slots, all components
  uint64_t bitpacked_slots = 0;  ///< in MOAIF03 (bit-packed) segments
  uint64_t varbyte_slots = 0;    ///< in MOAIF02 (varbyte) segments
  uint64_t directory_slots = 0;  ///< in segments with a fragment directory

  uint64_t total_slots() const { return segment_slots + memtable_slots; }
};

/// \brief An immutable snapshot of the whole catalog.
class CatalogState {
 public:
  /// Built by IndexCatalog; `memtable` must be non-null (possibly empty)
  /// and `memtable_deleted` sized to its document count.
  CatalogState(std::vector<std::shared_ptr<const CatalogSegment>> segments,
               std::shared_ptr<const Memtable> memtable,
               std::vector<uint8_t> memtable_deleted, CatalogStats stats,
               uint64_t version);

  size_t num_terms() const { return stats_.df.size(); }
  /// Size of the global doc-id space (live + tombstoned slots).
  uint64_t doc_space() const {
    return memtable_base() + memtable_->num_docs();
  }
  uint64_t memtable_base() const { return base_.back(); }
  uint64_t version() const { return version_; }
  const CatalogStats& stats() const { return stats_; }
  const std::vector<std::shared_ptr<const CatalogSegment>>& segments() const {
    return segments_;
  }
  const Memtable& memtable() const { return *memtable_; }
  const std::vector<uint8_t>& memtable_deleted() const {
    return memtable_deleted_;
  }
  std::shared_ptr<const Memtable> memtable_ptr() const { return memtable_; }

  /// Token count of the document at global id g (defined for tombstoned
  /// slots too; they still carry their stored length).
  uint32_t DocLength(DocId g) const;
  bool IsDeleted(DocId g) const;
  /// Composition of the document at global id g (segment sidecar or
  /// memtable forward index).
  const DocTerms& TermsOf(DocId g) const;
  /// Live global ids, ascending — the survivor enumeration used by parity
  /// checks and merges.
  std::vector<DocId> LiveDocIds() const;

  /// Doc-ordered cursor over term t's *live* postings, global ids.
  /// `max_impact` is stamped onto the cursor (callers pass the cached
  /// bound; internal statistics passes use 0).
  std::unique_ptr<PostingCursor> OpenMergedCursor(TermId t,
                                                  double max_impact) const;

  /// Random access: tf of term t in the live document at global id g
  /// (nullopt when absent or tombstoned). Locates the one owning
  /// component and probes it directly — no merged-cursor construction —
  /// which is what keeps Fagin-style random access cheap over a
  /// multi-segment snapshot. Ticks one random read.
  std::optional<uint32_t> FindTf(TermId t, DocId g) const;

  /// Exact max current weight over t's live postings under `model`
  /// (bound to this snapshot's stats view). Cached build-once per state;
  /// every caller must use the same model arithmetic — the IndexCatalog
  /// serves one scoring kind per catalog.
  double TermBound(const ScoringModel& model, TermId t) const;

  /// Human-readable storage composition, e.g.
  /// "memtable(3 docs) + segments[seg 1: 100 docs, seg 2: 50 docs (-4)]".
  std::string Describe() const;

  /// Raw composition counts for cost-based planning. O(segments +
  /// memtable docs); no posting access.
  CatalogComposition Composition() const;

  /// Per-snapshot sparse-index cache for the sparse-probe strategy.
  /// Snapshot-scoped on purpose: a sparse index materializes the term's
  /// live postings, which change across snapshots, so a catalog-wide
  /// cache would serve stale postings after any mutation. Internally
  /// synchronized (build-once / read-many), like the bound cache.
  SparseIndexCache& sparse_cache() const { return sparse_cache_; }

 private:
  friend class CatalogStatsViewImpl;
  friend class IndexCatalog;

  /// Locates global id g: component index (segments.size() = memtable)
  /// and local id.
  std::pair<size_t, DocId> Locate(DocId g) const;

  std::vector<std::shared_ptr<const CatalogSegment>> segments_;
  std::shared_ptr<const Memtable> memtable_;
  std::vector<uint8_t> memtable_deleted_;
  CatalogStats stats_;
  uint64_t version_;
  bool memtable_has_dead_ = false;
  /// base_[i] = first global id of segment i; base_.back() = memtable.
  std::vector<uint64_t> base_;

  // Build-once bound cache (see file comment).
  mutable std::mutex bounds_mutex_;
  mutable std::vector<double> bound_;
  mutable std::vector<uint8_t> bound_ready_;
  // Snapshot-scoped sparse-index cache (see sparse_cache()).
  mutable SparseIndexCache sparse_cache_;
};

/// \brief CollectionStatsView over one snapshot (live statistics).
class CatalogStatsViewImpl final : public CollectionStatsView {
 public:
  explicit CatalogStatsViewImpl(std::shared_ptr<const CatalogState> state)
      : state_(std::move(state)) {}

  size_t num_terms() const override { return state_->num_terms(); }
  size_t num_docs() const override { return state_->stats().num_live_docs; }
  uint32_t DocFrequency(TermId t) const override {
    return state_->stats().df[t];
  }
  uint32_t DocLength(DocId d) const override { return state_->DocLength(d); }
  double AverageDocLength() const override {
    const CatalogStats& s = state_->stats();
    if (s.num_live_docs == 0) return 0.0;
    return static_cast<double>(s.total_live_tokens) /
           static_cast<double>(s.num_live_docs);
  }
  int64_t total_tokens() const override {
    return state_->stats().total_live_tokens;
  }
  int64_t CollectionFrequency(TermId t) const override {
    return state_->stats().cf[t];
  }

 private:
  std::shared_ptr<const CatalogState> state_;
};

/// \brief Per-query read view: PostingSource + stats view + scoring model
/// over one snapshot, bundled so ExecContext::postings_owner can keep the
/// whole chain alive for the query's lifetime.
class CatalogReadView final : public PostingSource {
 public:
  CatalogReadView(std::shared_ptr<const CatalogState> state,
                  ScoringModelKind scoring);

  // PostingSource:
  size_t num_terms() const override { return state_->num_terms(); }
  /// Doc-id space bound for accumulator sizing — includes tombstoned
  /// slots, which simply never surface from any cursor. The *live* count
  /// lives in stats().num_docs().
  size_t num_docs() const override {
    return static_cast<size_t>(state_->doc_space());
  }
  uint32_t DocFrequency(TermId t) const override {
    return state_->stats().df[t];
  }
  bool HasImpacts(TermId /*t*/) const override { return true; }
  double MaxImpact(TermId t) const override {
    return state_->TermBound(*model_, t);
  }
  std::unique_ptr<PostingCursor> OpenCursor(TermId t) const override {
    return state_->OpenMergedCursor(t, state_->TermBound(*model_, t));
  }
  std::optional<uint32_t> FindTf(TermId t, DocId doc) const override {
    return state_->FindTf(t, doc);
  }

  const ScoringModel* model() const { return model_.get(); }
  const CollectionStatsView* stats_view() const { return &stats_view_; }
  const CatalogState& state() const { return *state_; }

 private:
  std::shared_ptr<const CatalogState> state_;
  CatalogStatsViewImpl stats_view_;
  std::unique_ptr<ScoringModel> model_;
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_CATALOG_STATE_H_
