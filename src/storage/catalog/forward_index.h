// ForwardIndex: per-document (term, tf) compositions — the catalog's
// document store, and the MOAFWD01 sidecar that rides next to every
// MOAIF02 segment file.
//
// The inverted file answers "which documents contain term t"; the catalog
// additionally needs the transpose — "which terms does document d
// contain" — for two lifecycle operations:
//   - DeleteDocument: collection statistics (df, cf, token counts) must be
//     decremented by exactly the deleted document's composition, or
//     scoring would drift away from a fresh index of the survivors.
//   - Merge: surviving documents are re-fed through InvertedFileBuilder in
//     O(doc) each instead of transposing every segment's postings.
//
// On-disk layout (MOAFWD01, little-endian, written via atomic_file):
//   header     magic "MOAFWD01", u64 num_docs, u64 payload_bytes
//   offsets    u64[num_docs]  byte offset of each doc's run in payload
//   payload    per doc: varbyte(term_count), then per term in ascending
//              order: varbyte(term gap from previous term), varbyte(tf)
// The first term's gap is its absolute id; subsequent gaps are >= 1.
#ifndef MOA_STORAGE_CATALOG_FORWARD_INDEX_H_
#define MOA_STORAGE_CATALOG_FORWARD_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/posting.h"

namespace moa {

/// One document's bag of terms, ascending by term id, tf >= 1.
using DocTerms = std::vector<std::pair<TermId, uint32_t>>;

/// \brief In-memory forward index: doc -> sorted (term, tf) list.
class ForwardIndex {
 public:
  ForwardIndex() = default;

  /// Appends a document; `terms` must be sorted ascending by term id with
  /// distinct terms and tf >= 1 (validated by the callers that build
  /// documents — Memtable::AddDocument — and by ReadForwardIndex).
  void Append(DocTerms terms) { docs_.push_back(std::move(terms)); }

  size_t num_docs() const { return docs_.size(); }
  const DocTerms& doc(size_t d) const { return docs_[d]; }

  /// Token count (sum of tf) of document d.
  uint32_t DocLength(size_t d) const {
    uint32_t sum = 0;
    for (const auto& [t, tf] : docs_[d]) sum += tf;
    return sum;
  }

 private:
  std::vector<DocTerms> docs_;
};

/// Writes `fwd` as a MOAFWD01 file at `path` (atomic overwrite).
Status WriteForwardIndex(const ForwardIndex& fwd, const std::string& path);

/// Reads and fully validates a MOAFWD01 file: structural bounds, term
/// ordering/range (`num_terms` is the owning catalog's vocabulary) and the
/// expected document count (from the sibling segment's header).
Result<ForwardIndex> ReadForwardIndex(const std::string& path,
                                      uint64_t expected_docs,
                                      size_t num_terms);

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_FORWARD_INDEX_H_
