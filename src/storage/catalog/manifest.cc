#include "storage/catalog/manifest.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "storage/atomic_file.h"

namespace moa {
namespace {

constexpr char kManifestMagic[8] = {'M', 'O', 'A', 'C', 'A', 'T', '0', '2'};
constexpr char kManifestMagicV1[8] = {'M', 'O', 'A', 'C', 'A', 'T', '0', '1'};
/// Far above any real catalog; bounds allocations on corrupt input.
constexpr uint32_t kMaxSegments = 1u << 20;

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::Internal("manifest: short write");
  }
  return Status::OK();
}

template <typename T>
bool ReadPod(std::FILE* f, T* out) {
  return std::fread(out, sizeof(T), 1, f) == 1;
}

}  // namespace

std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg_%06llu.moa",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string ForwardFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg_%06llu.fwd",
                static_cast<unsigned long long>(id));
  return buf;
}

Status WriteManifest(const std::string& dir, const CatalogManifest& manifest,
                     bool strict_dir_sync) {
  const std::string path = dir + "/" + kManifestFileName;
  return WriteFileAtomically(path, [&](std::FILE* out) {
    MOA_RETURN_NOT_OK(WriteBytes(out, kManifestMagic, sizeof(kManifestMagic)));
    MOA_RETURN_NOT_OK(WriteBytes(out, &manifest.next_segment_id,
                                 sizeof(manifest.next_segment_id)));
    MOA_RETURN_NOT_OK(
        WriteBytes(out, &manifest.wal_seq, sizeof(manifest.wal_seq)));
    const uint32_t num_segments =
        static_cast<uint32_t>(manifest.segments.size());
    MOA_RETURN_NOT_OK(WriteBytes(out, &num_segments, sizeof(num_segments)));
    for (const ManifestSegment& seg : manifest.segments) {
      MOA_RETURN_NOT_OK(WriteBytes(out, &seg.id, sizeof(seg.id)));
      MOA_RETURN_NOT_OK(WriteBytes(out, &seg.num_docs, sizeof(seg.num_docs)));
      const uint32_t num_deleted = static_cast<uint32_t>(seg.deleted.size());
      MOA_RETURN_NOT_OK(WriteBytes(out, &num_deleted, sizeof(num_deleted)));
      MOA_RETURN_NOT_OK(WriteBytes(out, seg.deleted.data(),
                                   seg.deleted.size() * sizeof(uint32_t)));
    }
    return Status::OK();
  }, strict_dir_sync);
}

Result<CatalogManifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("manifest: cannot open: " + path);
  }
  const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f,
                                                               &std::fclose);
  // Actual file size bounds every allocation below: a corrupt count
  // field must produce InvalidArgument, never a multi-GiB resize.
  uint64_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const auto end = ::ftello(f);  // POSIX: 64-bit offset, unlike ftell
    if (end > 0) file_size = static_cast<uint64_t>(end);
  }
  std::rewind(f);

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    return Status::InvalidArgument("manifest: truncated magic: " + path);
  }
  const bool v2 = std::memcmp(magic, kManifestMagic, sizeof(magic)) == 0;
  if (!v2 && std::memcmp(magic, kManifestMagicV1, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "manifest: bad magic (not MOACAT01/MOACAT02): " + path);
  }

  CatalogManifest manifest;
  uint32_t num_segments = 0;
  if (!ReadPod(f, &manifest.next_segment_id) ||
      (v2 && !ReadPod(f, &manifest.wal_seq)) || !ReadPod(f, &num_segments)) {
    return Status::InvalidArgument("manifest: truncated header: " + path);
  }
  if (num_segments > kMaxSegments) {
    return Status::InvalidArgument(
        "manifest: implausible segment count: " + path);
  }

  std::set<uint64_t> seen_ids;
  manifest.segments.reserve(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    ManifestSegment seg;
    uint32_t num_deleted = 0;
    if (!ReadPod(f, &seg.id) || !ReadPod(f, &seg.num_docs) ||
        !ReadPod(f, &num_deleted)) {
      return Status::InvalidArgument(
          "manifest: truncated segment entry: " + path);
    }
    if (seg.id == 0 || seg.id >= manifest.next_segment_id ||
        !seen_ids.insert(seg.id).second) {
      return Status::InvalidArgument(
          "manifest: invalid or duplicate segment id: " + path);
    }
    if (num_deleted > seg.num_docs) {
      return Status::InvalidArgument(
          "manifest: more tombstones than documents: " + path);
    }
    if (static_cast<uint64_t>(num_deleted) * sizeof(uint32_t) > file_size) {
      return Status::InvalidArgument(
          "manifest: tombstone list exceeds file size: " + path);
    }
    seg.deleted.resize(num_deleted);
    if (num_deleted > 0 &&
        std::fread(seg.deleted.data(), sizeof(uint32_t), num_deleted, f) !=
            num_deleted) {
      return Status::InvalidArgument(
          "manifest: truncated tombstone list: " + path);
    }
    for (uint32_t d = 0; d < num_deleted; ++d) {
      if (seg.deleted[d] >= seg.num_docs ||
          (d > 0 && seg.deleted[d] <= seg.deleted[d - 1])) {
        return Status::InvalidArgument(
            "manifest: tombstone ids not ascending in range: " + path);
      }
    }
    manifest.segments.push_back(std::move(seg));
  }

  uint8_t extra = 0;
  if (std::fread(&extra, 1, 1, f) == 1) {
    return Status::InvalidArgument(
        "manifest: trailing bytes after segment list: " + path);
  }
  return manifest;
}

}  // namespace moa
