// Catalog manifest: the single file that *is* the durable truth of a
// catalog directory.
//
// Segment and forward-index files are immutable once written; lifecycle
// transitions (flush, merge, segment-level deletes) become durable only
// when a new MANIFEST naming the current segment list — and each
// segment's tombstoned local ids — is atomically renamed into place
// (storage/atomic_file.h). A crash at any point therefore leaves either
// the old manifest or the new one, never a half-written catalog: orphaned
// segment files from an unpublished flush/merge are simply not referenced
// and are ignored (and reclaimable) at the next open.
//
// Layout (MOACAT02, little-endian):
//   magic            "MOACAT02"
//   u64 next_segment_id
//   u64 wal_seq      live WAL sequence number (0 = no WAL)
//   u32 num_segments
//   per segment:     u64 id, u32 num_docs, u32 num_deleted,
//                    u32 deleted_local_ids[num_deleted] (ascending)
//
// The reader still accepts MOACAT01 (the same layout without `wal_seq`)
// as wal_seq = 0, so catalogs written before the WAL landed open
// unchanged.
//
// When wal_seq is non-zero, memtable contents *are* durable: every
// acknowledged mutation is in `wal_<seq>.log` (storage/catalog/wal.h)
// and replayed on Open.  With wal_seq == 0 the pre-WAL contract holds —
// unflushed documents vanish on crash; call Flush to persist.
#ifndef MOA_STORAGE_CATALOG_MANIFEST_H_
#define MOA_STORAGE_CATALOG_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace moa {

inline constexpr char kManifestFileName[] = "MANIFEST";

/// \brief One segment's durable record.
struct ManifestSegment {
  uint64_t id = 0;
  uint32_t num_docs = 0;
  /// Tombstoned local doc ids, ascending and unique.
  std::vector<uint32_t> deleted;
};

/// \brief Parsed manifest contents.
struct CatalogManifest {
  uint64_t next_segment_id = 1;
  /// Live WAL sequence number; 0 means the catalog has no WAL.
  uint64_t wal_seq = 0;
  std::vector<ManifestSegment> segments;
};

/// Derived file names, shared by writer and reader.
std::string SegmentFileName(uint64_t id);
std::string ForwardFileName(uint64_t id);

/// Atomically (over)writes `dir`/MANIFEST.  `strict_dir_sync` makes a
/// failed parent-directory fsync an error (required when a WAL's
/// durability contract rides on the manifest's rename being journaled).
Status WriteManifest(const std::string& dir, const CatalogManifest& manifest,
                     bool strict_dir_sync = false);

/// Reads and validates `dir`/MANIFEST (bounds, ascending unique tombstone
/// ids, distinct segment ids below next_segment_id, no trailing bytes).
Result<CatalogManifest> ReadManifest(const std::string& dir);

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_MANIFEST_H_
