// Catalog manifest: the single file that *is* the durable truth of a
// catalog directory.
//
// Segment and forward-index files are immutable once written; lifecycle
// transitions (flush, merge, segment-level deletes) become durable only
// when a new MANIFEST naming the current segment list — and each
// segment's tombstoned local ids — is atomically renamed into place
// (storage/atomic_file.h). A crash at any point therefore leaves either
// the old manifest or the new one, never a half-written catalog: orphaned
// segment files from an unpublished flush/merge are simply not referenced
// and are ignored (and reclaimable) at the next open.
//
// Layout (MOACAT01, little-endian):
//   magic            "MOACAT01"
//   u64 next_segment_id
//   u32 num_segments
//   per segment:     u64 id, u32 num_docs, u32 num_deleted,
//                    u32 deleted_local_ids[num_deleted] (ascending)
//
// Memtable contents are *not* durable — like any LSM write buffer without
// a WAL, unflushed documents (and deletes of them) vanish on crash; call
// Flush to persist.
#ifndef MOA_STORAGE_CATALOG_MANIFEST_H_
#define MOA_STORAGE_CATALOG_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace moa {

inline constexpr char kManifestFileName[] = "MANIFEST";

/// \brief One segment's durable record.
struct ManifestSegment {
  uint64_t id = 0;
  uint32_t num_docs = 0;
  /// Tombstoned local doc ids, ascending and unique.
  std::vector<uint32_t> deleted;
};

/// \brief Parsed manifest contents.
struct CatalogManifest {
  uint64_t next_segment_id = 1;
  std::vector<ManifestSegment> segments;
};

/// Derived file names, shared by writer and reader.
std::string SegmentFileName(uint64_t id);
std::string ForwardFileName(uint64_t id);

/// Atomically (over)writes `dir`/MANIFEST.
Status WriteManifest(const std::string& dir, const CatalogManifest& manifest);

/// Reads and validates `dir`/MANIFEST (bounds, ascending unique tombstone
/// ids, distinct segment ids below next_segment_id, no trailing bytes).
Result<CatalogManifest> ReadManifest(const std::string& dir);

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_MANIFEST_H_
