#include "storage/catalog/sharded_catalog.h"

#include <algorithm>
#include <sstream>

namespace moa {

// ------------------------------------------------------------ ShardedCatalog

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::Build(
    const Options& options,
    Result<std::unique_ptr<IndexCatalog>> (*open_one)(
        const IndexCatalog::Options&)) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedCatalog: num_shards must be >= 1");
  }
  auto catalog = std::unique_ptr<ShardedCatalog>(new ShardedCatalog(options));
  catalog->shards_.reserve(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    IndexCatalog::Options shard_options = options.shard;
    if (!options.shard.dir.empty()) {
      shard_options.dir = options.shard.dir + "/shard_" + std::to_string(s);
    }
    Result<std::unique_ptr<IndexCatalog>> shard = open_one(shard_options);
    if (!shard.ok()) return shard.status();
    catalog->shards_.push_back(std::move(shard).ValueOrDie());
  }
  return catalog;
}

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::Create(
    const Options& options) {
  return Build(options, &IndexCatalog::Create);
}

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::Open(
    const Options& options) {
  return Build(options, &IndexCatalog::Open);
}

size_t ShardedCatalog::LeastLoaded(const std::vector<uint64_t>& doc_space) {
  size_t best = 0;
  for (size_t s = 1; s < doc_space.size(); ++s) {
    if (doc_space[s] < doc_space[best]) best = s;
  }
  return best;
}

std::vector<uint64_t> ShardedCatalog::DocSpaces() const {
  std::vector<uint64_t> spaces(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    spaces[s] = shards_[s]->Snapshot()->doc_space();
  }
  return spaces;
}

Result<DocId> ShardedCatalog::AddDocument(const DocTerms& terms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t s = LeastLoaded(DocSpaces());
  Result<DocId> local = shards_[s]->AddDocument(terms);
  if (!local.ok()) return local.status();
  cached_.reset();
  return GlobalOf(local.ValueOrDie(), s, shards_.size());
}

Result<std::vector<DocId>> ShardedCatalog::AddDocuments(
    const std::vector<DocTerms>& docs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (docs.empty()) return std::vector<DocId>{};

  // Route greedily in input order against a simulated load vector, then
  // ingest each shard's run as one batch (one state publication per
  // touched shard). From an empty catalog this is exactly round-robin,
  // so a pristine seed gets identity global ids.
  std::vector<uint64_t> spaces = DocSpaces();
  std::vector<size_t> shard_of(docs.size());
  std::vector<std::vector<DocTerms>> batches(shards_.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    const size_t s = LeastLoaded(spaces);
    shard_of[i] = s;
    batches[s].push_back(docs[i]);
    ++spaces[s];
  }

  std::vector<DocId> first_local(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (batches[s].empty()) continue;
    Result<DocId> first = shards_[s]->AddDocuments(batches[s]);
    if (!first.ok()) return first.status();
    first_local[s] = first.ValueOrDie();
  }
  cached_.reset();

  std::vector<DocId> ids(docs.size());
  std::vector<DocId> next_local = first_local;  // consecutive per shard
  for (size_t i = 0; i < docs.size(); ++i) {
    const size_t s = shard_of[i];
    ids[i] = GlobalOf(next_local[s]++, s, shards_.size());
  }
  return ids;
}

Status ShardedCatalog::DeleteDocument(DocId global) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t s = ShardOf(global, shards_.size());
  Status status = shards_[s]->DeleteDocument(LocalOf(global, shards_.size()));
  if (status.ok()) cached_.reset();
  return status;
}

Result<DocId> ShardedCatalog::UpdateDocument(DocId global,
                                             const DocTerms& terms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t victim = ShardOf(global, shards_.size());
  MOA_RETURN_NOT_OK(
      shards_[victim]->DeleteDocument(LocalOf(global, shards_.size())));
  cached_.reset();
  const size_t s = LeastLoaded(DocSpaces());
  Result<DocId> local = shards_[s]->AddDocument(terms);
  if (!local.ok()) return local.status();
  return GlobalOf(local.ValueOrDie(), s, shards_.size());
}

Status ShardedCatalog::Flush(size_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status status = shards_[shard]->Flush();
  if (status.ok()) cached_.reset();
  return status;
}

Status ShardedCatalog::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) MOA_RETURN_NOT_OK(shard->Flush());
  cached_.reset();
  return Status::OK();
}

Result<size_t> ShardedCatalog::Merge(size_t shard, const MergePolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  Result<size_t> merged = shards_[shard]->Merge(policy);
  if (merged.ok()) cached_.reset();
  return merged;
}

Result<size_t> ShardedCatalog::MergeAll(const MergePolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (auto& shard : shards_) {
    Result<size_t> merged = shard->Merge(policy);
    if (!merged.ok()) return merged.status();
    total += merged.ValueOrDie();
  }
  cached_.reset();
  return total;
}

std::shared_ptr<const ShardedSnapshot> ShardedCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cached_ == nullptr) {
    std::vector<std::shared_ptr<const CatalogState>> states;
    states.reserve(shards_.size());
    for (const auto& shard : shards_) states.push_back(shard->Snapshot());
    cached_ = std::make_shared<const ShardedSnapshot>(std::move(states),
                                                      options_.shard.scoring);
  }
  return cached_;
}

// ----------------------------------------------------------- ShardedSnapshot

struct ShardedSnapshot::ShardEntry {
  ShardEntry(const ShardedSnapshot* snapshot, size_t index,
             std::shared_ptr<const CatalogState> s, ScoringModelKind kind,
             const CatalogStats* global)
      : state(std::move(s)),
        stats_view(global, state.get()),
        model(MakeScoringModel(kind, &stats_view)),
        source(snapshot, index, state.get()),
        composition(state->Composition()) {}

  std::shared_ptr<const CatalogState> state;
  ShardStatsView stats_view;
  std::unique_ptr<ScoringModel> model;
  ShardReadView source;
  CatalogComposition composition;

  // Build-once per-(shard, term) bound cache under the snapshot's global
  // statistics (same pattern as CatalogState's own cache, which cannot be
  // reused here — see the header's file comment).
  mutable std::mutex bounds_mutex;
  mutable std::vector<double> bound;
  mutable std::vector<uint8_t> bound_ready;
};

ShardedSnapshot::ShardedSnapshot(
    std::vector<std::shared_ptr<const CatalogState>> states,
    ScoringModelKind scoring)
    : global_(states.empty() ? 0 : states.front()->num_terms()) {
  // Aggregate the global statistics first: the per-shard models sample
  // the average document length at construction, so they must be built
  // against the completed aggregate.
  for (const auto& state : states) {
    const CatalogStats& s = state->stats();
    for (size_t t = 0; t < s.df.size(); ++t) {
      global_.df[t] += s.df[t];
      global_.cf[t] += s.cf[t];
    }
    global_.num_live_docs += s.num_live_docs;
    global_.total_live_tokens += s.total_live_tokens;
    version_ += state->version();
  }
  entries_.reserve(states.size());
  for (size_t s = 0; s < states.size(); ++s) {
    entries_.push_back(std::make_unique<ShardEntry>(
        this, s, std::move(states[s]), scoring, &global_));
  }
}

ShardedSnapshot::~ShardedSnapshot() = default;

uint64_t ShardedSnapshot::doc_space() const {
  const uint64_t n = entries_.size();
  uint64_t space = 0;
  for (size_t s = 0; s < entries_.size(); ++s) {
    const uint64_t local = entries_[s]->state->doc_space();
    if (local > 0) space = std::max(space, (local - 1) * n + s + 1);
  }
  return space;
}

const CatalogState& ShardedSnapshot::shard_state(size_t s) const {
  return *entries_[s]->state;
}

const PostingSource& ShardedSnapshot::shard_source(size_t s) const {
  return entries_[s]->source;
}

const ScoringModel& ShardedSnapshot::shard_model(size_t s) const {
  return *entries_[s]->model;
}

SparseIndexCache& ShardedSnapshot::shard_sparse_cache(size_t s) const {
  return entries_[s]->state->sparse_cache();
}

const CatalogComposition& ShardedSnapshot::shard_composition(size_t s) const {
  return entries_[s]->composition;
}

double ShardedSnapshot::ShardTermBound(size_t s, TermId t) const {
  const ShardEntry& entry = *entries_[s];
  // A term absent from this shard (the *local* df, not the global one the
  // read view reports) bounds at zero without touching the cache.
  if (entry.state->stats().df[t] == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(entry.bounds_mutex);
    if (entry.bound_ready.empty()) {
      entry.bound.assign(global_.df.size(), 0.0);
      entry.bound_ready.assign(global_.df.size(), 0);
    }
    if (entry.bound_ready[t] != 0) return entry.bound[t];
  }
  // Exact bound under the snapshot's global statistics: max current weight
  // over the shard's live postings. Computed outside the lock (idempotent;
  // concurrent first users store the same value).
  double bound = 0.0;
  for (auto cursor = entry.state->OpenMergedCursor(t, 0.0); !cursor->at_end();
       cursor->next()) {
    bound = std::max(
        bound, entry.model->Weight(t, Posting{cursor->doc(), cursor->tf()}));
  }
  std::lock_guard<std::mutex> lock(entry.bounds_mutex);
  entry.bound[t] = bound;
  entry.bound_ready[t] = 1;
  return bound;
}

double ShardedSnapshot::ShardQueryBound(size_t s, const Query& query) const {
  double bound = 0.0;
  for (TermId t : query.terms) bound += ShardTermBound(s, t);
  return bound;
}

uint32_t ShardedSnapshot::DocLength(DocId global) const {
  const size_t n = entries_.size();
  return entries_[ShardedCatalog::ShardOf(global, n)]->state->DocLength(
      ShardedCatalog::LocalOf(global, n));
}

bool ShardedSnapshot::IsDeleted(DocId global) const {
  const size_t n = entries_.size();
  return entries_[ShardedCatalog::ShardOf(global, n)]->state->IsDeleted(
      ShardedCatalog::LocalOf(global, n));
}

const DocTerms& ShardedSnapshot::TermsOf(DocId global) const {
  const size_t n = entries_.size();
  return entries_[ShardedCatalog::ShardOf(global, n)]->state->TermsOf(
      ShardedCatalog::LocalOf(global, n));
}

std::optional<uint32_t> ShardedSnapshot::FindTf(TermId t, DocId global) const {
  const size_t n = entries_.size();
  return entries_[ShardedCatalog::ShardOf(global, n)]->state->FindTf(
      t, ShardedCatalog::LocalOf(global, n));
}

std::vector<DocId> ShardedSnapshot::LiveDocIds() const {
  const size_t n = entries_.size();
  std::vector<DocId> ids;
  for (size_t s = 0; s < entries_.size(); ++s) {
    for (DocId local : entries_[s]->state->LiveDocIds()) {
      ids.push_back(ShardedCatalog::GlobalOf(local, s, n));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string ShardedSnapshot::Describe() const {
  std::ostringstream os;
  os << "sharded(" << entries_.size() << "): [";
  for (size_t s = 0; s < entries_.size(); ++s) {
    if (s > 0) os << "; ";
    os << "shard " << s << ": " << entries_[s]->state->Describe();
  }
  os << "]";
  return os.str();
}

// ------------------------------------------------------------ ShardReadView

size_t ShardReadView::num_terms() const {
  return snapshot_->stats().df.size();
}

uint32_t ShardReadView::DocFrequency(TermId t) const {
  return snapshot_->stats().df[t];
}

double ShardReadView::MaxImpact(TermId t) const {
  return snapshot_->ShardTermBound(shard_, t);
}

std::unique_ptr<PostingCursor> ShardReadView::OpenCursor(TermId t) const {
  return state_->OpenMergedCursor(t, snapshot_->ShardTermBound(shard_, t));
}

}  // namespace moa
