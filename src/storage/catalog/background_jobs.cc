#include "storage/catalog/background_jobs.h"

#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace moa {
namespace {

struct BgMetrics {
  obs::Counter* flushes;
  obs::Counter* merges;
  obs::Counter* rate_limited;
  static const BgMetrics& Get() {
    static const BgMetrics m = [] {
      auto& r = obs::MetricsRegistry::Global();
      return BgMetrics{r.GetCounter("moa_bg_flush_total"),
                       r.GetCounter("moa_bg_merge_total"),
                       r.GetCounter("moa_bg_rate_limited_total")};
    }();
    return m;
  }
};

/// Size-tiered pick: the adjacent run of `fanin` segments with the
/// smallest total document count — cheap to compact and usually the
/// young, small tail the flusher keeps producing.
MergePolicy PickMergeRun(const CatalogState& state, size_t fanin) {
  const auto& segments = state.segments();
  if (fanin < 2) fanin = 2;
  if (segments.size() < fanin) fanin = segments.size();
  MergePolicy policy;
  policy.count = fanin;
  uint64_t best = std::numeric_limits<uint64_t>::max();
  uint64_t window = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    window += segments[i]->num_docs();
    if (i + 1 > fanin) window -= segments[i - fanin]->num_docs();
    if (i + 1 >= fanin && window < best) {
      best = window;
      policy.first = i + 1 - fanin;
    }
  }
  return policy;
}

}  // namespace

BackgroundMaintenance::BackgroundMaintenance(
    IndexCatalog* catalog, MaintenancePolicy policy,
    std::function<void()> on_state_change)
    : catalog_(catalog),
      policy_(policy),
      on_state_change_(std::move(on_state_change)) {
  if (obs::kEnabled) BgMetrics::Get();  // register the family eagerly
  catalog_->SetWriteObserver([this] { MaybeSchedule(/*force=*/false); });
  // Ingest may have preceded attachment (e.g. a reopened catalog whose
  // replayed memtable is already over the trigger).
  MaybeSchedule(/*force=*/false);
}

BackgroundMaintenance::~BackgroundMaintenance() {
  // Detach first: after this returns no new observer call can start, so
  // no new job can be scheduled behind our back.
  catalog_->SetWriteObserver(nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_ = true;
  idle_cv_.wait(lock, [this] { return !job_in_flight_; });
}

bool BackgroundMaintenance::TriggersFire() const {
  const std::shared_ptr<const CatalogState> snap = catalog_->Snapshot();
  if (policy_.flush_trigger_docs > 0 &&
      snap->memtable().num_docs() >= policy_.flush_trigger_docs) {
    return true;
  }
  if (policy_.merge_trigger_segments > 0 &&
      snap->segments().size() >= policy_.merge_trigger_segments) {
    return true;
  }
  return false;
}

void BackgroundMaintenance::MaybeSchedule(bool force) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || job_in_flight_) return;
  if (!TriggersFire()) return;
  if (!force && policy_.min_interval_millis > 0 && ever_ran_) {
    const auto next_allowed =
        last_job_start_ +
        std::chrono::milliseconds(policy_.min_interval_millis);
    if (std::chrono::steady_clock::now() < next_allowed) {
      // Skip-and-retrigger: the next committed write re-checks, so the
      // trigger is deferred, not lost.
      if (obs::kEnabled) BgMetrics::Get().rate_limited->Add();
      return;
    }
  }
  job_in_flight_ = true;
  ever_ran_ = true;
  last_job_start_ = std::chrono::steady_clock::now();
  ThreadPool::Shared().Submit([this] { RunJob(); });
}

void BackgroundMaintenance::RunJob() {
  Status error;

  std::shared_ptr<const CatalogState> snap = catalog_->Snapshot();
  if (policy_.flush_trigger_docs > 0 &&
      snap->memtable().num_docs() >= policy_.flush_trigger_docs) {
    const Status s = catalog_->Flush();
    if (s.ok()) {
      if (obs::kEnabled) BgMetrics::Get().flushes->Add();
    } else {
      error = s;
      MOA_LOG(Error) << "background flush failed: " << s.ToString();
    }
  }

  snap = catalog_->Snapshot();
  if (error.ok() && policy_.merge_trigger_segments > 0 &&
      snap->segments().size() >= policy_.merge_trigger_segments) {
    const Status s =
        catalog_->Merge(PickMergeRun(*snap, policy_.merge_fanin)).status();
    if (s.ok()) {
      if (obs::kEnabled) BgMetrics::Get().merges->Add();
    } else {
      error = s;
      MOA_LOG(Error) << "background merge failed: " << s.ToString();
    }
  }

  if (on_state_change_) on_state_change_();

  // Tail protocol: the destructor may return (and the object die) the
  // instant `job_in_flight_` is observed false, so everything after the
  // job — error recording, the ingest-outran-us re-check, the idle
  // notify — must happen under this one lock hold, and rescheduling
  // keeps the slot (resubmit with `job_in_flight_` still true) rather
  // than dropping and re-taking it. No member access follows the
  // unlock.
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error.ok()) last_error_ = error;
  // Re-check triggers: ingest may have outrun this job. Never after an
  // error — retrying a failing disk in a tight loop starves the pool,
  // and the next successful write re-triggers anyway.
  if (!stopping_ && error.ok() && TriggersFire()) {
    bool rate_limited = false;
    if (policy_.min_interval_millis > 0) {
      const auto next_allowed =
          last_job_start_ +
          std::chrono::milliseconds(policy_.min_interval_millis);
      rate_limited = std::chrono::steady_clock::now() < next_allowed;
    }
    if (!rate_limited) {
      last_job_start_ = std::chrono::steady_clock::now();
      ThreadPool::Shared().Submit([this] { RunJob(); });
      return;  // slot stays claimed; the destructor keeps waiting
    }
    // Deferred, not lost: the next committed write re-checks.
    if (obs::kEnabled) BgMetrics::Get().rate_limited->Add();
  }
  job_in_flight_ = false;
  idle_cv_.notify_all();
}

void BackgroundMaintenance::WaitIdle() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      idle_cv_.wait(lock, [this] { return !job_in_flight_; });
      if (stopping_) return;
      if (!TriggersFire()) return;
      if (!last_error_.ok()) return;  // a broken disk would never settle
    }
    MaybeSchedule(/*force=*/true);
    // If the trigger fired but scheduling lost a race with a concurrent
    // writer's observer, loop: the wait above re-blocks until idle.
  }
}

Status BackgroundMaintenance::TakeLastError() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s = std::move(last_error_);
  last_error_ = Status::OK();
  return s;
}

}  // namespace moa
