#include "storage/catalog/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/atomic_file.h"
#include "storage/segment/varbyte.h"

namespace moa {
namespace {

constexpr char kWalMagic[8] = {'M', 'O', 'A', 'W', 'A', 'L', '0', '1'};
constexpr size_t kRecordHeaderBytes = 4 + 4 + 1;  // size + crc + type
// A record holds one document; anything near this is corruption, not a
// real payload (the bound only rejects garbage sizes before allocating).
constexpr uint32_t kMaxPayloadBytes = 1u << 28;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

struct WalMetrics {
  obs::Counter* appended_records;
  obs::Counter* appended_bytes;
  obs::Counter* fsyncs;
  obs::Counter* replay_records;
  obs::Counter* replay_truncations;
  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      auto& r = obs::MetricsRegistry::Global();
      return WalMetrics{r.GetCounter("moa_wal_appended_records_total"),
                        r.GetCounter("moa_wal_appended_bytes_total"),
                        r.GetCounter("moa_wal_fsync_total"),
                        r.GetCounter("moa_wal_replay_records_total"),
                        r.GetCounter("moa_wal_replay_truncations_total")};
    }();
    return m;
  }
};

std::vector<uint8_t> EncodeAddPayload(const DocTerms& terms) {
  // Canonical ascending term order makes gap coding work regardless of
  // the caller's input order (the memtable accepts any order too).
  DocTerms sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint8_t> payload;
  VarbyteAppend(payload, static_cast<uint32_t>(sorted.size()));
  TermId previous = 0;
  for (const auto& [term, tf] : sorted) {
    VarbyteAppend(payload, term - previous);
    VarbyteAppend(payload, tf);
    previous = term;
  }
  return payload;
}

/// Decodes an add/delete payload into `record`; false on malformed bytes
/// (possible only when corruption collides with the CRC).
bool DecodePayload(uint8_t type, const uint8_t* p, const uint8_t* end,
                   WalRecord* record) {
  if (type == WalRecord::kAdd) {
    record->type = WalRecord::kAdd;
    uint32_t num_terms = 0;
    size_t n = VarbyteDecode(p, end, &num_terms);
    if (n == 0) return false;
    p += n;
    record->terms.clear();
    record->terms.reserve(num_terms);
    TermId previous = 0;
    for (uint32_t i = 0; i < num_terms; ++i) {
      uint32_t gap = 0, tf = 0;
      if ((n = VarbyteDecode(p, end, &gap)) == 0) return false;
      p += n;
      if ((n = VarbyteDecode(p, end, &tf)) == 0) return false;
      p += n;
      previous += gap;
      record->terms.emplace_back(previous, tf);
    }
    return p == end;
  }
  if (type == WalRecord::kDelete) {
    record->type = WalRecord::kDelete;
    uint32_t doc = 0;
    const size_t n = VarbyteDecode(p, end, &doc);
    if (n == 0) return false;
    record->doc = doc;
    return p + n == end;
  }
  return false;  // unknown type
}

}  // namespace

uint32_t WalCrc32(const uint8_t* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WalFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal_%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("wal: cannot create " + path);
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(f, path));
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), f) != sizeof(kWalMagic)) {
    return Status::Internal("wal: short header write: " + path);
  }
  writer->appended_bytes_ = sizeof(kWalMagic);
  // Header + the file's very existence must be durable before the
  // manifest can reference this sequence number.
  MOA_RETURN_NOT_OK(writer->Sync());
  MOA_RETURN_NOT_OK(SyncParentDir(path));
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("wal: cannot open for append " + path);
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(f, path));
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const auto end = ::ftello(f);
    if (end > 0) writer->appended_bytes_ = static_cast<uint64_t>(end);
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

Status WalWriter::AppendRecord(uint8_t type,
                               const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("wal: oversized record");
  }
  std::vector<uint8_t> framed;
  framed.reserve(kRecordHeaderBytes + payload.size());
  PutU32(framed, static_cast<uint32_t>(payload.size()));
  std::vector<uint8_t> checked;
  checked.reserve(1 + payload.size());
  checked.push_back(type);
  checked.insert(checked.end(), payload.begin(), payload.end());
  PutU32(framed, WalCrc32(checked.data(), checked.size()));
  framed.insert(framed.end(), checked.begin(), checked.end());
  MOA_RETURN_NOT_OK(WriteAllBytes(f_, framed.data(), framed.size(), "wal"));
  ++pending_records_;
  appended_bytes_ += framed.size();
  if (obs::kEnabled) {
    const WalMetrics& m = WalMetrics::Get();
    m.appended_records->Add();
    m.appended_bytes->Add(static_cast<double>(framed.size()));
  }
  return Status::OK();
}

Status WalWriter::AppendAdd(const DocTerms& terms) {
  return AppendRecord(WalRecord::kAdd, EncodeAddPayload(terms));
}

Status WalWriter::AppendDelete(DocId global_doc) {
  std::vector<uint8_t> payload;
  VarbyteAppend(payload, global_doc);
  return AppendRecord(WalRecord::kDelete, payload);
}

Status WalWriter::Sync() {
  if (std::fflush(f_) != 0) {
    return Status::Internal("wal: flush failed: " + path_);
  }
  if (::fsync(::fileno(f_)) != 0) {
    return Status::Internal("wal: fsync failed: " + path_);
  }
  pending_records_ = 0;
  if (obs::kEnabled) WalMetrics::Get().fsyncs->Add();
  return Status::OK();
}

Status WalWriter::SyncIfPending(size_t fsync_every) {
  if (fsync_every == 0) fsync_every = 1;
  if (pending_records_ >= fsync_every) return Sync();
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t offset) {
  if (std::fflush(f_) != 0) {
    return Status::Internal("wal: flush before truncate failed: " + path_);
  }
  const int fd = ::fileno(f_);
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    return Status::Internal("wal: truncate failed: " + path_);
  }
  // A non-O_APPEND stream would otherwise leave a hole at the old
  // position on the next write (append-mode streams ignore the seek).
  std::fseek(f_, static_cast<long>(offset), SEEK_SET);
  if (::fsync(fd) != 0) {
    return Status::Internal("wal: fsync after truncate failed: " + path_);
  }
  appended_bytes_ = offset;
  pending_records_ = 0;
  return Status::OK();
}

Result<WalReplay> ReplayWal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("wal: missing " + path);
  }
  std::vector<uint8_t> bytes;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) return Status::Internal("wal: read failed: " + path);
  }
  if (bytes.size() < sizeof(kWalMagic) ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    // The manifest ordering fsyncs the header before anything references
    // this file, so a bad header is corruption, not a torn append.
    return Status::Internal("wal: bad header: " + path);
  }

  WalReplay replay;
  size_t offset = sizeof(kWalMagic);
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kRecordHeaderBytes) break;  // torn header
    const uint32_t payload_size = GetU32(&bytes[offset]);
    const uint32_t stored_crc = GetU32(&bytes[offset + 4]);
    if (payload_size > kMaxPayloadBytes) break;  // garbage size
    const size_t record_bytes = kRecordHeaderBytes + payload_size;
    if (bytes.size() - offset < record_bytes) break;  // torn payload
    const uint8_t* checked = &bytes[offset + 8];      // type + payload
    if (WalCrc32(checked, 1 + payload_size) != stored_crc) break;
    WalRecord record;
    if (!DecodePayload(checked[0], checked + 1, checked + 1 + payload_size,
                       &record)) {
      break;  // malformed payload that slipped past the CRC
    }
    replay.records.push_back(std::move(record));
    offset += record_bytes;
  }
  replay.valid_bytes = offset;
  replay.truncated = offset < bytes.size();

  if (replay.truncated) {
    // Cut the torn tail off in place so a later append starts at a
    // record boundary.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return Status::Internal("wal: cannot open to truncate " + path);
    const bool ok = ::ftruncate(fd, static_cast<off_t>(offset)) == 0 &&
                    ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) return Status::Internal("wal: truncate failed: " + path);
    MOA_LOG(Warning) << "wal: truncated torn tail of " << path << " at byte "
                     << offset << " (" << bytes.size() - offset
                     << " bytes dropped)";
  }
  if (obs::kEnabled) {
    const WalMetrics& m = WalMetrics::Get();
    m.replay_records->Add(static_cast<double>(replay.records.size()));
    if (replay.truncated) m.replay_truncations->Add();
  }
  return replay;
}

}  // namespace moa
