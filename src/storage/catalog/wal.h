// Write-ahead log for the catalog memtable: MOAWAL01.
//
// The catalog's segments and manifest are published through the
// crash-safe `atomic_file` rename spine, but the memtable used to live
// only in memory — a crash lost every unflushed document.  The WAL
// closes that gap: every acknowledged mutation is appended here and
// fsync'ed before the caller sees OK, and `IndexCatalog::Open` replays
// the log on top of the manifest-described state.
//
// On-disk layout (all integers little-endian):
//
//   header   8 bytes   magic "MOAWAL01"
//   record   u32 payload_size
//            u32 crc32(type byte + payload)     IEEE / zlib polynomial
//            u8  type                           1 = add, 2 = delete
//            payload_size bytes of payload
//
//   add payload:    varbyte num_terms, then per term in ascending term
//                   order: varbyte term-id gap (first gap = the id
//                   itself), varbyte term frequency
//   delete payload: varbyte global doc id
//
// An update is logged as a delete record followed by an add record.
//
// The WAL is the one append-in-place file in the system, so it cannot
// ride the rename spine; instead the *manifest* names the live WAL
// sequence number (MOACAT02 `wal_seq`) and rotation orders
// write-new-WAL → publish-manifest → unlink-old, which keeps every
// manifest-referenced WAL fully created (header fsync'ed, directory
// synced) before anything points at it.
//
// Replay walks records until the first short or corrupt one and
// truncates the file back to the valid prefix (a crash mid-append can
// only tear the tail).  Everything before the tear is exactly the set
// of acknowledged-or-in-flight writes; everything after never returned
// OK to a caller.
#ifndef MOA_STORAGE_CATALOG_WAL_H_
#define MOA_STORAGE_CATALOG_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog/forward_index.h"
#include "storage/posting.h"

namespace moa {

/// File name of WAL sequence `seq` inside a catalog directory
/// ("wal_000001.log").  Sequence 0 means "no WAL" and has no file.
std::string WalFileName(uint64_t seq);

/// One decoded WAL record.
struct WalRecord {
  enum Type : uint8_t { kAdd = 1, kDelete = 2 };
  Type type = kAdd;
  DocTerms terms;   ///< kAdd: the document's (term, tf) pairs, ascending
  DocId doc = 0;    ///< kDelete: global doc id
};

/// \brief Appender for one WAL file.  Not thread-safe: the group-commit
/// leader in IndexCatalog is the only writer.
class WalWriter {
 public:
  /// Creates (truncating) the WAL at `path`, writes and fsyncs the
  /// header, and syncs the parent directory — the file is durable
  /// before Create returns, so a manifest may reference it.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path);

  /// Opens an existing (already replayed + tail-truncated) WAL for
  /// appending.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status AppendAdd(const DocTerms& terms);
  Status AppendDelete(DocId global_doc);

  /// fflush + fsync.  A record is durable only after Sync returns OK.
  Status Sync();

  /// Sync() once at least `fsync_every` records are pending; the
  /// group-commit fsync-batching knob (1 = sync every group).
  Status SyncIfPending(size_t fsync_every);

  /// Cuts the file back to `offset` bytes (a prior appended_bytes()
  /// mark): the group-commit rollback when an append or sync fails —
  /// bytes that were never acknowledged must not replay.
  Status TruncateTo(uint64_t offset);

  size_t pending_records() const { return pending_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}

  Status AppendRecord(uint8_t type, const std::vector<uint8_t>& payload);

  std::FILE* f_;
  std::string path_;
  size_t pending_records_ = 0;
  uint64_t appended_bytes_ = 0;
};

/// Result of replaying a WAL file.
struct WalReplay {
  std::vector<WalRecord> records;  ///< the valid prefix, in append order
  uint64_t valid_bytes = 0;        ///< header + valid records
  bool truncated = false;          ///< a torn/corrupt tail was cut off
};

/// Reads and validates the WAL at `path`, truncating the file in place
/// to the valid prefix if the tail is torn or corrupt.  A missing file
/// or a corrupt *header* is an error (the manifest ordering guarantees
/// a referenced WAL exists with a durable header); a torn tail is not.
Result<WalReplay> ReplayWal(const std::string& path);

/// CRC-32 (IEEE 802.3, zlib polynomial) over `size` bytes.
uint32_t WalCrc32(const uint8_t* data, size_t size);

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_WAL_H_
