// Background maintenance for an IndexCatalog: flushes and merges run as
// jobs on the shared ThreadPool while foreground writers keep committing.
//
//      AddDocument ──┐ (observer fires after every committed group)
//                    ▼
//          MaybeSchedule ── over trigger? ──▶ ThreadPool::Shared()
//                │ rate-limited / job already in flight: skip      │
//                ▼                                                 ▼
//          (writer returns)                    RunJob: Flush / size-tiered
//                                              Merge, then re-check triggers
//
// The catalog's two-phase Flush/Merge (file writes unlocked, publish
// re-derived from the then-current state) is what makes this safe: a
// maintenance job and a foreground mutation can never interleave into a
// torn manifest, and readers keep serving immutable snapshots throughout.
//
// Policy. A flush triggers once the memtable holds `flush_trigger_docs`
// documents; a merge triggers once `merge_trigger_segments` segments
// accumulate, compacting the adjacent run of `merge_fanin` segments with
// the smallest total document count (size-tiered: small young segments
// merge often, big old ones rarely). `min_interval_millis` rate-limits
// job starts per catalog; a skipped trigger re-fires on the next write.
//
// At most one job runs per BackgroundMaintenance instance; the write
// observer only *schedules* (O(1), no I/O), so commit latency stays flat.
//
// Backpressure pairs with this: IndexCatalog::Options'
// backpressure_memtable_docs / backpressure_max_segments bound how far
// ingest may outrun maintenance — writers block (or soft-fail) over
// budget and are woken by the flush/merge publish.
//
// Shutdown: the destructor detaches the observer, waits for the in-flight
// job, and drops any pending trigger. WaitIdle() drains outstanding work
// (ignoring the rate limit) for tests and orderly close.
#ifndef MOA_STORAGE_CATALOG_BACKGROUND_JOBS_H_
#define MOA_STORAGE_CATALOG_BACKGROUND_JOBS_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "storage/catalog/index_catalog.h"

namespace moa {

/// \brief When background maintenance fires and how much it compacts.
struct MaintenancePolicy {
  /// Flush once the memtable buffers this many documents.
  size_t flush_trigger_docs = 1024;
  /// Merge once this many segments accumulate.
  size_t merge_trigger_segments = 8;
  /// Segments per merge: the adjacent run of this many segments with the
  /// smallest total document count is compacted (size-tiered).
  size_t merge_fanin = 4;
  /// Minimum milliseconds between job starts (0 = no rate limit). A
  /// trigger suppressed by the limit re-fires on the next write.
  uint64_t min_interval_millis = 0;
};

/// \brief Runs Flush/Merge for one catalog on the shared thread pool.
///
/// Attaches itself as the catalog's write observer on construction and
/// detaches on destruction. `on_state_change` (optional) is invoked after
/// every completed job — the ShardedCatalog uses it to invalidate its
/// cached snapshot. Thread-safe; at most one job in flight.
class BackgroundMaintenance {
 public:
  BackgroundMaintenance(IndexCatalog* catalog, MaintenancePolicy policy,
                        std::function<void()> on_state_change = nullptr);
  ~BackgroundMaintenance();

  BackgroundMaintenance(const BackgroundMaintenance&) = delete;
  BackgroundMaintenance& operator=(const BackgroundMaintenance&) = delete;

  /// Blocks until no trigger is pending and no job is in flight,
  /// ignoring the rate limit — the "settle" for tests and shutdown.
  /// Foreground writers may of course re-trigger afterwards.
  void WaitIdle();

  /// Last error a background job hit (jobs have no caller to report to);
  /// OK when none. Sticky until read.
  Status TakeLastError();

  const MaintenancePolicy& policy() const { return policy_; }

 private:
  /// Write-observer hook: re-checks triggers and schedules at most one
  /// job. `force` ignores the rate limit (WaitIdle / post-job re-check).
  void MaybeSchedule(bool force);
  /// True when the catalog's current state crosses a trigger.
  bool TriggersFire() const;
  /// The scheduled job: flush and/or size-tiered merge, then re-check.
  void RunJob();

  IndexCatalog* catalog_;
  const MaintenancePolicy policy_;
  std::function<void()> on_state_change_;

  std::mutex mutex_;
  std::condition_variable idle_cv_;
  bool job_in_flight_ = false;
  bool stopping_ = false;
  Status last_error_;
  std::chrono::steady_clock::time_point last_job_start_{};
  bool ever_ran_ = false;
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_BACKGROUND_JOBS_H_
