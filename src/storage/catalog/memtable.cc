#include "storage/catalog/memtable.h"

#include <algorithm>

namespace moa {

Result<DocId> Memtable::AddDocument(const DocTerms& terms) {
  DocTerms sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].first >= lists_.size()) {
      return Status::InvalidArgument("memtable: term id out of vocabulary");
    }
    if (sorted[i].second == 0) {
      return Status::InvalidArgument("memtable: zero term frequency");
    }
    if (i > 0 && sorted[i].first == sorted[i - 1].first) {
      return Status::InvalidArgument("memtable: duplicate term in document");
    }
  }

  const DocId local = static_cast<DocId>(doc_lengths_.size());
  uint32_t length = 0;
  for (const auto& [t, tf] : sorted) {
    lists_[t].push_back(Posting{local, tf});
    length += tf;
  }
  doc_lengths_.push_back(length);
  fwd_.Append(std::move(sorted));
  return local;
}

Result<InvertedFile> Memtable::ToInvertedFile() const {
  InvertedFileBuilder builder(lists_.size());
  for (DocId d = 0; d < num_docs(); ++d) {
    MOA_RETURN_NOT_OK(builder.AddDocument(d, fwd_.doc(d)));
  }
  return builder.Build();
}

}  // namespace moa
