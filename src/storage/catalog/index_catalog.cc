#include "storage/catalog/index_catalog.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "storage/segment/fragment_directory.h"
#include "storage/segment/segment_writer.h"

namespace moa {
namespace {

/// Size of a just-written file, for the bytes-written counter. Best
/// effort: a stat failure contributes 0 rather than failing the flush.
double FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0.0 : static_cast<double>(size);
}

/// Writer options for a catalog segment: impacts (and the fragment
/// directory sidecar) are stamped under a model bound to the flushed
/// file's *own* statistics. Snapshots never prune on these stored bounds
/// (live statistics move; CatalogState recomputes exact bounds per
/// snapshot), but a segment served standalone — or a future
/// bounds-rebasing optimization — gets the full impact metadata for free.
SegmentWriterOptions CatalogSegmentWriterOptions(
    const InvertedFile& file, ScoringModelKind scoring, uint32_t block_size,
    std::unique_ptr<ScoringModel>* model_out) {
  SegmentWriterOptions options;
  options.block_size = block_size;
  *model_out = MakeScoringModel(scoring, &file);
  ScoringModel* model = model_out->get();
  options.impact_fn = [model](TermId t, const Posting& p) {
    return model->Weight(t, p);
  };
  options.impact_model = model->name().substr(0, kImpactModelBytes - 1);
  return options;
}

/// Opens one durable segment (reader + sidecar) and cross-validates the
/// two against each other: document counts, per-document lengths, and the
/// full per-term document frequencies — a sidecar that drifted from its
/// segment would silently corrupt statistics maintenance.
Result<std::shared_ptr<const CatalogSegment>> OpenCatalogSegment(
    const std::string& dir, const ManifestSegment& entry, size_t num_terms,
    bool verify_payload) {
  auto seg = std::make_shared<CatalogSegment>();
  seg->id = entry.id;
  seg->segment_path = dir + "/" + SegmentFileName(entry.id);

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(seg->segment_path);
  if (!reader.ok()) return reader.status();
  seg->reader = std::move(reader).ValueOrDie();
  if (seg->reader->num_terms() != num_terms) {
    return Status::InvalidArgument(
        "catalog: segment vocabulary disagrees with catalog: " +
        seg->segment_path);
  }
  if (seg->reader->num_docs() != entry.num_docs) {
    return Status::InvalidArgument(
        "catalog: segment document count disagrees with manifest: " +
        seg->segment_path);
  }
  if (verify_payload) {
    MOA_RETURN_NOT_OK(seg->reader->CheckIntegrity());
  }

  Result<ForwardIndex> fwd = ReadForwardIndex(
      dir + "/" + ForwardFileName(entry.id), entry.num_docs, num_terms);
  if (!fwd.ok()) return fwd.status();
  seg->fwd = std::make_shared<const ForwardIndex>(std::move(fwd).ValueOrDie());

  // Sidecar/segment cross-validation.
  std::vector<uint32_t> df(num_terms, 0);
  for (uint32_t d = 0; d < entry.num_docs; ++d) {
    const DocTerms& terms = seg->fwd->doc(d);
    uint32_t length = 0;
    for (const auto& [t, tf] : terms) {
      ++df[t];
      length += tf;
    }
    if (length != seg->reader->DocLength(d)) {
      return Status::InvalidArgument(
          "catalog: sidecar document length disagrees with segment: " +
          seg->segment_path);
    }
  }
  for (TermId t = 0; t < num_terms; ++t) {
    if (df[t] != seg->reader->DocFrequency(t)) {
      return Status::InvalidArgument(
          "catalog: sidecar document frequency disagrees with segment: " +
          seg->segment_path);
    }
  }

  seg->deleted.assign(entry.num_docs, 0);
  for (uint32_t local : entry.deleted) {
    seg->deleted[local] = 1;
  }
  seg->num_deleted = static_cast<uint32_t>(entry.deleted.size());
  return std::shared_ptr<const CatalogSegment>(std::move(seg));
}

}  // namespace

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Create(
    const Options& options) {
  if (options.num_terms == 0) {
    return Status::InvalidArgument("catalog: vocabulary size required");
  }
  if (!options.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
      return Status::Internal("catalog: cannot create directory: " +
                              options.dir + ": " + ec.message());
    }
    if (std::filesystem::exists(options.dir + "/" + kManifestFileName)) {
      return Status::InvalidArgument(
          "catalog: directory already holds a catalog (use Open): " +
          options.dir);
    }
  }
  auto catalog = std::unique_ptr<IndexCatalog>(new IndexCatalog(options));
  catalog->state_ = std::make_shared<const CatalogState>(
      std::vector<std::shared_ptr<const CatalogSegment>>{},
      std::make_shared<const Memtable>(options.num_terms),
      std::vector<uint8_t>{}, CatalogStats(options.num_terms), /*version=*/0);
  return catalog;
}

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Open(
    const Options& options) {
  if (options.num_terms == 0) {
    return Status::InvalidArgument("catalog: vocabulary size required");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("catalog: Open requires a directory");
  }
  Result<CatalogManifest> manifest = ReadManifest(options.dir);
  if (!manifest.ok()) return manifest.status();

  std::vector<std::shared_ptr<const CatalogSegment>> segments;
  CatalogStats stats(options.num_terms);
  for (const ManifestSegment& entry : manifest.ValueOrDie().segments) {
    Result<std::shared_ptr<const CatalogSegment>> seg =
        OpenCatalogSegment(options.dir, entry, options.num_terms,
                           options.verify_payload_at_open);
    if (!seg.ok()) return seg.status();
    // Live statistics: apply every surviving document's composition.
    const CatalogSegment& s = *seg.ValueOrDie();
    for (uint32_t d = 0; d < s.num_docs(); ++d) {
      if (s.deleted[d] == 0) stats.Apply(s.fwd->doc(d), +1);
    }
    segments.push_back(std::move(seg).ValueOrDie());
  }

  auto catalog = std::unique_ptr<IndexCatalog>(new IndexCatalog(options));
  catalog->next_segment_id_ = manifest.ValueOrDie().next_segment_id;
  catalog->state_ = std::make_shared<const CatalogState>(
      std::move(segments), std::make_shared<const Memtable>(options.num_terms),
      std::vector<uint8_t>{}, std::move(stats), /*version=*/0);
  return catalog;
}

std::shared_ptr<const CatalogState> IndexCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

std::shared_ptr<const CatalogReadView> IndexCatalog::OpenReadView() const {
  return std::make_shared<const CatalogReadView>(Snapshot(),
                                                 options_.scoring);
}

void IndexCatalog::Publish(std::shared_ptr<const CatalogState> next) {
  if (obs::kEnabled) {
    // Gauges track the published state; every mutation funnels through
    // here, so the scrape always sees the latest catalog shape.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("moa_catalog_segments")
        ->Set(static_cast<double>(next->segments().size()));
    const double live = static_cast<double>(next->stats().num_live_docs);
    const double space = static_cast<double>(next->doc_space());
    registry.GetGauge("moa_catalog_live_docs")->Set(live);
    registry.GetGauge("moa_catalog_tombstone_density")
        ->Set(space == 0.0 ? 0.0 : 1.0 - live / space);
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::move(next);
}

CatalogManifest IndexCatalog::ManifestFor(
    const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
    uint64_t next_segment_id) {
  CatalogManifest manifest;
  manifest.next_segment_id = next_segment_id;
  for (const auto& seg : segments) {
    ManifestSegment entry;
    entry.id = seg->id;
    entry.num_docs = seg->num_docs();
    for (uint32_t d = 0; d < seg->deleted.size(); ++d) {
      if (seg->deleted[d] != 0) entry.deleted.push_back(d);
    }
    manifest.segments.push_back(std::move(entry));
  }
  return manifest;
}

Result<DocId> IndexCatalog::AddDocument(const DocTerms& terms) {
  return AddDocuments({terms});
}

Result<DocId> IndexCatalog::AddDocuments(const std::vector<DocTerms>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("catalog: empty document batch");
  }
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const CatalogState> cur = Snapshot();
  // kEndDoc is the cursor sentinel; no document may ever occupy it.
  if (cur->doc_space() + docs.size() >= kEndDoc) {
    return Status::OutOfRange("catalog: doc-id space exhausted");
  }

  // Copy-on-write: mutate private copies, publish on success only.
  auto memtable = std::make_shared<Memtable>(cur->memtable());
  CatalogStats stats = cur->stats();
  const DocId first =
      static_cast<DocId>(cur->memtable_base() + memtable->num_docs());
  for (const DocTerms& terms : docs) {
    Result<DocId> local = memtable->AddDocument(terms);
    if (!local.ok()) return local.status();
    stats.Apply(memtable->doc_terms(local.ValueOrDie()), +1);
  }
  std::vector<uint8_t> deleted = cur->memtable_deleted();
  deleted.resize(memtable->num_docs(), 0);

  Publish(std::make_shared<const CatalogState>(
      cur->segments(), std::move(memtable), std::move(deleted), std::move(stats),
      cur->version() + 1));
  return first;
}

Status IndexCatalog::DeleteDocument(DocId global) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const CatalogState> cur = Snapshot();
  if (global >= cur->doc_space()) {
    return Status::InvalidArgument("catalog: no such document id");
  }
  if (cur->IsDeleted(global)) {
    return Status::NotFound("catalog: document already deleted");
  }

  CatalogStats stats = cur->stats();
  stats.Apply(cur->TermsOf(global), -1);

  const auto [comp, local] = cur->Locate(global);
  if (comp == cur->segments().size()) {
    // Memtable document: tombstone in memory (not durable — the memtable
    // itself is not).
    std::vector<uint8_t> deleted = cur->memtable_deleted();
    deleted[local] = 1;
    Publish(std::make_shared<const CatalogState>(
        cur->segments(), cur->memtable_ptr(), std::move(deleted),
        std::move(stats), cur->version() + 1));
    return Status::OK();
  }

  // Segment document: copy that segment's record, share everything else.
  auto patched = std::make_shared<CatalogSegment>(*cur->segments()[comp]);
  patched->deleted[local] = 1;
  patched->num_deleted += 1;
  std::vector<std::shared_ptr<const CatalogSegment>> segments =
      cur->segments();
  segments[comp] = patched;

  // The segment is durable, so its tombstone must be too — publish the
  // manifest before the in-memory state (memory-only catalogs skip this).
  if (!options_.dir.empty()) {
    MOA_RETURN_NOT_OK(
        WriteManifest(options_.dir, ManifestFor(segments, next_segment_id_)));
  }
  Publish(std::make_shared<const CatalogState>(
      std::move(segments), cur->memtable_ptr(), cur->memtable_deleted(),
      std::move(stats), cur->version() + 1));
  return Status::OK();
}

Result<DocId> IndexCatalog::UpdateDocument(DocId global,
                                           const DocTerms& terms) {
  // Delete-then-add, each serialized internally: validation happens in
  // the delete (a dead or out-of-range id fails before anything
  // changes), so the add below cannot leave a half-applied update behind.
  MOA_RETURN_NOT_OK(DeleteDocument(global));
  return AddDocument(terms);
}

Status IndexCatalog::Flush() {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const CatalogState> cur = Snapshot();
  if (cur->memtable().empty()) return Status::OK();
  if (options_.dir.empty()) {
    return Status::FailedPrecondition(
        "catalog: Flush requires a catalog directory (memory-only catalog)");
  }

  WallTimer flush_timer;
  const uint64_t id = next_segment_id_;
  auto seg = std::make_shared<CatalogSegment>();
  seg->id = id;
  seg->segment_path = options_.dir + "/" + SegmentFileName(id);
  const std::string segment_path = seg->segment_path;
  const std::string forward_path = options_.dir + "/" + ForwardFileName(id);

  // 1. Write the immutable files (atomic each, unreferenced until the
  //    manifest names them).
  Result<InvertedFile> file = cur->memtable().ToInvertedFile();
  if (!file.ok()) return file.status();
  std::unique_ptr<ScoringModel> impact_model;
  const SegmentWriterOptions wopts = CatalogSegmentWriterOptions(
      file.ValueOrDie(), options_.scoring, options_.segment_block_size,
      &impact_model);
  MOA_RETURN_NOT_OK(
      WriteSegment(file.ValueOrDie(), seg->segment_path, wopts));
  MOA_RETURN_NOT_OK(
      WriteForwardIndex(cur->memtable().forward_index(), forward_path));
  MOA_RETURN_NOT_OK(Fault("flush:segment-written"));

  // 2. Reopen through the reader (structural validation; the payload was
  //    produced by this process an instant ago, so the integrity scan is
  //    skipped — trusted provenance).
  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(seg->segment_path);
  if (!reader.ok()) return reader.status();
  seg->reader = std::move(reader).ValueOrDie();
  seg->fwd = std::make_shared<const ForwardIndex>(
      cur->memtable().forward_index());
  // Flush is id-stable: tombstoned memtable docs carry their tombstone
  // into the segment and are reclaimed by a later merge.
  seg->deleted = cur->memtable_deleted();
  for (uint8_t d : seg->deleted) seg->num_deleted += (d != 0) ? 1 : 0;

  std::vector<std::shared_ptr<const CatalogSegment>> segments =
      cur->segments();
  segments.push_back(std::move(seg));

  // 3. Atomic publication: the manifest switch makes the flush durable.
  MOA_RETURN_NOT_OK(
      WriteManifest(options_.dir, ManifestFor(segments, id + 1)));
  next_segment_id_ = id + 1;

  Publish(std::make_shared<const CatalogState>(
      std::move(segments),
      std::make_shared<const Memtable>(options_.num_terms),
      std::vector<uint8_t>{}, cur->stats(), cur->version() + 1));
  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_catalog_flush_total")->Add();
    registry.GetHistogram("moa_catalog_flush_ms")
        ->Observe(flush_timer.ElapsedMillis());
    registry.GetCounter("moa_catalog_bytes_written_total")
        ->Add(FileSizeOrZero(segment_path) + FileSizeOrZero(forward_path));
  }
  return Status::OK();
}

Result<size_t> IndexCatalog::Merge(const MergePolicy& policy) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const CatalogState> cur = Snapshot();
  const size_t num_segments = cur->segments().size();
  if (policy.first > num_segments) {
    return Status::InvalidArgument("catalog: merge run out of range");
  }
  const size_t count = policy.count == 0 ? num_segments - policy.first
                                         : policy.count;
  if (policy.first + count > num_segments) {
    return Status::InvalidArgument("catalog: merge run out of range");
  }
  if (count == 0) return size_t{0};
  if (options_.dir.empty()) {
    return Status::FailedPrecondition(
        "catalog: Merge requires a catalog directory (memory-only catalog)");
  }

  // Rebuild the run's surviving documents under compacted local ids,
  // preserving insertion order.
  WallTimer merge_timer;
  InvertedFileBuilder builder(options_.num_terms);
  ForwardIndex merged_fwd;
  DocId next_local = 0;
  for (size_t i = policy.first; i < policy.first + count; ++i) {
    const CatalogSegment& seg = *cur->segments()[i];
    for (uint32_t d = 0; d < seg.num_docs(); ++d) {
      if (seg.deleted[d] != 0) continue;
      MOA_RETURN_NOT_OK(builder.AddDocument(next_local++, seg.fwd->doc(d)));
      merged_fwd.Append(seg.fwd->doc(d));
    }
  }

  const uint64_t id = next_segment_id_;
  auto merged = std::make_shared<CatalogSegment>();
  merged->id = id;
  merged->segment_path = options_.dir + "/" + SegmentFileName(id);
  const std::string segment_path = merged->segment_path;
  const std::string forward_path = options_.dir + "/" + ForwardFileName(id);

  const InvertedFile merged_file = builder.Build();
  std::unique_ptr<ScoringModel> impact_model;
  const SegmentWriterOptions wopts = CatalogSegmentWriterOptions(
      merged_file, options_.scoring, options_.segment_block_size,
      &impact_model);
  MOA_RETURN_NOT_OK(
      WriteSegment(merged_file, merged->segment_path, wopts));
  MOA_RETURN_NOT_OK(WriteForwardIndex(merged_fwd, forward_path));
  MOA_RETURN_NOT_OK(Fault("merge:segment-written"));

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(merged->segment_path);
  if (!reader.ok()) return reader.status();
  merged->reader = std::move(reader).ValueOrDie();
  merged->deleted.assign(merged->reader->num_docs(), 0);
  merged->num_deleted = 0;
  merged->fwd =
      std::make_shared<const ForwardIndex>(std::move(merged_fwd));

  // Splice: [prefix] + merged + [suffix]. Later segments' global ranges
  // shift down automatically (bases are computed, not stored).
  std::vector<std::shared_ptr<const CatalogSegment>> segments(
      cur->segments().begin(),
      cur->segments().begin() + static_cast<ptrdiff_t>(policy.first));
  std::vector<std::string> retired;
  for (size_t i = policy.first; i < policy.first + count; ++i) {
    retired.push_back(cur->segments()[i]->segment_path);
  }
  segments.push_back(std::move(merged));
  segments.insert(segments.end(),
                  cur->segments().begin() +
                      static_cast<ptrdiff_t>(policy.first + count),
                  cur->segments().end());

  MOA_RETURN_NOT_OK(
      WriteManifest(options_.dir, ManifestFor(segments, id + 1)));
  next_segment_id_ = id + 1;

  // Tombstoned docs are gone from storage; live statistics are unchanged.
  Publish(std::make_shared<const CatalogState>(
      std::move(segments), cur->memtable_ptr(), cur->memtable_deleted(),
      cur->stats(), cur->version() + 1));

  // Best-effort space reclamation: the old files left the manifest, so
  // failures here only leave ignorable orphans (in-flight snapshots still
  // hold the old mmaps open; POSIX keeps them readable until unmapped).
  for (const std::string& path : retired) {
    std::remove(path.c_str());
    std::remove(FragmentSidecarPath(path).c_str());
    // seg_X.moa -> seg_X.fwd
    std::string fwd_path = path;
    fwd_path.replace(fwd_path.size() - 3, 3, "fwd");
    std::remove(fwd_path.c_str());
  }
  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_catalog_merge_total")->Add();
    registry.GetHistogram("moa_catalog_merge_ms")
        ->Observe(merge_timer.ElapsedMillis());
    registry.GetCounter("moa_catalog_merge_segments_total")
        ->Add(static_cast<double>(count));
    registry.GetCounter("moa_catalog_bytes_written_total")
        ->Add(FileSizeOrZero(segment_path) + FileSizeOrZero(forward_path));
  }
  return count;
}

}  // namespace moa
