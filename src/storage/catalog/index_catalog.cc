#include "storage/catalog/index_catalog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "storage/segment/fragment_directory.h"
#include "storage/segment/segment_writer.h"

namespace moa {
namespace {

/// Size of a just-written file, for the bytes-written counter. Best
/// effort: a stat failure contributes 0 rather than failing the flush.
double FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0.0 : static_cast<double>(size);
}

/// Writer options for a catalog segment: impacts (and the fragment
/// directory sidecar) are stamped under a model bound to the flushed
/// file's *own* statistics. Snapshots never prune on these stored bounds
/// (live statistics move; CatalogState recomputes exact bounds per
/// snapshot), but a segment served standalone — or a future
/// bounds-rebasing optimization — gets the full impact metadata for free.
SegmentWriterOptions CatalogSegmentWriterOptions(
    const InvertedFile& file, ScoringModelKind scoring, uint32_t block_size,
    std::unique_ptr<ScoringModel>* model_out) {
  SegmentWriterOptions options;
  options.block_size = block_size;
  *model_out = MakeScoringModel(scoring, &file);
  ScoringModel* model = model_out->get();
  options.impact_fn = [model](TermId t, const Posting& p) {
    return model->Weight(t, p);
  };
  options.impact_model = model->name().substr(0, kImpactModelBytes - 1);
  return options;
}

/// Opens one durable segment (reader + sidecar) and cross-validates the
/// two against each other: document counts, per-document lengths, and the
/// full per-term document frequencies — a sidecar that drifted from its
/// segment would silently corrupt statistics maintenance.
Result<std::shared_ptr<const CatalogSegment>> OpenCatalogSegment(
    const std::string& dir, const ManifestSegment& entry, size_t num_terms,
    bool verify_payload) {
  auto seg = std::make_shared<CatalogSegment>();
  seg->id = entry.id;
  seg->segment_path = dir + "/" + SegmentFileName(entry.id);

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(seg->segment_path);
  if (!reader.ok()) return reader.status();
  seg->reader = std::move(reader).ValueOrDie();
  if (seg->reader->num_terms() != num_terms) {
    return Status::InvalidArgument(
        "catalog: segment vocabulary disagrees with catalog: " +
        seg->segment_path);
  }
  if (seg->reader->num_docs() != entry.num_docs) {
    return Status::InvalidArgument(
        "catalog: segment document count disagrees with manifest: " +
        seg->segment_path);
  }
  if (verify_payload) {
    MOA_RETURN_NOT_OK(seg->reader->CheckIntegrity());
  }

  Result<ForwardIndex> fwd = ReadForwardIndex(
      dir + "/" + ForwardFileName(entry.id), entry.num_docs, num_terms);
  if (!fwd.ok()) return fwd.status();
  seg->fwd = std::make_shared<const ForwardIndex>(std::move(fwd).ValueOrDie());

  // Sidecar/segment cross-validation.
  std::vector<uint32_t> df(num_terms, 0);
  for (uint32_t d = 0; d < entry.num_docs; ++d) {
    const DocTerms& terms = seg->fwd->doc(d);
    uint32_t length = 0;
    for (const auto& [t, tf] : terms) {
      ++df[t];
      length += tf;
    }
    if (length != seg->reader->DocLength(d)) {
      return Status::InvalidArgument(
          "catalog: sidecar document length disagrees with segment: " +
          seg->segment_path);
    }
  }
  for (TermId t = 0; t < num_terms; ++t) {
    if (df[t] != seg->reader->DocFrequency(t)) {
      return Status::InvalidArgument(
          "catalog: sidecar document frequency disagrees with segment: " +
          seg->segment_path);
    }
  }

  seg->deleted.assign(entry.num_docs, 0);
  for (uint32_t local : entry.deleted) {
    seg->deleted[local] = 1;
  }
  seg->num_deleted = static_cast<uint32_t>(entry.deleted.size());
  return std::shared_ptr<const CatalogSegment>(std::move(seg));
}

/// Mirrors Memtable::AddDocument's validation without mutating anything,
/// so a group commit can reject a bad document *before* earlier documents
/// of the same batch have entered the shared memtable copy.
Status ValidateDocTerms(const DocTerms& terms, size_t num_terms) {
  DocTerms sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].first >= num_terms) {
      return Status::InvalidArgument("memtable: term id out of vocabulary");
    }
    if (sorted[i].second == 0) {
      return Status::InvalidArgument("memtable: zero term frequency");
    }
    if (i > 0 && sorted[i].first == sorted[i - 1].first) {
      return Status::InvalidArgument("memtable: duplicate term in document");
    }
  }
  return Status::OK();
}

/// seg_X.moa -> its retired sidecar set, best-effort removal.
void RemoveSegmentFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove(FragmentSidecarPath(path).c_str());
  std::string fwd_path = path;
  fwd_path.replace(fwd_path.size() - 3, 3, "fwd");
  std::remove(fwd_path.c_str());
}

struct GroupMetrics {
  obs::Counter* commits;
  obs::HistogramMetric* ops;
  obs::Counter* rotations;
  obs::Counter* backpressure;
  static const GroupMetrics& Get() {
    static const GroupMetrics m = [] {
      auto& r = obs::MetricsRegistry::Global();
      return GroupMetrics{r.GetCounter("moa_wal_group_commit_total"),
                          r.GetHistogram("moa_wal_group_ops"),
                          r.GetCounter("moa_wal_rotations_total"),
                          r.GetCounter("moa_bg_backpressure_total")};
    }();
    return m;
  }
};

}  // namespace

/// One enqueued mutation; owned by the submitting thread's stack.
struct IndexCatalog::PendingWrite {
  enum Kind { kAdd, kDelete, kUpdate };
  Kind kind = kAdd;
  const std::vector<DocTerms>* docs = nullptr;  ///< kAdd: the batch
  DocId target = 0;                             ///< kDelete/kUpdate
  const DocTerms* terms = nullptr;              ///< kUpdate: new body

  Status status;      ///< decided by the group leader
  DocId result = 0;   ///< first assigned id (kAdd/kUpdate)
  bool done = false;  ///< guarded by queue_mutex_
};

IndexCatalog::~IndexCatalog() = default;

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Create(
    const Options& options) {
  if (options.num_terms == 0) {
    return Status::InvalidArgument("catalog: vocabulary size required");
  }
  if (!options.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
      return Status::Internal("catalog: cannot create directory: " +
                              options.dir + ": " + ec.message());
    }
    if (std::filesystem::exists(options.dir + "/" + kManifestFileName)) {
      return Status::InvalidArgument(
          "catalog: directory already holds a catalog (use Open): " +
          options.dir);
    }
  }
  auto catalog = std::unique_ptr<IndexCatalog>(new IndexCatalog(options));
  if (!options.dir.empty() && options.wal_enabled) {
    // Plant the empty WAL + the manifest naming it immediately: writes
    // acknowledged before the first Flush must already survive a crash.
    Result<std::unique_ptr<WalWriter>> wal =
        WalWriter::Create(options.dir + "/" + WalFileName(1));
    if (!wal.ok()) return wal.status();
    catalog->wal_ = std::move(wal).ValueOrDie();
    catalog->wal_seq_ = 1;
    MOA_RETURN_NOT_OK(WriteManifest(options.dir, ManifestFor({}, 1, 1),
                                    /*strict_dir_sync=*/true));
  }
  catalog->state_ = std::make_shared<const CatalogState>(
      std::vector<std::shared_ptr<const CatalogSegment>>{},
      std::make_shared<const Memtable>(options.num_terms),
      std::vector<uint8_t>{}, CatalogStats(options.num_terms), /*version=*/0);
  return catalog;
}

Result<std::unique_ptr<IndexCatalog>> IndexCatalog::Open(
    const Options& options) {
  if (options.num_terms == 0) {
    return Status::InvalidArgument("catalog: vocabulary size required");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("catalog: Open requires a directory");
  }
  Result<CatalogManifest> manifest_in = ReadManifest(options.dir);
  if (!manifest_in.ok()) return manifest_in.status();
  const CatalogManifest& manifest = manifest_in.ValueOrDie();

  std::vector<std::shared_ptr<const CatalogSegment>> segments;
  CatalogStats stats(options.num_terms);
  uint64_t segment_space = 0;
  for (const ManifestSegment& entry : manifest.segments) {
    Result<std::shared_ptr<const CatalogSegment>> seg =
        OpenCatalogSegment(options.dir, entry, options.num_terms,
                           options.verify_payload_at_open);
    if (!seg.ok()) return seg.status();
    // Live statistics: apply every surviving document's composition.
    const CatalogSegment& s = *seg.ValueOrDie();
    for (uint32_t d = 0; d < s.num_docs(); ++d) {
      if (s.deleted[d] == 0) stats.Apply(s.fwd->doc(d), +1);
    }
    segment_space += s.num_docs();
    segments.push_back(std::move(seg).ValueOrDie());
  }

  auto catalog = std::unique_ptr<IndexCatalog>(new IndexCatalog(options));
  catalog->next_segment_id_ = manifest.next_segment_id;

  auto memtable = std::make_shared<Memtable>(options.num_terms);
  std::vector<uint8_t> memtable_deleted;

  if (manifest.wal_seq > 0) {
    // Replay the live WAL on top of the manifest state: the memtable
    // returns to exactly the acknowledged writes, a torn tail is cut.
    const std::string wal_path =
        options.dir + "/" + WalFileName(manifest.wal_seq);
    Result<WalReplay> replay = ReplayWal(wal_path);
    if (!replay.ok()) {
      return Status::Internal("catalog: manifest names WAL seq " +
                              std::to_string(manifest.wal_seq) +
                              " but replay failed: " +
                              replay.status().ToString());
    }
    for (const WalRecord& record : replay.ValueOrDie().records) {
      if (record.type == WalRecord::kAdd) {
        Result<DocId> local = memtable->AddDocument(record.terms);
        if (!local.ok()) {
          return Status::Internal("catalog: WAL replay add rejected: " +
                                  local.status().ToString());
        }
        memtable_deleted.push_back(0);
        stats.Apply(memtable->doc_terms(local.ValueOrDie()), +1);
        continue;
      }
      const DocId g = record.doc;
      if (g < segment_space) {
        uint64_t base = 0;
        size_t comp = segments.size();
        for (size_t i = 0; i < segments.size(); ++i) {
          if (g < base + segments[i]->num_docs()) {
            comp = i;
            break;
          }
          base += segments[i]->num_docs();
        }
        auto* seg = const_cast<CatalogSegment*>(segments[comp].get());
        const auto local = static_cast<DocId>(g - base);
        if (seg->deleted[local] != 0) {
          // Idempotent: the tombstone already made it into the manifest.
          MOA_LOG(Warning) << "catalog: WAL replay delete of already-dead doc "
                           << g << " skipped";
          continue;
        }
        seg->deleted[local] = 1;
        seg->num_deleted += 1;
        stats.Apply(seg->fwd->doc(local), -1);
      } else {
        const auto local = static_cast<DocId>(g - segment_space);
        if (local >= memtable->num_docs()) {
          return Status::Internal(
              "catalog: WAL replay delete past the replayed doc space");
        }
        if (memtable_deleted[local] != 0) {
          MOA_LOG(Warning) << "catalog: WAL replay delete of already-dead doc "
                           << g << " skipped";
          continue;
        }
        memtable_deleted[local] = 1;
        stats.Apply(memtable->doc_terms(local), -1);
      }
    }
    // Keep appending to the (tail-truncated) live log. A manifest-named
    // WAL stays active even under wal_enabled=false — dropping it would
    // orphan the acknowledged writes it still guards.
    if (!options.wal_enabled) {
      MOA_LOG(Warning) << "catalog: wal_enabled=false ignored for " +
                              options.dir + ": manifest names a WAL";
    }
    Result<std::unique_ptr<WalWriter>> wal = WalWriter::OpenForAppend(wal_path);
    if (!wal.ok()) return wal.status();
    catalog->wal_ = std::move(wal).ValueOrDie();
    catalog->wal_seq_ = manifest.wal_seq;
  } else if (options.wal_enabled) {
    // Pre-WAL catalog reopened with the WAL on: upgrade in place.
    Result<std::unique_ptr<WalWriter>> wal =
        WalWriter::Create(options.dir + "/" + WalFileName(1));
    if (!wal.ok()) return wal.status();
    catalog->wal_ = std::move(wal).ValueOrDie();
    catalog->wal_seq_ = 1;
    MOA_RETURN_NOT_OK(
        WriteManifest(options.dir,
                      ManifestFor(segments, manifest.next_segment_id, 1),
                      /*strict_dir_sync=*/true));
  }

  catalog->state_ = std::make_shared<const CatalogState>(
      std::move(segments), std::move(memtable), std::move(memtable_deleted),
      std::move(stats), /*version=*/0);
  return catalog;
}

std::shared_ptr<const CatalogState> IndexCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

std::shared_ptr<const CatalogReadView> IndexCatalog::OpenReadView() const {
  return std::make_shared<const CatalogReadView>(Snapshot(),
                                                 options_.scoring);
}

void IndexCatalog::Publish(std::shared_ptr<const CatalogState> next) {
  if (obs::kEnabled) {
    // Gauges track the published state; every mutation funnels through
    // here, so the scrape always sees the latest catalog shape.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("moa_catalog_segments")
        ->Set(static_cast<double>(next->segments().size()));
    const double live = static_cast<double>(next->stats().num_live_docs);
    const double space = static_cast<double>(next->doc_space());
    registry.GetGauge("moa_catalog_live_docs")->Set(live);
    registry.GetGauge("moa_catalog_tombstone_density")
        ->Set(space == 0.0 ? 0.0 : 1.0 - live / space);
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::move(next);
}

CatalogManifest IndexCatalog::ManifestFor(
    const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
    uint64_t next_segment_id, uint64_t wal_seq) {
  CatalogManifest manifest;
  manifest.next_segment_id = next_segment_id;
  manifest.wal_seq = wal_seq;
  for (const auto& seg : segments) {
    ManifestSegment entry;
    entry.id = seg->id;
    entry.num_docs = seg->num_docs();
    for (uint32_t d = 0; d < seg->deleted.size(); ++d) {
      if (seg->deleted[d] != 0) entry.deleted.push_back(d);
    }
    manifest.segments.push_back(std::move(entry));
  }
  return manifest;
}

void IndexCatalog::SetWriteObserver(std::function<void()> observer) {
  {
    std::lock_guard<std::mutex> lock(observer_mutex_);
    write_observer_ = std::move(observer);
  }
  // Wake writers blocked on backpressure: with the observer gone,
  // nothing will drain the debt, so they must stop waiting.
  backpressure_cv_.notify_all();
}

bool IndexCatalog::OverBudget() const {
  const std::shared_ptr<const CatalogState> snap = Snapshot();
  if (options_.backpressure_memtable_docs > 0 &&
      snap->memtable().num_docs() >= options_.backpressure_memtable_docs) {
    return true;
  }
  if (options_.backpressure_max_segments > 0 &&
      snap->segments().size() >= options_.backpressure_max_segments) {
    return true;
  }
  return false;
}

Result<DocId> IndexCatalog::AddDocument(const DocTerms& terms) {
  return AddDocuments({terms});
}

Result<DocId> IndexCatalog::AddDocuments(const std::vector<DocTerms>& docs) {
  PendingWrite write;
  write.kind = PendingWrite::kAdd;
  write.docs = &docs;
  SubmitAndWait(&write);
  if (!write.status.ok()) return write.status;
  return write.result;
}

Status IndexCatalog::DeleteDocument(DocId global) {
  PendingWrite write;
  write.kind = PendingWrite::kDelete;
  write.target = global;
  SubmitAndWait(&write);
  return write.status;
}

Result<DocId> IndexCatalog::UpdateDocument(DocId global,
                                           const DocTerms& terms) {
  PendingWrite write;
  write.kind = PendingWrite::kUpdate;
  write.target = global;
  write.terms = &terms;
  SubmitAndWait(&write);
  if (!write.status.ok()) return write.status;
  return write.result;
}

void IndexCatalog::SubmitAndWait(PendingWrite* write) {
  std::unique_lock<std::mutex> lock(queue_mutex_);

  // Backpressure gates ingest (adds/updates) while maintenance is
  // attached; deletes always pass (they only shrink the live set).
  const bool budgeted = options_.backpressure_memtable_docs > 0 ||
                        options_.backpressure_max_segments > 0;
  if (budgeted && write->kind != PendingWrite::kDelete) {
    auto observer_attached = [this] {
      std::lock_guard<std::mutex> observer_lock(observer_mutex_);
      return static_cast<bool>(write_observer_);
    };
    if (observer_attached() && OverBudget()) {
      if (obs::kEnabled) GroupMetrics::Get().backpressure->Add();
      if (options_.backpressure_soft_fail) {
        write->status = Status::ResourceExhausted(
            "catalog: write budget exceeded (memtable + un-merged debt)");
        write->done = true;
        return;
      }
      // Block until a flush/merge drains the debt. Re-check the observer
      // each wake: a detaching maintenance loop must not strand us.
      while (OverBudget() && observer_attached()) {
        backpressure_cv_.wait_for(lock, std::chrono::milliseconds(50));
      }
    }
  }

  queue_.push_back(write);
  while (!write->done) {
    if (!leader_active_) {
      leader_active_ = true;
      DrainQueue(lock);
      leader_active_ = false;
      queue_cv_.notify_all();
    } else {
      queue_cv_.wait(lock);
    }
  }
}

void IndexCatalog::DrainQueue(std::unique_lock<std::mutex>& lock) {
  while (!queue_.empty()) {
    std::vector<PendingWrite*> group(queue_.begin(), queue_.end());
    queue_.clear();
    lock.unlock();
    CommitGroup(group);
    {
      // The maintenance observer runs outside every catalog lock (it may
      // schedule work that re-enters Flush/Merge).
      std::lock_guard<std::mutex> observer_lock(observer_mutex_);
      if (write_observer_) write_observer_();
    }
    lock.lock();
    for (PendingWrite* w : group) w->done = true;
    queue_cv_.notify_all();
  }
}

void IndexCatalog::CommitGroup(std::vector<PendingWrite*>& group) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const std::shared_ptr<const CatalogState> cur = Snapshot();

  // One copy-on-write set for the whole group.
  auto memtable = std::make_shared<Memtable>(cur->memtable());
  std::vector<uint8_t> memtable_deleted = cur->memtable_deleted();
  CatalogStats stats = cur->stats();
  std::vector<std::shared_ptr<const CatalogSegment>> segments =
      cur->segments();
  std::vector<uint8_t> patched(segments.size(), 0);
  const uint64_t segment_space = cur->memtable_base();
  const uint64_t wal_mark = wal_ ? wal_->appended_bytes() : 0;
  bool wal_dirty = false;
  bool segment_tombstones_changed = false;
  bool any_applied = false;
  Status infra_error;  // a WAL append failure poisons the whole group

  auto apply_add = [&](const std::vector<DocTerms>& docs,
                       DocId* first) -> Status {
    if (docs.empty()) {
      return Status::InvalidArgument("catalog: empty document batch");
    }
    // kEndDoc is the cursor sentinel; no document may ever occupy it.
    if (segment_space + memtable->num_docs() + docs.size() >= kEndDoc) {
      return Status::OutOfRange("catalog: doc-id space exhausted");
    }
    // All-or-nothing: validate the whole batch before the first insert.
    for (const DocTerms& terms : docs) {
      MOA_RETURN_NOT_OK(ValidateDocTerms(terms, options_.num_terms));
    }
    *first = static_cast<DocId>(segment_space + memtable->num_docs());
    for (const DocTerms& terms : docs) {
      Result<DocId> local = memtable->AddDocument(terms);
      if (!local.ok()) {
        infra_error = Status::Internal(
            "catalog: validated document rejected by memtable: " +
            local.status().ToString());
        return infra_error;
      }
      memtable_deleted.push_back(0);
      stats.Apply(memtable->doc_terms(local.ValueOrDie()), +1);
      if (wal_) {
        const Status s = wal_->AppendAdd(memtable->doc_terms(
            local.ValueOrDie()));
        if (!s.ok()) {
          infra_error = s;
          return s;
        }
        wal_dirty = true;
      }
    }
    return Status::OK();
  };

  auto apply_delete = [&](DocId global) -> Status {
    if (global >= segment_space + memtable->num_docs()) {
      return Status::InvalidArgument("catalog: no such document id");
    }
    if (global >= segment_space) {
      const auto local = static_cast<DocId>(global - segment_space);
      if (memtable_deleted[local] != 0) {
        return Status::NotFound("catalog: document already deleted");
      }
      memtable_deleted[local] = 1;
      stats.Apply(memtable->doc_terms(local), -1);
    } else {
      const auto [comp, local] = cur->Locate(global);
      if (segments[comp]->deleted[local] != 0) {
        return Status::NotFound("catalog: document already deleted");
      }
      if (patched[comp] == 0) {
        // Copy-on-first-patch: the copy is private to this group, so the
        // const_cast below mutates an unshared object.
        segments[comp] = std::make_shared<CatalogSegment>(*segments[comp]);
        patched[comp] = 1;
      }
      auto* seg = const_cast<CatalogSegment*>(segments[comp].get());
      seg->deleted[local] = 1;
      seg->num_deleted += 1;
      stats.Apply(seg->fwd->doc(local), -1);
      segment_tombstones_changed = true;
    }
    if (wal_) {
      const Status s = wal_->AppendDelete(global);
      if (!s.ok()) {
        infra_error = s;
        return s;
      }
      wal_dirty = true;
    }
    return Status::OK();
  };

  for (PendingWrite* w : group) {
    if (!infra_error.ok()) {
      w->status = infra_error;
      continue;
    }
    switch (w->kind) {
      case PendingWrite::kAdd: {
        DocId first = 0;
        w->status = apply_add(*w->docs, &first);
        if (w->status.ok()) w->result = first;
        break;
      }
      case PendingWrite::kDelete:
        w->status = apply_delete(w->target);
        break;
      case PendingWrite::kUpdate: {
        // Validate the replacement body *before* the delete so a bad
        // update leaves the old document untouched.
        w->status = ValidateDocTerms(*w->terms, options_.num_terms);
        if (w->status.ok() &&
            segment_space + memtable->num_docs() + 1 >= kEndDoc) {
          w->status = Status::OutOfRange("catalog: doc-id space exhausted");
        }
        if (w->status.ok()) w->status = apply_delete(w->target);
        if (w->status.ok()) {
          DocId first = 0;
          const std::vector<DocTerms> one{*w->terms};
          w->status = apply_add(one, &first);
          if (w->status.ok()) w->result = first;
        }
        break;
      }
    }
    if (w->status.ok()) any_applied = true;
  }

  auto fail_applied = [&](const Status& error) {
    if (wal_ && wal_dirty) {
      // Unacknowledged bytes must never replay; double failures here are
      // logged and left to the next Open's CRC walk.
      const Status t = wal_->TruncateTo(wal_mark);
      if (!t.ok()) {
        MOA_LOG(Error) << "catalog: WAL rollback failed after commit error: "
                       << t.ToString();
      }
    }
    for (PendingWrite* w : group) {
      if (w->status.ok()) w->status = error;
    }
  };

  if (!infra_error.ok()) {
    fail_applied(infra_error);
    return;
  }
  if (!any_applied) return;

  // Durability point: one fsync covers the whole group (or is deferred
  // by the wal_fsync_every batching knob).
  if (wal_ && wal_dirty) {
    const Status s = wal_->SyncIfPending(options_.wal_fsync_every);
    if (!s.ok()) {
      fail_applied(s);
      return;
    }
  }
  // Without a WAL, tombstones on durable segments are made durable in
  // the manifest before the state publishes (the pre-WAL contract).
  if (!wal_ && segment_tombstones_changed && !options_.dir.empty()) {
    const Status s = WriteManifest(
        options_.dir, ManifestFor(segments, next_segment_id_, 0));
    if (!s.ok()) {
      fail_applied(s);
      return;
    }
  }

  Publish(std::make_shared<const CatalogState>(
      std::move(segments), std::move(memtable), std::move(memtable_deleted),
      std::move(stats), cur->version() + 1));
  if (obs::kEnabled) {
    const GroupMetrics& m = GroupMetrics::Get();
    m.commits->Add();
    m.ops->Observe(static_cast<double>(group.size()));
  }
}

Status IndexCatalog::RotateWal(
    const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
    const Memtable& memtable, const std::vector<uint8_t>& memtable_deleted,
    const char* fault_point) {
  // write-new-WAL → publish-manifest → unlink-old: a crash anywhere
  // leaves the manifest naming exactly one fully-durable WAL.
  const uint64_t new_seq = wal_seq_ + 1;
  const std::string new_path = options_.dir + "/" + WalFileName(new_seq);
  Result<std::unique_ptr<WalWriter>> created = WalWriter::Create(new_path);
  if (!created.ok()) return created.status();
  std::unique_ptr<WalWriter> fresh = std::move(created).ValueOrDie();

  // Seed: reconstruct the post-publish memtable (and its tombstones) so
  // replay of the new WAL alone rebuilds it. Global ids restart at the
  // new segment-space size.
  uint64_t base = 0;
  for (const auto& seg : segments) base += seg->num_docs();
  for (DocId local = 0; local < memtable.num_docs(); ++local) {
    MOA_RETURN_NOT_OK(fresh->AppendAdd(memtable.doc_terms(local)));
    if (memtable_deleted[local] != 0) {
      MOA_RETURN_NOT_OK(
          fresh->AppendDelete(static_cast<DocId>(base + local)));
    }
  }
  MOA_RETURN_NOT_OK(fresh->Sync());

  MOA_RETURN_NOT_OK(WriteManifest(options_.dir,
                                  ManifestFor(segments, next_segment_id_,
                                              new_seq),
                                  /*strict_dir_sync=*/true));
  MOA_RETURN_NOT_OK(Fault(fault_point));

  const std::string old_path =
      options_.dir + "/" + WalFileName(wal_seq_);
  wal_ = std::move(fresh);
  wal_seq_ = new_seq;
  std::remove(old_path.c_str());  // best-effort; orphan is ignored by Open
  if (obs::kEnabled) GroupMetrics::Get().rotations->Add();
  return Status::OK();
}

Status IndexCatalog::Flush() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Phase A (locked): capture the memtable prefix to flush and reserve
  // the segment id. Writers keep committing after this returns.
  std::shared_ptr<const Memtable> flush_mem;
  size_t flushed_docs = 0;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> writer(writer_mutex_);
    const std::shared_ptr<const CatalogState> cur = Snapshot();
    if (cur->memtable().empty()) return Status::OK();
    if (options_.dir.empty()) {
      return Status::FailedPrecondition(
          "catalog: Flush requires a catalog directory (memory-only catalog)");
    }
    flush_mem = cur->memtable_ptr();
    flushed_docs = flush_mem->num_docs();
    id = next_segment_id_++;
  }

  // Phase B (unlocked): the expensive file writes. The captured memtable
  // is immutable (copy-on-write), so concurrent commits cannot move it.
  WallTimer flush_timer;
  auto seg = std::make_shared<CatalogSegment>();
  seg->id = id;
  seg->segment_path = options_.dir + "/" + SegmentFileName(id);
  const std::string segment_path = seg->segment_path;
  const std::string forward_path = options_.dir + "/" + ForwardFileName(id);

  Result<InvertedFile> file = flush_mem->ToInvertedFile();
  if (!file.ok()) return file.status();
  std::unique_ptr<ScoringModel> impact_model;
  const SegmentWriterOptions wopts = CatalogSegmentWriterOptions(
      file.ValueOrDie(), options_.scoring, options_.segment_block_size,
      &impact_model);
  MOA_RETURN_NOT_OK(WriteSegment(file.ValueOrDie(), seg->segment_path, wopts));
  MOA_RETURN_NOT_OK(
      WriteForwardIndex(flush_mem->forward_index(), forward_path));
  MOA_RETURN_NOT_OK(Fault("flush:segment-written"));

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(seg->segment_path);
  if (!reader.ok()) return reader.status();
  seg->reader = std::move(reader).ValueOrDie();
  seg->fwd =
      std::make_shared<const ForwardIndex>(flush_mem->forward_index());

  // Phase C (locked): re-derive everything that may have moved during
  // phase B — tombstones for the flushed prefix, the memtable suffix
  // appended meanwhile — from the *current* state, then publish once.
  {
    std::lock_guard<std::mutex> writer(writer_mutex_);
    const std::shared_ptr<const CatalogState> cur = Snapshot();

    // Flush is id-stable: tombstoned memtable docs carry their tombstone
    // into the segment and are reclaimed by a later merge. Deletes that
    // landed during phase B are included — the tombstone diff rides the
    // same manifest.
    seg->deleted.assign(flushed_docs, 0);
    seg->num_deleted = 0;
    for (size_t d = 0; d < flushed_docs; ++d) {
      if (cur->memtable_deleted()[d] != 0) {
        seg->deleted[d] = 1;
        ++seg->num_deleted;
      }
    }

    // Documents appended during phase B become the successor memtable.
    auto remainder = std::make_shared<Memtable>(options_.num_terms);
    std::vector<uint8_t> remainder_deleted;
    for (size_t d = flushed_docs; d < cur->memtable().num_docs(); ++d) {
      Result<DocId> local =
          remainder->AddDocument(cur->memtable().doc_terms(d));
      if (!local.ok()) {
        return Status::Internal("catalog: memtable carry-over rejected: " +
                                local.status().ToString());
      }
      remainder_deleted.push_back(cur->memtable_deleted()[d]);
    }

    std::vector<std::shared_ptr<const CatalogSegment>> segments =
        cur->segments();
    segments.push_back(seg);

    if (wal_) {
      MOA_RETURN_NOT_OK(RotateWal(segments, *remainder, remainder_deleted,
                                  "flush:wal-rotated"));
    } else {
      MOA_RETURN_NOT_OK(WriteManifest(
          options_.dir, ManifestFor(segments, next_segment_id_, 0)));
    }

    Publish(std::make_shared<const CatalogState>(
        std::move(segments), std::move(remainder),
        std::move(remainder_deleted), cur->stats(), cur->version() + 1));
  }
  backpressure_cv_.notify_all();

  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_catalog_flush_total")->Add();
    registry.GetHistogram("moa_catalog_flush_ms")
        ->Observe(flush_timer.ElapsedMillis());
    registry.GetCounter("moa_catalog_bytes_written_total")
        ->Add(FileSizeOrZero(segment_path) + FileSizeOrZero(forward_path));
  }
  return Status::OK();
}

Result<size_t> IndexCatalog::Merge(const MergePolicy& policy) {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Phase A (locked): validate the run against the current segment list
  // and capture it. The list's *shape* cannot change during the merge —
  // flushes are serialized by maintenance_mutex_ and commits only patch
  // tombstones — so indices stay aligned through phase C.
  std::vector<std::shared_ptr<const CatalogSegment>> run;
  size_t first = 0;
  size_t count = 0;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> writer(writer_mutex_);
    const std::shared_ptr<const CatalogState> cur = Snapshot();
    const size_t num_segments = cur->segments().size();
    if (policy.first > num_segments) {
      return Status::InvalidArgument("catalog: merge run out of range");
    }
    first = policy.first;
    count = policy.count == 0 ? num_segments - policy.first : policy.count;
    if (policy.first + count > num_segments) {
      return Status::InvalidArgument("catalog: merge run out of range");
    }
    if (count == 0) return size_t{0};
    if (options_.dir.empty()) {
      return Status::FailedPrecondition(
          "catalog: Merge requires a catalog directory (memory-only catalog)");
    }
    run.assign(cur->segments().begin() + static_cast<ptrdiff_t>(first),
               cur->segments().begin() + static_cast<ptrdiff_t>(first + count));
    id = next_segment_id_++;
  }

  // Phase B (unlocked): rebuild the run's surviving documents under
  // compacted local ids, preserving insertion order, and remember the
  // old-local → merged-local mapping so deletes landing during this
  // window can be re-applied to the merged segment in phase C.
  WallTimer merge_timer;
  constexpr DocId kDropped = static_cast<DocId>(-1);
  InvertedFileBuilder builder(options_.num_terms);
  ForwardIndex merged_fwd;
  std::vector<std::vector<DocId>> remap(count);
  DocId next_local = 0;
  for (size_t i = 0; i < count; ++i) {
    const CatalogSegment& seg = *run[i];
    remap[i].assign(seg.num_docs(), kDropped);
    for (uint32_t d = 0; d < seg.num_docs(); ++d) {
      if (seg.deleted[d] != 0) continue;
      remap[i][d] = next_local;
      MOA_RETURN_NOT_OK(builder.AddDocument(next_local++, seg.fwd->doc(d)));
      merged_fwd.Append(seg.fwd->doc(d));
    }
  }

  auto merged = std::make_shared<CatalogSegment>();
  merged->id = id;
  merged->segment_path = options_.dir + "/" + SegmentFileName(id);
  const std::string segment_path = merged->segment_path;
  const std::string forward_path = options_.dir + "/" + ForwardFileName(id);

  const InvertedFile merged_file = builder.Build();
  std::unique_ptr<ScoringModel> impact_model;
  const SegmentWriterOptions wopts = CatalogSegmentWriterOptions(
      merged_file, options_.scoring, options_.segment_block_size,
      &impact_model);
  MOA_RETURN_NOT_OK(WriteSegment(merged_file, merged->segment_path, wopts));
  MOA_RETURN_NOT_OK(WriteForwardIndex(merged_fwd, forward_path));
  MOA_RETURN_NOT_OK(Fault("merge:segment-written"));

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(merged->segment_path);
  if (!reader.ok()) return reader.status();
  merged->reader = std::move(reader).ValueOrDie();
  merged->deleted.assign(merged->reader->num_docs(), 0);
  merged->num_deleted = 0;
  merged->fwd = std::make_shared<const ForwardIndex>(std::move(merged_fwd));

  // Phase C (locked): re-apply deletes that hit the run during phase B
  // as tombstones on the merged segment, splice, publish once.
  {
    std::lock_guard<std::mutex> writer(writer_mutex_);
    const std::shared_ptr<const CatalogState> cur = Snapshot();

    for (size_t i = 0; i < count; ++i) {
      const CatalogSegment& now = *cur->segments()[first + i];
      for (uint32_t d = 0; d < now.num_docs(); ++d) {
        if (remap[i][d] != kDropped && now.deleted[d] != 0) {
          merged->deleted[remap[i][d]] = 1;
          ++merged->num_deleted;
        }
      }
    }

    // Splice: [prefix] + merged + [suffix]. Later segments' global
    // ranges shift down automatically (bases are computed, not stored).
    std::vector<std::shared_ptr<const CatalogSegment>> segments(
        cur->segments().begin(),
        cur->segments().begin() + static_cast<ptrdiff_t>(first));
    segments.push_back(merged);
    segments.insert(
        segments.end(),
        cur->segments().begin() + static_cast<ptrdiff_t>(first + count),
        cur->segments().end());

    // Merge compacts global ids, so every WAL record naming an old id is
    // invalid for the new state — rotation is mandatory, not an
    // optimization.
    if (wal_) {
      MOA_RETURN_NOT_OK(RotateWal(segments, cur->memtable(),
                                  cur->memtable_deleted(),
                                  "merge:wal-rotated"));
    } else {
      MOA_RETURN_NOT_OK(WriteManifest(
          options_.dir, ManifestFor(segments, next_segment_id_, 0)));
    }

    // Tombstoned docs are gone from storage; live statistics unchanged.
    Publish(std::make_shared<const CatalogState>(
        std::move(segments), cur->memtable_ptr(), cur->memtable_deleted(),
        cur->stats(), cur->version() + 1));
  }
  backpressure_cv_.notify_all();

  // Best-effort space reclamation: the old files left the manifest, so
  // failures here only leave ignorable orphans (in-flight snapshots still
  // hold the old mmaps open; POSIX keeps them readable until unmapped).
  for (const auto& seg : run) {
    RemoveSegmentFiles(seg->segment_path);
  }
  if (obs::kEnabled) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moa_catalog_merge_total")->Add();
    registry.GetHistogram("moa_catalog_merge_ms")
        ->Observe(merge_timer.ElapsedMillis());
    registry.GetCounter("moa_catalog_merge_segments_total")
        ->Add(static_cast<double>(count));
    registry.GetCounter("moa_catalog_bytes_written_total")
        ->Add(FileSizeOrZero(segment_path) + FileSizeOrZero(forward_path));
  }
  return count;
}

}  // namespace moa
