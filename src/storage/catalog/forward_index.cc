#include "storage/catalog/forward_index.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "storage/atomic_file.h"
#include "storage/segment/varbyte.h"

namespace moa {
namespace {

constexpr char kFwdMagic[8] = {'M', 'O', 'A', 'F', 'W', 'D', '0', '1'};

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::Internal("forward index: short write");
  }
  return Status::OK();
}

}  // namespace

Status WriteForwardIndex(const ForwardIndex& fwd, const std::string& path) {
  // Encode payload + offsets in one pass; a forward index is the same
  // order of magnitude as the postings it transposes.
  std::vector<uint64_t> offsets;
  offsets.reserve(fwd.num_docs());
  std::vector<uint8_t> payload;
  for (size_t d = 0; d < fwd.num_docs(); ++d) {
    offsets.push_back(payload.size());
    const DocTerms& terms = fwd.doc(d);
    VarbyteAppend(payload, static_cast<uint32_t>(terms.size()));
    TermId prev = 0;
    bool first = true;
    for (const auto& [t, tf] : terms) {
      VarbyteAppend(payload, first ? t : t - prev);
      VarbyteAppend(payload, tf);
      prev = t;
      first = false;
    }
  }

  return WriteFileAtomically(path, [&](std::FILE* out) {
    MOA_RETURN_NOT_OK(WriteBytes(out, kFwdMagic, sizeof(kFwdMagic)));
    const uint64_t num_docs = fwd.num_docs();
    const uint64_t payload_bytes = payload.size();
    MOA_RETURN_NOT_OK(WriteBytes(out, &num_docs, sizeof(num_docs)));
    MOA_RETURN_NOT_OK(WriteBytes(out, &payload_bytes, sizeof(payload_bytes)));
    MOA_RETURN_NOT_OK(
        WriteBytes(out, offsets.data(), offsets.size() * sizeof(uint64_t)));
    MOA_RETURN_NOT_OK(WriteBytes(out, payload.data(), payload.size()));
    return Status::OK();
  });
}

Result<ForwardIndex> ReadForwardIndex(const std::string& path,
                                      uint64_t expected_docs,
                                      size_t num_terms) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("forward index: cannot open: " + path);
  }
  const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f,
                                                               &std::fclose);
  uint64_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const auto end = ::ftello(f);  // POSIX: 64-bit offset, unlike ftell
    if (end > 0) file_size = static_cast<uint64_t>(end);
  }
  std::rewind(f);

  char magic[8];
  uint64_t num_docs = 0;
  uint64_t payload_bytes = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::fread(&num_docs, sizeof(num_docs), 1, f) != 1 ||
      std::fread(&payload_bytes, sizeof(payload_bytes), 1, f) != 1) {
    return Status::InvalidArgument("forward index: truncated header: " + path);
  }
  if (std::memcmp(magic, kFwdMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "forward index: bad magic (not MOAFWD01): " + path);
  }
  if (num_docs != expected_docs) {
    return Status::InvalidArgument(
        "forward index: document count disagrees with segment: " + path);
  }
  // Every doc needs at least 1 payload byte (its term count), so a
  // plausible payload bounds num_docs before any allocation.
  if (payload_bytes > (1ull << 40) || (num_docs > 0 && payload_bytes == 0) ||
      num_docs > payload_bytes) {
    return Status::InvalidArgument(
        "forward index: implausible header sizes: " + path);
  }
  // Exact-size check against the real file *before* allocating from the
  // header counts: a corrupt num_docs/payload_bytes must fail cleanly,
  // never drive a huge resize (counts above are < 2^40, so the sum
  // cannot wrap u64).
  const uint64_t expected_size = sizeof(magic) + sizeof(num_docs) +
                                 sizeof(payload_bytes) +
                                 num_docs * sizeof(uint64_t) + payload_bytes;
  if (expected_size != file_size) {
    return Status::InvalidArgument(
        "forward index: file size does not match header (truncated or "
        "corrupt): " + path);
  }

  std::vector<uint64_t> offsets(num_docs);
  if (num_docs > 0 &&
      std::fread(offsets.data(), sizeof(uint64_t), num_docs, f) != num_docs) {
    return Status::InvalidArgument(
        "forward index: truncated offsets: " + path);
  }
  std::vector<uint8_t> payload(payload_bytes);
  if (payload_bytes > 0 &&
      std::fread(payload.data(), 1, payload_bytes, f) != payload_bytes) {
    return Status::InvalidArgument(
        "forward index: truncated payload: " + path);
  }
  // Reject trailing garbage: the sections must account for the whole file.
  uint8_t extra = 0;
  if (std::fread(&extra, 1, 1, f) == 1) {
    return Status::InvalidArgument(
        "forward index: trailing bytes after payload: " + path);
  }

  if (num_docs > 0 && offsets[0] != 0) {
    return Status::InvalidArgument(
        "forward index: leading unaccounted payload: " + path);
  }

  ForwardIndex fwd;
  for (uint64_t d = 0; d < num_docs; ++d) {
    const uint64_t begin = offsets[d];
    const uint64_t end = (d + 1 < num_docs) ? offsets[d + 1] : payload_bytes;
    if (begin > end || end > payload_bytes ||
        (d > 0 && begin < offsets[d - 1])) {
      return Status::InvalidArgument(
          "forward index: offsets not monotone: " + path);
    }
    const uint8_t* p = payload.data() + begin;
    const uint8_t* stop = payload.data() + end;
    uint32_t count = 0;
    size_t used = VarbyteDecode(p, stop, &count);
    if (used == 0) {
      return Status::InvalidArgument(
          "forward index: corrupt term count: " + path);
    }
    p += used;
    DocTerms terms;
    terms.reserve(count);
    TermId prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t gap = 0, tf = 0;
      used = VarbyteDecode(p, stop, &gap);
      if (used == 0) {
        return Status::InvalidArgument(
            "forward index: corrupt term gap: " + path);
      }
      p += used;
      used = VarbyteDecode(p, stop, &tf);
      if (used == 0 || tf == 0) {
        return Status::InvalidArgument("forward index: corrupt tf: " + path);
      }
      p += used;
      // First term's gap is absolute; later gaps must move strictly
      // forward so terms stay sorted and distinct.
      if (i > 0 && gap == 0) {
        return Status::InvalidArgument(
            "forward index: terms not strictly ascending: " + path);
      }
      const uint64_t term = static_cast<uint64_t>(i == 0 ? 0 : prev) + gap;
      if (term >= num_terms) {
        return Status::InvalidArgument(
            "forward index: term id out of vocabulary: " + path);
      }
      prev = static_cast<TermId>(term);
      terms.emplace_back(prev, tf);
    }
    if (p != stop) {
      return Status::InvalidArgument(
          "forward index: document run not fully consumed: " + path);
    }
    fwd.Append(std::move(terms));
  }
  return fwd;
}

}  // namespace moa
