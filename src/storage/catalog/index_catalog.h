// IndexCatalog: the mutable, multi-segment index lifecycle —
// ingest → flush → merge → delete — behind the PostingCursor API.
//
//            AddDocument / DeleteDocument
//                       │ (group commit + WAL)
//                 ┌─────▼─────┐   Flush()    ┌───────────────┐
//                 │  memtable │ ───────────▶ │ seg_k.moa/fwd │──┐
//                 └───────────┘              └───────────────┘  │ Merge()
//                                            ┌───────────────┐  ▼
//                                            │ seg_j.moa/fwd │─▶ seg_m
//                                            └───────────────┘ (tombstones
//                                                                dropped,
//                                                                ids compacted)
//
// Every mutation builds a *new* immutable CatalogState (copy-on-write with
// structural sharing: segment readers, sidecars and the memtable are
// shared by shared_ptr; only what changed is copied) and publishes it by
// swapping one pointer. Queries take snapshot-per-query: a search holds
// the shared_ptr it started with, so flush/merge/delete during in-flight
// execution is safe and every query sees one consistent state.
//
// Group commit: concurrent mutators enqueue their operation and one
// leader drains the queue — a single copy-on-write set, one WAL batch
// append, one fsync and one state publication cover the whole group, so
// N concurrent writers pay ~one fsync, not N. An UpdateDocument is one
// queue entry (delete + add applied atomically within the group — no
// snapshot ever sees the document missing).
//
// Doc-id contract: ids are assigned densely in insertion order and are
// *internal*. They are stable across AddDocument, DeleteDocument and
// Flush; a Merge physically drops tombstoned documents and compacts every
// id above the merged range downward (the classic LSM text-index
// behaviour — external keys, if any, live above this layer).
//
// Durability: segments and their forward-index sidecars are immutable
// files; the MANIFEST names the live set and is replaced atomically
// (storage/catalog/manifest.h). With the WAL enabled (the default for
// directory-backed catalogs) the memtable is durable too: an
// acknowledged mutation is fsync'ed into `wal_<seq>.log`
// (storage/catalog/wal.h) before the call returns, Open replays the log
// on top of the manifest state, and Flush/Merge rotate to a fresh WAL so
// replay cost stays bounded by the memtable. A catalog whose manifest
// names a WAL stays WAL-backed even if reopened with `wal_enabled =
// false` (silently dropping the log would orphan acknowledged writes).
// With the WAL off the pre-WAL contract holds: unflushed documents are
// lost on crash.
//
// Background maintenance: Flush/Merge are safe to call concurrently with
// mutations (two-phase: file writes run unlocked; the publish section
// re-derives manifest + memtable from the then-current state), which is
// what lets storage/catalog/background_jobs.h run them on the shared
// thread pool while writers keep committing. When a maintenance observer
// is attached, the backpressure budget (Options) gates mutations: over
// budget, an add blocks until a flush catches up — or soft-fails with
// ResourceExhausted when configured.
//
// Mutation cost: one state copy per group — batch adds through
// AddDocuments to amortize (the memtable copy is O(buffered contents)).
#ifndef MOA_STORAGE_CATALOG_INDEX_CATALOG_H_
#define MOA_STORAGE_CATALOG_INDEX_CATALOG_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/scoring.h"
#include "storage/catalog/catalog_state.h"
#include "storage/catalog/manifest.h"
#include "storage/catalog/wal.h"
#include "storage/segment/segment_format.h"

namespace moa {

/// \brief Which adjacent run of segments a Merge compacts.
struct MergePolicy {
  /// Index of the first segment of the run (catalog order).
  size_t first = 0;
  /// Segments in the run; 0 = through the last segment. Runs must be
  /// adjacent so the compacted id space stays insertion-ordered.
  size_t count = 0;
};

/// \brief The multi-segment index catalog.
///
/// Thread-safety: Snapshot()/OpenReadView() may race freely with any
/// mutation (readers keep serving their snapshot); mutations are
/// serialized internally (group commit); Flush/Merge may race mutations
/// and each other.
class IndexCatalog {
 public:
  struct Options {
    /// Vocabulary size (dense term ids below this). Required.
    size_t num_terms = 0;
    /// Catalog directory for segments + MANIFEST. Empty = memory-only:
    /// adds and deletes work, Flush/Merge return FailedPrecondition.
    std::string dir;
    /// Scoring kind served by read views; the snapshot bound cache is
    /// computed under this model, so one catalog serves one kind. Flush
    /// and merge also stamp segment impact bounds (and the MOAFRG01
    /// fragment sidecar) under a model of this kind bound to the flushed
    /// file's own statistics.
    ScoringModelKind scoring = ScoringModelKind::kBm25;
    uint32_t segment_block_size = kDefaultSegmentBlockSize;
    /// Decode every payload block of every segment at Open (CheckIntegrity)
    /// — catches bit rot the structural validation cannot see.
    bool verify_payload_at_open = true;
    /// Write-ahead log (directory-backed catalogs only). Acknowledged
    /// mutations survive a crash; see the file comment for the full
    /// contract.
    bool wal_enabled = true;
    /// Group-commit fsync batching: the WAL is fsync'ed once at least
    /// this many records are pending. 1 (default) = every group commit
    /// syncs — full durability. Larger values trade the last
    /// `wal_fsync_every - 1` acknowledged records on power loss for
    /// fewer fsyncs.
    size_t wal_fsync_every = 1;
    /// Backpressure budget, active only while a maintenance observer is
    /// attached (otherwise nothing would ever drain the debt and a
    /// blocked writer would hang). 0 disables the respective limit.
    size_t backpressure_memtable_docs = 0;  ///< max buffered docs
    size_t backpressure_max_segments = 0;   ///< max un-merged segments
    /// Over budget: false = block the writer until maintenance catches
    /// up; true = fail fast with ResourceExhausted.
    bool backpressure_soft_fail = false;
    /// Test-only crash injection: called with a named point
    /// ("flush:segment-written", "flush:wal-rotated",
    /// "merge:segment-written", "merge:wal-rotated") between durability
    /// steps; returning an error simulates a crash at that point.
    std::function<Status(const std::string&)> fault_injector;
  };

  /// Fresh empty catalog. Creates `dir` if needed; refuses a directory
  /// that already holds a MANIFEST (use Open to recover one). With the
  /// WAL enabled the empty manifest + WAL are planted immediately, so
  /// even never-flushed catalogs recover acknowledged writes.
  static Result<std::unique_ptr<IndexCatalog>> Create(const Options& options);

  /// Recovers a catalog from `dir`'s MANIFEST: opens and cross-validates
  /// every referenced segment + sidecar, rebuilds live statistics from
  /// the surviving documents, then replays the live WAL (if the manifest
  /// names one) — truncating a torn tail — so the memtable returns to
  /// exactly the acknowledged writes. Unreferenced files (a crashed,
  /// unpublished flush or merge) are ignored.
  static Result<std::unique_ptr<IndexCatalog>> Open(const Options& options);

  ~IndexCatalog();

  /// Adds one document; returns its global id. Prefer AddDocuments for
  /// bulk ingest (one group-commit entry per call).
  Result<DocId> AddDocument(const DocTerms& terms);
  /// Adds a batch under consecutive global ids; returns the first. One
  /// WAL record per document, one fsync for the batch. All-or-nothing on
  /// validation errors.
  Result<DocId> AddDocuments(const std::vector<DocTerms>& docs);

  /// Tombstones the document at `global`. Statistics drop its exact
  /// composition immediately; the posting slots are reclaimed by the next
  /// Merge covering its segment. Durable before the call returns: via
  /// the WAL when enabled, else via a manifest write for segment-level
  /// tombstones.
  Status DeleteDocument(DocId global);

  /// Upserts a document: tombstones `global`, then re-ingests `terms`
  /// under a fresh insertion-order id (returned). Applied atomically
  /// within one group commit — no snapshot observes the document
  /// deleted-but-not-readded. Fails without re-adding when `global` does
  /// not name a live document.
  Result<DocId> UpdateDocument(DocId global, const DocTerms& terms);

  /// Persists the memtable as a new immutable segment (id-stable:
  /// tombstoned memtable docs carry their tombstone into the segment)
  /// and rotates the WAL. No-op on an empty memtable. Safe to run
  /// concurrently with mutations; serialized against Merge.
  Status Flush();

  /// Compacts the policy's run of adjacent segments into one, dropping
  /// tombstoned documents and remapping every id above the run downward,
  /// then rotates the WAL (old records name pre-compaction ids).
  /// Returns the number of segments merged (0 = nothing to do). Safe to
  /// run concurrently with mutations; serialized against Flush.
  Result<size_t> Merge(const MergePolicy& policy = {});

  /// The current published state (snapshot-per-query anchor).
  std::shared_ptr<const CatalogState> Snapshot() const;
  /// PostingSource + stats view + scoring model over the current state,
  /// bundled for ExecContext (see CatalogReadView).
  std::shared_ptr<const CatalogReadView> OpenReadView() const;

  /// Registers (or clears, with nullptr) the maintenance observer,
  /// invoked after every committed mutation group. While set, the
  /// backpressure budget in Options is enforced. The call synchronizes
  /// with in-flight invocations: after SetWriteObserver(nullptr)
  /// returns, the previous observer is never called again.
  void SetWriteObserver(std::function<void()> observer);

  const Options& options() const { return options_; }

 private:
  struct PendingWrite;

  explicit IndexCatalog(Options options) : options_(std::move(options)) {}

  Status Fault(const char* point) const {
    if (options_.fault_injector) return options_.fault_injector(point);
    return Status::OK();
  }
  void Publish(std::shared_ptr<const CatalogState> next);
  /// Manifest describing `segments` with the given next id + WAL seq.
  static CatalogManifest ManifestFor(
      const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
      uint64_t next_segment_id, uint64_t wal_seq);

  /// Enqueues `write`, possibly becomes the group-commit leader, and
  /// blocks until the write's status is decided.
  void SubmitAndWait(PendingWrite* write);
  /// Leader: drains the queue in groups until it empties. Called with
  /// `lock` held on queue_mutex_; temporarily releases it per group.
  void DrainQueue(std::unique_lock<std::mutex>& lock);
  /// Applies one group under writer_mutex_: COW copies, WAL append +
  /// fsync, single publication.
  void CommitGroup(std::vector<PendingWrite*>& group);

  /// True when the backpressure budget is exceeded by the current state.
  bool OverBudget() const;
  /// Writes a fresh WAL seeded from `state`'s memtable, publishes the
  /// manifest naming it, swaps it in and retires the old file. Called
  /// under writer_mutex_ from the Flush/Merge publish sections.
  Status RotateWal(
      const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
      const Memtable& memtable, const std::vector<uint8_t>& memtable_deleted,
      const char* fault_point);

  Options options_;

  mutable std::mutex state_mutex_;  ///< guards the state_ pointer swap
  std::shared_ptr<const CatalogState> state_;

  /// Serializes state mutation: group-commit application and the
  /// capture/publish sections of Flush/Merge. The WAL writer and
  /// next_segment_id_/wal_seq_ are touched only under this mutex.
  std::mutex writer_mutex_;
  uint64_t next_segment_id_ = 1;
  uint64_t wal_seq_ = 0;  ///< 0 = no WAL
  std::unique_ptr<WalWriter> wal_;

  /// Serializes Flush against Merge (their unlocked file-writing phases
  /// must not interleave: both splice the segment list).
  std::mutex maintenance_mutex_;

  // Group commit.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;        ///< waiters on group completion
  std::condition_variable backpressure_cv_; ///< writers blocked over budget
  std::deque<PendingWrite*> queue_;
  bool leader_active_ = false;

  std::mutex observer_mutex_;  ///< held while invoking write_observer_
  std::function<void()> write_observer_;
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_INDEX_CATALOG_H_
