// IndexCatalog: the mutable, multi-segment index lifecycle —
// ingest → flush → merge → delete — behind the PostingCursor API.
//
//            AddDocument / DeleteDocument
//                       │
//                 ┌─────▼─────┐   Flush()    ┌───────────────┐
//                 │  memtable │ ───────────▶ │ seg_k.moa/fwd │──┐
//                 └───────────┘              └───────────────┘  │ Merge()
//                                            ┌───────────────┐  ▼
//                                            │ seg_j.moa/fwd │─▶ seg_m
//                                            └───────────────┘ (tombstones
//                                                                dropped,
//                                                                ids compacted)
//
// Every mutation builds a *new* immutable CatalogState (copy-on-write with
// structural sharing: segment readers, sidecars and the memtable are
// shared by shared_ptr; only what changed is copied) and publishes it by
// swapping one pointer. Queries take snapshot-per-query: a search holds
// the shared_ptr it started with, so flush/merge/delete during in-flight
// execution is safe and every query sees one consistent state.
//
// Doc-id contract: ids are assigned densely in insertion order and are
// *internal*. They are stable across AddDocument, DeleteDocument and
// Flush; a Merge physically drops tombstoned documents and compacts every
// id above the merged range downward (the classic LSM text-index
// behaviour — external keys, if any, live above this layer).
//
// Durability: segments and their forward-index sidecars are immutable
// files; the MANIFEST names the live set and is replaced atomically
// (storage/catalog/manifest.h), so flush and merge publish all-or-nothing
// and a crash leaves a readable catalog. The memtable has no WAL —
// unflushed documents are lost on crash by design.
//
// Mutation cost: one state copy per call — batch adds through
// AddDocuments to amortize (the memtable copy is O(buffered contents)).
#ifndef MOA_STORAGE_CATALOG_INDEX_CATALOG_H_
#define MOA_STORAGE_CATALOG_INDEX_CATALOG_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/scoring.h"
#include "storage/catalog/catalog_state.h"
#include "storage/catalog/manifest.h"
#include "storage/segment/segment_format.h"

namespace moa {

/// \brief Which adjacent run of segments a Merge compacts.
struct MergePolicy {
  /// Index of the first segment of the run (catalog order).
  size_t first = 0;
  /// Segments in the run; 0 = through the last segment. Runs must be
  /// adjacent so the compacted id space stays insertion-ordered.
  size_t count = 0;
};

/// \brief The multi-segment index catalog.
///
/// Thread-safety: Snapshot()/OpenReadView() may race freely with any
/// mutation (readers keep serving their snapshot); mutations are
/// serialized internally.
class IndexCatalog {
 public:
  struct Options {
    /// Vocabulary size (dense term ids below this). Required.
    size_t num_terms = 0;
    /// Catalog directory for segments + MANIFEST. Empty = memory-only:
    /// adds and deletes work, Flush/Merge return FailedPrecondition.
    std::string dir;
    /// Scoring kind served by read views; the snapshot bound cache is
    /// computed under this model, so one catalog serves one kind. Flush
    /// and merge also stamp segment impact bounds (and the MOAFRG01
    /// fragment sidecar) under a model of this kind bound to the flushed
    /// file's own statistics.
    ScoringModelKind scoring = ScoringModelKind::kBm25;
    uint32_t segment_block_size = kDefaultSegmentBlockSize;
    /// Decode every payload block of every segment at Open (CheckIntegrity)
    /// — catches bit rot the structural validation cannot see.
    bool verify_payload_at_open = true;
    /// Test-only crash injection: called with a named point ("
    /// flush:segment-written", "merge:segment-written") after the
    /// immutable files exist but before the manifest publishes; returning
    /// an error simulates a crash between the two.
    std::function<Status(const std::string&)> fault_injector;
  };

  /// Fresh empty catalog. Creates `dir` if needed; refuses a directory
  /// that already holds a MANIFEST (use Open to recover one).
  static Result<std::unique_ptr<IndexCatalog>> Create(const Options& options);

  /// Recovers a catalog from `dir`'s MANIFEST: opens and cross-validates
  /// every referenced segment + sidecar and rebuilds live statistics from
  /// the surviving documents. Unreferenced files (a crashed, unpublished
  /// flush or merge) are ignored.
  static Result<std::unique_ptr<IndexCatalog>> Open(const Options& options);

  /// Adds one document; returns its global id. O(memtable) per call —
  /// prefer AddDocuments for bulk ingest.
  Result<DocId> AddDocument(const DocTerms& terms);
  /// Adds a batch under consecutive global ids; returns the first. One
  /// state publication for the whole batch. All-or-nothing on validation
  /// errors.
  Result<DocId> AddDocuments(const std::vector<DocTerms>& docs);

  /// Tombstones the document at `global`. Statistics drop its exact
  /// composition immediately; the posting slots are reclaimed by the next
  /// Merge covering its segment. Segment-level tombstones are made
  /// durable in the manifest before the state publishes.
  Status DeleteDocument(DocId global);

  /// Upserts a document as delete + add: tombstones `global`, then
  /// re-ingests `terms` under a fresh insertion-order id (returned). Two
  /// serialized mutations, two state publications — a concurrent snapshot
  /// may observe the document deleted but not yet re-added; no snapshot
  /// ever sees both versions live. Fails without re-adding when `global`
  /// does not name a live document.
  Result<DocId> UpdateDocument(DocId global, const DocTerms& terms);

  /// Persists the memtable as a new immutable segment (id-stable:
  /// tombstoned memtable docs carry their tombstone into the segment).
  /// No-op on an empty memtable.
  Status Flush();

  /// Compacts the policy's run of adjacent segments into one, dropping
  /// tombstoned documents and remapping every id above the run downward.
  /// Returns the number of segments merged (0 = nothing to do).
  Result<size_t> Merge(const MergePolicy& policy = {});

  /// The current published state (snapshot-per-query anchor).
  std::shared_ptr<const CatalogState> Snapshot() const;
  /// PostingSource + stats view + scoring model over the current state,
  /// bundled for ExecContext (see CatalogReadView).
  std::shared_ptr<const CatalogReadView> OpenReadView() const;

  const Options& options() const { return options_; }

 private:
  explicit IndexCatalog(Options options) : options_(std::move(options)) {}

  Status Fault(const char* point) const {
    if (options_.fault_injector) return options_.fault_injector(point);
    return Status::OK();
  }
  void Publish(std::shared_ptr<const CatalogState> next);
  /// Manifest describing `segments` with the given next id.
  static CatalogManifest ManifestFor(
      const std::vector<std::shared_ptr<const CatalogSegment>>& segments,
      uint64_t next_segment_id);

  Options options_;

  mutable std::mutex state_mutex_;  ///< guards the state_ pointer swap
  std::shared_ptr<const CatalogState> state_;

  std::mutex writer_mutex_;  ///< serializes mutations
  uint64_t next_segment_id_ = 1;  ///< under writer_mutex_
};

}  // namespace moa

#endif  // MOA_STORAGE_CATALOG_INDEX_CATALOG_H_
