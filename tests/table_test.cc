#include "storage/table.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

Table DocTable() {
  Table t;
  EXPECT_TRUE(t.AddColumn("doc", Column::FromInt64({0, 1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("score", Column::FromDouble({0.9, 0.5, 0.7})).ok());
  EXPECT_TRUE(
      t.AddColumn("title", Column::FromString({"a", "b", "c"})).ok());
  return t;
}

TEST(TableTest, Shape) {
  Table t = DocTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.spec(1).name, "score");
  EXPECT_EQ(t.spec(1).type, ColumnType::kDouble);
}

TEST(TableTest, ColumnIndexLookup) {
  Table t = DocTable();
  EXPECT_EQ(t.ColumnIndex("title").ValueOrDie(), 2u);
  EXPECT_FALSE(t.ColumnIndex("nope").ok());
}

TEST(TableTest, RejectsLengthMismatch) {
  Table t = DocTable();
  Status s = t.AddColumn("bad", Column::FromInt64({1}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsDuplicateName) {
  Table t = DocTable();
  Status s = t.AddColumn("doc", Column::FromInt64({7, 8, 9}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, TakeSelectsRowsAcrossColumns) {
  Table t = DocTable();
  Table sub = t.Take({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.column(0).Int64At(0), 2);
  EXPECT_EQ(sub.column(2).StringAt(1), "a");
}

TEST(TableTest, EmptyTable) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 0u);
}

}  // namespace
}  // namespace moa
