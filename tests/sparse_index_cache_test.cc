#include "storage/sparse_index_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace moa {
namespace {

using testutil::SmallCollectionWithImpacts;

TEST(SparseIndexCacheTest, BuildsOnceAndReturnsStablePointer) {
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  SparseIndexCache cache;
  const TermId t = 0;
  const PostingList& list = file.list(t);
  ASSERT_FALSE(list.empty());

  EXPECT_EQ(cache.Find(t, 16), nullptr);
  const SparseIndex* first = cache.GetOrBuild(t, list, 16);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.GetOrBuild(t, list, 16), first);
  EXPECT_EQ(cache.Find(t, 16), first);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SparseIndexCacheTest, DistinctBlockSizesGetDistinctIndexes) {
  // Keying by (term, block size) keeps results independent of cache
  // warmth: a block-16 probe never sees a block-64 index.
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  SparseIndexCache cache;
  const PostingList& list = file.list(0);
  const SparseIndex* b16 = cache.GetOrBuild(0, list, 16);
  const SparseIndex* b64 = cache.GetOrBuild(0, list, 64);
  EXPECT_NE(b16, b64);
  EXPECT_EQ(b16->block_size(), 16u);
  EXPECT_EQ(b64->block_size(), 64u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SparseIndexCacheTest, CachedProbeMatchesThrowAwayIndex) {
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  SparseIndexCache cache;
  const TermId t = 1;
  const PostingList& list = file.list(t);
  ASSERT_FALSE(list.empty());
  const SparseIndex* cached = cache.GetOrBuild(t, list, 8);
  const SparseIndex fresh(&list, 8);
  for (DocId d = 0; d < file.num_docs(); d += 7) {
    EXPECT_EQ(cached->Probe(d), fresh.Probe(d)) << "doc " << d;
  }
}

TEST(SparseIndexCacheTest, ClearEmptiesTheCache) {
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  SparseIndexCache cache;
  cache.GetOrBuild(0, file.list(0), 16);
  cache.GetOrBuild(1, file.list(1), 16);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(0, 16), nullptr);
}

TEST(SparseIndexCacheTest, CursorBuiltEntryMatchesBorrowedEntry) {
  // The PostingSource overload materializes the list from a cursor into a
  // cache-owned copy; probes must be indistinguishable from an index
  // borrowing the original in-memory list.
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  const InMemoryPostingSource source(&file);
  const TermId t = 2;
  ASSERT_FALSE(file.list(t).empty());

  SparseIndexCache from_cursor;
  SparseIndexCache from_list;
  const SparseIndex* cursor_built = from_cursor.GetOrBuild(t, source, 8);
  const SparseIndex* list_built = from_list.GetOrBuild(t, file.list(t), 8);
  ASSERT_NE(cursor_built, nullptr);
  EXPECT_EQ(cursor_built->num_blocks(), list_built->num_blocks());
  for (DocId d = 0; d < file.num_docs(); d += 3) {
    EXPECT_EQ(cursor_built->Probe(d), list_built->Probe(d)) << "doc " << d;
  }

  // Warm hits return the same object without re-materializing.
  EXPECT_EQ(from_cursor.GetOrBuild(t, source, 8), cursor_built);
  EXPECT_EQ(from_cursor.size(), 1u);
}

TEST(SparseIndexCacheTest, ConcurrentCursorGetOrBuildIsBuildOnce) {
  // TSan target for the decode-once path: racing workers materializing
  // the same terms through cursors must agree on one entry per term.
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  const InMemoryPostingSource source(&file);
  SparseIndexCache cache;
  constexpr int kThreads = 8;
  constexpr TermId kTerms = 16;

  std::vector<std::thread> threads;
  std::vector<std::vector<const SparseIndex*>> seen(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      seen[w].resize(kTerms);
      for (TermId t = 0; t < kTerms; ++t) {
        seen[w][t] = cache.GetOrBuild(t, source, 16);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.size(), static_cast<size_t>(kTerms));
  for (TermId t = 0; t < kTerms; ++t) {
    for (int w = 1; w < kThreads; ++w) {
      EXPECT_EQ(seen[w][t], seen[0][t]) << "term " << t;
    }
  }
}

TEST(SparseIndexCacheTest, ConcurrentGetOrBuildIsBuildOnce) {
  const InvertedFile& file = SmallCollectionWithImpacts().inverted_file();
  SparseIndexCache cache;
  constexpr int kThreads = 8;
  constexpr TermId kTerms = 32;

  std::vector<std::thread> threads;
  std::vector<std::vector<const SparseIndex*>> seen(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      seen[w].resize(kTerms);
      for (TermId t = 0; t < kTerms; ++t) {
        seen[w][t] = cache.GetOrBuild(t, file.list(t), 16);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.size(), static_cast<size_t>(kTerms));
  // Every thread observed the same index object per term.
  for (TermId t = 0; t < kTerms; ++t) {
    for (int w = 1; w < kThreads; ++w) {
      EXPECT_EQ(seen[w][t], seen[0][t]) << "term " << t;
    }
  }
}

}  // namespace
}  // namespace moa
