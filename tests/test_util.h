// Shared fixtures: a small deterministic collection + scoring + queries,
// built once per test binary.
#ifndef MOA_TESTS_TEST_UTIL_H_
#define MOA_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "ir/collection.h"
#include "ir/query_gen.h"
#include "ir/scoring.h"
#include "storage/fragmentation.h"

namespace moa {
namespace testutil {

/// Small Zipf collection (2,000 docs / 3,000 terms) shared across tests.
inline const Collection& SmallCollection() {
  static const Collection* coll = [] {
    CollectionConfig config;
    config.num_docs = 2000;
    config.vocabulary = 3000;
    config.zipf_skew = 1.0;
    config.mean_doc_length = 120;
    config.seed = 20260612;
    auto c = Collection::Generate(config);
    auto* owned = new Collection(std::move(c).ValueOrDie());
    return owned;
  }();
  return *coll;
}

/// The same collection with BM25 impact orders built (required by Fagin /
/// quality-switch operators).
inline const Collection& SmallCollectionWithImpacts() {
  static const Collection* coll = [] {
    auto* owned = new Collection(SmallCollection());
    InvertedFile& file = owned->mutable_inverted_file();
    static std::unique_ptr<ScoringModel> model = MakeBm25(&file);
    file.BuildImpactOrders(
        [&](TermId t, const Posting& p) { return model->Weight(t, p); });
    return owned;
  }();
  return *coll;
}

/// BM25 model bound to SmallCollectionWithImpacts().
inline const ScoringModel& SmallModel() {
  static std::unique_ptr<ScoringModel> model = MakeBm25(
      &const_cast<Collection&>(SmallCollectionWithImpacts())
           .mutable_inverted_file());
  return *model;
}

/// 5%-volume fragmentation of the shared collection.
inline const Fragmentation& SmallFragmentation() {
  static const Fragmentation frag = Fragmentation::Build(
      SmallCollectionWithImpacts().inverted_file(), FragmentationPolicy{});
  return frag;
}

/// Deterministic mixed query workload over the shared collection.
inline const std::vector<Query>& SmallQueries() {
  static const std::vector<Query> queries = [] {
    QueryWorkloadConfig config;
    config.num_queries = 12;
    config.terms_per_query = 4;
    config.distribution = QueryTermDistribution::kMixed;
    config.seed = 99;
    return GenerateQueries(SmallCollectionWithImpacts(), config).ValueOrDie();
  }();
  return queries;
}

}  // namespace testutil
}  // namespace moa

#endif  // MOA_TESTS_TEST_UTIL_H_
