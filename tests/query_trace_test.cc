#include "obs/query_trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "ir/query_gen.h"

namespace moa {
namespace obs {
namespace {

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b,
                         const char* what) {
  EXPECT_EQ(a.sequential_reads, b.sequential_reads) << what;
  EXPECT_EQ(a.random_reads, b.random_reads) << what;
  EXPECT_EQ(a.score_evals, b.score_evals) << what;
  EXPECT_EQ(a.compares, b.compares) << what;
  EXPECT_EQ(a.bytes_touched, b.bytes_touched) << what;
  EXPECT_EQ(a.blocks_decoded, b.blocks_decoded) << what;
  EXPECT_EQ(a.blocks_skipped, b.blocks_skipped) << what;
}

TEST(QueryTraceTest, SpansAttachToCurrentTraceAndNest) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out (MOA_OBS=OFF)";
  ASSERT_EQ(QueryTrace::Current(), nullptr);
  QueryTrace outer;
  ASSERT_EQ(QueryTrace::Current(), &outer);
  {
    TraceSpan span(kStageAccumulate);
    CostTicker::TickSeq();
    CostTicker::TickScore();
  }
  {
    QueryTrace inner;
    EXPECT_EQ(QueryTrace::Current(), &inner);
    {
      TraceSpan span(kStageHeapMerge);
      CostTicker::TickCompare();
    }
    const QueryTraceData inner_data = inner.Finish();
    ASSERT_EQ(inner_data.spans.size(), 1u);
    EXPECT_STREQ(inner_data.spans[0].stage, kStageHeapMerge);
    EXPECT_EQ(inner_data.spans[0].cost.compares, 1);
  }
  EXPECT_EQ(QueryTrace::Current(), &outer);
  const QueryTraceData data = outer.Finish();
  // The inner trace's span went to the inner trace, not the outer one.
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_STREQ(data.spans[0].stage, kStageAccumulate);
  EXPECT_EQ(data.spans[0].cost.sequential_reads, 1);
  EXPECT_EQ(data.spans[0].cost.score_evals, 1);
  // The whole-query delta covers the inner trace's ticks too.
  EXPECT_EQ(data.cost.compares, 1);
  EXPECT_FALSE(data.ToString().empty());
}

TEST(QueryTraceTest, SpanWithoutActiveTraceIsNoOp) {
  ASSERT_EQ(QueryTrace::Current(), nullptr);
  TraceSpan span(kStageCursorOpen);  // must not crash or record anywhere
  CostTicker::TickSeq();
}

// The bit-exactness contract, end to end: a forced heap query on static
// storage produces a trace whose stage spans tile the query — the spans'
// CostCounters sum to the whole-query delta, and that delta equals the
// result's own CostScope counters field for field.
TEST(QueryTraceTest, DatabaseTraceRoundTrip) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out (MOA_OBS=OFF)";
  DatabaseConfig config;
  config.collection.num_docs = 2000;
  config.collection.vocabulary = 4000;
  config.collection.mean_doc_length = 60;
  config.collection.seed = 99;
  config.trace_every = 1;  // trace every query, not the sampled default
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  MmDatabase& db = *opened.ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 4;
  qconfig.terms_per_query = 3;
  qconfig.seed = 5;
  const auto queries = GenerateQueries(db.collection(), qconfig).ValueOrDie();

  for (const Query& query : queries) {
    QueryRequest request;
    request.query = query;
    request.options.strategy = PhysicalStrategy::kHeap;
    auto result = db.Search(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const SearchResult& r = result.ValueOrDie();
    ASSERT_TRUE(r.traced);

    const QueryTraceData& trace = r.trace;
    EXPECT_EQ(trace.strategy, StrategyName(PhysicalStrategy::kHeap));
    EXPECT_FALSE(trace.planned);
    ASSERT_GE(trace.spans.size(), 2u);

    bool saw_accumulate = false, saw_heap_merge = false;
    CostCounters span_sum;
    double span_wall = 0.0;
    for (const TraceSpanData& span : trace.spans) {
      span_sum += span.cost;
      span_wall += span.wall_millis;
      saw_accumulate |= std::string(span.stage) == kStageAccumulate;
      saw_heap_merge |= std::string(span.stage) == kStageHeapMerge;
      EXPECT_GE(span.wall_millis, 0.0);
    }
    EXPECT_TRUE(saw_accumulate);
    EXPECT_TRUE(saw_heap_merge);
    // Stage spans tile every ticking region: their sum is the query delta.
    ExpectCountersEqual(span_sum, trace.cost, "spans vs whole query");
    // And the trace only *read* the ticker: its whole-query delta is
    // bit-identical to the CostScope counters the executor itself took.
    ExpectCountersEqual(trace.cost, r.top.stats.cost, "trace vs CostScope");
    EXPECT_LE(span_wall, trace.wall_millis + 1.0);
    EXPECT_GT(trace.cost.score_evals, 0);
  }

  // Completed traces land in the engine ring, oldest first.
  const std::vector<QueryTraceData> recent = db.RecentTraces();
  ASSERT_GE(recent.size(), queries.size());
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].sequence, recent[i - 1].sequence + 1);
  }
}

// Planned (unforced) queries carry the planner's prediction next to the
// observed counters — the calibration feed.
TEST(QueryTraceTest, PlannedQueryCarriesPrediction) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out (MOA_OBS=OFF)";
  DatabaseConfig config;
  config.collection.num_docs = 1500;
  config.collection.vocabulary = 3000;
  config.collection.seed = 11;
  config.trace_every = 1;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 1;
  qconfig.terms_per_query = 4;
  qconfig.seed = 3;
  const Query query = GenerateQueries(db.collection(), qconfig).ValueOrDie()[0];

  auto result = db.Search(QueryRequest{query});
  ASSERT_TRUE(result.ok());
  const SearchResult& r = result.ValueOrDie();
  ASSERT_TRUE(r.traced);
  EXPECT_TRUE(r.trace.planned);
  EXPECT_GT(r.trace.predicted_scalar, 0.0);
  EXPECT_GT(r.trace.observed_scalar(), 0.0);
}

// trace_every = N keeps exactly one in N sequential queries traced
// (whatever phase this thread's sampling counter starts at), and 0
// disables span collection entirely — while SearchResult's plan estimate
// and CostCounters stay populated for every query.
TEST(QueryTraceTest, TraceSamplingHonorsPeriod) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out (MOA_OBS=OFF)";
  DatabaseConfig config;
  config.collection.num_docs = 800;
  config.collection.vocabulary = 2000;
  config.collection.seed = 7;
  config.trace_every = 4;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok());
  MmDatabase& db = *opened.ValueOrDie();

  QueryWorkloadConfig qconfig;
  qconfig.num_queries = 1;
  qconfig.terms_per_query = 2;
  qconfig.seed = 21;
  const Query query = GenerateQueries(db.collection(), qconfig).ValueOrDie()[0];

  int traced = 0;
  for (int i = 0; i < 8; ++i) {
    auto result = db.Search(QueryRequest{query});
    ASSERT_TRUE(result.ok());
    const SearchResult& r = result.ValueOrDie();
    traced += r.traced ? 1 : 0;
    EXPECT_EQ(r.traced, !r.trace.spans.empty());
    EXPECT_GT(r.top.stats.cost.Scalar(), 0.0);  // counters never sampled
  }
  EXPECT_EQ(traced, 2);  // 8 queries at period 4, any phase
  EXPECT_EQ(db.RecentTraces().size(), 2u);

  config.trace_every = 0;
  auto opened_off = MmDatabase::Open(config);
  ASSERT_TRUE(opened_off.ok());
  MmDatabase& db_off = *opened_off.ValueOrDie();
  for (int i = 0; i < 4; ++i) {
    auto result = db_off.Search(QueryRequest{query});
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.ValueOrDie().traced);
  }
  EXPECT_TRUE(db_off.RecentTraces().empty());
}

TEST(TraceRingTest, CapacityAndOrdering) {
  TraceRing ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  for (int i = 0; i < 5; ++i) {
    QueryTraceData trace;
    trace.strategy = "t" + std::to_string(i);
    ring.Push(std::move(trace));
  }
  EXPECT_EQ(ring.size(), 3u);
  const std::vector<QueryTraceData> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sequences are stamped 1..5; the ring keeps the last three, oldest
  // first.
  EXPECT_EQ(snap[0].sequence, 3u);
  EXPECT_EQ(snap[1].sequence, 4u);
  EXPECT_EQ(snap[2].sequence, 5u);
  EXPECT_EQ(snap[0].strategy, "t2");
  EXPECT_EQ(snap[2].strategy, "t4");
}

}  // namespace
}  // namespace obs
}  // namespace moa
