#include "optimizer/order_property.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

ExprPtr SortedList() {
  return Expr::Const(Value::List({Value::Int(1), Value::Int(2),
                                  Value::Int(3)}));
}
ExprPtr UnsortedList() {
  return Expr::Const(Value::List({Value::Int(3), Value::Int(1),
                                  Value::Int(2)}));
}

TEST(OrderPropertyTest, ConstListInspected) {
  EXPECT_TRUE(DeriveOrder(SortedList()).sorted);
  EXPECT_FALSE(DeriveOrder(UnsortedList()).sorted);
}

TEST(OrderPropertyTest, ConstSetAlwaysSorted) {
  ExprPtr s = Expr::Const(Value::Set({Value::Int(9), Value::Int(1)}));
  EXPECT_TRUE(DeriveOrder(s).sorted);
}

TEST(OrderPropertyTest, SortCreatesOrder) {
  ExprPtr e = Expr::Apply("LIST.sort", {UnsortedList()});
  EXPECT_TRUE(DeriveOrder(e).sorted);
}

TEST(OrderPropertyTest, SelectPreservesOrder) {
  ExprPtr e = Expr::Apply("LIST.select",
                          {SortedList(), Expr::Const(Value::Int(1)),
                           Expr::Const(Value::Int(3))});
  EXPECT_TRUE(DeriveOrder(e).sorted);
  ExprPtr u = Expr::Apply("LIST.select",
                          {UnsortedList(), Expr::Const(Value::Int(1)),
                           Expr::Const(Value::Int(3))});
  EXPECT_FALSE(DeriveOrder(u).sorted);
}

TEST(OrderPropertyTest, ReverseDestroysOrder) {
  ExprPtr e = Expr::Apply("LIST.reverse", {SortedList()});
  EXPECT_FALSE(DeriveOrder(e).sorted);
}

TEST(OrderPropertyTest, ProjectToBagKeepsOnlyPhysicalOrder) {
  ExprPtr bag = Expr::Apply("LIST.projecttobag", {SortedList()});
  OrderInfo info = DeriveOrder(bag);
  EXPECT_FALSE(info.sorted) << "a BAG has no formal order";
  EXPECT_TRUE(info.physically_sorted);
}

TEST(OrderPropertyTest, RoundTripThroughBagRecoversFormalOrder) {
  // The paper's point: the physical order survives the cast; only a layer
  // that reasons across extensions can know it.
  ExprPtr roundtrip = Expr::Apply(
      "BAG.projecttolist", {Expr::Apply("LIST.projecttobag", {SortedList()})});
  EXPECT_TRUE(DeriveOrder(roundtrip).sorted);
}

TEST(OrderPropertyTest, UnsortedThroughBagStaysUnsorted) {
  ExprPtr roundtrip = Expr::Apply(
      "BAG.projecttolist",
      {Expr::Apply("LIST.projecttobag", {UnsortedList()})});
  EXPECT_FALSE(DeriveOrder(roundtrip).sorted);
}

TEST(OrderPropertyTest, SelectOnBagPreservesPhysicalOrder) {
  ExprPtr e = Expr::Apply("BAG.select",
                          {Expr::Apply("LIST.projecttobag", {SortedList()}),
                           Expr::Const(Value::Int(0)),
                           Expr::Const(Value::Int(9))});
  OrderInfo info = DeriveOrder(e);
  EXPECT_FALSE(info.sorted);
  EXPECT_TRUE(info.physically_sorted);
}

TEST(OrderPropertyTest, NullAndUnknownAreUnordered) {
  EXPECT_FALSE(DeriveOrder(nullptr).sorted);
  ExprPtr unknown = Expr::Apply("LIST.bogus", {SortedList()});
  EXPECT_FALSE(DeriveOrder(unknown).sorted);
}

}  // namespace
}  // namespace moa
