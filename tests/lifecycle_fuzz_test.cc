// Differential lifecycle fuzz harness (in the spirit of LSM-store
// crash/differential testing): seeded random op sequences — AddDocument /
// AddDocuments / DeleteDocument / UpdateDocument / Flush / Merge /
// Attach / Detach / Search / SearchBatch — run against an MmDatabase,
// periodically checked against a *fresh in-memory oracle* built from an
// independently replayed shadow of the documented doc-id rules, across
// every registered strategy:
//
//   - safe strategies must be bit-identical to the oracle under the
//     replayed id mapping (scores EXPECT_EQ, not NEAR);
//   - unsafe (quality) strategies must earn exactly the same
//     precision/recall metrics (ir/metrics) against the oracle's exact
//     ground truth as the oracle's own run of the same strategy;
//   - no tombstoned document may ever surface, and the catalog's own
//     LiveDocIds/statistics must agree with the replay before any result
//     is trusted.
//
// A second harness replays the same kind of op stream through a
// ShardedCatalog (N in {1, 2, 4}) with per-shard Flush/Merge interleaved,
// executing queries through the ShardCoordinator and holding safe
// strategies to the single-index oracle under the interleaved global-id
// mapping (fagin_nra set-level: its merged partial lower bounds are
// partition-dependent, so only membership in the exact top-N is stable).
//
// CI runs a few fixed-seed iterations (deterministic); set MOA_FUZZ_ITERS
// for long local runs, e.g.  MOA_FUZZ_ITERS=50 ctest -R lifecycle_fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/shard_coordinator.h"
#include "exec/registry.h"
#include "ir/exact_eval.h"
#include "ir/metrics.h"
#include "storage/catalog/background_jobs.h"
#include "storage/catalog/index_catalog.h"
#include "storage/catalog/manifest.h"
#include "storage/catalog/sharded_catalog.h"
#include "storage/catalog/wal.h"

namespace moa {
namespace {

constexpr uint32_t kVocab = 400;
constexpr size_t kTopN = 10;

int Iterations() {
  if (const char* env = std::getenv("MOA_FUZZ_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 3;  // fixed-seed CI default
}

/// Independent replay of the documented id rules: ids are dense in
/// insertion order, deletes tombstone in place, flush is id-stable, a
/// full merge drops dead flushed slots and compacts.
struct Shadow {
  struct Slot {
    DocTerms terms;
    bool alive = true;
  };
  std::vector<Slot> slots;
  size_t flushed = 0;

  void Add(DocTerms terms) { slots.push_back(Slot{std::move(terms), true}); }
  void Delete(DocId id) { slots[id].alive = false; }
  /// Upsert = delete + add: the replacement takes a fresh tail id.
  void Update(DocId id, DocTerms terms) {
    Delete(id);
    Add(std::move(terms));
  }
  void Flush() { flushed = slots.size(); }
  void MergeAll() {
    std::vector<Slot> next;
    for (size_t i = 0; i < flushed; ++i) {
      if (slots[i].alive) next.push_back(std::move(slots[i]));
    }
    const size_t kept = next.size();
    for (size_t i = flushed; i < slots.size(); ++i) {
      next.push_back(std::move(slots[i]));
    }
    slots = std::move(next);
    flushed = kept;
  }

  std::vector<DocId> LiveIds() const {
    std::vector<DocId> live;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].alive) live.push_back(static_cast<DocId>(i));
    }
    return live;
  }
  size_t LiveCount() const { return LiveIds().size(); }
};

/// Fresh single-index oracle over the shadow's survivors.
struct Oracle {
  std::unique_ptr<InvertedFile> file;
  std::unique_ptr<ScoringModel> model;
  Fragmentation fragmentation;
  std::unique_ptr<SparseIndexCache> sparse_cache =
      std::make_unique<SparseIndexCache>();
  std::vector<DocId> to_catalog;                 // oracle id -> catalog id
  std::unordered_map<DocId, DocId> to_oracle;    // catalog id -> oracle id

  ExecContext context() const {
    ExecContext ctx;
    ctx.file = file.get();
    ctx.model = model.get();
    ctx.fragmentation = &fragmentation;
    ctx.sparse_cache = sparse_cache.get();
    return ctx;
  }
};

Oracle BuildOracle(const Shadow& shadow,
                   const FragmentationPolicy& policy) {
  Oracle oracle;
  oracle.to_catalog = shadow.LiveIds();
  InvertedFileBuilder builder(kVocab);
  for (size_t k = 0; k < oracle.to_catalog.size(); ++k) {
    const DocId catalog_id = oracle.to_catalog[k];
    oracle.to_oracle.emplace(catalog_id, static_cast<DocId>(k));
    EXPECT_TRUE(
        builder.AddDocument(static_cast<DocId>(k),
                            shadow.slots[catalog_id].terms)
            .ok());
  }
  oracle.file = std::make_unique<InvertedFile>(builder.Build());
  oracle.model = MakeBm25(oracle.file.get());
  oracle.file->BuildImpactOrders([&](TermId t, const Posting& p) {
    return oracle.model->Weight(t, p);
  });
  oracle.fragmentation = Fragmentation::Build(*oracle.file, policy);
  return oracle;
}

DocTerms RandomDoc(Rng& rng) {
  std::map<TermId, uint32_t> terms;
  const size_t want = 5 + rng.Uniform(10);
  while (terms.size() < want) {
    terms.emplace(static_cast<TermId>(rng.Uniform(kVocab)),
                  1 + static_cast<uint32_t>(rng.Uniform(4)));
  }
  return DocTerms(terms.begin(), terms.end());
}

std::vector<Query> RandomQueries(Rng& rng, size_t count) {
  std::vector<Query> queries;
  for (size_t i = 0; i < count; ++i) {
    Query q;
    const size_t terms = 2 + rng.Uniform(4);
    for (size_t j = 0; j < terms; ++j) {
      q.terms.push_back(static_cast<TermId>(rng.Uniform(kVocab)));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Differential check of one strategy on one query: exact strategies
/// bit-identical under the id mapping, quality strategies metric-equal
/// against the oracle's exact ground truth.
void CheckStrategy(MmDatabase& db, const Oracle& oracle, PhysicalStrategy s,
                   const Query& q) {
  const ExecContext ref_ctx = oracle.context();
  auto expected =
      StrategyRegistry::Global().Execute(s, ref_ctx, q, kTopN, ExecOptions{});
  auto actual = db.Execute(s, q, kTopN);
  ASSERT_TRUE(expected.ok()) << StrategyName(s) << ": "
                             << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << StrategyName(s) << ": "
                           << actual.status().ToString();
  const std::vector<ScoredDoc>& got = actual.ValueOrDie().items;

  // Universal invariant: only live documents, mapped ids in range.
  std::vector<ScoredDoc> mapped;
  for (const ScoredDoc& sd : got) {
    auto it = oracle.to_oracle.find(sd.doc);
    ASSERT_NE(it, oracle.to_oracle.end())
        << StrategyName(s) << " returned dead/unknown doc " << sd.doc;
    mapped.push_back(ScoredDoc{it->second, sd.score});
  }

  if (IsSafeStrategy(s)) {
    const std::vector<ScoredDoc>& ref = expected.ValueOrDie().items;
    ASSERT_EQ(ref.size(), mapped.size()) << StrategyName(s);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(mapped[i].doc, ref[i].doc)
          << StrategyName(s) << " rank " << i;
      EXPECT_EQ(mapped[i].score, ref[i].score)
          << StrategyName(s) << " rank " << i;
    }
    return;
  }

  // Quality strategies: same precision/recall as the oracle's own run.
  const std::vector<ScoredDoc> truth =
      ExactTopN(*oracle.file, *oracle.model, q, kTopN);
  if (truth.empty()) {
    EXPECT_TRUE(mapped.empty()) << StrategyName(s);
    EXPECT_TRUE(expected.ValueOrDie().items.empty()) << StrategyName(s);
    return;
  }
  const std::vector<double> truth_scores =
      AccumulateScores(*oracle.file, *oracle.model, q);
  const QualityReport ours =
      EvaluateQuality(mapped, truth, truth_scores);
  const QualityReport theirs =
      EvaluateQuality(expected.ValueOrDie().items, truth, truth_scores);
  EXPECT_DOUBLE_EQ(ours.overlap_at_n, theirs.overlap_at_n)
      << StrategyName(s);
  EXPECT_DOUBLE_EQ(ours.score_ratio, theirs.score_ratio) << StrategyName(s);
}

/// Planner-mode round: an unforced QueryRequest must route through the
/// planner, pick a safe strategy at the default (exact) quality target,
/// match the oracle's run of that same strategy bit-for-bit, and re-plan
/// identically for the same snapshot + query. A lax-target request may
/// pick an unsafe strategy instead; its result must equal this database's
/// own forced run of the chosen strategy, which CheckStrategy separately
/// holds to the oracle's quality metrics.
void CheckPlanned(MmDatabase& db, const Oracle& oracle, const Query& q) {
  QueryRequest request;
  request.query = q;
  request.n = kTopN;
  auto first = db.Search(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const SearchResult& r = first.ValueOrDie();
  ASSERT_TRUE(r.planned);
  ASSERT_TRUE(IsSafeStrategy(r.strategy)) << StrategyName(r.strategy);

  auto expected = StrategyRegistry::Global().Execute(
      r.strategy, oracle.context(), q, kTopN, ExecOptions{});
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  const std::vector<ScoredDoc>& ref = expected.ValueOrDie().items;
  ASSERT_EQ(ref.size(), r.top.items.size()) << StrategyName(r.strategy);
  for (size_t i = 0; i < ref.size(); ++i) {
    auto it = oracle.to_oracle.find(r.top.items[i].doc);
    ASSERT_NE(it, oracle.to_oracle.end())
        << "planned run surfaced dead/unknown doc " << r.top.items[i].doc;
    EXPECT_EQ(it->second, ref[i].doc)
        << StrategyName(r.strategy) << " rank " << i;
    EXPECT_EQ(r.top.items[i].score, ref[i].score)
        << StrategyName(r.strategy) << " rank " << i;
  }

  // Determinism: same snapshot, same query => same plan, Explain agrees.
  auto second = db.Search(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().strategy, r.strategy);
  auto report = db.ExplainSearch(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().decision.strategy, r.strategy);
  EXPECT_FALSE(report.ValueOrDie().decision.forced);

  // Lax target: whatever (possibly unsafe) strategy wins, the planned
  // run must reproduce the forced run of that strategy exactly.
  request.options.quality_target = 0.0;
  auto lax = db.Search(request);
  ASSERT_TRUE(lax.ok()) << lax.status().ToString();
  const PhysicalStrategy chosen = lax.ValueOrDie().strategy;
  CheckStrategy(db, oracle, chosen, q);
  if (::testing::Test::HasFatalFailure()) return;
  auto forced_run = db.Execute(chosen, q, kTopN);
  ASSERT_TRUE(forced_run.ok());
  const std::vector<ScoredDoc>& a = forced_run.ValueOrDie().items;
  const std::vector<ScoredDoc>& b = lax.ValueOrDie().top.items;
  ASSERT_EQ(a.size(), b.size()) << StrategyName(chosen);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << StrategyName(chosen) << " rank " << i;
  }
}

/// Cross-checks catalog bookkeeping against the replay before trusting
/// any differential result.
void CheckBookkeeping(MmDatabase& db, const Shadow& shadow,
                      const Oracle& oracle) {
  ASSERT_TRUE(db.is_dynamic());
  const auto state = db.catalog()->Snapshot();
  ASSERT_EQ(state->LiveDocIds(), oracle.to_catalog);
  ASSERT_EQ(state->stats().num_live_docs, oracle.file->num_docs());
  ASSERT_EQ(state->stats().total_live_tokens, oracle.file->total_tokens());
  for (TermId t = 0; t < kVocab; ++t) {
    ASSERT_EQ(state->stats().df[t], oracle.file->DocFrequency(t))
        << "term " << t;
  }
  (void)shadow;
}

void RunIteration(uint64_t seed, int iteration) {
  SCOPED_TRACE("fuzz seed " + std::to_string(seed));
  Rng rng(seed);

  const std::string dir = std::string(::testing::TempDir()) +
                          "/lifecycle_fuzz_" + std::to_string(iteration);
  std::filesystem::remove_all(dir);
  DatabaseConfig config;
  config.collection.num_docs = 150;
  config.collection.vocabulary = kVocab;
  config.collection.mean_doc_length = 40;
  config.collection.seed = seed ^ 0x5EED;
  config.catalog_dir = dir;
  auto opened = MmDatabase::Open(config);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  MmDatabase& db = *opened.ValueOrDie();

  // ---- Static phase: save + attach a segment, spot-check, detach. ----
  const std::string segment_path = dir + ".moaseg";
  std::filesystem::create_directories(::testing::TempDir());
  ASSERT_TRUE(db.SaveSegment(segment_path).ok());
  ASSERT_TRUE(db.AttachSegment(segment_path).ok());
  {
    // Oracle for the static phase: the generated collection itself.
    Shadow initial;
    const InvertedFile& f = db.file();
    std::vector<DocTerms> docs(f.num_docs());
    for (TermId t = 0; t < f.num_terms(); ++t) {
      const PostingList& list = f.list(t);
      for (size_t i = 0; i < list.size(); ++i) {
        docs[list[i].doc].emplace_back(t, list[i].tf);
      }
    }
    for (DocTerms& d : docs) initial.Add(std::move(d));
    const Oracle oracle = BuildOracle(initial, config.fragmentation);
    for (const Query& q : RandomQueries(rng, 3)) {
      for (PhysicalStrategy s : AllStrategies()) {
        CheckStrategy(db, oracle, s, q);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  db.DetachSegment();
  std::remove(segment_path.c_str());
  std::remove((segment_path + ".frg").c_str());

  // ---- Dynamic phase: replayed random lifecycle. ----
  Shadow shadow;
  {
    const InvertedFile& f = db.file();
    std::vector<DocTerms> docs(f.num_docs());
    for (TermId t = 0; t < f.num_terms(); ++t) {
      const PostingList& list = f.list(t);
      for (size_t i = 0; i < list.size(); ++i) {
        docs[list[i].doc].emplace_back(t, list[i].tf);
      }
    }
    for (DocTerms& d : docs) shadow.Add(std::move(d));
  }

  const int ops = 36;
  for (int op = 0; op < ops; ++op) {
    const uint64_t pick = rng.Uniform(100);
    if (pick < 26) {  // AddDocument
      DocTerms doc = RandomDoc(rng);
      auto id = db.AddDocument(doc);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
      shadow.Add(std::move(doc));
    } else if (pick < 34) {  // AddDocuments batch
      std::vector<DocTerms> batch;
      for (size_t i = 0; i < 1 + rng.Uniform(6); ++i) {
        batch.push_back(RandomDoc(rng));
      }
      auto first = db.AddDocuments(batch);
      ASSERT_TRUE(first.ok());
      ASSERT_EQ(first.ValueOrDie(), shadow.slots.size());
      for (DocTerms& d : batch) shadow.Add(std::move(d));
    } else if (pick < 46) {  // DeleteDocument
      const std::vector<DocId> live = shadow.LiveIds();
      if (!live.empty()) {
        const DocId victim = live[rng.Uniform(live.size())];
        ASSERT_TRUE(db.DeleteDocument(victim).ok());
        shadow.Delete(victim);
      }
    } else if (pick < 55) {  // UpdateDocument (upsert = delete + add)
      const std::vector<DocId> live = shadow.LiveIds();
      if (!live.empty()) {
        const DocId victim = live[rng.Uniform(live.size())];
        DocTerms doc = RandomDoc(rng);
        auto id = db.UpdateDocument(victim, doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
        shadow.Update(victim, std::move(doc));
        // Upserting the now-dead id must fail without re-adding (the id
        // space stays aligned with the shadow).
        EXPECT_FALSE(db.UpdateDocument(victim, RandomDoc(rng)).ok());
      }
    } else if (pick < 67) {  // Flush
      ASSERT_TRUE(db.Flush().ok());
      shadow.Flush();
    } else if (pick < 75) {  // Merge (full)
      auto merged = db.Merge();
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      shadow.MergeAll();
    } else if (pick < 80) {  // Attach/Detach are static-mode only now
      if (db.is_dynamic()) {
        EXPECT_EQ(db.AttachSegment(segment_path).code(),
                  StatusCode::kFailedPrecondition);
      }
    } else if (pick < 92) {  // Search check round
      if (!db.is_dynamic()) continue;
      const Oracle oracle = BuildOracle(shadow, config.fragmentation);
      CheckBookkeeping(db, shadow, oracle);
      if (::testing::Test::HasFatalFailure()) return;
      for (const Query& q : RandomQueries(rng, 2)) {
        for (PhysicalStrategy s : AllStrategies()) {
          CheckStrategy(db, oracle, s, q);
          if (::testing::Test::HasFatalFailure()) return;
        }
        CheckPlanned(db, oracle, q);
        if (::testing::Test::HasFatalFailure()) return;
      }
    } else {  // SearchBatch check round
      if (!db.is_dynamic()) continue;
      const Oracle oracle = BuildOracle(shadow, config.fragmentation);
      const std::vector<Query> queries = RandomQueries(rng, 4);
      const PhysicalStrategy s =
          AllStrategies()[rng.Uniform(AllStrategies().size())];
      SearchOptions opts;
      opts.n = kTopN;
      opts.safe_only = false;
      opts.force = s;
      auto batch = db.SearchBatch(queries, opts, 4);
      ASSERT_TRUE(batch.ok()) << StrategyName(s) << ": "
                              << batch.status().ToString();
      for (size_t i = 0; i < queries.size(); ++i) {
        auto sequential = db.Execute(s, queries[i], kTopN);
        ASSERT_TRUE(sequential.ok());
        const auto& a = sequential.ValueOrDie().items;
        const auto& b = batch.ValueOrDie().results[i].top.items;
        ASSERT_EQ(a.size(), b.size()) << StrategyName(s);
        for (size_t r = 0; r < a.size(); ++r) {
          EXPECT_EQ(a[r], b[r]) << StrategyName(s) << " rank " << r;
        }
      }
    }
  }

  // Final full differential sweep, then once more after compaction.
  DocTerms final_doc = RandomDoc(rng);
  ASSERT_TRUE(db.AddDocument(final_doc).ok());
  shadow.Add(std::move(final_doc));
  for (const bool compact : {false, true}) {
    if (compact) {
      ASSERT_TRUE(db.Flush().ok());
      shadow.Flush();
      ASSERT_TRUE(db.Merge().ok());
      shadow.MergeAll();
    }
    const Oracle oracle = BuildOracle(shadow, config.fragmentation);
    CheckBookkeeping(db, shadow, oracle);
    if (::testing::Test::HasFatalFailure()) return;
    for (const Query& q : RandomQueries(rng, 3)) {
      for (PhysicalStrategy s : AllStrategies()) {
        CheckStrategy(db, oracle, s, q);
        if (::testing::Test::HasFatalFailure()) return;
      }
      CheckPlanned(db, oracle, q);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // Explain still names the storage composition.
  SearchOptions opts;
  opts.force = PhysicalStrategy::kQualitySwitchSparse;
  opts.safe_only = false;
  auto text = db.ExplainSearch(RandomQueries(rng, 1)[0], opts);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.ValueOrDie().find("storage: catalog"), std::string::npos);
  EXPECT_NE(text.ValueOrDie().find("fragmentation:"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(LifecycleFuzzTest, RandomLifecyclesMatchFreshOracle) {
  const int iterations = Iterations();
  for (int i = 0; i < iterations; ++i) {
    RunIteration(/*seed=*/0xF0A2'0000ull + static_cast<uint64_t>(i), i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Sharded lifecycle fuzz: the same differential idea one layer down. A
// ShardedCatalog absorbs a seeded op stream (adds, deletes, upserts,
// per-shard and all-shard flush/merge); queries run through the
// ShardCoordinator's bound-aware scatter-gather and are held to a fresh
// single-index oracle of the survivors under the interleaved global-id
// mapping.

/// Per-shard replay of the global id contract: global id g lives in shard
/// g % N at local id g / N, and each shard follows the single-catalog id
/// rules (dense insertion order, tombstone in place, merge compacts)
/// independently.
struct ShardedShadow {
  size_t num_shards;
  std::vector<Shadow> shards;

  explicit ShardedShadow(size_t n) : num_shards(n), shards(n) {}

  void Add(DocId global, DocTerms terms) {
    const size_t s = ShardedCatalog::ShardOf(global, num_shards);
    // The catalog must have appended to the owning shard's tail — the
    // local id is the shard's next dense slot.
    ASSERT_EQ(ShardedCatalog::LocalOf(global, num_shards),
              shards[s].slots.size());
    shards[s].Add(std::move(terms));
  }
  void Delete(DocId global) {
    shards[ShardedCatalog::ShardOf(global, num_shards)].Delete(
        ShardedCatalog::LocalOf(global, num_shards));
  }
  std::vector<DocId> LiveGlobalIds() const {
    std::vector<DocId> live;
    for (size_t s = 0; s < num_shards; ++s) {
      for (DocId local : shards[s].LiveIds()) {
        live.push_back(ShardedCatalog::GlobalOf(local, s, num_shards));
      }
    }
    std::sort(live.begin(), live.end());
    return live;
  }
  const DocTerms& TermsOf(DocId global) const {
    return shards[ShardedCatalog::ShardOf(global, num_shards)]
        .slots[ShardedCatalog::LocalOf(global, num_shards)]
        .terms;
  }
};

/// Single-index oracle over the sharded shadow's survivors, in ascending
/// global-id order — monotone with the catalog's id order, so the
/// oracle's (score desc, doc asc) tie-break agrees with the coordinator's.
Oracle BuildShardedOracle(const ShardedShadow& shadow,
                          const FragmentationPolicy& policy) {
  Oracle oracle;
  oracle.to_catalog = shadow.LiveGlobalIds();
  InvertedFileBuilder builder(kVocab);
  for (size_t k = 0; k < oracle.to_catalog.size(); ++k) {
    const DocId global = oracle.to_catalog[k];
    oracle.to_oracle.emplace(global, static_cast<DocId>(k));
    EXPECT_TRUE(builder.AddDocument(static_cast<DocId>(k),
                                    shadow.TermsOf(global))
                    .ok());
  }
  oracle.file = std::make_unique<InvertedFile>(builder.Build());
  oracle.model = MakeBm25(oracle.file.get());
  oracle.file->BuildImpactOrders([&](TermId t, const Posting& p) {
    return oracle.model->Weight(t, p);
  });
  oracle.fragmentation = Fragmentation::Build(*oracle.file, policy);
  return oracle;
}

/// Differential check of one strategy through the coordinator.
///
/// Safe strategies: the positional score sequence is bit-identical to the
/// oracle's run. Doc ids match too, except at ranks whose score equals
/// the returned n-th score — a later shard's threshold-seeded max-score
/// may strictly prune a candidate that only *ties* the global n-th, so an
/// equal-scored incumbent legally keeps the slot (ranks scoring above the
/// n-th can never be pruned: their bound exceeds any seeded threshold).
///
/// fagin_nra: its reported scores are drain-order partial lower bounds —
/// partition-dependent — so only set-level membership in the exact top-N
/// is checked. Unsafe strategies prune differently per shard by design;
/// they are held to the universal liveness invariant only.
void CheckShardedStrategy(const std::shared_ptr<const ShardedSnapshot>& snap,
                          const Oracle& oracle, PhysicalStrategy s,
                          const Query& q) {
  ShardCoordinator::Options copts;
  copts.fragmentation = &oracle.fragmentation;
  auto actual =
      ShardCoordinator::Execute(snap, s, q, kTopN, ExecOptions{}, copts);
  ASSERT_TRUE(actual.ok()) << StrategyName(s) << ": "
                           << actual.status().ToString();
  const std::vector<ScoredDoc>& got = actual.ValueOrDie().items;

  // Universal invariant: only live documents surface.
  for (const ScoredDoc& sd : got) {
    ASSERT_NE(oracle.to_oracle.find(sd.doc), oracle.to_oracle.end())
        << StrategyName(s) << " returned dead/unknown doc " << sd.doc;
  }
  if (!IsSafeStrategy(s)) return;

  auto expected = StrategyRegistry::Global().Execute(s, oracle.context(), q,
                                                     kTopN, ExecOptions{});
  ASSERT_TRUE(expected.ok()) << StrategyName(s) << ": "
                             << expected.status().ToString();
  const std::vector<ScoredDoc>& ref = expected.ValueOrDie().items;

  if (s == PhysicalStrategy::kFaginNRA) {
    const std::vector<ScoredDoc> truth =
        ExactTopN(*oracle.file, *oracle.model, q, kTopN);
    ASSERT_EQ(got.size(), truth.size()) << StrategyName(s);
    if (truth.empty()) return;
    const std::vector<double> truth_scores =
        AccumulateScores(*oracle.file, *oracle.model, q);
    for (const ScoredDoc& sd : got) {
      const DocId oid = oracle.to_oracle.at(sd.doc);
      EXPECT_GE(truth_scores[oid] + 1e-9, truth.back().score)
          << StrategyName(s) << " doc " << sd.doc
          << " is outside the exact top-" << kTopN;
    }
    return;
  }

  ASSERT_EQ(ref.size(), got.size()) << StrategyName(s);
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].score, ref[i].score) << StrategyName(s) << " rank " << i;
  }
  const bool full = got.size() == kTopN;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (full && ref[i].score == ref.back().score) continue;  // n-th-score tie
    EXPECT_EQ(oracle.to_oracle.at(got[i].doc), ref[i].doc)
        << StrategyName(s) << " rank " << i;
  }
}

void RunShardedIteration(uint64_t seed, size_t num_shards, int iteration) {
  SCOPED_TRACE("sharded fuzz seed " + std::to_string(seed) + ", shards " +
               std::to_string(num_shards));
  Rng rng(seed);

  const std::string dir = std::string(::testing::TempDir()) +
                          "/lifecycle_fuzz_sharded_" +
                          std::to_string(num_shards) + "_" +
                          std::to_string(iteration);
  std::filesystem::remove_all(dir);
  ShardedCatalog::Options options;
  options.num_shards = num_shards;
  options.shard.num_terms = kVocab;
  options.shard.dir = dir;
  auto created = ShardedCatalog::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ShardedCatalog> catalog = std::move(created).ValueOrDie();
  ShardedShadow shadow(num_shards);
  const FragmentationPolicy frag_policy;

  // Seed corpus (routing from empty is round-robin — the shadow asserts
  // every add lands on the owning shard's dense tail).
  for (int i = 0; i < 60; ++i) {
    DocTerms doc = RandomDoc(rng);
    auto id = catalog->AddDocument(doc);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    shadow.Add(id.ValueOrDie(), std::move(doc));
    if (::testing::Test::HasFatalFailure()) return;
  }

  const int ops = 30;
  for (int op = 0; op < ops; ++op) {
    const uint64_t pick = rng.Uniform(100);
    if (pick < 25) {  // AddDocument
      DocTerms doc = RandomDoc(rng);
      auto id = catalog->AddDocument(doc);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      shadow.Add(id.ValueOrDie(), std::move(doc));
    } else if (pick < 40) {  // DeleteDocument
      const std::vector<DocId> live = shadow.LiveGlobalIds();
      if (!live.empty()) {
        const DocId victim = live[rng.Uniform(live.size())];
        ASSERT_TRUE(catalog->DeleteDocument(victim).ok());
        shadow.Delete(victim);
      }
    } else if (pick < 52) {  // UpdateDocument (upsert)
      const std::vector<DocId> live = shadow.LiveGlobalIds();
      if (!live.empty()) {
        const DocId victim = live[rng.Uniform(live.size())];
        DocTerms doc = RandomDoc(rng);
        auto id = catalog->UpdateDocument(victim, doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        shadow.Delete(victim);
        shadow.Add(id.ValueOrDie(), std::move(doc));
        EXPECT_FALSE(catalog->UpdateDocument(victim, RandomDoc(rng)).ok());
      }
    } else if (pick < 64) {  // per-shard Flush
      const size_t s = rng.Uniform(num_shards);
      ASSERT_TRUE(catalog->Flush(s).ok());
      shadow.shards[s].Flush();
    } else if (pick < 74) {  // per-shard Merge
      const size_t s = rng.Uniform(num_shards);
      auto merged = catalog->Merge(s);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      shadow.shards[s].MergeAll();
    } else if (pick < 80) {  // FlushAll
      ASSERT_TRUE(catalog->FlushAll().ok());
      for (Shadow& sh : shadow.shards) sh.Flush();
    } else {  // differential check round
      const auto snap = catalog->Snapshot();
      const Oracle oracle = BuildShardedOracle(shadow, frag_policy);
      ASSERT_EQ(snap->LiveDocIds(), oracle.to_catalog);
      ASSERT_EQ(snap->stats().num_live_docs, oracle.file->num_docs());
      ASSERT_EQ(snap->stats().total_live_tokens, oracle.file->total_tokens());
      for (TermId t = 0; t < kVocab; ++t) {
        ASSERT_EQ(snap->stats().df[t], oracle.file->DocFrequency(t))
            << "term " << t;
      }
      for (const Query& q : RandomQueries(rng, 2)) {
        for (PhysicalStrategy s : AllStrategies()) {
          CheckShardedStrategy(snap, oracle, s, q);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }

  // Final sweep before and after an all-shard compaction.
  for (const bool compact : {false, true}) {
    if (compact) {
      ASSERT_TRUE(catalog->FlushAll().ok());
      for (Shadow& sh : shadow.shards) sh.Flush();
      auto merged = catalog->MergeAll();
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      for (Shadow& sh : shadow.shards) sh.MergeAll();
    }
    const auto snap = catalog->Snapshot();
    const Oracle oracle = BuildShardedOracle(shadow, frag_policy);
    ASSERT_EQ(snap->LiveDocIds(), oracle.to_catalog);
    for (const Query& q : RandomQueries(rng, 2)) {
      for (PhysicalStrategy s : AllStrategies()) {
        CheckShardedStrategy(snap, oracle, s, q);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }

  // Durability: everything is flushed + merged — a reopened catalog must
  // serve the same live set and statistics.
  const std::vector<DocId> live_before = shadow.LiveGlobalIds();
  const auto stats_before = catalog->Snapshot()->stats();
  catalog.reset();
  auto reopened = ShardedCatalog::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto snap = reopened.ValueOrDie()->Snapshot();
  EXPECT_EQ(snap->LiveDocIds(), live_before);
  EXPECT_EQ(snap->stats().num_live_docs, stats_before.num_live_docs);
  EXPECT_EQ(snap->stats().df, stats_before.df);

  std::filesystem::remove_all(dir);
}

TEST(LifecycleFuzzTest, ShardedLifecyclesMatchSingleIndexOracle) {
  const int iterations = Iterations();
  for (int i = 0; i < iterations; ++i) {
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      RunShardedIteration(
          /*seed=*/0xBEE5'0000ull + static_cast<uint64_t>(i) * 16 + shards,
          shards, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// WAL kill-point matrix: a seeded op stream against a durable catalog,
// "crashed" at every distinct point in the write path's commit protocol
// and reopened. The recovered catalog must hold *exactly* the
// acknowledged writes — every acknowledged mutation present, no torn or
// un-acknowledged suffix visible — and must keep absorbing new writes.
//
//   kTornRecord      process died mid-append: a half-written record sits
//                    at the WAL tail (replay truncates it in place).
//   kRotatedUnlinked died after a flush durably rotated WAL + manifest
//                    but before the old WAL was unlinked (recovery must
//                    follow the manifest, not the stray file).
//   kManifestStale   died after the flushed segment was fsync'd but
//                    before the manifest switch: orphaned segment files,
//                    stale manifest, intact WAL.
//   kCleanStop       orderly close (control row of the matrix).

enum class KillPoint {
  kTornRecord = 0,
  kRotatedUnlinked = 1,
  kManifestStale = 2,
  kCleanStop = 3,
};

/// Holds a recovered (or live) catalog to the shadow's acknowledged
/// writes: identical live-id set, statistics, and per-term document
/// frequencies (the content check — a lost or resurrected document
/// shifts some term's df).
void CheckCatalogMatchesShadow(IndexCatalog& catalog, const Shadow& shadow) {
  const Oracle oracle = BuildOracle(shadow, FragmentationPolicy{});
  const auto state = catalog.Snapshot();
  ASSERT_EQ(state->LiveDocIds(), oracle.to_catalog);
  ASSERT_EQ(state->stats().num_live_docs, oracle.file->num_docs());
  ASSERT_EQ(state->stats().total_live_tokens, oracle.file->total_tokens());
  for (TermId t = 0; t < kVocab; ++t) {
    ASSERT_EQ(state->stats().df[t], oracle.file->DocFrequency(t))
        << "term " << t;
  }
}

void RunKillPointIteration(uint64_t seed, int iteration) {
  SCOPED_TRACE("kill-point seed " + std::to_string(seed));
  Rng rng(seed);

  const std::string dir = std::string(::testing::TempDir()) +
                          "/lifecycle_fuzz_wal_" + std::to_string(iteration);
  std::filesystem::remove_all(dir);
  auto fail_point = std::make_shared<std::string>();
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.dir = dir;
  options.fault_injector = [fail_point](const std::string& point) {
    if (point == *fail_point) {
      return Status::Internal("injected crash at " + point);
    }
    return Status::OK();
  };
  auto created = IndexCatalog::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<IndexCatalog> catalog = std::move(created).ValueOrDie();
  Shadow shadow;

  const int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    // Mutation burst: every *acknowledged* op lands in the shadow; the
    // shadow never sees an op the catalog rejected.
    const int burst = 8 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < burst; ++i) {
      const uint64_t pick = rng.Uniform(100);
      if (pick < 50) {  // AddDocument
        DocTerms doc = RandomDoc(rng);
        auto id = catalog->AddDocument(doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
        shadow.Add(std::move(doc));
      } else if (pick < 70) {  // DeleteDocument
        const std::vector<DocId> live = shadow.LiveIds();
        if (!live.empty()) {
          const DocId victim = live[rng.Uniform(live.size())];
          ASSERT_TRUE(catalog->DeleteDocument(victim).ok());
          shadow.Delete(victim);
        }
      } else if (pick < 88) {  // UpdateDocument (upsert)
        const std::vector<DocId> live = shadow.LiveIds();
        if (!live.empty()) {
          const DocId victim = live[rng.Uniform(live.size())];
          DocTerms doc = RandomDoc(rng);
          auto id = catalog->UpdateDocument(victim, doc);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
          ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
          shadow.Update(victim, std::move(doc));
        }
      } else {  // committed Flush (bounds replay for later rounds)
        ASSERT_TRUE(catalog->Flush().ok());
      }
    }

    // Crash at one kill point, then reopen.
    const KillPoint kill = static_cast<KillPoint>(rng.Uniform(4));
    switch (kill) {
      case KillPoint::kTornRecord: {
        catalog.reset();  // the "crash": all in-memory state gone
        auto manifest = ReadManifest(dir);
        ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
        ASSERT_GT(manifest.ValueOrDie().wal_seq, 0u);
        const std::string wal_path =
            dir + "/" + WalFileName(manifest.ValueOrDie().wal_seq);
        std::ofstream out(wal_path,
                          std::ios::binary | std::ios::app);
        ASSERT_TRUE(out.good());
        // A record header promising 64 payload bytes, then the torn
        // prefix the "crash" left behind.
        const char torn[] = {0x40, 0x00, 0x00, 0x00,
                             0x13, 0x57, 0x7e, 0x21, 0x01, 'x', 'y'};
        out.write(torn, sizeof(torn));
        out.close();
        break;
      }
      case KillPoint::kRotatedUnlinked: {
        // The rotated WAL and switched manifest are durable, so if the
        // memtable was non-empty this flush *committed* despite the
        // in-memory refusal — recovery follows the manifest either way.
        *fail_point = "flush:wal-rotated";
        const bool reaches_fault =
            catalog->Snapshot()->memtable().num_docs() > 0;
        const Status flush = catalog->Flush();
        EXPECT_EQ(flush.ok(), !reaches_fault) << flush.ToString();
        *fail_point = "";
        catalog.reset();
        break;
      }
      case KillPoint::kManifestStale: {
        // Segment files fsync'd, manifest never switched: the flush did
        // NOT commit; recovery must ignore the orphans and replay the
        // intact WAL.
        *fail_point = "flush:segment-written";
        const bool reaches_fault =
            catalog->Snapshot()->memtable().num_docs() > 0;
        const Status flush = catalog->Flush();
        EXPECT_EQ(flush.ok(), !reaches_fault) << flush.ToString();
        *fail_point = "";
        catalog.reset();
        break;
      }
      case KillPoint::kCleanStop:
        catalog.reset();
        break;
    }

    auto reopened = IndexCatalog::Open(options);
    ASSERT_TRUE(reopened.ok()) << "round " << round << ": "
                               << reopened.status().ToString();
    catalog = std::move(reopened).ValueOrDie();
    CheckCatalogMatchesShadow(*catalog, shadow);
    if (::testing::Test::HasFatalFailure()) return;
    // The next round's burst doubles as the "recovered catalog keeps
    // absorbing writes" check.
  }

  std::filesystem::remove_all(dir);
}

TEST(LifecycleFuzzTest, WalKillPointMatrixRecoversAcknowledgedWrites) {
  const int iterations = Iterations();
  for (int i = 0; i < iterations; ++i) {
    RunKillPointIteration(/*seed=*/0x3A1'0000ull + static_cast<uint64_t>(i),
                          i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Background-maintenance interleaving: the same single-threaded op
// stream, with background flush/merge jobs firing at arbitrary points
// between ops, must land on exactly the live set the single-threaded
// shadow replay predicts — background maintenance is invisible to the
// logical document space.
//
// Two rounds keep the shadow's id mapping sound under nondeterministic
// job timing: flush is id-stable, so the mixed round (adds + deletes +
// upserts) runs with merges off; the merge round is append-only, where
// compaction is the identity mapping because no slot is ever dead.

void RunBackgroundInterleavingRound(uint64_t seed, bool with_merges,
                                    int iteration) {
  SCOPED_TRACE("background round seed " + std::to_string(seed) +
               (with_merges ? " (append-only, merges on)"
                            : " (mixed ops, flush only)"));
  Rng rng(seed);

  const std::string dir = std::string(::testing::TempDir()) +
                          "/lifecycle_fuzz_bg_" +
                          (with_merges ? "merge_" : "flush_") +
                          std::to_string(iteration);
  std::filesystem::remove_all(dir);
  IndexCatalog::Options options;
  options.num_terms = kVocab;
  options.dir = dir;
  auto created = IndexCatalog::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<IndexCatalog> catalog = std::move(created).ValueOrDie();
  Shadow shadow;

  {
    MaintenancePolicy policy;
    policy.flush_trigger_docs = 6;
    policy.merge_trigger_segments = with_merges ? 3 : 0;
    policy.merge_fanin = 2;
    BackgroundMaintenance maintenance(catalog.get(), policy);

    const int ops = 120;
    for (int op = 0; op < ops; ++op) {
      const uint64_t pick = rng.Uniform(100);
      if (with_merges || pick < 60) {  // AddDocument
        DocTerms doc = RandomDoc(rng);
        auto id = catalog->AddDocument(doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
        shadow.Add(std::move(doc));
      } else if (pick < 80) {  // DeleteDocument
        const std::vector<DocId> live = shadow.LiveIds();
        if (!live.empty()) {
          const DocId victim = live[rng.Uniform(live.size())];
          ASSERT_TRUE(catalog->DeleteDocument(victim).ok());
          shadow.Delete(victim);
        }
      } else {  // UpdateDocument (upsert)
        const std::vector<DocId> live = shadow.LiveIds();
        if (!live.empty()) {
          const DocId victim = live[rng.Uniform(live.size())];
          DocTerms doc = RandomDoc(rng);
          auto id = catalog->UpdateDocument(victim, doc);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
          ASSERT_EQ(id.ValueOrDie(), shadow.slots.size());
          shadow.Update(victim, std::move(doc));
        }
      }
    }
    maintenance.WaitIdle();
    EXPECT_TRUE(maintenance.TakeLastError().ok());

    CheckCatalogMatchesShadow(*catalog, shadow);
    if (::testing::Test::HasFatalFailure()) return;
    if (with_merges) {
      // The maintenance loop actually did its job: the segment count
      // settled below the merge trigger.
      EXPECT_LT(catalog->Snapshot()->segments().size(),
                policy.merge_trigger_segments);
    }
    // Maintenance detaches (observer cleared, in-flight job drained)
    // before the catalog closes.
  }

  // Everything background maintenance published — and everything still
  // sitting in the memtable — survives a reopen via the WAL.
  catalog.reset();
  auto reopened = IndexCatalog::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  catalog = std::move(reopened).ValueOrDie();
  CheckCatalogMatchesShadow(*catalog, shadow);

  std::filesystem::remove_all(dir);
}

TEST(LifecycleFuzzTest, BackgroundMaintenanceMatchesSingleThreadedOracle) {
  const int iterations = Iterations();
  for (int i = 0; i < iterations; ++i) {
    for (const bool with_merges : {false, true}) {
      RunBackgroundInterleavingRound(
          /*seed=*/0xB6'0000ull + static_cast<uint64_t>(i) * 2 + with_merges,
          with_merges, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace moa
