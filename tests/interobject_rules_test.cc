// Tests for the inter-object optimizer layer — including a faithful
// mechanization of the paper's Example 1 and the E-ADT inability argument.
#include "optimizer/interobject_rules.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "common/cost_ticker.h"
#include "optimizer/intra_object.h"

namespace moa {
namespace {

ExprPtr IntList(std::initializer_list<int64_t> xs) {
  ValueVec v;
  for (int64_t x : xs) v.push_back(Value::Int(x));
  return Expr::Const(Value::List(std::move(v)));
}

/// The paper's Example 1 expression:
/// select(projecttobag([1,2,3,4,4,5]), 2, 4).
ExprPtr Example1() {
  return Expr::Apply(
      "BAG.select",
      {Expr::Apply("LIST.projecttobag", {IntList({1, 2, 3, 4, 4, 5})}),
       Expr::Const(Value::Int(2)), Expr::Const(Value::Int(4))});
}

void ExpectSameValue(const ExprPtr& a, const ExprPtr& b) {
  auto ra = Evaluate(a);
  auto rb = Evaluate(b);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_TRUE(Value::BagEquals(ra.ValueOrDie(), rb.ValueOrDie()));
}

TEST(Example1Test, IntraObjectOptimizerCannotOptimizeIt) {
  // "Current optimizer technology, including the E-ADT system of PREDATOR,
  //  cannot optimize this expression."
  ExprPtr e = Example1();
  RewriteTrace trace;
  ExprPtr out = IntraObjectOnlyOptimize(e, ExtensionRegistry::Default(),
                                        &trace);
  EXPECT_TRUE(trace.fired.empty());
  EXPECT_TRUE(Expr::Equal(out, e));
}

TEST(Example1Test, InterObjectLayerCommutesSelectWithCast) {
  ExprPtr e = Example1();
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeSelectProjectCommuteRule()},
                                  ExtensionRegistry::Default(), &trace);
  ASSERT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->op(), "LIST.projecttobag");
  EXPECT_EQ(out->args()[0]->op(), "LIST.select");
  ExpectSameValue(e, out);
  // The rewritten expression must produce the bag {2,3,4,4}.
  Value v = Evaluate(out).ValueOrDie();
  EXPECT_TRUE(Value::BagEquals(
      v, Value::Bag({Value::Int(2), Value::Int(3), Value::Int(4),
                     Value::Int(4)})));
}

TEST(Example1Test, FullRuleSetAlsoExploitsSortedness) {
  // "The second expression can be evaluated even more efficiently when the
  //  system is aware of the ordering of the elements."
  ExprPtr e = Example1();  // input list is sorted
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, FullRuleSet(),
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(out->op(), "LIST.projecttobag");
  EXPECT_EQ(out->args()[0]->op(), "LIST.select_sorted");
  ExpectSameValue(e, out);
}

TEST(Example1Test, RewriteReducesMeasuredWork) {
  // Build a large instance so the work difference is unambiguous.
  ValueVec big;
  for (int i = 0; i < 20000; ++i) big.push_back(Value::Int(i));
  ExprPtr list = Expr::Const(Value::List(std::move(big)));
  ExprPtr original = Expr::Apply(
      "BAG.select", {Expr::Apply("LIST.projecttobag", {list}),
                     Expr::Const(Value::Int(100)),
                     Expr::Const(Value::Int(200))});
  ExprPtr rewritten = RewriteToFixpoint(original, FullRuleSet(),
                                        ExtensionRegistry::Default());
  ExpectSameValue(original, rewritten);

  CostScope s1;
  ASSERT_TRUE(Evaluate(original).ok());
  const double cost_original = s1.Snapshot().Scalar();
  CostScope s2;
  ASSERT_TRUE(Evaluate(rewritten).ok());
  const double cost_rewritten = s2.Snapshot().Scalar();
  EXPECT_LT(cost_rewritten, cost_original / 10.0)
      << "select_sorted + filtered cast must be an order of magnitude cheaper";
}

TEST(SelectSortedIntroTest, OnlyFiresOnProvablySortedInput) {
  ExprPtr sorted = Expr::Apply("LIST.select",
                               {IntList({1, 2, 3}), Expr::Const(Value::Int(1)),
                                Expr::Const(Value::Int(2))});
  ExprPtr unsorted = Expr::Apply(
      "LIST.select", {IntList({3, 1, 2}), Expr::Const(Value::Int(1)),
                      Expr::Const(Value::Int(2))});
  RewriteTrace t1, t2;
  ExprPtr out1 = RewriteToFixpoint(sorted, {MakeSelectSortedIntroRule()},
                                   ExtensionRegistry::Default(), &t1);
  RewriteToFixpoint(unsorted, {MakeSelectSortedIntroRule()},
                    ExtensionRegistry::Default(), &t2);
  EXPECT_EQ(out1->op(), "LIST.select_sorted");
  EXPECT_TRUE(t2.fired.empty());
}

TEST(CastRoundTripTest, ElidesBagListRoundTrip) {
  ExprPtr e = Expr::Apply(
      "BAG.projecttolist",
      {Expr::Apply("LIST.projecttobag", {IntList({5, 3, 1})})});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeCastRoundTripRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->kind(), Expr::Kind::kConst);
  // Physical storage order makes this exact list equality, not just bag.
  EXPECT_EQ(Evaluate(e).ValueOrDie(), Evaluate(out).ValueOrDie());
}

TEST(TopNPushThroughCastTest, RanksDirectlyOnBag) {
  ExprPtr bag = Expr::Apply("LIST.projecttobag", {IntList({4, 9, 1, 7})});
  ExprPtr e = Expr::Apply("LIST.topn",
                          {Expr::Apply("BAG.projecttolist", {bag}),
                           Expr::Const(Value::Int(2))});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeTopNPushThroughCastRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->op(), "BAG.topn");
  EXPECT_EQ(Evaluate(e).ValueOrDie(), Evaluate(out).ValueOrDie());
}

TEST(AggregatePushThroughCastTest, BothDirections) {
  ExprPtr list = IntList({1, 2, 3});
  ExprPtr count_over_cast = Expr::Apply(
      "BAG.count", {Expr::Apply("LIST.projecttobag", {list})});
  ExprPtr sum_over_cast = Expr::Apply(
      "LIST.sum", {Expr::Apply("BAG.projecttolist",
                               {Expr::Apply("LIST.projecttobag", {list})})});
  RewriteTrace trace;
  ExprPtr c = RewriteToFixpoint(count_over_cast,
                                {MakeAggregatePushThroughCastRule()},
                                ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(c->op(), "LIST.count");
  ExprPtr s = RewriteToFixpoint(sum_over_cast,
                                {MakeAggregatePushThroughCastRule()},
                                ExtensionRegistry::Default());
  // Fires twice: LIST.sum(projecttolist(projecttobag(x))) -> BAG.sum(
  // projecttobag(x)) -> LIST.sum(x), collapsing both casts.
  EXPECT_EQ(s->op(), "LIST.sum");
  EXPECT_EQ(s->args()[0]->kind(), Expr::Kind::kConst);
  EXPECT_EQ(Evaluate(count_over_cast).ValueOrDie(),
            Evaluate(c).ValueOrDie());
  EXPECT_EQ(Evaluate(sum_over_cast).ValueOrDie(), Evaluate(s).ValueOrDie());
}

TEST(SetMakeElidesSortTest, DropsSort) {
  ExprPtr e = Expr::Apply("SET.make",
                          {Expr::Apply("LIST.sort", {IntList({3, 1, 2})})});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeSetMakeElidesSortRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(Evaluate(e).ValueOrDie(), Evaluate(out).ValueOrDie());
}

TEST(FullRuleSetTest, SortUnderCastIsNotElided) {
  // Regression for a soundness bug found by rewrite_property_test: the
  // physical order of a BAG is observable through BAG.projecttolist, so a
  // sort below LIST.projecttobag must never be dropped — eliding it would
  // change which elements a downstream slice picks.
  ExprPtr e = Expr::Apply(
      "LIST.slice",
      {Expr::Apply("BAG.projecttolist",
                   {Expr::Apply("LIST.projecttobag",
                                {Expr::Apply("LIST.sort",
                                             {IntList({5, 1, 9, 3})})})}),
       Expr::Const(Value::Int(1)), Expr::Const(Value::Int(2))});
  const Value before = Evaluate(e).ValueOrDie();
  ExprPtr out = RewriteToFixpoint(e, FullRuleSet(),
                                  ExtensionRegistry::Default());
  EXPECT_EQ(before, Evaluate(out).ValueOrDie());
  // Expected value: sorted [1,3,5,9] -> slice(1,2) = [3,5].
  EXPECT_EQ(before, Value::List({Value::Int(3), Value::Int(5)}));
  // Same through the intra-object path.
  ExprPtr eadt = IntraObjectOnlyOptimize(e, ExtensionRegistry::Default());
  EXPECT_EQ(before, Evaluate(eadt).ValueOrDie());
}

TEST(FullRuleSetTest, ComposedPipelineCollapses) {
  // topn(projecttolist(select(projecttobag(L), lo, hi)), n): every layer
  // has something to do.
  ExprPtr e = Expr::Apply(
      "LIST.topn",
      {Expr::Apply("BAG.projecttolist",
                   {Expr::Apply("BAG.select",
                                {Expr::Apply("LIST.projecttobag",
                                             {IntList({1, 2, 3, 4, 4, 5})}),
                                 Expr::Const(Value::Int(2)),
                                 Expr::Const(Value::Int(4))})}),
       Expr::Const(Value::Int(2))});
  RewriteTrace trace;
  ExprPtr out =
      RewriteToFixpoint(e, FullRuleSet(), ExtensionRegistry::Default(), &trace);
  EXPECT_GE(trace.fired.size(), 2u);
  EXPECT_LT(out->TreeSize(), e->TreeSize());
  EXPECT_EQ(Evaluate(e).ValueOrDie(), Evaluate(out).ValueOrDie());
}

}  // namespace
}  // namespace moa
