#include "common/status.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  MOA_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace moa
