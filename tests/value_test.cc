#include "algebra/value.h"

#include <gtest/gtest.h>

namespace moa {
namespace {

TEST(ValueTest, ScalarConstruction) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, IntWidensToDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
}

TEST(ValueTest, ListPreservesOrderAndDuplicates) {
  Value v = Value::List({Value::Int(3), Value::Int(1), Value::Int(3)});
  ASSERT_EQ(v.Elements().size(), 3u);
  EXPECT_EQ(v.Elements()[0].AsInt(), 3);
  EXPECT_EQ(v.Elements()[2].AsInt(), 3);
}

TEST(ValueTest, SetDeduplicatesAndSorts) {
  Value v = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3),
                        Value::Int(2)});
  ASSERT_EQ(v.Elements().size(), 3u);
  EXPECT_EQ(v.Elements()[0].AsInt(), 1);
  EXPECT_EQ(v.Elements()[1].AsInt(), 2);
  EXPECT_EQ(v.Elements()[2].AsInt(), 3);
}

TEST(ValueTest, BagKeepsDuplicatesInStorageOrder) {
  Value v = Value::Bag({Value::Int(5), Value::Int(5), Value::Int(1)});
  ASSERT_EQ(v.Elements().size(), 3u);
  EXPECT_EQ(v.Elements()[0].AsInt(), 5);
  EXPECT_EQ(v.Elements()[2].AsInt(), 1);
}

TEST(ValueTest, TupleFieldsAccessible) {
  Value t = Value::Tuple({{"doc", Value::Int(4)}, {"score", Value::Double(0.5)}});
  ASSERT_EQ(t.Fields().size(), 2u);
  EXPECT_EQ(t.Fields()[0].first, "doc");
  EXPECT_EQ(t.Fields()[1].second.AsDouble(), 0.5);
}

TEST(ValueTest, CompareNumericCrossKind) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.0), Value::Int(2)), 0);
}

TEST(ValueTest, CompareStringsLexicographic) {
  EXPECT_LT(Value::Compare(Value::Str("apple"), Value::Str("banana")), 0);
  EXPECT_EQ(Value::Compare(Value::Str("x"), Value::Str("x")), 0);
}

TEST(ValueTest, CompareListsLexicographicThenLength) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1), Value::Int(2), Value::Int(0)});
  EXPECT_LT(Value::Compare(a, b), 0);
  EXPECT_LT(Value::Compare(a, c), 0);
  EXPECT_EQ(Value::Compare(a, a), 0);
}

TEST(ValueTest, EqualityIsStructural) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(2)});
  Value c = Value::List({Value::Int(2), Value::Int(1)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(ValueTest, BagEqualsIgnoresOrder) {
  Value a = Value::Bag({Value::Int(1), Value::Int(2), Value::Int(2)});
  Value b = Value::Bag({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value c = Value::Bag({Value::Int(1), Value::Int(2)});
  Value d = Value::Bag({Value::Int(1), Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(Value::BagEquals(a, b));
  EXPECT_FALSE(Value::BagEquals(a, c));  // different size
  EXPECT_FALSE(Value::BagEquals(a, d));  // different multiplicity
}

TEST(ValueTest, BagEqualsAcrossKinds) {
  Value list = Value::List({Value::Int(2), Value::Int(1)});
  Value bag = Value::Bag({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(Value::BagEquals(list, bag));
}

TEST(ValueTest, ToStringRendersAllKinds) {
  EXPECT_EQ(Value::Int(1).ToString(), "1");
  EXPECT_EQ(Value::Str("a").ToString(), "\"a\"");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::Bag({Value::Int(1)}).ToString(), "{|1|}");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1, 2}");
  EXPECT_EQ(Value::Tuple({{"a", Value::Int(1)}}).ToString(), "<a: 1>");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(ValueTest, CopyIsCheapAndShared) {
  ValueVec big;
  for (int i = 0; i < 1000; ++i) big.push_back(Value::Int(i));
  Value a = Value::List(std::move(big));
  Value b = a;  // shares the payload
  EXPECT_EQ(&a.Elements(), &b.Elements());
}

}  // namespace
}  // namespace moa
