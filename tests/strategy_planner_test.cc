// Unit tests for the cost-based strategy planner (optimizer/
// strategy_planner.h): choice flips under monotone df growth, storage
// digests for tombstone-heavy / memtable-heavy / mixed snapshots, quality
// gating, forced/excluded handling and plan determinism — all without a
// database: the planner is a pure function of (statistics, storage
// signals, query, request).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/registry.h"
#include "exec/strategy.h"
#include "optimizer/cardinality.h"
#include "optimizer/strategy_planner.h"
#include "storage/fragmentation.h"

namespace moa {
namespace {

constexpr int64_t kNumDocs = 100000;
constexpr size_t kVocab = 16;

/// df vector where every queried term has the given frequency.
std::vector<uint32_t> UniformDf(uint32_t df) {
  return std::vector<uint32_t>(kVocab, df);
}

Query ThreeTerms() { return Query{{1, 2, 3}}; }

const PlanCandidate* FindCandidate(const PlanDecision& decision,
                                   PhysicalStrategy s) {
  for (const PlanCandidate& c : decision.candidates) {
    if (c.strategy == s) return &c;
  }
  return nullptr;
}

PlanDecision MustPlan(const StrategyPlanner& planner, const Query& query,
                      const PlanRequest& request) {
  auto r = planner.Plan(query, request);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(StrategyPlannerTest, MonotoneDfGrowthFlipsTheChoice) {
  // As the per-term df grows the cheapest safe plan moves from the
  // document-at-a-time scan family to threshold-bounded sorted/random
  // access, whose work tracks n + sqrt(candidates) instead of the volume.
  const std::vector<uint32_t> low = UniformDf(20);
  const std::vector<uint32_t> high = UniformDf(30000);
  CardinalityEstimator low_est(&low, kNumDocs);
  CardinalityEstimator high_est(&high, kNumDocs);

  PlanRequest request;  // quality target 1.0: safe strategies only
  const PlanDecision low_plan =
      MustPlan(StrategyPlanner(&low_est), ThreeTerms(), request);
  const PlanDecision high_plan =
      MustPlan(StrategyPlanner(&high_est), ThreeTerms(), request);

  EXPECT_NE(low_plan.strategy, high_plan.strategy);
  EXPECT_TRUE(IsSafeStrategy(low_plan.strategy));
  EXPECT_TRUE(IsSafeStrategy(high_plan.strategy));
  // The concrete winners under the current calibration; update alongside
  // the constants if a recalibration shifts the crossover.
  EXPECT_EQ(low_plan.strategy, PhysicalStrategy::kMaxScore);
  EXPECT_EQ(high_plan.strategy, PhysicalStrategy::kFaginTA);

  // At high volume the full scans must predict more work than the chosen
  // threshold algorithm by a wide margin.
  const PlanCandidate* heap =
      FindCandidate(high_plan, PhysicalStrategy::kHeap);
  ASSERT_NE(heap, nullptr);
  ASSERT_TRUE(heap->costed);
  EXPECT_GT(heap->scalar, 10.0 * high_plan.chosen.scalar);
}

TEST(StrategyPlannerTest, CandidateTableIsSortedAndStampsRejects) {
  const std::vector<uint32_t> df = UniformDf(1000);
  CardinalityEstimator est(&df, kNumDocs);
  const PlanDecision plan =
      MustPlan(StrategyPlanner(&est), ThreeTerms(), PlanRequest{});

  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_EQ(plan.candidates.size(), AllStrategies().size());
  // Costed candidates cheapest-first, uncostable ones (the fragment
  // strategies — no fragmentation installed here) after.
  bool seen_uncosted = false;
  double prev_scalar = -1.0;
  for (const PlanCandidate& c : plan.candidates) {
    if (!c.costed) {
      seen_uncosted = true;
      EXPECT_EQ(c.reject, PlanReject::kNeedsFragmentation)
          << StrategyName(c.strategy);
      continue;
    }
    EXPECT_FALSE(seen_uncosted) << "costed candidate after an uncosted one";
    EXPECT_GE(c.scalar, prev_scalar);
    prev_scalar = c.scalar;
  }
  EXPECT_TRUE(seen_uncosted);  // small_fragment & friends need the split

  // Exactly one candidate carries kNone — the chosen one — and it is the
  // *cheapest eligible* entry: anything listed before it was rejected for
  // a non-cost reason (here: quit_prune is cheaper but below the quality
  // target), anything eligible after it lost on cost.
  size_t chosen_at = plan.candidates.size();
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    if (plan.candidates[i].reject != PlanReject::kNone) continue;
    EXPECT_EQ(chosen_at, plan.candidates.size()) << "second kNone candidate";
    chosen_at = i;
    EXPECT_EQ(plan.candidates[i].strategy, plan.strategy);
  }
  ASSERT_LT(chosen_at, plan.candidates.size());
  for (size_t i = 0; i < chosen_at; ++i) {
    EXPECT_NE(plan.candidates[i].reject, PlanReject::kCostlier);
  }
  for (size_t i = chosen_at + 1; i < plan.candidates.size(); ++i) {
    if (plan.candidates[i].costed) {
      EXPECT_GE(plan.candidates[i].scalar, plan.chosen.scalar);
    }
  }
}

TEST(StrategyPlannerTest, TombstoneHeavySnapshotPrefersRandomAccess) {
  // df chosen so the scan wins on a clean snapshot but not on one where
  // 4 dead slots ride along with every live one: sequential cost scales
  // with (1 + tombstone_overhead) while random probes do not.
  const std::vector<uint32_t> df = UniformDf(150);
  CardinalityEstimator est(&df, kNumDocs);

  CatalogComposition dirty;
  dirty.num_segments = 1;
  dirty.segment_slots = 10000;
  dirty.bitpacked_slots = 10000;
  dirty.directory_slots = 10000;
  dirty.dead_slots = 8000;
  const StrategyCostInputs storage = StorageInputsFor(dirty);
  EXPECT_DOUBLE_EQ(storage.tombstone_overhead, 4.0);

  const PlanDecision clean_plan =
      MustPlan(StrategyPlanner(&est), ThreeTerms(), PlanRequest{});
  const PlanDecision dirty_plan =
      MustPlan(StrategyPlanner(&est, storage), ThreeTerms(), PlanRequest{});

  EXPECT_EQ(clean_plan.strategy, PhysicalStrategy::kMaxScore);
  EXPECT_EQ(dirty_plan.strategy, PhysicalStrategy::kFaginTA);
}

TEST(StrategyPlannerTest, MemtableOnlySnapshotIsNeutral) {
  // A pure memtable serves raw arrays with native impact orders: its
  // digest must be exactly the neutral configuration, so planning over a
  // memtable-heavy snapshot reproduces the static in-memory choice.
  CatalogComposition mem;
  mem.memtable_slots = 5000;
  const StrategyCostInputs storage = StorageInputsFor(mem);
  EXPECT_DOUBLE_EQ(storage.decode_factor, 1.0);
  EXPECT_DOUBLE_EQ(storage.tombstone_overhead, 0.0);
  EXPECT_DOUBLE_EQ(storage.random_access_factor, 1.0);
  EXPECT_DOUBLE_EQ(storage.sorted_access_factor, 1.0);

  const std::vector<uint32_t> df = UniformDf(1000);
  CardinalityEstimator est(&df, kNumDocs);
  const PlanDecision neutral =
      MustPlan(StrategyPlanner(&est), ThreeTerms(), PlanRequest{});
  const PlanDecision memtable =
      MustPlan(StrategyPlanner(&est, storage), ThreeTerms(), PlanRequest{});
  EXPECT_EQ(neutral.strategy, memtable.strategy);
  EXPECT_EQ(neutral.chosen.scalar, memtable.chosen.scalar);
}

TEST(StrategyPlannerTest, MixedCompositionDigest) {
  // 6000 bit-packed slots with a directory, 2000 varbyte without one,
  // 2000 memtable slots, 500 tombstones: every field is a closed-form
  // mix of the calibration constants.
  CatalogComposition mix;
  mix.num_segments = 2;
  mix.segment_slots = 8000;
  mix.memtable_slots = 2000;
  mix.dead_slots = 500;
  mix.bitpacked_slots = 6000;
  mix.varbyte_slots = 2000;
  mix.directory_slots = 6000;
  const StrategyCostInputs in = StorageInputsFor(mix);

  EXPECT_NEAR(in.decode_factor, 1.0 + 0.15 * 0.6 + 0.4 * 0.2, 1e-12);
  EXPECT_NEAR(in.tombstone_overhead, 500.0 / 9500.0, 1e-12);
  // 2 segments + the memtable = 3 components to probe.
  EXPECT_NEAR(in.random_access_factor, 1.0 + 0.5 * std::log2(3.0), 1e-12);
  // memtable share native + directory share * 1.1 + bare share * 3.0.
  EXPECT_NEAR(in.sorted_access_factor, 0.2 + 1.1 * 0.6 + 3.0 * 0.2, 1e-12);

  // The empty composition (no snapshot at all) is neutral too.
  const StrategyCostInputs empty = StorageInputsFor(CatalogComposition{});
  EXPECT_DOUBLE_EQ(empty.decode_factor, 1.0);
  EXPECT_DOUBLE_EQ(empty.sorted_access_factor, 1.0);
}

TEST(StrategyPlannerTest, QualityTargetGatesUnsafeStrategies) {
  // High volume: QUIT touches a fraction of the postings and predicts
  // quality well under 1.0 — eligible only when the target admits it.
  const std::vector<uint32_t> df = UniformDf(30000);
  CardinalityEstimator est(&df, kNumDocs);
  StrategyPlanner planner(&est);

  PlanRequest exact;
  exact.quality_target = 1.0;
  const PlanDecision safe_plan = MustPlan(planner, ThreeTerms(), exact);
  EXPECT_TRUE(IsSafeStrategy(safe_plan.strategy));
  const PlanCandidate* quit =
      FindCandidate(safe_plan, PhysicalStrategy::kQuitPrune);
  ASSERT_NE(quit, nullptr);
  EXPECT_EQ(quit->reject, PlanReject::kBelowQualityTarget);
  ASSERT_TRUE(quit->costed);  // rejected candidates still show their cost
  EXPECT_LT(quit->predicted_quality, 1.0);
  EXPECT_LT(quit->scalar, safe_plan.chosen.scalar);

  PlanRequest lax;
  lax.quality_target = 0.0;
  const PlanDecision lax_plan = MustPlan(planner, ThreeTerms(), lax);
  EXPECT_EQ(lax_plan.strategy, PhysicalStrategy::kQuitPrune);
  EXPECT_LT(lax_plan.chosen.predicted_quality, 1.0);

  // Whatever the target, the chosen candidate honors it.
  for (double target : {0.0, 0.5, 0.9, 1.0}) {
    PlanRequest request;
    request.quality_target = target;
    const PlanDecision plan = MustPlan(planner, ThreeTerms(), request);
    EXPECT_GE(plan.chosen.predicted_quality + 1e-9, target);
  }
}

TEST(StrategyPlannerTest, FragmentationUnlocksFragmentStrategies) {
  std::vector<uint32_t> df(kVocab, 0);
  df[1] = 40;      // rare -> small fragment
  df[2] = 40;
  df[3] = 20000;   // frequent -> large fragment
  FragmentationPolicy policy;
  policy.small_volume_fraction = 0.05;
  const Fragmentation frag = Fragmentation::Build(df, policy);
  CardinalityEstimator est(&df, kNumDocs, &frag);
  StrategyPlanner planner(&est);

  PlanRequest lax;
  lax.quality_target = 0.0;
  const PlanDecision plan = MustPlan(planner, ThreeTerms(), lax);
  const PlanCandidate* small =
      FindCandidate(plan, PhysicalStrategy::kSmallFragment);
  ASSERT_NE(small, nullptr);
  EXPECT_NE(small->reject, PlanReject::kNeedsFragmentation);
  ASSERT_TRUE(small->costed);
  EXPECT_GT(small->scalar, 0.0);
  EXPECT_LT(small->predicted_quality, 1.0);
  // Reading 80 of ~20080 postings is the cheapest candidate by far.
  EXPECT_EQ(plan.strategy, PhysicalStrategy::kSmallFragment);
  // ... but never under an exact target.
  const PlanDecision exact = MustPlan(planner, ThreeTerms(), PlanRequest{});
  EXPECT_TRUE(IsSafeStrategy(exact.strategy));
}

TEST(StrategyPlannerTest, ForcedStrategyOverridesCostAndMarksLosers) {
  const std::vector<uint32_t> df = UniformDf(1000);
  CardinalityEstimator est(&df, kNumDocs);
  StrategyPlanner planner(&est);

  PlanRequest request;
  request.force = PhysicalStrategy::kHeap;
  const PlanDecision plan = MustPlan(planner, ThreeTerms(), request);
  EXPECT_TRUE(plan.forced);
  EXPECT_EQ(plan.strategy, PhysicalStrategy::kHeap);
  EXPECT_EQ(plan.chosen.reject, PlanReject::kNone);
  // The would-be winner is listed, costed, and marked forced-other.
  const PlanDecision unforced = MustPlan(planner, ThreeTerms(), PlanRequest{});
  ASSERT_NE(unforced.strategy, PhysicalStrategy::kHeap);
  const PlanCandidate* winner = FindCandidate(plan, unforced.strategy);
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->reject, PlanReject::kForcedOther);
  EXPECT_LT(winner->scalar, plan.chosen.scalar);

  // PlanForced: same validation, single-entry candidate table.
  auto fast = planner.PlanForced(ThreeTerms(), request);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.ValueOrDie().strategy, PhysicalStrategy::kHeap);
  ASSERT_EQ(fast.ValueOrDie().candidates.size(), 1u);
  EXPECT_EQ(fast.ValueOrDie().chosen.scalar, plan.chosen.scalar);
}

TEST(StrategyPlannerTest, ForcedStrategyMustBeExecutable) {
  const std::vector<uint32_t> df = UniformDf(1000);
  CardinalityEstimator est(&df, kNumDocs);  // no fragmentation installed
  StrategyPlanner planner(&est);

  PlanRequest request;
  request.quality_target = 0.0;
  request.force = PhysicalStrategy::kSmallFragment;
  EXPECT_FALSE(planner.Plan(ThreeTerms(), request).ok());
  EXPECT_FALSE(planner.PlanForced(ThreeTerms(), request).ok());

  // Zero active terms: the Fagin family cannot run (no impact cursors to
  // merge), forcing it must fail rather than crash the executor.
  const std::vector<uint32_t> empty(kVocab, 0);
  CardinalityEstimator empty_est(&empty, kNumDocs);
  StrategyPlanner empty_planner(&empty_est);
  PlanRequest fagin;
  fagin.force = PhysicalStrategy::kFaginTA;
  EXPECT_FALSE(empty_planner.Plan(ThreeTerms(), fagin).ok());
  EXPECT_FALSE(empty_planner.PlanForced(ThreeTerms(), fagin).ok());

  // Unforced planning still succeeds: the scan strategies handle empty
  // queries, and the Fagin candidates report why they were skipped.
  const PlanDecision plan =
      MustPlan(empty_planner, ThreeTerms(), PlanRequest{});
  const PlanCandidate* ta = FindCandidate(plan, PhysicalStrategy::kFaginTA);
  ASSERT_NE(ta, nullptr);
  EXPECT_EQ(ta->reject, PlanReject::kNoActiveTerms);
}

TEST(StrategyPlannerTest, ExcludedStrategyIsSkipped) {
  const std::vector<uint32_t> df = UniformDf(30000);
  CardinalityEstimator est(&df, kNumDocs);
  StrategyPlanner planner(&est);

  const PlanDecision base = MustPlan(planner, ThreeTerms(), PlanRequest{});
  PlanRequest request;
  request.exclude.push_back(base.strategy);
  const PlanDecision plan = MustPlan(planner, ThreeTerms(), request);
  EXPECT_NE(plan.strategy, base.strategy);
  const PlanCandidate* excluded = FindCandidate(plan, base.strategy);
  ASSERT_NE(excluded, nullptr);
  EXPECT_EQ(excluded->reject, PlanReject::kExcluded);
  EXPECT_GE(plan.chosen.scalar, base.chosen.scalar);
}

TEST(StrategyPlannerTest, PlanningIsDeterministicAndChoiceAgrees) {
  // Same statistics + query + request => same plan, and the allocation-
  // free hot path (PlanChoice) picks exactly what Plan() picks — for
  // every df magnitude and quality target.
  for (uint32_t dfv : {0u, 5u, 150u, 1000u, 30000u}) {
    const std::vector<uint32_t> df = UniformDf(dfv);
    CardinalityEstimator est(&df, kNumDocs);
    StrategyPlanner planner(&est);
    for (double target : {0.0, 0.9, 1.0}) {
      PlanRequest request;
      request.quality_target = target;
      const PlanDecision a = MustPlan(planner, ThreeTerms(), request);
      const PlanDecision b = MustPlan(planner, ThreeTerms(), request);
      EXPECT_EQ(a.strategy, b.strategy) << "df=" << dfv;
      EXPECT_EQ(a.chosen.scalar, b.chosen.scalar);
      ASSERT_EQ(a.candidates.size(), b.candidates.size());
      for (size_t i = 0; i < a.candidates.size(); ++i) {
        EXPECT_EQ(a.candidates[i].strategy, b.candidates[i].strategy);
        EXPECT_EQ(a.candidates[i].reject, b.candidates[i].reject);
        EXPECT_EQ(a.candidates[i].scalar, b.candidates[i].scalar);
      }
      auto choice = planner.PlanChoice(ThreeTerms(), request);
      ASSERT_TRUE(choice.ok()) << "df=" << dfv << " target=" << target;
      EXPECT_EQ(choice.ValueOrDie().strategy, a.strategy)
          << "df=" << dfv << " target=" << target;
      EXPECT_EQ(choice.ValueOrDie().scalar, a.chosen.scalar);
      EXPECT_EQ(choice.ValueOrDie().predicted_quality,
                a.chosen.predicted_quality);
    }
  }
}

}  // namespace
}  // namespace moa
