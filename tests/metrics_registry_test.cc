#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace moa {
namespace obs {
namespace {

// The registry is process-global; every test starts from zeroed values.
// Under -DMOA_OBS=OFF the whole suite skips: the inert stubs discard
// every write by design, so there is nothing to assert.
class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "observability compiled out (MOA_OBS=OFF)";
    MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override { MetricsRegistry::Global().ResetForTest(); }
};

TEST_F(MetricsRegistryTest, CounterAddsAndMerges) {
  Counter* c = MetricsRegistry::Global().GetCounter("test_counter_total");
  EXPECT_EQ(c->Value(), 0.0);
  c->Add();
  c->Add(2.5);
  EXPECT_EQ(c->Value(), 3.5);
}

TEST_F(MetricsRegistryTest, GaugeKeepsLastValue) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test_gauge");
  g->Set(7.0);
  g->Set(-1.5);
  EXPECT_EQ(g->Value(), -1.5);
}

TEST_F(MetricsRegistryTest, HistogramTracksCountSumMinMaxQuantiles) {
  HistogramMetric* h = MetricsRegistry::Global().GetHistogram("test_hist_ms");
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(h->Sum(), 0.0);
  EXPECT_EQ(h->Quantile(0.5), 0.0);  // empty: defined, no division by zero
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_EQ(h->Count(), 100);
  EXPECT_EQ(h->Sum(), 5050.0);
  EXPECT_EQ(h->Min(), 1.0);
  EXPECT_EQ(h->Max(), 100.0);
  const double p50 = h->Quantile(0.50);
  const double p95 = h->Quantile(0.95);
  EXPECT_NEAR(p50, 50.0, 5.0);
  EXPECT_NEAR(p95, 95.0, 5.0);
  EXPECT_LE(p50, p95);
}

TEST_F(MetricsRegistryTest, LabelIdentityAndHandleStability) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test_labeled_total", "strategy=heap");
  Counter* b = registry.GetCounter("test_labeled_total", "strategy=maxscore");
  Counter* a_again = registry.GetCounter("test_labeled_total", "strategy=heap");
  EXPECT_NE(a, b);        // distinct label -> distinct series
  EXPECT_EQ(a, a_again);  // same (name, label) -> same handle
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(a->Value(), 3.0);
  EXPECT_EQ(b->Value(), 4.0);
  // ResetForTest zeroes values but keeps handles valid.
  registry.ResetForTest();
  EXPECT_EQ(a->Value(), 0.0);
  a->Add();
  EXPECT_EQ(a_again->Value(), 1.0);
}

TEST_F(MetricsRegistryTest, RenderIsDeterministicAndOrdered) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Register out of order; Render must sort by (name, label).
  registry.GetCounter("test_zzz_total")->Add(1);
  registry.GetCounter("test_aaa_total", "k=b")->Add(2);
  registry.GetCounter("test_aaa_total", "k=a")->Add(3);
  registry.GetGauge("test_mmm")->Set(9);

  const std::string first = registry.Render(MetricsFormat::kPrometheus);
  const std::string second = registry.Render(MetricsFormat::kPrometheus);
  EXPECT_EQ(first, second);  // byte-identical re-render

  const size_t aaa_a = first.find("test_aaa_total{k=\"a\"} 3");
  const size_t aaa_b = first.find("test_aaa_total{k=\"b\"} 2");
  const size_t zzz = first.find("test_zzz_total 1");
  ASSERT_NE(aaa_a, std::string::npos) << first;
  ASSERT_NE(aaa_b, std::string::npos) << first;
  ASSERT_NE(zzz, std::string::npos) << first;
  EXPECT_LT(aaa_a, aaa_b);
  EXPECT_LT(aaa_b, zzz);

  const std::string json = registry.Render(MetricsFormat::kJson);
  EXPECT_EQ(json, registry.Render(MetricsFormat::kJson));
  EXPECT_NE(json.find("\"test_aaa_total\""), std::string::npos) << json;
}

TEST_F(MetricsRegistryTest, MetricNamesSortedAndDeduplicated) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_names_b_total", "x=1");
  registry.GetCounter("test_names_b_total", "x=2");
  registry.GetGauge("test_names_a");
  const std::vector<std::string> names = registry.MetricNames();
  int a_seen = 0, b_seen = 0;
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);  // strictly sorted -> deduplicated
  }
  for (const std::string& n : names) {
    a_seen += (n == "test_names_a") ? 1 : 0;
    b_seen += (n == "test_names_b_total") ? 1 : 0;
  }
  EXPECT_EQ(a_seen, 1);
  EXPECT_EQ(b_seen, 1);  // two labels, one family name
}

TEST_F(MetricsRegistryTest, ConcurrentCounterIncrementsAreExact) {
  // 8 threads x 10k increments through the sharded cells; the merged
  // value must be exact. Also the TSan target for the counter path.
  Counter* c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  HistogramMetric* h =
      MetricsRegistry::Global().GetHistogram("test_concurrent_ms");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int i = 0; i < kIters; ++i) {
        c->Add();
        if (i % 100 == 0) h->Observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h->Count(), kThreads * (kIters / 100));
}

TEST_F(MetricsRegistryTest, ConcurrentRegistrationYieldsOneSeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[t] = registry.GetCounter("test_race_total", "k=v");
      handles[t]->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), static_cast<double>(kThreads));
}

}  // namespace
}  // namespace obs
}  // namespace moa
