#include "storage/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "test_util.h"

namespace moa {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(IoTest, RoundTripSmallCollection) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("roundtrip.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());

  auto loaded = ReadInvertedFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const InvertedFile& copy = loaded.ValueOrDie();

  ASSERT_EQ(copy.num_terms(), original.num_terms());
  ASSERT_EQ(copy.num_docs(), original.num_docs());
  EXPECT_EQ(copy.num_postings(), original.num_postings());
  EXPECT_EQ(copy.total_tokens(), original.total_tokens());
  for (DocId d = 0; d < original.num_docs(); ++d) {
    ASSERT_EQ(copy.DocLength(d), original.DocLength(d)) << "doc " << d;
  }
  for (TermId t = 0; t < original.num_terms(); ++t) {
    ASSERT_EQ(copy.list(t).postings(), original.list(t).postings())
        << "term " << t;
  }
  std::remove(path.c_str());
}

TEST(IoTest, RoundTripEmptyFile) {
  InvertedFileBuilder builder(0);
  InvertedFile empty = builder.Build();
  const std::string path = TempPath("empty.moaif");
  ASSERT_TRUE(WriteInvertedFile(empty, path).ok());
  auto loaded = ReadInvertedFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().num_terms(), 0u);
  EXPECT_EQ(loaded.ValueOrDie().num_docs(), 0u);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto r = ReadInvertedFile(TempPath("does-not-exist.moaif"));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.moaif");
  std::ofstream out(path, std::ios::binary);
  out << "NOT-A-MOA-FILE-AT-ALL";
  out.close();
  auto r = ReadInvertedFile(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, RejectsTruncatedFile) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("trunc.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  // Truncate to 60% of its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<size_t>(size * 6 / 10));
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto r = ReadInvertedFile(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(IoTest, RejectsCorruptTokenCount) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("corrupt.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  // Flip the total_tokens field (bytes 24..31).
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(24);
  uint64_t bogus = 123;
  fs.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  fs.close();
  auto r = ReadInvertedFile(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, RejectsBogusDfWithoutAllocating) {
  // A bit-flipped df must fail with InvalidArgument *before* any
  // df-sized allocation or read — not with bad_alloc, not by reading
  // past the end of the file.
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("bogusdf.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  // First term's df is right behind header + doc-length section.
  const std::streamoff df_offset =
      32 + static_cast<std::streamoff>(original.num_docs()) * 4;
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(df_offset);
  const uint64_t bogus = 0x7FFFFFFFFFFFFFFFull;
  fs.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  fs.close();
  auto r = ReadInvertedFile(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, RejectsHeaderCountsBeyondFileSize) {
  // A tiny file claiming a billion documents must fail on the size check
  // instead of allocating gigabytes of doc lengths.
  const std::string path = TempPath("hugedocs.moaif");
  std::ofstream out(path, std::ios::binary);
  const char magic[8] = {'M', 'O', 'A', 'I', 'F', '0', '1', '\0'};
  out.write(magic, sizeof(magic));
  const uint64_t num_terms = 1, num_docs = 1000000000ull, total_tokens = 0;
  out.write(reinterpret_cast<const char*>(&num_terms), 8);
  out.write(reinterpret_cast<const char*>(&num_docs), 8);
  out.write(reinterpret_cast<const char*>(&total_tokens), 8);
  out.close();
  auto r = ReadInvertedFile(path);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, TruncationAnywhereFailsCleanly) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("truncsweep.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  const auto full = std::filesystem::file_size(path);
  for (const uintmax_t size : {uintmax_t{0}, uintmax_t{7}, uintmax_t{31},
                               full / 4, full / 2, full - 4, full - 1}) {
    std::filesystem::resize_file(path, size);
    auto r = ReadInvertedFile(path);
    EXPECT_FALSE(r.ok()) << "truncated to " << size << " of " << full;
  }
  std::remove(path.c_str());
}

TEST(IoTest, WriteIsAtomicAndLeavesNoTempFile) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("atomic.moaif");
  {
    std::ofstream out(path, std::ios::binary);
    out << "stale garbage that must disappear";
  }
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_TRUE(ReadInvertedFile(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, FailedWriteCleansUpTempAndCannotCorruptDestination) {
  // Renaming onto a directory fails after the temp file was fully
  // written: the error must surface and the temp file must be removed.
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string dir = TempPath("atomic_dir.moaif");
  std::filesystem::create_directory(dir);
  EXPECT_FALSE(WriteInvertedFile(original, dir).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
  std::filesystem::remove(dir);
}

TEST(IoTest, LoadedFileSupportsRetrieval) {
  const InvertedFile& original = testutil::SmallCollection().inverted_file();
  const std::string path = TempPath("retrieval.moaif");
  ASSERT_TRUE(WriteInvertedFile(original, path).ok());
  auto loaded = ReadInvertedFile(path);
  ASSERT_TRUE(loaded.ok());
  InvertedFile file = std::move(loaded).ValueOrDie();
  auto model = MakeBm25(&file);
  file.BuildImpactOrders(
      [&](TermId t, const Posting& p) { return model->Weight(t, p); });
  EXPECT_TRUE(file.list(0).has_impact_order());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace moa
