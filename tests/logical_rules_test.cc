#include "optimizer/logical_rules.h"

#include <gtest/gtest.h>

#include "algebra/evaluator.h"

namespace moa {
namespace {

ExprPtr IntList(std::initializer_list<int64_t> xs) {
  ValueVec v;
  for (int64_t x : xs) v.push_back(Value::Int(x));
  return Expr::Const(Value::List(std::move(v)));
}

ExprPtr Select(ExprPtr in, double lo, double hi,
               const char* op = "LIST.select") {
  return Expr::Apply(op, {std::move(in), Expr::Const(Value::Double(lo)),
                          Expr::Const(Value::Double(hi))});
}

/// Rewrite must preserve semantics: evaluate both and compare.
void ExpectSameValue(const ExprPtr& a, const ExprPtr& b) {
  auto ra = Evaluate(a);
  auto rb = Evaluate(b);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_TRUE(Value::BagEquals(ra.ValueOrDie(), rb.ValueOrDie()))
      << ra.ValueOrDie().ToString() << " vs " << rb.ValueOrDie().ToString();
}

TEST(MergeSelectsTest, MergesNestedRanges) {
  ExprPtr nested = Select(Select(IntList({1, 2, 3, 4, 5, 6}), 2, 5), 3, 9);
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(nested, {MakeMergeSelectsRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->op(), "LIST.select");
  EXPECT_EQ(out->TreeSize(), 4u) << "one select must remain";
  ExpectSameValue(nested, out);
}

TEST(MergeSelectsTest, DisjointRangesYieldEmptyButStayCorrect) {
  ExprPtr nested = Select(Select(IntList({1, 2, 3}), 1, 2), 3, 9);
  ExprPtr out = RewriteToFixpoint(nested, {MakeMergeSelectsRule()},
                                  ExtensionRegistry::Default());
  ExpectSameValue(nested, out);
}

TEST(MergeSelectsTest, DoesNotMergeAcrossExtensions) {
  // BAG.select over LIST.select — type-invalid anyway, but the rule must not
  // touch it (that is the inter-object layer's business).
  ExprPtr mixed = Expr::Apply(
      "BAG.select", {Select(IntList({1, 2, 3}), 1, 2),
                     Expr::Const(Value::Int(0)), Expr::Const(Value::Int(9))});
  RewriteTrace trace;
  RewriteToFixpoint(mixed, {MakeMergeSelectsRule()},
                    ExtensionRegistry::Default(), &trace);
  EXPECT_TRUE(trace.fired.empty());
}

TEST(ElideSortTest, RemovesSortOnSortedInput) {
  ExprPtr e = Expr::Apply("LIST.sort", {IntList({1, 2, 3})});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeElideSortRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->kind(), Expr::Kind::kConst);
  ExpectSameValue(e, out);
}

TEST(ElideSortTest, KeepsSortOnUnsortedInput) {
  ExprPtr e = Expr::Apply("LIST.sort", {IntList({3, 1, 2})});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeElideSortRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_TRUE(trace.fired.empty());
  EXPECT_EQ(out->op(), "LIST.sort");
}

TEST(ElideSortTest, RemovesDoubleSort) {
  ExprPtr e = Expr::Apply("LIST.sort",
                          {Expr::Apply("LIST.sort", {IntList({3, 1, 2})})});
  ExprPtr out = RewriteToFixpoint(e, {MakeElideSortRule()},
                                  ExtensionRegistry::Default());
  // Outer sort sees sorted input -> elided; inner stays.
  EXPECT_EQ(out->op(), "LIST.sort");
  EXPECT_EQ(out->TreeSize(), 2u);
  ExpectSameValue(e, out);
}

TEST(SortUnderOrderInsensitiveTest, TopnDropsInnerSort) {
  ExprPtr e = Expr::Apply("LIST.topn",
                          {Expr::Apply("LIST.sort", {IntList({3, 1, 2})}),
                           Expr::Const(Value::Int(2))});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeSortUnderOrderInsensitiveRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  ASSERT_EQ(out->op(), "LIST.topn");
  EXPECT_EQ(out->args()[0]->kind(), Expr::Kind::kConst);
  ExpectSameValue(e, out);
}

TEST(SortUnderOrderInsensitiveTest, CountDropsInnerReverse) {
  ExprPtr e = Expr::Apply("LIST.count",
                          {Expr::Apply("LIST.reverse", {IntList({3, 1})})});
  ExprPtr out = RewriteToFixpoint(e, {MakeSortUnderOrderInsensitiveRule()},
                                  ExtensionRegistry::Default());
  EXPECT_EQ(out->TreeSize(), 2u);
  ExpectSameValue(e, out);
}

TEST(SortUnderOrderInsensitiveTest, KeepsSortUnderOrderSensitiveParent) {
  // slice is order-sensitive: the sort must stay.
  ExprPtr e = Expr::Apply("LIST.slice",
                          {Expr::Apply("LIST.sort", {IntList({3, 1, 2})}),
                           Expr::Const(Value::Int(0)),
                           Expr::Const(Value::Int(1))});
  RewriteTrace trace;
  RewriteToFixpoint(e, {MakeSortUnderOrderInsensitiveRule()},
                    ExtensionRegistry::Default(), &trace);
  EXPECT_TRUE(trace.fired.empty());
}

TEST(NoopSliceTest, RemovesFullSlice) {
  ExprPtr e = Expr::Apply("LIST.slice",
                          {IntList({1, 2, 3}), Expr::Const(Value::Int(0)),
                           Expr::Const(Value::Int(3))});
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, {MakeNoopSliceRule()},
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_EQ(trace.fired.size(), 1u);
  EXPECT_EQ(out->kind(), Expr::Kind::kConst);
}

TEST(NoopSliceTest, KeepsProperSlice) {
  ExprPtr e = Expr::Apply("LIST.slice",
                          {IntList({1, 2, 3}), Expr::Const(Value::Int(1)),
                           Expr::Const(Value::Int(1))});
  RewriteTrace trace;
  RewriteToFixpoint(e, {MakeNoopSliceRule()}, ExtensionRegistry::Default(),
                    &trace);
  EXPECT_TRUE(trace.fired.empty());
}

TEST(RewriteEngineTest, FixpointTerminatesAndReportsIterations) {
  ExprPtr e = Select(Select(Select(IntList({1, 2, 3, 4}), 1, 4), 2, 4), 2, 3);
  RewriteTrace trace;
  ExprPtr out = RewriteToFixpoint(e, LogicalRules(),
                                  ExtensionRegistry::Default(), &trace);
  EXPECT_GE(trace.iterations, 1);
  EXPECT_EQ(out->op(), "LIST.select");
  EXPECT_EQ(out->TreeSize(), 4u);
  ExpectSameValue(e, out);
}

}  // namespace
}  // namespace moa
